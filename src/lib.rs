//! # IVN — In-Vivo Networking
//!
//! A faithful, laptop-scale reproduction of *"Enabling Deep-Tissue
//! Networking for Miniature Medical Devices"* (SIGCOMM 2018): the CIB
//! (coherently-incoherent beamforming) algorithm, a full physics and
//! protocol simulation substrate, and the harness that regenerates every
//! figure in the paper's evaluation.
//!
//! This facade crate re-exports the workspace crates under one namespace:
//!
//! * [`dsp`] — signal processing primitives
//! * [`em`] — tissue media, layered-body propagation, channels, antennas
//! * [`harvester`] — diode/rectifier energy-harvesting circuit models
//! * [`rfid`] — EPC Gen2 protocol: PIE, FM0, CRC, tag state machine
//! * [`sdr`] — software-radio testbed simulation (PLLs, clocks, PAs)
//! * [`core`] — CIB beamforming, frequency selection, baselines, the
//!   out-of-band reader, and the end-to-end [`core::system::IvnSystem`]
//! * [`runtime`] — the zero-dependency substrate: seeded RNG streams,
//!   scoped worker pool, JSON, property testing and the bench harness
//!
//! ## Quickstart
//!
//! ```
//! use ivn::core::waveform::CibEnvelope;
//!
//! // The canonical IVN frequency plan from the paper's prototype (§5).
//! let offsets = [0.0, 7.0, 20.0, 49.0, 68.0, 73.0, 90.0, 113.0, 121.0, 137.0];
//! let env = CibEnvelope::new(&offsets, &[0.0; 10]);
//! // With aligned phases the envelope peaks at N = 10 (power gain N² = 100).
//! assert!((env.peak_over_period(10_000).1 - 10.0).abs() < 1e-6);
//! ```

pub use ivn_core as core;
pub use ivn_dsp as dsp;
pub use ivn_em as em;
pub use ivn_harvester as harvester;
pub use ivn_rfid as rfid;
pub use ivn_runtime as runtime;
pub use ivn_sdr as sdr;
