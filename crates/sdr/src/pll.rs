//! Frequency synthesizer (PLL) model.
//!
//! Two properties drive IVN's design (paper §3.3 and §5a):
//!
//! 1. Every retune latches a **uniformly random initial phase** — the θᵢ
//!    term that makes multi-device transmissions mutually incoherent even
//!    on a shared reference.
//! 2. The synthesizer's frequency resolution is coarse (N210/SBX step
//!    ≈ kHz at integer-N settings): hertz-scale CIB offsets cannot be set
//!    in hardware and must be soft-coded into the baseband samples.

use ivn_dsp::complex::Complex64;
use ivn_runtime::rng::Rng;
use std::f64::consts::TAU;

/// A phase-locked-loop frequency synthesizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Pll {
    /// Smallest programmable frequency step, Hz.
    pub step_hz: f64,
    /// Residual frequency error after lock as a fraction of the carrier
    /// (0 when locked to a shared reference).
    pub frac_error: f64,
    tuned_hz: f64,
    phase: f64,
}

impl Pll {
    /// Creates an untuned PLL with the given step size.
    ///
    /// # Panics
    /// Panics on non-positive step.
    pub fn new(step_hz: f64) -> Self {
        assert!(step_hz > 0.0, "step must be positive");
        Pll {
            step_hz,
            frac_error: 0.0,
            tuned_hz: 0.0,
            phase: 0.0,
        }
    }

    /// An SBX-class synthesizer: 1 kHz step, locked to an external
    /// reference (no residual frequency error).
    pub fn sbx_class() -> Self {
        Pll::new(1e3)
    }

    /// A free-running (no shared reference) variant with ±2 ppm error.
    pub fn free_running() -> Self {
        Pll {
            frac_error: 2e-6,
            ..Pll::new(1e3)
        }
    }

    /// Tunes to the nearest achievable frequency to `target_hz`, latching
    /// a fresh random phase. Returns the actually tuned frequency.
    pub fn tune<R: Rng + ?Sized>(&mut self, rng: &mut R, target_hz: f64) -> f64 {
        ivn_runtime::obs_count!("sdr.pll_locks", 1);
        let quantized = (target_hz / self.step_hz).round() * self.step_hz;
        let err = if self.frac_error > 0.0 {
            // Uniform in ±frac_error.
            quantized * self.frac_error * (2.0 * rng.random::<f64>() - 1.0)
        } else {
            0.0
        };
        self.tuned_hz = quantized + err;
        self.phase = rng.random::<f64>() * TAU;
        self.tuned_hz
    }

    /// Frequency the PLL is actually producing, Hz.
    pub fn frequency(&self) -> f64 {
        self.tuned_hz
    }

    /// The latched initial phase (radians) — physically real but unknown
    /// to the system; exposed for tests and for the channel compositor.
    pub fn initial_phase(&self) -> f64 {
        self.phase
    }

    /// The latched initial phase as a unit phasor `e^{jθ}` — the factor
    /// the emission path multiplies in, and the phase a
    /// [`PhasorRotor`](ivn_dsp::rotor::PhasorRotor) starts from.
    pub fn initial_phasor(&self) -> Complex64 {
        Complex64::cis(self.phase)
    }

    /// Tuning error that would result from requesting `target_hz`
    /// (ignoring reference error), Hz.
    pub fn quantization_error(&self, target_hz: f64) -> f64 {
        let quantized = (target_hz / self.step_hz).round() * self.step_hz;
        target_hz - quantized
    }

    /// Whether a CIB offset can be realized in hardware: true only when
    /// it is an exact multiple of the step (it essentially never is —
    /// hence soft offsets).
    pub fn can_realize_offset(&self, offset_hz: f64) -> bool {
        (offset_hz / self.step_hz).fract().abs() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::StdRng;

    #[test]
    fn tune_quantizes_to_step() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pll = Pll::sbx_class();
        let f = pll.tune(&mut rng, 915_000_437.0);
        assert_eq!(f, 915_000_000.0);
        assert_eq!(pll.frequency(), 915_000_000.0);
    }

    #[test]
    fn paper_offsets_not_realizable_in_hardware() {
        // §5a: "USRPs cannot stably generate small frequency offsets, we
        // soft-coded these offsets". 7 Hz, 137 Hz etc. are far below the
        // 1 kHz step.
        let pll = Pll::sbx_class();
        for df in [7.0, 20.0, 49.0, 137.0] {
            assert!(!pll.can_realize_offset(df), "{df} Hz should not fit");
            assert!((pll.quantization_error(915e6 + df) - df).abs() < 1e-6);
        }
        assert!(pll.can_realize_offset(2e3));
    }

    #[test]
    fn each_tune_draws_new_phase() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pll = Pll::sbx_class();
        pll.tune(&mut rng, 915e6);
        let p1 = pll.initial_phase();
        pll.tune(&mut rng, 915e6);
        let p2 = pll.initial_phase();
        assert_ne!(p1, p2);
        assert!((0.0..TAU).contains(&p1));
        assert!((0.0..TAU).contains(&p2));
    }

    #[test]
    fn phase_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut pll = Pll::sbx_class();
        let n = 20_000;
        let mean: (f64, f64) = (0..n).fold((0.0, 0.0), |acc, _| {
            pll.tune(&mut rng, 915e6);
            (
                acc.0 + pll.initial_phase().cos(),
                acc.1 + pll.initial_phase().sin(),
            )
        });
        assert!((mean.0 / n as f64).abs() < 0.02);
        assert!((mean.1 / n as f64).abs() < 0.02);
    }

    #[test]
    fn shared_reference_removes_frequency_error() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut locked = Pll::sbx_class();
        let f = locked.tune(&mut rng, 915e6);
        assert_eq!(f, 915e6);
        let mut free = Pll::free_running();
        let f2 = free.tune(&mut rng, 915e6);
        assert_ne!(f2, 915e6);
        assert!((f2 - 915e6).abs() < 915e6 * 2e-6 + 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = Pll::sbx_class();
        let mut b = Pll::sbx_class();
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(a.tune(&mut ra, 915e6), b.tune(&mut rb, 915e6));
            assert_eq!(a.initial_phase(), b.initial_phase());
        }
    }
}
