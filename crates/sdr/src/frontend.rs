//! Composable receive front-end chain.
//!
//! Bundles the stages a real reader RX path applies between the antenna
//! and the digital decoder — SAW pre-filter, LNA (gain + noise figure),
//! AGC, ADC — into one [`RxChain`] the out-of-band reader and the fault
//! -injection tests can configure stage by stage.

use crate::adc::{Adc, SawFilter};
use ivn_dsp::agc::block_gain;
use ivn_dsp::complex::Complex64;
use ivn_dsp::noise::AwgnSource;
use ivn_runtime::rng::Rng;

/// A low-noise amplifier: linear gain plus input-referred noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lna {
    /// Voltage gain (linear).
    pub gain: f64,
    /// Input-referred noise power, watts (kTB·(F−1) for noise figure F).
    pub noise_watts: f64,
}

impl Lna {
    /// Creates an LNA.
    ///
    /// # Panics
    /// Panics on non-positive gain or negative noise.
    pub fn new(gain: f64, noise_watts: f64) -> Self {
        assert!(gain > 0.0 && noise_watts >= 0.0);
        Lna { gain, noise_watts }
    }

    /// A reader-grade LNA: 20 dB gain, ~1 dB noise figure in 200 kHz
    /// (≈ −120 dBm input-referred).
    pub fn reader_grade() -> Self {
        Lna::new(10.0, ivn_dsp::units::dbm_to_watts(-120.0))
    }
}

/// The full RX chain configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RxChain {
    /// Optional SAW pre-filter (None = direct connection).
    pub saw: Option<SawFilter>,
    /// The LNA.
    pub lna: Lna,
    /// AGC target as a fraction of ADC full scale (0–1).
    pub agc_target_fraction: f64,
    /// The converter.
    pub adc: Adc,
}

impl RxChain {
    /// The paper's out-of-band reader chain at 880 MHz.
    pub fn oob_reader() -> Self {
        RxChain {
            saw: Some(SawFilter::reader_880()),
            lna: Lna::reader_grade(),
            agc_target_fraction: 0.25,
            adc: Adc::new(0.5, 14),
        }
    }

    /// The chain without the SAW (the §4 failure configuration).
    pub fn without_saw() -> Self {
        RxChain {
            saw: None,
            ..Self::oob_reader()
        }
    }

    /// Processes a capture of per-component samples, where each input
    /// component is tagged with its RF frequency so the SAW can act on it
    /// (`components[k] = (freq_hz, samples)`), plus the chain's own noise.
    ///
    /// Returns `(digitized samples, agc_gain, saturation_fraction)`, with
    /// the samples referred back to the antenna (AGC/LNA gain divided
    /// out) so downstream processing keeps physical units.
    pub fn capture<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        components: &[(f64, Vec<Complex64>)],
        len: usize,
    ) -> (Vec<Complex64>, f64, f64) {
        assert!(len > 0, "empty capture");
        // Sum the components through the SAW.
        let mut analog = vec![Complex64::ZERO; len];
        for (freq, samples) in components {
            let g = self.saw.as_ref().map(|s| s.gain_at(*freq)).unwrap_or(1.0);
            for (a, s) in analog.iter_mut().zip(samples.iter()) {
                *a += *s * g;
            }
        }
        // LNA: gain + its own noise at the input.
        let mut noise = AwgnSource::new(self.lna.noise_watts);
        for a in analog.iter_mut() {
            *a = (*a + noise.sample(rng)) * self.lna.gain;
        }
        // AGC to the configured fraction of full scale.
        let agc = block_gain(&analog, self.agc_target_fraction * self.adc.full_scale);
        let scaled: Vec<Complex64> = analog.iter().map(|&s| s * agc).collect();
        let saturation = self.adc.saturation_fraction(&scaled);
        let digitized = self.adc.convert_block(&scaled);
        // Refer back to the antenna.
        let back = 1.0 / (agc * self.lna.gain);
        (
            digitized.into_iter().map(|s| s * back).collect(),
            agc,
            saturation,
        )
    }

    /// Effective quantization floor referred to the antenna for a given
    /// AGC gain: one LSB divided by the total gain — what the smallest
    /// resolvable antenna-level signal is after the blocker sets the AGC.
    pub fn antenna_referred_lsb(&self, agc_gain: f64) -> f64 {
        assert!(agc_gain > 0.0);
        self.adc.lsb() / (agc_gain * self.lna.gain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::StdRng;

    fn tone(amp: f64, len: usize) -> Vec<Complex64> {
        (0..len)
            .map(|k| Complex64::from_polar(amp, k as f64 * 0.37))
            .collect()
    }

    #[test]
    fn clean_capture_preserves_signal() {
        let chain = RxChain::oob_reader();
        let mut rng = StdRng::seed_from_u64(1);
        let len = 512;
        let sig = tone(1e-4, len);
        let (out, agc, sat) = chain.capture(&mut rng, &[(880e6, sig.clone())], len);
        assert!(sat < 0.01, "saturation {sat}");
        assert!(agc > 1.0, "agc should amplify a weak signal: {agc}");
        // Output ≈ input (through the SAW's 2 dB insertion loss).
        let in_rms = (sig.iter().map(|s| s.norm_sqr()).sum::<f64>() / len as f64).sqrt();
        let out_rms = (out.iter().map(|s| s.norm_sqr()).sum::<f64>() / len as f64).sqrt();
        let ratio_db = 20.0 * (out_rms / in_rms).log10();
        assert!((ratio_db + 2.0).abs() < 1.0, "through-gain {ratio_db} dB");
    }

    #[test]
    fn saw_protects_agc_from_blocker() {
        // Signal at 880 MHz + blocker 40 dB stronger at 915 MHz.
        let len = 512;
        let sig = tone(1e-4, len);
        let jam = tone(1e-2, len);
        let mut rng = StdRng::seed_from_u64(2);
        let with_saw = RxChain::oob_reader();
        let (_, agc_saw, _) =
            with_saw.capture(&mut rng, &[(880e6, sig.clone()), (915e6, jam.clone())], len);
        let mut rng = StdRng::seed_from_u64(2);
        let no_saw = RxChain::without_saw();
        let (_, agc_raw, _) = no_saw.capture(&mut rng, &[(880e6, sig), (915e6, jam)], len);
        // Without the SAW the AGC must back off for the jam: far less gain.
        assert!(agc_saw / agc_raw > 10.0, "saw {agc_saw} raw {agc_raw}");
        // And the antenna-referred quantization floor correspondingly
        // rises above the signal without the SAW.
        assert!(no_saw.antenna_referred_lsb(agc_raw) > with_saw.antenna_referred_lsb(agc_saw));
    }

    #[test]
    fn lna_noise_floor_visible_on_empty_input() {
        let chain = RxChain::oob_reader();
        let mut rng = StdRng::seed_from_u64(3);
        let len = 2048;
        let silence = vec![Complex64::ZERO; len];
        let (out, _, _) = chain.capture(&mut rng, &[(880e6, silence)], len);
        let p = out.iter().map(|s| s.norm_sqr()).sum::<f64>() / len as f64;
        // Antenna-referred noise ≈ the LNA's input-referred noise.
        let expected = chain.lna.noise_watts;
        assert!(
            (p / expected).log10().abs() < 0.5,
            "noise floor {p} vs {expected}"
        );
    }

    #[test]
    fn capture_deterministic_per_seed() {
        let chain = RxChain::oob_reader();
        let len = 128;
        let sig = tone(1e-3, len);
        let a = chain.capture(&mut StdRng::seed_from_u64(4), &[(880e6, sig.clone())], len);
        let b = chain.capture(&mut StdRng::seed_from_u64(4), &[(880e6, sig)], len);
        assert_eq!(a, b);
    }
}
