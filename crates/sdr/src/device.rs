//! A single software-radio device (USRP N210 class).
//!
//! Bundles the synthesizer, power amplifier and converter models into one
//! TX/RX unit with a sample clock. The transmit path is
//! `baseband → PA → antenna` and the carrier it rides on has the PLL's
//! random phase; the receive path is `antenna → (SAW) → ADC`.

use crate::adc::Adc;
use crate::pa::PowerAmp;
use crate::pll::Pll;
use ivn_dsp::buffer::IqBuffer;
use ivn_runtime::rng::Rng;

/// A TX/RX software radio.
#[derive(Debug, Clone)]
pub struct SdrDevice {
    /// Frequency synthesizer.
    pub pll: Pll,
    /// Transmit power amplifier.
    pub pa: PowerAmp,
    /// Receive converter.
    pub adc: Adc,
    /// Sample rate, S/s.
    pub sample_rate: f64,
    /// Trigger (PPS) offset of this device relative to nominal, seconds.
    pub trigger_offset_s: f64,
}

impl SdrDevice {
    /// Creates an N210-class device at the given sample rate.
    ///
    /// # Panics
    /// Panics on non-positive sample rate.
    pub fn n210(sample_rate: f64) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        SdrDevice {
            pll: Pll::sbx_class(),
            pa: PowerAmp::hmc453_class(),
            adc: Adc::n210_class(),
            sample_rate,
            trigger_offset_s: 0.0,
        }
    }

    /// Tunes the device, latching a new random carrier phase.
    /// Returns the realized carrier frequency.
    pub fn tune<R: Rng + ?Sized>(&mut self, rng: &mut R, target_hz: f64) -> f64 {
        self.pll.tune(rng, target_hz)
    }

    /// Transmit chain: scales unit-amplitude baseband to `drive` volts,
    /// passes it through the PA, and rotates by the carrier's latched
    /// phase. The result is the equivalent complex baseband of the emitted
    /// RF (relative to the tuned carrier).
    pub fn transmit(&self, baseband: &IqBuffer, drive: f64) -> IqBuffer {
        assert!(drive >= 0.0, "drive must be non-negative");
        let phase = self.pll.initial_phasor();
        let mut out = baseband.clone();
        for s in out.samples_mut() {
            *s = self.pa.process(*s * drive) * phase;
        }
        out
    }

    /// Receive chain: converts incoming samples through the ADC.
    pub fn receive(&self, input: &IqBuffer) -> IqBuffer {
        IqBuffer::new(self.adc.convert_block(input.samples()), input.sample_rate())
    }

    /// Transmit amplitude (volts) for a unit baseband at a given drive —
    /// i.e. the PA output the far field scales from.
    pub fn output_amplitude(&self, drive: f64) -> f64 {
        self.pa.am_am(drive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_dsp::complex::Complex64;
    use ivn_runtime::rng::StdRng;

    fn unit_tone(len: usize, fs: f64) -> IqBuffer {
        IqBuffer::new(vec![Complex64::ONE; len], fs)
    }

    #[test]
    fn transmit_applies_gain_and_phase() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut dev = SdrDevice::n210(1e6);
        dev.tune(&mut rng, 915e6);
        let theta = dev.pll.initial_phase();
        let out = dev.transmit(&unit_tone(16, 1e6), 0.05);
        let expected_amp = dev.pa.am_am(0.05);
        for s in out.samples() {
            assert!((s.norm() - expected_amp).abs() < 1e-9);
            let mut d = (s.arg() - theta).rem_euclid(std::f64::consts::TAU);
            if d > std::f64::consts::PI {
                d = std::f64::consts::TAU - d;
            }
            assert!(d < 1e-9, "phase error {d}");
        }
    }

    #[test]
    fn two_devices_same_clock_different_phase() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = SdrDevice::n210(1e6);
        let mut b = SdrDevice::n210(1e6);
        let fa = a.tune(&mut rng, 915e6);
        let fb = b.tune(&mut rng, 915e6);
        assert_eq!(fa, fb); // shared reference: same frequency
        assert_ne!(a.pll.initial_phase(), b.pll.initial_phase()); // but blind phases
    }

    #[test]
    fn receive_quantizes() {
        let dev = SdrDevice::n210(1e6);
        let input = IqBuffer::new(vec![Complex64::new(0.1234567, 0.0); 4], 1e6);
        let out = dev.receive(&input);
        assert!((out.samples()[0].re - 0.1234567).abs() < 2.0 * dev.adc.lsb());
    }

    #[test]
    fn heavy_drive_compresses() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut dev = SdrDevice::n210(1e6);
        dev.tune(&mut rng, 915e6);
        let small = dev.output_amplitude(0.01);
        let big = dev.output_amplitude(10.0);
        // 1000× the drive produces far less than 1000× the output
        // (saturation caps it near V_sat).
        assert!(big / small < 150.0, "ratio {}", big / small);
    }
}
