//! Power amplifier with soft compression (Rapp model).
//!
//! The prototype's HMC453QS16 has a 30 dBm 1-dB compression point (§5a).
//! The Rapp model captures the AM/AM curve:
//!
//! ```text
//! g(v) = G·v / (1 + (G·v/V_sat)^(2p))^(1/2p)
//! ```
//!
//! Saturation matters for CIB in an unexpected way: the *transmitted*
//! per-antenna signal is a clean single tone (constant envelope — PA
//! friendly); it is only in the air that the tones sum into high peaks.
//! CIB thus sidesteps the PAPR problem that would wreck a single-PA
//! multi-tone transmitter, and the tests document that contrast.

use ivn_dsp::complex::Complex64;

/// A Rapp-model power amplifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerAmp {
    /// Small-signal amplitude gain (linear).
    pub gain: f64,
    /// Output saturation amplitude, volts (into the reference load).
    pub v_sat: f64,
    /// Rapp smoothness parameter (1–3 typical; higher = sharper knee).
    pub smoothness: f64,
}

impl PowerAmp {
    /// Creates a PA.
    ///
    /// # Panics
    /// Panics on non-positive parameters.
    pub fn new(gain: f64, v_sat: f64, smoothness: f64) -> Self {
        assert!(gain > 0.0 && v_sat > 0.0 && smoothness > 0.0);
        PowerAmp {
            gain,
            v_sat,
            smoothness,
        }
    }

    /// An HMC453-class PA: ~20 dB gain, saturation sized so the 1-dB
    /// compression point lands at 30 dBm output into 50 Ω.
    pub fn hmc453_class() -> Self {
        // P1dB = 30 dBm = 1 W into 50 Ω → amplitude √(2·P·R) = 10 V.
        // For Rapp p=2, the 1 dB compression output is ≈ 0.885·V_sat... set
        // V_sat so compression happens near 10 V.
        PowerAmp::new(10.0, 11.3, 2.0)
    }

    /// AM/AM: output amplitude for an input amplitude.
    pub fn am_am(&self, v_in: f64) -> f64 {
        assert!(v_in >= 0.0);
        let lin = self.gain * v_in;
        let p2 = 2.0 * self.smoothness;
        lin / (1.0 + (lin / self.v_sat).powf(p2)).powf(1.0 / p2)
    }

    /// Processes one complex sample (phase preserved, amplitude
    /// compressed).
    ///
    /// Trig-free: instead of the polar round-trip
    /// `from_polar(am_am(r), arg(x))` — an `atan2` plus a `sin`/`cos`
    /// per sample — the sample is scaled by `am_am(r)/r`, which keeps
    /// the phase *exactly* (both components multiply by the same
    /// positive real) and costs only the `hypot` for `r`.
    pub fn process(&self, x: Complex64) -> Complex64 {
        let r = x.norm();
        if r == 0.0 {
            return Complex64::ZERO;
        }
        x * (self.am_am(r) / r)
    }

    /// Processes a block in place.
    pub fn process_block(&self, data: &mut [Complex64]) {
        for d in data {
            *d = self.process(*d);
        }
    }

    /// Gain compression in dB at a given input amplitude (0 in the linear
    /// region, growing toward saturation).
    pub fn compression_db(&self, v_in: f64) -> f64 {
        if v_in <= 0.0 {
            return 0.0;
        }
        20.0 * ((self.gain * v_in) / self.am_am(v_in)).log10()
    }

    /// Input amplitude at which compression reaches 1 dB (bisection).
    pub fn p1db_input(&self) -> f64 {
        let (mut lo, mut hi) = (1e-9, self.v_sat / self.gain * 100.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.compression_db(mid) < 1.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_at_small_signal() {
        let pa = PowerAmp::hmc453_class();
        let v = pa.am_am(0.01);
        assert!((v / (0.01 * pa.gain) - 1.0).abs() < 1e-3);
        assert!(pa.compression_db(0.01) < 0.01);
    }

    #[test]
    fn saturates_at_large_signal() {
        let pa = PowerAmp::hmc453_class();
        assert!(pa.am_am(100.0) <= pa.v_sat * 1.0001);
        assert!(pa.am_am(1000.0) <= pa.v_sat * 1.0001);
    }

    #[test]
    fn monotone_am_am() {
        let pa = PowerAmp::hmc453_class();
        let mut prev = 0.0;
        for k in 1..100 {
            let v = pa.am_am(k as f64 * 0.05);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn p1db_near_30dbm_output() {
        let pa = PowerAmp::hmc453_class();
        let v_in = pa.p1db_input();
        let v_out = pa.am_am(v_in);
        // Output power into 50 Ω: P = v²/(2·50); expect ≈ 1 W (30 dBm).
        let p_out = v_out * v_out / 100.0;
        assert!(
            (ivn_dsp::units::watts_to_dbm(p_out) - 30.0).abs() < 1.5,
            "P1dB at {} dBm",
            ivn_dsp::units::watts_to_dbm(p_out)
        );
    }

    #[test]
    fn phase_preserved() {
        let pa = PowerAmp::hmc453_class();
        let x = Complex64::from_polar(5.0, 1.234);
        let y = pa.process(x);
        assert!((y.arg() - 1.234).abs() < 1e-12);
    }

    #[test]
    fn constant_envelope_tone_unharmed_multitone_clipped() {
        // The CIB PAPR argument: one tone per PA stays clean; a 10-tone
        // sum through a single PA would clip its peaks.
        let pa = PowerAmp::hmc453_class();
        // Tone at half the saturation drive.
        let drive = pa.p1db_input() * 0.3;
        let tone: Vec<Complex64> = (0..100)
            .map(|k| Complex64::from_polar(drive, k as f64 * 0.3))
            .collect();
        let mut clean = tone.clone();
        pa.process_block(&mut clean);
        let gain_err: f64 = clean
            .iter()
            .zip(&tone)
            .map(|(y, x)| (y.norm() / (x.norm() * pa.gain) - 1.0).abs())
            .fold(0.0, f64::max);
        assert!(gain_err < 0.02, "tone distortion {gain_err}");

        // A 10× peak (the CIB sum, if one PA had to transmit it) compresses
        // by several dB.
        let comp = pa.compression_db(drive * 10.0);
        assert!(comp > 3.0, "only {comp} dB compression at 10× peak");
    }
}
