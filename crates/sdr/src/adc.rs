//! Receiver conversion chain: quantization, clipping, saturation, and the
//! SAW pre-filter.
//!
//! The self-jamming problem of paper §4 appears here concretely: the CIB
//! transmitters' combined signal at the reader's antenna can exceed the
//! ADC full scale by orders of magnitude, crushing the microvolt-level
//! backscatter response. The out-of-band reader survives because its SAW
//! bandpass attenuates the 915 MHz jam by ~50 dB before conversion.

use ivn_dsp::complex::Complex64;

/// An ideal-quantizer ADC with hard clipping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    /// Full-scale input amplitude (clips beyond ±full_scale per rail).
    pub full_scale: f64,
    /// Bits of resolution per rail (I and Q each).
    pub bits: u32,
}

impl Adc {
    /// Creates an ADC.
    ///
    /// # Panics
    /// Panics on zero bits or non-positive full scale.
    pub fn new(full_scale: f64, bits: u32) -> Self {
        assert!(full_scale > 0.0 && bits > 0 && bits <= 24);
        Adc { full_scale, bits }
    }

    /// A USRP N210-class 14-bit converter.
    pub fn n210_class() -> Self {
        Adc::new(1.0, 14)
    }

    /// Quantization step.
    pub fn lsb(&self) -> f64 {
        2.0 * self.full_scale / (1u64 << self.bits) as f64
    }

    /// Converts one sample: clips each rail then rounds to the LSB grid.
    pub fn convert(&self, x: Complex64) -> Complex64 {
        let q = |v: f64| {
            let clipped = v.clamp(-self.full_scale, self.full_scale);
            (clipped / self.lsb()).round() * self.lsb()
        };
        Complex64::new(q(x.re), q(x.im))
    }

    /// Converts a block.
    pub fn convert_block(&self, data: &[Complex64]) -> Vec<Complex64> {
        data.iter().map(|&x| self.convert(x)).collect()
    }

    /// Whether a sample amplitude saturates the converter.
    pub fn saturates(&self, x: Complex64) -> bool {
        x.re.abs() >= self.full_scale || x.im.abs() >= self.full_scale
    }

    /// Fraction of a block that saturates.
    pub fn saturation_fraction(&self, data: &[Complex64]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter().filter(|&&x| self.saturates(x)).count() as f64 / data.len() as f64
    }
}

/// A SAW bandpass pre-filter abstracted by its in-band and out-of-band
/// gains (flat within each region — adequate at the 35 MHz spacing of the
/// paper's reader).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SawFilter {
    /// Passband centre, Hz.
    pub center_hz: f64,
    /// Passband half-width, Hz.
    pub half_bandwidth_hz: f64,
    /// Out-of-band rejection, dB (positive).
    pub rejection_db: f64,
    /// Passband insertion loss, dB (positive).
    pub insertion_loss_db: f64,
}

impl SawFilter {
    /// A high-rejection 880 MHz SAW like the paper's reader uses: ±10 MHz
    /// passband, 50 dB rejection, 2 dB insertion loss.
    pub fn reader_880() -> Self {
        SawFilter {
            center_hz: 880e6,
            half_bandwidth_hz: 10e6,
            rejection_db: 50.0,
            insertion_loss_db: 2.0,
        }
    }

    /// Amplitude gain (linear, ≤ 1) at an absolute frequency.
    pub fn gain_at(&self, freq_hz: f64) -> f64 {
        let db = if (freq_hz - self.center_hz).abs() <= self.half_bandwidth_hz {
            -self.insertion_loss_db
        } else {
            -self.rejection_db
        };
        ivn_dsp::units::db_to_amplitude(db)
    }

    /// Applies the filter to a component at a known frequency.
    pub fn apply(&self, x: Complex64, freq_hz: f64) -> Complex64 {
        x * self.gain_at(freq_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_grid() {
        let adc = Adc::new(1.0, 3); // LSB = 0.25
        assert!((adc.lsb() - 0.25).abs() < 1e-12);
        let y = adc.convert(Complex64::new(0.3, -0.65));
        assert!((y.re - 0.25).abs() < 1e-12);
        assert!((y.im + 0.75).abs() < 1e-12);
    }

    #[test]
    fn clipping() {
        let adc = Adc::new(1.0, 8);
        let y = adc.convert(Complex64::new(5.0, -7.0));
        assert!((y.re - 1.0).abs() < adc.lsb());
        assert!((y.im + 1.0).abs() < adc.lsb());
        assert!(adc.saturates(Complex64::new(5.0, 0.0)));
        assert!(!adc.saturates(Complex64::new(0.5, 0.5)));
    }

    #[test]
    fn quantization_noise_small_at_14_bits() {
        let adc = Adc::n210_class();
        let x = Complex64::new(0.123_456_7, -0.765_432_1);
        let y = adc.convert(x);
        assert!((y - x).norm() < 2.0 * adc.lsb());
        assert!(adc.lsb() < 2e-4);
    }

    #[test]
    fn saturation_fraction_counts() {
        let adc = Adc::new(1.0, 8);
        let block = vec![
            Complex64::new(0.5, 0.0),
            Complex64::new(2.0, 0.0),
            Complex64::new(0.0, -3.0),
            Complex64::new(0.1, 0.1),
        ];
        assert!((adc.saturation_fraction(&block) - 0.5).abs() < 1e-12);
        assert_eq!(adc.saturation_fraction(&[]), 0.0);
    }

    #[test]
    fn saw_passes_inband_rejects_oob() {
        let saw = SawFilter::reader_880();
        // In band: ~0.794 (−2 dB).
        assert!((saw.gain_at(880e6) - 0.794).abs() < 0.01);
        assert!((saw.gain_at(885e6) - 0.794).abs() < 0.01);
        // The 915 MHz jam: −50 dB.
        assert!((saw.gain_at(915e6) - 0.00316).abs() < 1e-4);
    }

    #[test]
    fn saw_rescues_adc_from_jamming() {
        // Jam at 100× the backscatter signal amplitude (40 dB stronger):
        // unfiltered it saturates the ADC; after the SAW the jam is below
        // the signal.
        let adc = Adc::new(1.0, 14);
        let saw = SawFilter::reader_880();
        let jam = Complex64::from_real(10.0); // at 915 MHz
        let signal = Complex64::from_real(0.1); // at 880 MHz
        assert!(adc.saturates(jam + signal));
        let filtered = saw.apply(jam, 915e6) + saw.apply(signal, 880e6);
        assert!(!adc.saturates(filtered));
        // The surviving jam is far below the surviving signal.
        assert!(saw.apply(jam, 915e6).norm() < saw.apply(signal, 880e6).norm());
    }
}
