//! Block-streaming bank emission.
//!
//! [`EmitterLane`] is the streaming core behind [`TxBank::emit`]: one
//! device's oscillator, PA and carrier-phase state, advanced block by
//! block. The whole-buffer `emit` is now a thin wrapper — push the full
//! profile, flush — so the two paths are bit-identical by construction.
//!
//! The only stateful subtlety is the trigger offset: device `i` reads
//! the shared command profile at `k − shiftᵢ`, so a lane keeps a small
//! sliding window of profile history (for positive shifts, i.e. delayed
//! devices) and holds back up to `latency` output samples (for negative
//! shifts, which need *future* profile samples). Both bounds are set by
//! the clock distribution's trigger jitter — nanoseconds for an
//! Octoclock, ≪ one block even free-running — so lane memory stays
//! O(block + |shift|), independent of the stream length.
//!
//! [`BankStreamer`] runs one lane per device with a common latency, so
//! every `push` yields the same number of aligned output samples on all
//! lanes — exactly what the per-block superposition in `ivn-em` needs.
//! Lane advancement is embarrassingly parallel (disjoint state): slots
//! are *moved* through the persistent `ivn_runtime::pool::WorkerPool`
//! and reassembled in device order, so the output is bit-identical at
//! any worker count.
//!
//! ## The trig-free hot loop
//!
//! The emission inner loop used to be the slowest stage of the whole
//! sample path (~1.5 MS/s vs em's 130 MS/s): per output sample it paid
//! a `sin_cos` in the oscillator and an `atan2` + `sin_cos` + two
//! `powf` in the PA's polar round-trip. The lane now rides a
//! [`PhasorRotor`] — the carrier phase and the soft offset fold into
//! one lane-batched rotator with periodic exact resync — and the PA
//! collapses to a memoized real gain: command profiles are long runs
//! of constant amplitude (1.0 with 0.0 notches), so `am_am` is
//! recomputed only when the profile level actually changes. No libm
//! call survives on the per-sample path.
//!
//! The rotator output differs from the old scalar path only by the
//! recurrence's bounded rounding (≤ 1e-12 per resync window);
//! [`emit_oracle`] preserves the original trig formulation so tests can
//! pin that distance (`tests/streaming_equivalence.rs`).

use crate::bank::TxBank;
use crate::pa::PowerAmp;
use ivn_dsp::block::BlockStage;
use ivn_dsp::complex::Complex64;
use ivn_dsp::osc::Oscillator;
use ivn_dsp::rotor::PhasorRotor;
use ivn_runtime::pool::WorkerPool;
use std::sync::Arc;

/// Per-lane scratch block length: bounds rotor scratch at O(block) even
/// when a whole-buffer `emit` asks for one huge block.
const SCRATCH_BLOCK: usize = 4096;

/// One device's streaming emitter: carries rotator phase, trigger
/// shift and profile history across block boundaries.
#[derive(Debug, Clone)]
pub struct EmitterLane {
    /// Unit phasor source `e^{j(θ_pll + kΔ)}`: PLL phase and soft
    /// offset in one trig-free rotator.
    rotor: PhasorRotor,
    pa: PowerAmp,
    drive: f64,
    /// Trigger offset as a whole-sample profile shift (positive = the
    /// device fires late and reads older profile samples).
    shift: i64,
    /// Output samples held back until enough profile has arrived
    /// (covers lanes with negative shift in this bank).
    latency: usize,
    /// Profile history retained behind the emission point (covers
    /// positive shifts).
    lookback: usize,
    hist: Vec<f64>,
    hist_start: usize,
    pushed: usize,
    next: usize,
    /// Reusable rotor output scratch.
    phasors: Vec<Complex64>,
    /// Last profile amplitude seen / the PA gain computed for it.
    memo_amp: f64,
    memo_gain: f64,
}

impl EmitterLane {
    /// A streaming emitter for device `i` of `bank` at PA drive `drive`.
    pub fn new(bank: &TxBank, i: usize, drive: f64) -> Self {
        let dev = bank.device(i);
        let shift = (dev.trigger_offset_s * bank.sample_rate()).round() as i64;
        EmitterLane {
            rotor: PhasorRotor::new(
                bank.offsets_hz()[i],
                bank.sample_rate(),
                dev.pll.initial_phase(),
            ),
            pa: dev.pa,
            drive,
            shift,
            latency: (-shift).max(0) as usize,
            lookback: shift.max(0) as usize,
            hist: Vec::new(),
            hist_start: 0,
            pushed: 0,
            next: 0,
            phasors: Vec::new(),
            memo_amp: f64::NAN,
            memo_gain: 0.0,
        }
    }

    /// Forces a common output latency across a bank's lanes (must be at
    /// least this lane's own requirement).
    fn set_latency(&mut self, latency: usize) {
        assert!(latency >= self.latency, "latency below lane requirement");
        self.latency = latency;
    }

    /// The profile shift in samples.
    pub fn shift(&self) -> i64 {
        self.shift
    }

    /// Samples of profile history currently buffered (footprint probe).
    pub fn history_len(&self) -> usize {
        self.hist.len()
    }

    /// Emits output samples `next .. next+count`, reading profile
    /// amplitudes from the history window. `total` is the final profile
    /// length once known (`flush`); indices outside `[0, total)` read
    /// as 1.0 — outside the command the carrier stays on.
    ///
    /// Hot path: the rotor fills a phasor scratch block (one complex
    /// multiply per sample, auto-vectorized rows), and the PA reduces
    /// to a real gain memoized on the profile level, so a run of equal
    /// amplitudes costs one multiply per sample and zero libm calls.
    fn emit_samples(&mut self, count: usize, total: Option<usize>, out: &mut Vec<Complex64>) {
        if count == 0 {
            return;
        }
        let _span = ivn_runtime::span!("sdr.emit_ns");
        ivn_runtime::obs_count!("sdr.emissions", 1);
        out.reserve(count);
        let end = self.next + count;
        while self.next < end {
            let take = SCRATCH_BLOCK.min(end - self.next);
            self.phasors.clear();
            self.phasors.resize(take, Complex64::ZERO);
            self.rotor.fill(&mut self.phasors);
            for j in 0..take {
                let k = self.next + j;
                let idx = k as i64 - self.shift;
                let amp = if idx < 0 || total.is_some_and(|n| idx as usize >= n) {
                    // Outside the command: carrier stays on at full level.
                    1.0
                } else {
                    let idx = idx as usize;
                    debug_assert!(
                        idx >= self.hist_start && idx < self.hist_start + self.hist.len(),
                        "profile index {idx} outside history window"
                    );
                    self.hist[idx - self.hist_start]
                };
                if amp.to_bits() != self.memo_amp.to_bits() {
                    self.memo_amp = amp;
                    let a = amp * self.drive;
                    let g = self.pa.am_am(a.abs());
                    self.memo_gain = if a.is_sign_negative() { -g } else { g };
                }
                out.push(self.phasors[j] * self.memo_gain);
            }
            self.next += take;
        }
    }

    /// Drops history the emission point has moved past.
    fn compact(&mut self) {
        let keep_from = self.next.saturating_sub(self.lookback);
        if keep_from > self.hist_start {
            self.hist.drain(..keep_from - self.hist_start);
            self.hist_start = keep_from;
        }
    }
}

impl BlockStage for EmitterLane {
    type In = f64;
    type Out = Complex64;

    fn push(&mut self, input: &[f64], out: &mut Vec<Complex64>) {
        self.hist.extend_from_slice(input);
        self.pushed += input.len();
        let ready = self.pushed.saturating_sub(self.latency);
        let count = ready.saturating_sub(self.next);
        self.emit_samples(count, None, out);
        self.compact();
    }

    fn flush(&mut self, out: &mut Vec<Complex64>) {
        let total = self.pushed;
        let count = total - self.next;
        self.emit_samples(count, Some(total), out);
        self.compact();
    }
}

/// The pre-rotor scalar emission path, kept as the trig oracle: one
/// `sin_cos` per oscillator sample and the PA's polar round-trip
/// (`atan2` + `sin_cos`), exactly as `TxBank::emit` computed before the
/// lane went trig-free.
///
/// This is deliberately *not* the production path — it exists so the
/// equivalence suite can bound the rotator path's distance from the
/// textbook formulation (≤ 1e-9 of the emitted amplitude per sample;
/// see `tests/streaming_equivalence.rs`) and so new goldens were pinned
/// against something slower but independently derived.
pub fn emit_oracle(bank: &TxBank, i: usize, profile: &[f64], drive: f64) -> Vec<Complex64> {
    let dev = bank.device(i);
    let shift = (dev.trigger_offset_s * bank.sample_rate()).round() as i64;
    let mut osc = Oscillator::new(bank.offsets_hz()[i], bank.sample_rate());
    let carrier = Complex64::cis(dev.pll.initial_phase());
    let total = profile.len() as i64;
    (0..profile.len())
        .map(|k| {
            let idx = k as i64 - shift;
            let amp = if (0..total).contains(&idx) {
                profile[idx as usize]
            } else {
                1.0
            };
            let x = osc.next_sample() * amp * drive;
            let (r, theta) = x.to_polar();
            Complex64::from_polar(dev.pa.am_am(r), theta) * carrier
        })
        .collect()
}

/// One lane plus its reusable output scratch block.
#[derive(Debug, Clone)]
struct LaneSlot {
    lane: EmitterLane,
    buf: Vec<Complex64>,
}

/// The whole bank as an aligned multi-lane streaming emitter: every
/// [`BankStreamer::push`] advances all devices by the same number of
/// output samples, leaving one block per device in reusable scratch.
#[derive(Debug, Clone)]
pub struct BankStreamer {
    slots: Vec<LaneSlot>,
    threads: usize,
}

impl BankStreamer {
    /// Builds a streamer over `bank` at PA drive `drive`, advancing
    /// lanes on `threads` workers (1 = inline).
    pub fn new(bank: &TxBank, drive: f64, threads: usize) -> Self {
        let lanes: Vec<EmitterLane> = (0..bank.len())
            .map(|i| EmitterLane::new(bank, i, drive))
            .collect();
        // A common latency keeps every lane's output aligned.
        let latency = lanes.iter().map(|l| l.latency).max().unwrap_or(0);
        let slots = lanes
            .into_iter()
            .map(|mut lane| {
                lane.set_latency(latency);
                LaneSlot {
                    lane,
                    buf: Vec::new(),
                }
            })
            .collect();
        BankStreamer { slots, threads }
    }

    /// Number of lanes (devices).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the streamer has no lanes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Pushes one shared profile block; every lane appends the same
    /// number of output samples to its scratch block (cleared first).
    /// Returns that per-lane count.
    pub fn push(&mut self, profile: &[f64]) -> usize {
        self.advance(Some(profile))
    }

    /// Ends the stream, draining held-back samples into the per-lane
    /// blocks. Returns the per-lane count.
    pub fn flush(&mut self) -> usize {
        self.advance(None)
    }

    /// Advances every lane by one block (`Some(profile)`) or drains it
    /// (`None`). With more than one thread, slots are moved through the
    /// persistent [`WorkerPool`] — the no-`unsafe` rule forbids lending
    /// `&mut` state to pool threads, so ownership makes the round trip
    /// instead — and come back in device order, keeping output
    /// bit-identical at any worker count.
    fn advance(&mut self, profile: Option<&[f64]>) -> usize {
        if self.threads <= 1 || self.slots.len() <= 1 {
            for slot in &mut self.slots {
                slot.buf.clear();
                match profile {
                    Some(p) => slot.lane.push(p, &mut slot.buf),
                    None => slot.lane.flush(&mut slot.buf),
                }
            }
        } else {
            let shared: Option<Arc<[f64]>> = profile.map(Arc::from);
            let slots = std::mem::take(&mut self.slots);
            self.slots = WorkerPool::global().map_move(slots, self.threads, move |_, mut slot| {
                slot.buf.clear();
                match &shared {
                    Some(p) => slot.lane.push(p, &mut slot.buf),
                    None => slot.lane.flush(&mut slot.buf),
                }
                slot
            });
        }
        self.slots.first().map_or(0, |s| s.buf.len())
    }

    /// Device `i`'s current output block.
    pub fn block(&self, i: usize) -> &[Complex64] {
        &self.slots[i].buf
    }

    /// All current output blocks, in device order.
    pub fn blocks(&self) -> impl ExactSizeIterator<Item = &[Complex64]> {
        self.slots.iter().map(|s| s.buf.as_slice())
    }

    /// Largest per-lane buffer currently held (scratch block, rotor
    /// phasor scratch, or profile history), in samples — the footprint
    /// probe for the sdr stage.
    pub fn peak_lane_footprint(&self) -> usize {
        self.slots
            .iter()
            .map(|s| {
                s.buf
                    .len()
                    .max(s.lane.history_len())
                    .max(s.lane.phasors.len())
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDistribution;
    use ivn_runtime::rng::StdRng;

    const OFFSETS: [f64; 4] = [0.0, 7.0, 20.0, 49.0];

    fn bank(clock: &ClockDistribution, seed: u64) -> TxBank {
        let mut rng = StdRng::seed_from_u64(seed);
        TxBank::new(&mut rng, 4, 915e6, 100e3, &OFFSETS, clock)
    }

    fn notched_profile(n: usize) -> Vec<f64> {
        let mut p = vec![1.0; n];
        for v in p[n / 3..n / 3 + n / 10].iter_mut() {
            *v = 0.0;
        }
        p
    }

    #[test]
    fn streaming_matches_batch_emit_any_block_size() {
        // Free-running clock → trigger shifts of many whole samples, so
        // both the history window and the latency path are exercised.
        let b = bank(&ClockDistribution::free_running(), 9);
        let profile = notched_profile(1000);
        for block in [1usize, 7, 64, 1000] {
            for i in 0..b.len() {
                let batch = b.emit(i, &profile, 0.05);
                let mut lane = EmitterLane::new(&b, i, 0.05);
                let mut out = Vec::new();
                for chunk in profile.chunks(block) {
                    lane.push(chunk, &mut out);
                }
                lane.flush(&mut out);
                assert_eq!(out.len(), profile.len(), "device {i} block {block}");
                for (k, (s, t)) in out.iter().zip(batch.samples()).enumerate() {
                    assert!(
                        s.re.to_bits() == t.re.to_bits() && s.im.to_bits() == t.im.to_bits(),
                        "device {i} block {block} sample {k}: {s:?} vs {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bank_streamer_aligned_and_identical_across_threads() {
        let b = bank(&ClockDistribution::octoclock(), 3);
        let profile = notched_profile(512);
        let reference: Vec<_> = (0..b.len()).map(|i| b.emit(i, &profile, 0.05)).collect();
        for threads in [1usize, 2, 8] {
            let mut st = BankStreamer::new(&b, 0.05, threads);
            let mut collected: Vec<Vec<Complex64>> = vec![Vec::new(); b.len()];
            for chunk in profile.chunks(100) {
                st.push(chunk);
                for (i, c) in collected.iter_mut().enumerate() {
                    c.extend_from_slice(st.block(i));
                }
            }
            st.flush();
            for (i, c) in collected.iter_mut().enumerate() {
                c.extend_from_slice(st.block(i));
            }
            for (i, (got, want)) in collected.iter().zip(&reference).enumerate() {
                assert_eq!(got, want.samples(), "device {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn lane_history_stays_bounded() {
        let b = bank(&ClockDistribution::free_running(), 9);
        let mut lane = EmitterLane::new(&b, 0, 0.05);
        let mut out = Vec::new();
        let block = vec![1.0; 256];
        let mut peak_hist = 0usize;
        for _ in 0..100 {
            out.clear();
            lane.push(&block, &mut out);
            peak_hist = peak_hist.max(lane.history_len());
        }
        // Bounded by block + |shift| slack, not by the 25 600 samples pushed.
        let slack = lane.shift().unsigned_abs() as usize + lane.latency;
        assert!(
            peak_hist <= 256 + slack + 1,
            "history {peak_hist} exceeds block+slack"
        );
    }
}
