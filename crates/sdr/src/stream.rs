//! Block-streaming bank emission.
//!
//! [`EmitterLane`] is the streaming core behind [`TxBank::emit`]: one
//! device's oscillator, PA and carrier-phase state, advanced block by
//! block. The whole-buffer `emit` is now a thin wrapper — push the full
//! profile, flush — so the two paths are bit-identical by construction.
//!
//! The only stateful subtlety is the trigger offset: device `i` reads
//! the shared command profile at `k − shiftᵢ`, so a lane keeps a small
//! sliding window of profile history (for positive shifts, i.e. delayed
//! devices) and holds back up to `latency` output samples (for negative
//! shifts, which need *future* profile samples). Both bounds are set by
//! the clock distribution's trigger jitter — nanoseconds for an
//! Octoclock, ≪ one block even free-running — so lane memory stays
//! O(block + |shift|), independent of the stream length.
//!
//! [`BankStreamer`] runs one lane per device with a common latency, so
//! every `push` yields the same number of aligned output samples on all
//! lanes — exactly what the per-block superposition in `ivn-em` needs.
//! Lane advancement is embarrassingly parallel (disjoint state) and
//! runs on `ivn_runtime::par::par_for_each_mut_threads`; the output is
//! bit-identical at any worker count.

use crate::bank::TxBank;
use crate::pa::PowerAmp;
use ivn_dsp::block::BlockStage;
use ivn_dsp::complex::Complex64;
use ivn_dsp::osc::Oscillator;
use ivn_runtime::par;

/// One device's streaming emitter: carries oscillator phase, trigger
/// shift and profile history across block boundaries.
#[derive(Debug, Clone)]
pub struct EmitterLane {
    osc: Oscillator,
    carrier: Complex64,
    pa: PowerAmp,
    drive: f64,
    /// Trigger offset as a whole-sample profile shift (positive = the
    /// device fires late and reads older profile samples).
    shift: i64,
    /// Output samples held back until enough profile has arrived
    /// (covers lanes with negative shift in this bank).
    latency: usize,
    /// Profile history retained behind the emission point (covers
    /// positive shifts).
    lookback: usize,
    hist: Vec<f64>,
    hist_start: usize,
    pushed: usize,
    next: usize,
}

impl EmitterLane {
    /// A streaming emitter for device `i` of `bank` at PA drive `drive`.
    pub fn new(bank: &TxBank, i: usize, drive: f64) -> Self {
        let dev = bank.device(i);
        let shift = (dev.trigger_offset_s * bank.sample_rate()).round() as i64;
        EmitterLane {
            osc: Oscillator::new(bank.offsets_hz()[i], bank.sample_rate()),
            carrier: Complex64::cis(dev.pll.initial_phase()),
            pa: dev.pa,
            drive,
            shift,
            latency: (-shift).max(0) as usize,
            lookback: shift.max(0) as usize,
            hist: Vec::new(),
            hist_start: 0,
            pushed: 0,
            next: 0,
        }
    }

    /// Forces a common output latency across a bank's lanes (must be at
    /// least this lane's own requirement).
    fn set_latency(&mut self, latency: usize) {
        assert!(latency >= self.latency, "latency below lane requirement");
        self.latency = latency;
    }

    /// The profile shift in samples.
    pub fn shift(&self) -> i64 {
        self.shift
    }

    /// Samples of profile history currently buffered (footprint probe).
    pub fn history_len(&self) -> usize {
        self.hist.len()
    }

    /// Emits output samples `next .. next+count`, reading profile
    /// amplitudes from the history window. `total` is the final profile
    /// length once known (`flush`); indices outside `[0, total)` read
    /// as 1.0 — outside the command the carrier stays on.
    fn emit_samples(&mut self, count: usize, total: Option<usize>, out: &mut Vec<Complex64>) {
        if count == 0 {
            return;
        }
        let _span = ivn_runtime::span!("sdr.emit_ns");
        ivn_runtime::obs_count!("sdr.emissions", 1);
        out.reserve(count);
        for k in self.next..self.next + count {
            let idx = k as i64 - self.shift;
            let amp = if idx < 0 || total.is_some_and(|n| idx as usize >= n) {
                // Outside the command: carrier stays on at full level.
                1.0
            } else {
                let idx = idx as usize;
                debug_assert!(
                    idx >= self.hist_start && idx < self.hist_start + self.hist.len(),
                    "profile index {idx} outside history window"
                );
                self.hist[idx - self.hist_start]
            };
            let s = self.osc.next_sample() * amp;
            out.push(self.pa.process(s * self.drive) * self.carrier);
        }
        self.next += count;
    }

    /// Drops history the emission point has moved past.
    fn compact(&mut self) {
        let keep_from = self.next.saturating_sub(self.lookback);
        if keep_from > self.hist_start {
            self.hist.drain(..keep_from - self.hist_start);
            self.hist_start = keep_from;
        }
    }
}

impl BlockStage for EmitterLane {
    type In = f64;
    type Out = Complex64;

    fn push(&mut self, input: &[f64], out: &mut Vec<Complex64>) {
        self.hist.extend_from_slice(input);
        self.pushed += input.len();
        let ready = self.pushed.saturating_sub(self.latency);
        let count = ready.saturating_sub(self.next);
        self.emit_samples(count, None, out);
        self.compact();
    }

    fn flush(&mut self, out: &mut Vec<Complex64>) {
        let total = self.pushed;
        let count = total - self.next;
        self.emit_samples(count, Some(total), out);
        self.compact();
    }
}

/// One lane plus its reusable output scratch block.
#[derive(Debug, Clone)]
struct LaneSlot {
    lane: EmitterLane,
    buf: Vec<Complex64>,
}

/// The whole bank as an aligned multi-lane streaming emitter: every
/// [`BankStreamer::push`] advances all devices by the same number of
/// output samples, leaving one block per device in reusable scratch.
#[derive(Debug, Clone)]
pub struct BankStreamer {
    slots: Vec<LaneSlot>,
    threads: usize,
}

impl BankStreamer {
    /// Builds a streamer over `bank` at PA drive `drive`, advancing
    /// lanes on `threads` workers (1 = inline).
    pub fn new(bank: &TxBank, drive: f64, threads: usize) -> Self {
        let lanes: Vec<EmitterLane> = (0..bank.len())
            .map(|i| EmitterLane::new(bank, i, drive))
            .collect();
        // A common latency keeps every lane's output aligned.
        let latency = lanes.iter().map(|l| l.latency).max().unwrap_or(0);
        let slots = lanes
            .into_iter()
            .map(|mut lane| {
                lane.set_latency(latency);
                LaneSlot {
                    lane,
                    buf: Vec::new(),
                }
            })
            .collect();
        BankStreamer { slots, threads }
    }

    /// Number of lanes (devices).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the streamer has no lanes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Pushes one shared profile block; every lane appends the same
    /// number of output samples to its scratch block (cleared first).
    /// Returns that per-lane count.
    pub fn push(&mut self, profile: &[f64]) -> usize {
        par::par_for_each_mut_threads(self.threads, &mut self.slots, |_, slot| {
            slot.buf.clear();
            slot.lane.push(profile, &mut slot.buf);
        });
        self.slots.first().map_or(0, |s| s.buf.len())
    }

    /// Ends the stream, draining held-back samples into the per-lane
    /// blocks. Returns the per-lane count.
    pub fn flush(&mut self) -> usize {
        par::par_for_each_mut_threads(self.threads, &mut self.slots, |_, slot| {
            slot.buf.clear();
            slot.lane.flush(&mut slot.buf);
        });
        self.slots.first().map_or(0, |s| s.buf.len())
    }

    /// Device `i`'s current output block.
    pub fn block(&self, i: usize) -> &[Complex64] {
        &self.slots[i].buf
    }

    /// All current output blocks, in device order.
    pub fn blocks(&self) -> impl ExactSizeIterator<Item = &[Complex64]> {
        self.slots.iter().map(|s| s.buf.as_slice())
    }

    /// Largest per-lane buffer currently held (scratch block + profile
    /// history), in samples — the footprint probe for the sdr stage.
    pub fn peak_lane_footprint(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.buf.len().max(s.lane.history_len()))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDistribution;
    use ivn_runtime::rng::StdRng;

    const OFFSETS: [f64; 4] = [0.0, 7.0, 20.0, 49.0];

    fn bank(clock: &ClockDistribution, seed: u64) -> TxBank {
        let mut rng = StdRng::seed_from_u64(seed);
        TxBank::new(&mut rng, 4, 915e6, 100e3, &OFFSETS, clock)
    }

    fn notched_profile(n: usize) -> Vec<f64> {
        let mut p = vec![1.0; n];
        for v in p[n / 3..n / 3 + n / 10].iter_mut() {
            *v = 0.0;
        }
        p
    }

    #[test]
    fn streaming_matches_batch_emit_any_block_size() {
        // Free-running clock → trigger shifts of many whole samples, so
        // both the history window and the latency path are exercised.
        let b = bank(&ClockDistribution::free_running(), 9);
        let profile = notched_profile(1000);
        for block in [1usize, 7, 64, 1000] {
            for i in 0..b.len() {
                let batch = b.emit(i, &profile, 0.05);
                let mut lane = EmitterLane::new(&b, i, 0.05);
                let mut out = Vec::new();
                for chunk in profile.chunks(block) {
                    lane.push(chunk, &mut out);
                }
                lane.flush(&mut out);
                assert_eq!(out.len(), profile.len(), "device {i} block {block}");
                for (k, (s, t)) in out.iter().zip(batch.samples()).enumerate() {
                    assert!(
                        s.re.to_bits() == t.re.to_bits() && s.im.to_bits() == t.im.to_bits(),
                        "device {i} block {block} sample {k}: {s:?} vs {t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bank_streamer_aligned_and_identical_across_threads() {
        let b = bank(&ClockDistribution::octoclock(), 3);
        let profile = notched_profile(512);
        let reference: Vec<_> = (0..b.len()).map(|i| b.emit(i, &profile, 0.05)).collect();
        for threads in [1usize, 2, 8] {
            let mut st = BankStreamer::new(&b, 0.05, threads);
            let mut collected: Vec<Vec<Complex64>> = vec![Vec::new(); b.len()];
            for chunk in profile.chunks(100) {
                st.push(chunk);
                for (i, c) in collected.iter_mut().enumerate() {
                    c.extend_from_slice(st.block(i));
                }
            }
            st.flush();
            for (i, c) in collected.iter_mut().enumerate() {
                c.extend_from_slice(st.block(i));
            }
            for (i, (got, want)) in collected.iter().zip(&reference).enumerate() {
                assert_eq!(got, want.samples(), "device {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn lane_history_stays_bounded() {
        let b = bank(&ClockDistribution::free_running(), 9);
        let mut lane = EmitterLane::new(&b, 0, 0.05);
        let mut out = Vec::new();
        let block = vec![1.0; 256];
        let mut peak_hist = 0usize;
        for _ in 0..100 {
            out.clear();
            lane.push(&block, &mut out);
            peak_hist = peak_hist.max(lane.history_len());
        }
        // Bounded by block + |shift| slack, not by the 25 600 samples pushed.
        let slack = lane.shift().unsigned_abs() as usize + lane.latency;
        assert!(
            peak_hist <= 256 + slack + 1,
            "history {peak_hist} exceeds block+slack"
        );
    }
}
