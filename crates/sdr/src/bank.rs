//! The synchronized multi-transmitter bank.
//!
//! Models the paper's rack of N USRPs: one shared clock, one common
//! command stream, and a per-device *soft* frequency offset Δfᵢ mixed into
//! the baseband samples (because the PLL step is too coarse, §5a). The
//! bank produces each device's equivalent-baseband emission; the channel
//! compositor in `ivn-core` superposes them at the sensor.

use crate::clock::ClockDistribution;
use crate::device::SdrDevice;
use crate::stream::{BankStreamer, EmitterLane};
use ivn_dsp::block::{accumulate_scaled, BlockStage};
use ivn_dsp::buffer::IqBuffer;
use ivn_dsp::complex::Complex64;
use ivn_runtime::rng::Rng;

/// A bank of synchronized transmitters.
#[derive(Debug, Clone)]
pub struct TxBank {
    devices: Vec<SdrDevice>,
    soft_offsets_hz: Vec<f64>,
    carrier_hz: f64,
    sample_rate: f64,
}

impl TxBank {
    /// Builds a bank of `n` devices on a shared `clock`, tunes every
    /// device to `carrier_hz`, and assigns the soft offsets.
    ///
    /// # Panics
    /// Panics if `offsets.len() != n` or `n == 0`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        n: usize,
        carrier_hz: f64,
        sample_rate: f64,
        offsets_hz: &[f64],
        clock: &ClockDistribution,
    ) -> Self {
        assert!(n > 0, "need at least one device");
        assert_eq!(offsets_hz.len(), n, "one offset per device required");
        let _span = ivn_runtime::span!("sdr.bank_synthesis_ns");
        ivn_runtime::obs_count!("sdr.devices_tuned", n);
        let trigger_offsets = clock.draw_trigger_offsets(rng, n);
        let devices = (0..n)
            .map(|i| {
                let mut d = SdrDevice::n210(sample_rate);
                d.trigger_offset_s = trigger_offsets[i];
                d.tune(rng, carrier_hz);
                d
            })
            .collect();
        TxBank {
            devices,
            soft_offsets_hz: offsets_hz.to_vec(),
            carrier_hz,
            sample_rate,
        }
    }

    /// Number of transmitters.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the bank is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Band-centre carrier frequency, Hz.
    pub fn carrier_hz(&self) -> f64 {
        self.carrier_hz
    }

    /// Sample rate shared by every device, S/s.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The soft offsets, Hz.
    pub fn offsets_hz(&self) -> &[f64] {
        &self.soft_offsets_hz
    }

    /// Absolute emission frequency of device `i`, Hz.
    pub fn emission_hz(&self, i: usize) -> f64 {
        self.devices[i].pll.frequency() + self.soft_offsets_hz[i]
    }

    /// Device access (e.g. for per-device fault injection).
    pub fn device(&self, i: usize) -> &SdrDevice {
        &self.devices[i]
    }

    /// Mutable device access.
    pub fn device_mut(&mut self, i: usize) -> &mut SdrDevice {
        &mut self.devices[i]
    }

    /// The hidden carrier phases θᵢ (test/oracle use only).
    pub fn hidden_phases(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        self.hidden_phases_into(&mut out);
        out
    }

    /// Writes the hidden carrier phases θᵢ into `out` without
    /// allocating — the hot-path variant used by the block driver.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn hidden_phases_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "one slot per device required");
        for (slot, d) in out.iter_mut().zip(&self.devices) {
            *slot = d.pll.initial_phase();
        }
    }

    /// Generates device `i`'s emitted baseband for a shared amplitude
    /// profile (the synchronized PIE command): the profile is delayed by
    /// the device's trigger offset, mixed with the soft offset tone,
    /// driven through the PA at `drive`, and stamped with the carrier
    /// phase.
    ///
    /// `profile` holds one amplitude per sample (1.0 = full carrier); the
    /// emission lasts `profile.len()` samples.
    ///
    /// This is a thin wrapper over the streaming core
    /// ([`EmitterLane`]): the whole profile is pushed as one block and
    /// the lane flushed, so batch and streaming output are identical by
    /// construction.
    pub fn emit(&self, i: usize, profile: &[f64], drive: f64) -> IqBuffer {
        let mut lane = EmitterLane::new(self, i, drive);
        let mut out = Vec::new();
        lane.push(profile, &mut out);
        lane.flush(&mut out);
        IqBuffer::new(out, self.sample_rate)
    }

    /// A block-streaming emitter over the whole bank at PA drive
    /// `drive`, advancing lanes on `threads` workers (1 = inline).
    pub fn streamer(&self, drive: f64, threads: usize) -> BankStreamer {
        BankStreamer::new(self, drive, threads)
    }

    /// Emits the whole bank for a shared profile: one buffer per device.
    pub fn emit_all(&self, profile: &[f64], drive: f64) -> Vec<IqBuffer> {
        (0..self.len())
            .map(|i| self.emit(i, profile, drive))
            .collect()
    }

    /// Superposes the bank's emissions at a receive point with per-device
    /// flat channel gains (narrowband assumption: each device's channel is
    /// evaluated at its own emission frequency by the caller).
    pub fn superpose(emissions: &[IqBuffer], gains: &[Complex64]) -> IqBuffer {
        assert_eq!(emissions.len(), gains.len(), "one gain per emission");
        assert!(!emissions.is_empty(), "nothing to superpose");
        let mut acc = IqBuffer::zeros(emissions[0].len(), emissions[0].sample_rate());
        for (e, &g) in emissions.iter().zip(gains) {
            accumulate_scaled(acc.samples_mut(), e.samples(), g);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_dsp::envelope;
    use ivn_runtime::rng::StdRng;

    const PAPER_OFFSETS: [f64; 10] = [0., 7., 20., 49., 68., 73., 90., 113., 121., 137.];

    fn bank(n: usize, seed: u64) -> TxBank {
        let mut rng = StdRng::seed_from_u64(seed);
        TxBank::new(
            &mut rng,
            n,
            915e6,
            100e3,
            &PAPER_OFFSETS[..n],
            &ClockDistribution::octoclock(),
        )
    }

    #[test]
    fn construction_and_metadata() {
        let b = bank(10, 1);
        assert_eq!(b.len(), 10);
        assert_eq!(b.carrier_hz(), 915e6);
        assert_eq!(b.emission_hz(3), 915e6 + 49.0);
        assert_eq!(b.hidden_phases().len(), 10);
    }

    #[test]
    fn emissions_are_distinct_tones() {
        let b = bank(3, 2);
        let profile = vec![1.0; 1000];
        let e = b.emit_all(&profile, 0.05);
        // Device 1 runs 7 Hz above device 0: their phase difference drifts.
        let d01: Vec<f64> = e[0]
            .samples()
            .iter()
            .zip(e[1].samples())
            .map(|(a, b)| (*b * a.conj()).arg())
            .collect();
        // Phase drift across the second: ≈ 2π·7·t.
        let drift = (d01[999] - d01[0]).rem_euclid(std::f64::consts::TAU);
        let expected = (std::f64::consts::TAU * 7.0 * 999.0 / 100e3) % std::f64::consts::TAU;
        assert!(
            (drift - expected).abs() < 1e-6,
            "drift {drift} vs {expected}"
        );
    }

    #[test]
    fn superposition_peaks_above_single() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = bank(5, 3);
        let profile = vec![1.0; 100_000]; // one full second at 100 kS/s
        let e = b.emit_all(&profile, 0.05);
        let gains: Vec<Complex64> = (0..5)
            .map(|_| Complex64::from_polar(1.0, rng.random::<f64>() * std::f64::consts::TAU))
            .collect();
        let rx = TxBank::superpose(&e, &gains);
        let env = rx.envelope();
        let single_amp = e[0].samples()[0].norm();
        let (_, peak) = envelope::peak(&env).unwrap();
        // Over a full period of integer offsets the 5 tones align nearly
        // perfectly somewhere: peak ≈ 5× single amplitude.
        assert!(
            peak > 4.2 * single_amp,
            "peak {} single {}",
            peak,
            single_amp
        );
    }

    #[test]
    fn command_profile_is_synchronized() {
        let b = bank(4, 4);
        let mut profile = vec![1.0; 400];
        for v in profile[100..120].iter_mut() {
            *v = 0.0; // one notch
        }
        let e = b.emit_all(&profile, 0.05);
        for buf in &e {
            // Every device's envelope shows the notch at the same samples
            // (trigger jitter ≪ sample period).
            assert!(buf.samples()[110].norm() < 1e-9);
            assert!(buf.samples()[90].norm() > 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = bank(6, 42);
        let b = bank(6, 42);
        assert_eq!(a.hidden_phases(), b.hidden_phases());
    }

    #[test]
    #[should_panic(expected = "one offset per device")]
    fn offset_count_checked() {
        let mut rng = StdRng::seed_from_u64(5);
        TxBank::new(
            &mut rng,
            3,
            915e6,
            1e6,
            &[0.0, 7.0],
            &ClockDistribution::octoclock(),
        );
    }
}
