//! # ivn-sdr — software-radio testbed simulator
//!
//! Models the hardware of the paper's prototype (§5): a rack of USRP
//! N210-class devices, each with an SBX-class front end and an HMC453
//! power amplifier, all disciplined by a CDA-2900 Octoclock (shared 10 MHz
//! reference + PPS).
//!
//! The modelled imperfections are exactly the ones the paper's design
//! reasons about:
//!
//! * [`pll`] — each retune leaves a **random initial carrier phase** θᵢ
//!   (paper Eq. 5), and the synthesizer step size is too coarse for
//!   hertz-level offsets, forcing CIB to soft-code its Δf in baseband
//!   (paper §5a);
//! * [`clock`] — a shared reference removes frequency *drift* between
//!   devices but not phase offsets; PPS aligns sample timing to a small
//!   residual jitter;
//! * [`pa`] — Rapp-model soft compression around the 30 dBm P1dB point;
//! * [`adc`] — quantization, clipping and receiver saturation (the
//!   self-jamming failure §4 designs around), plus the SAW bandpass model;
//! * [`device`] / [`bank`] — a complete TX/RX device and the synchronized
//!   N-transmitter bank that the CIB beamformer drives.

pub mod adc;
pub mod bank;
pub mod clock;
pub mod device;
pub mod frontend;
pub mod pa;
pub mod pll;
pub mod stream;

pub use bank::TxBank;
pub use device::SdrDevice;
pub use stream::{BankStreamer, EmitterLane};
