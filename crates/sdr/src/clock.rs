//! Shared clock distribution (Octoclock model).
//!
//! The paper's prototype disciplines all USRPs with a CDA-2900 Octoclock:
//! a common 10 MHz reference (eliminating inter-device frequency drift)
//! and a PPS pulse (aligning sample counters to within a small residual
//! jitter). CIB's *coherent commands* requirement — all antennas keying
//! the same PIE notches at the same instants — rides on this alignment;
//! the jitter model lets fault-injection tests quantify how much timing
//! slop the downlink tolerates.

use ivn_runtime::rng::Rng;

/// A clock-distribution unit feeding multiple devices.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockDistribution {
    /// RMS of residual per-device trigger misalignment, seconds.
    pub pps_jitter_rms_s: f64,
    /// Per-device fractional frequency offset RMS after reference lock
    /// (0 for an ideal shared reference).
    pub residual_ppm_rms: f64,
}

impl ClockDistribution {
    /// An Octoclock-class distribution: ~5 ns PPS alignment, negligible
    /// residual frequency error.
    pub fn octoclock() -> Self {
        ClockDistribution {
            pps_jitter_rms_s: 5e-9,
            residual_ppm_rms: 0.0,
        }
    }

    /// Unsynchronized devices: ~1 ms trigger slop, 2 ppm oscillators.
    pub fn free_running() -> Self {
        ClockDistribution {
            pps_jitter_rms_s: 1e-3,
            residual_ppm_rms: 2.0,
        }
    }

    /// Draws per-device timing offsets (seconds) for `n` devices.
    pub fn draw_trigger_offsets<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| gaussian(rng) * self.pps_jitter_rms_s)
            .collect()
    }

    /// Draws per-device fractional frequency offsets (dimensionless).
    pub fn draw_freq_offsets<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| gaussian(rng) * self.residual_ppm_rms * 1e-6)
            .collect()
    }

    /// Whether a trigger-offset spread is acceptable for a downlink whose
    /// shortest feature is `min_feature_s` (PIE notch width): the commands
    /// stay "synchronous" in the paper's sense when the spread is well
    /// below the notch.
    pub fn supports_synchronous_commands(&self, min_feature_s: f64) -> bool {
        // 6σ spread under a tenth of the feature.
        6.0 * self.pps_jitter_rms_s < min_feature_s / 10.0
    }
}

/// One standard normal sample via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::StdRng;

    #[test]
    fn octoclock_supports_pie_timing() {
        // PIE notch PW = 12.5 µs; 5 ns jitter is overwhelmingly adequate.
        let c = ClockDistribution::octoclock();
        assert!(c.supports_synchronous_commands(12.5e-6));
    }

    #[test]
    fn free_running_breaks_synchrony() {
        let c = ClockDistribution::free_running();
        assert!(!c.supports_synchronous_commands(12.5e-6));
    }

    #[test]
    fn trigger_offsets_match_rms() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = ClockDistribution::octoclock();
        let offsets = c.draw_trigger_offsets(&mut rng, 50_000);
        let rms = (offsets.iter().map(|o| o * o).sum::<f64>() / offsets.len() as f64).sqrt();
        assert!((rms / 5e-9 - 1.0).abs() < 0.05, "rms {rms}");
    }

    #[test]
    fn octoclock_freq_offsets_zero() {
        let mut rng = StdRng::seed_from_u64(6);
        let c = ClockDistribution::octoclock();
        assert!(c.draw_freq_offsets(&mut rng, 8).iter().all(|&f| f == 0.0));
    }

    #[test]
    fn free_running_freq_offsets_ppm_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = ClockDistribution::free_running();
        let offs = c.draw_freq_offsets(&mut rng, 10_000);
        let rms = (offs.iter().map(|o| o * o).sum::<f64>() / offs.len() as f64).sqrt();
        assert!((rms / 2e-6 - 1.0).abs() < 0.1, "rms {rms}");
        // At 915 MHz, 2 ppm is ~1.8 kHz — vastly larger than CIB's 7 Hz
        // offsets, which is why a shared reference is mandatory.
        assert!(rms * 915e6 > 100.0);
    }
}
