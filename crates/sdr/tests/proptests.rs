//! Property-based tests for the SDR testbed models.

use ivn_dsp::complex::Complex64;
use ivn_runtime::prop::any;
use ivn_runtime::rng::StdRng;
use ivn_runtime::{prop_assert, prop_assert_eq, props};
use ivn_sdr::adc::{Adc, SawFilter};
use ivn_sdr::bank::TxBank;
use ivn_sdr::clock::ClockDistribution;
use ivn_sdr::pa::PowerAmp;
use ivn_sdr::pll::Pll;

props! {
    cases = 96;

    fn pll_tunes_within_half_step(step in 1.0f64..1e6, target in 1e8f64..2e9,
                                  seed in any::<u64>()) {
        let mut pll = Pll::new(step);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = pll.tune(&mut rng, target);
        prop_assert!((f - target).abs() <= step / 2.0 + 1e-9);
    }

    fn pll_phase_in_range(seed in any::<u64>()) {
        let mut pll = Pll::sbx_class();
        let mut rng = StdRng::seed_from_u64(seed);
        pll.tune(&mut rng, 915e6);
        let p = pll.initial_phase();
        prop_assert!((0.0..std::f64::consts::TAU).contains(&p));
    }

    fn pa_monotone_bounded(gain in 1.0f64..50.0, vsat in 1.0f64..20.0,
                           p in 0.5f64..4.0, v1 in 0.0f64..10.0, dv in 0.0f64..10.0) {
        let pa = PowerAmp::new(gain, vsat, p);
        let a1 = pa.am_am(v1);
        let a2 = pa.am_am(v1 + dv);
        prop_assert!(a2 >= a1 - 1e-9);
        prop_assert!(a2 <= vsat * (1.0 + 1e-9));
        // Never exceeds linear gain.
        prop_assert!(a2 <= gain * (v1 + dv) + 1e-9);
    }

    fn pa_preserves_phase(v in 0.01f64..20.0, theta in -3.0f64..3.0) {
        let pa = PowerAmp::hmc453_class();
        let y = pa.process(Complex64::from_polar(v, theta));
        prop_assert!((y.arg() - theta).abs() < 1e-9);
    }

    fn adc_error_bounded_by_lsb(bits in 4u32..16, re in -0.99f64..0.99, im in -0.99f64..0.99) {
        let adc = Adc::new(1.0, bits);
        let x = Complex64::new(re, im);
        let y = adc.convert(x);
        prop_assert!((y.re - re).abs() <= adc.lsb() / 2.0 + 1e-12);
        prop_assert!((y.im - im).abs() <= adc.lsb() / 2.0 + 1e-12);
    }

    fn adc_clips_to_full_scale(v in 1.0f64..100.0) {
        let adc = Adc::new(1.0, 12);
        let y = adc.convert(Complex64::new(v, -v));
        prop_assert!(y.re <= 1.0 + 1e-12 && y.im >= -1.0 - 1e-12);
    }

    fn saw_gain_bounded(f in 8e8f64..1e9) {
        let saw = SawFilter::reader_880();
        let g = saw.gain_at(f);
        prop_assert!(g > 0.0 && g < 1.0);
    }

    fn bank_emissions_match_offsets(n in 1usize..8, seed in any::<u64>()) {
        let offsets: Vec<f64> = (0..n).map(|i| i as f64 * 13.0).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let bank = TxBank::new(&mut rng, n, 915e6, 1e5, &offsets, &ClockDistribution::octoclock());
        for i in 0..n {
            prop_assert_eq!(bank.emission_hz(i), 915e6 + i as f64 * 13.0);
        }
        // Hidden phases all in range and (for n > 1) not all identical.
        let phases = bank.hidden_phases();
        for &p in &phases {
            prop_assert!((0.0..std::f64::consts::TAU).contains(&p));
        }
    }

    fn superposition_is_linear(seed in any::<u64>(), scale in 0.1f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bank = TxBank::new(
            &mut rng, 3, 915e6, 1e5, &[0.0, 7.0, 20.0], &ClockDistribution::octoclock(),
        );
        let profile = vec![1.0; 64];
        let e = bank.emit_all(&profile, 0.02);
        let gains = vec![Complex64::from_real(1.0); 3];
        let scaled_gains = vec![Complex64::from_real(scale); 3];
        let a = TxBank::superpose(&e, &gains);
        let b = TxBank::superpose(&e, &scaled_gains);
        for (x, y) in a.samples().iter().zip(b.samples()) {
            prop_assert!((*x * scale - *y).norm() < 1e-9 * scale.max(1.0));
        }
    }

    fn streaming_bank_matches_batch_any_block(seed in any::<u64>(), block in 1usize..96) {
        // Free-running clocks give every lane a different nonzero trigger
        // shift, exercising the history/latency bookkeeping.
        let offsets = [0.0, 11.0, 29.0];
        let profile: Vec<f64> = (0..160).map(|i| 0.2 + 0.8 * (i as f64 / 159.0)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let bank = TxBank::new(
            &mut rng, 3, 915e6, 1e5, &offsets, &ClockDistribution::free_running(),
        );
        let batch = bank.emit_all(&profile, 0.02);
        let mut streamer = bank.streamer(0.02, 1);
        let mut lanes: Vec<Vec<Complex64>> = vec![Vec::new(); 3];
        for chunk in profile.chunks(block) {
            streamer.push(chunk);
            for (lane, b) in lanes.iter_mut().zip(streamer.blocks()) {
                lane.extend_from_slice(b);
            }
        }
        streamer.flush();
        for (lane, b) in lanes.iter_mut().zip(streamer.blocks()) {
            lane.extend_from_slice(b);
        }
        for (lane, buf) in lanes.iter().zip(&batch) {
            prop_assert_eq!(lane.len(), buf.samples().len());
            for (x, y) in lane.iter().zip(buf.samples()) {
                prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
                prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    fn hidden_phases_into_matches_allocating(n in 1usize..8, seed in any::<u64>()) {
        let offsets: Vec<f64> = (0..n).map(|i| i as f64 * 13.0).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let bank = TxBank::new(&mut rng, n, 915e6, 1e5, &offsets, &ClockDistribution::octoclock());
        let alloc = bank.hidden_phases();
        let mut scratch = vec![0.0; n];
        bank.hidden_phases_into(&mut scratch);
        prop_assert_eq!(alloc, scratch);
    }
}
