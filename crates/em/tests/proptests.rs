//! Property-based tests for the electromagnetics substrate.

use ivn_dsp::buffer::IqBuffer;
use ivn_dsp::complex::Complex64;
use ivn_em::antenna::{received_power, Antenna};
use ivn_em::boundary::{power_transmittance, reflection};
use ivn_em::coupling::CouplingModel;
use ivn_em::geometry::Point3;
use ivn_em::layered::{single_medium_path, Layer, LayeredPath};
use ivn_em::medium::Medium;
use ivn_em::multipath::MultipathChannel;
use ivn_em::sar::{averaged_sar, local_sar};
use ivn_em::stream::BlockSuperposer;
use ivn_runtime::prop::{any, Strategy};
use ivn_runtime::rng::{Rng, StdRng};
use ivn_runtime::{prop_assert, prop_assert_eq, props};

fn medium() -> impl Strategy<Value = Medium> {
    (1.0f64..85.0, 0.0f64..3.0).prop_map(|(e, s)| Medium::new("prop", e, s))
}

props! {
    cases = 96;

    fn reflection_magnitude_below_unity(m1 in medium(), m2 in medium(), f in 4e8f64..3e9) {
        let g = reflection(&m1, &m2, f);
        prop_assert!(g.norm() <= 1.0 + 1e-9);
        let t = power_transmittance(&m1, &m2, f);
        prop_assert!((g.norm_sqr() + t - 1.0).abs() < 1e-9);
    }

    fn propagation_magnitude_decays(m in medium(), f in 4e8f64..3e9,
                                    d1 in 0.0f64..0.3, d2 in 0.0f64..0.3) {
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.propagate(f, far).norm() <= m.propagate(f, near).norm() + 1e-12);
        prop_assert!(m.propagate(f, 0.0).norm() - 1.0 < 1e-12);
    }

    fn layered_response_multiplicative_in_depth(m in medium(), f in 4e8f64..3e9,
                                                d in 0.001f64..0.1) {
        // Two layers of the same medium equal one double-thickness layer.
        let double = single_medium_path(1.0, m.clone(), 2.0 * d);
        let split = LayeredPath::new(
            1.0,
            vec![Layer::new(m.clone(), d), Layer::new(m, d)],
        );
        let a = double.response(f);
        let b = split.response(f);
        prop_assert!((a - b).norm() < 1e-9 * a.norm().max(1e-30));
    }

    fn path_loss_positive_beyond_reference(m in medium(), air in 1.0f64..10.0,
                                           d in 0.0f64..0.1, f in 4e8f64..3e9) {
        let pl = single_medium_path(air, m, d).path_loss_db(f);
        prop_assert!(pl >= -1e-9, "negative path loss {pl}");
    }

    fn multipath_mean_power_preserved(seed in 0u64..1000, n in 1usize..12,
                                      spread in 1e-9f64..1e-6, p in 0.01f64..10.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ch = MultipathChannel::rayleigh(&mut rng, n, spread, p);
        prop_assert!((ch.mean_power() - p).abs() < 1e-9 * p);
        prop_assert!(ch.rms_delay_spread() >= 0.0);
    }

    fn antenna_factors_bounded(theta in -7.0f64..7.0) {
        for ant in [Antenna::standard_tag(), Antenna::miniature_tag(), Antenna::reader_panel()] {
            let o = ant.orientation_factor(theta);
            prop_assert!(o > 0.0 && o <= 1.0 + 1e-12, "{} at {theta}: {o}", ant.name);
            prop_assert!(ant.polarization_factor() <= 1.0);
            prop_assert!(ant.total_gain(theta) <= ant.gain_linear());
        }
    }

    fn received_power_linear_in_aperture(e in 0.01f64..100.0, eta in 10.0f64..400.0,
                                         a in 1e-6f64..0.1, k in 1.0f64..5.0) {
        let p1 = received_power(e, eta, a);
        let pk = received_power(e, eta, a * k);
        prop_assert!((pk / p1 - k).abs() < 1e-9);
    }

    fn geometry_distance_symmetric_triangle(ax in -5.0f64..5.0, ay in -5.0f64..5.0,
                                            bx in -5.0f64..5.0, by in -5.0f64..5.0,
                                            cx in -5.0f64..5.0, cy in -5.0f64..5.0) {
        let a = Point3::new(ax, ay, 0.0);
        let b = Point3::new(bx, by, 0.0);
        let c = Point3::new(cx, cy, 0.0);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    fn sar_nonnegative_and_duty_bounded(m in medium(), e in 0.0f64..200.0,
                                        duty in 0.0f64..1.0) {
        let s = local_sar(&m, e);
        prop_assert!(s >= 0.0);
        prop_assert!(averaged_sar(s, duty) <= s + 1e-12);
    }

    fn block_superposition_matches_whole_buffer(seed in any::<u64>(), block in 1usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_ant = 4usize;
        let len = 150usize;
        let gains: Vec<Complex64> = (0..n_ant)
            .map(|_| Complex64::new(rng.random::<f64>() * 2.0 - 1.0, rng.random::<f64>() * 2.0 - 1.0))
            .collect();
        let emissions: Vec<IqBuffer> = (0..n_ant)
            .map(|_| {
                let samples = (0..len)
                    .map(|_| Complex64::new(rng.random::<f64>() - 0.5, rng.random::<f64>() - 0.5))
                    .collect();
                IqBuffer::new(samples, 1e5)
            })
            .collect();
        let sup = BlockSuperposer::new(gains);
        let batch = sup.superpose_buffers(&emissions);
        let mut rx = Vec::new();
        let mut out = Vec::new();
        let mut start = 0;
        while start < len {
            let end = (start + block).min(len);
            sup.superpose_block(emissions.iter().map(|e| &e.samples()[start..end]), &mut out);
            rx.extend_from_slice(&out);
            start = end;
        }
        prop_assert_eq!(rx.len(), batch.samples().len());
        for (x, y) in rx.iter().zip(batch.samples()) {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    fn coupling_factors_bounded_and_batch_consistent(
        det in 0.0f64..1.0, shadow in 0.0f64..2.0,
        n in 1usize..48, spacing in 0.0005f64..0.05) {
        let m = CouplingModel::new(det, 0.02, shadow);
        let batch = m.gain_factors(n, spacing);
        prop_assert_eq!(batch.len(), n);
        for (i, &f) in batch.iter().enumerate() {
            prop_assert!(f > 0.0 && f <= 1.0 + 1e-12);
            prop_assert!((f - m.gain_factor(i, n, spacing)).abs() < 1e-12);
        }
    }

    fn coupling_monotone_in_population_and_spacing(
        n in 2usize..32, spacing in 0.001f64..0.02) {
        let m = CouplingModel::dense_implants();
        // Adding a tag to the line never helps any existing tag.
        let before = m.gain_factors(n, spacing);
        let after = m.gain_factors(n + 1, spacing);
        for (i, &f) in before.iter().enumerate() {
            prop_assert!(after[i] <= f + 1e-12);
        }
        // Spreading the line out never hurts.
        let wider = m.gain_factors(n, spacing * 2.0);
        for (i, &f) in before.iter().enumerate() {
            prop_assert!(wider[i] + 1e-12 >= f);
        }
    }
}
