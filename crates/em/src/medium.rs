//! Dielectric media and plane-wave propagation constants.
//!
//! A medium is characterized by its relative permittivity εr and
//! conductivity σ. From those, standard lossy-medium formulas give the
//! field attenuation constant α (the paper's Eq. 2 exponent), the phase
//! constant β, and the wave impedance η (the paper's Eq. 3 denominator):
//!
//! ```text
//! α = ω √(µε′/2) · [ √(1 + tan²δ) − 1 ]^½      tanδ = σ/(ωε′)
//! β = ω √(µε′/2) · [ √(1 + tan²δ) + 1 ]^½
//! η = √( jωµ / (σ + jωε′) )
//! ```
//!
//! Preset tissue values follow the ranges the paper cites (Kim & See;
//! Kurup et al.): dielectric constants around 50 and conductivities of
//! 1–3 S/m give 2.3–6.9 dB/cm at low-GHz frequencies, i.e. α between 13
//! and 80 m⁻¹.

use ivn_dsp::complex::Complex64;
use ivn_dsp::units::{VACUUM_PERMEABILITY, VACUUM_PERMITTIVITY};
use std::f64::consts::TAU;

/// A homogeneous, non-magnetic propagation medium.
#[derive(Debug, Clone, PartialEq)]
pub struct Medium {
    /// Human-readable name used in experiment reports.
    pub name: String,
    /// Relative permittivity εr (dimensionless).
    pub rel_permittivity: f64,
    /// Conductivity σ in S/m.
    pub conductivity: f64,
}

impl Medium {
    /// Creates a custom medium.
    ///
    /// # Panics
    /// Panics on non-positive permittivity or negative conductivity.
    pub fn new(name: &str, rel_permittivity: f64, conductivity: f64) -> Self {
        assert!(rel_permittivity >= 1.0, "relative permittivity must be ≥ 1");
        assert!(conductivity >= 0.0, "conductivity must be non-negative");
        Medium {
            name: name.to_string(),
            rel_permittivity,
            conductivity,
        }
    }

    // ------------------------------------------------------------------
    // Presets. Values are representative of the 900 MHz ISM band and match
    // the ranges cited in the paper (§2.2.1) and its references [36, 39].
    // The evaluation media of Fig. 11 are all present.
    // ------------------------------------------------------------------

    /// Free space / air.
    pub fn air() -> Self {
        Medium::new("air", 1.0, 0.0)
    }

    /// Tank water (lightly conductive tap water, as in the paper's in-vitro
    /// rig). Conductivity is a calibration constant (≈0.78 dB/cm at
    /// 915 MHz) chosen so that CIB depth results land in the paper's
    /// regime — 23 cm standard-tag depth at 8 antennas (DESIGN.md §5).
    pub fn water() -> Self {
        Medium::new("water", 78.0, 0.42)
    }

    /// USP simulated gastric fluid (acidic saline — strongly conductive).
    pub fn gastric_fluid() -> Self {
        Medium::new("gastric fluid", 70.0, 1.20)
    }

    /// USP simulated intestinal fluid (buffered saline).
    pub fn intestinal_fluid() -> Self {
        Medium::new("intestinal fluid", 68.0, 1.60)
    }

    /// Skeletal muscle — also the paper's "steak" test medium.
    pub fn muscle() -> Self {
        Medium::new("muscle", 55.0, 0.95)
    }

    /// Alias for [`Medium::muscle`] matching the paper's Fig. 11 label.
    pub fn steak() -> Self {
        let mut m = Self::muscle();
        m.name = "steak".to_string();
        m
    }

    /// Fatty tissue — also the paper's "bacon" test medium.
    pub fn fat() -> Self {
        Medium::new("fat", 11.0, 0.11)
    }

    /// Alias for [`Medium::fat`] matching the paper's Fig. 11 label.
    pub fn bacon() -> Self {
        let mut m = Self::fat();
        m.name = "bacon".to_string();
        m
    }

    /// Chicken breast (lean poultry muscle).
    pub fn chicken() -> Self {
        Medium::new("chicken", 52.0, 0.85)
    }

    /// Skin (dry).
    pub fn skin() -> Self {
        Medium::new("skin", 41.0, 0.87)
    }

    /// Stomach wall.
    pub fn stomach_wall() -> Self {
        Medium::new("stomach wall", 65.0, 1.20)
    }

    /// Gastric content (chyme/fluid mix) inside the stomach.
    pub fn gastric_content() -> Self {
        Medium::new("gastric content", 68.0, 1.40)
    }

    /// Whole blood.
    pub fn blood() -> Self {
        Medium::new("blood", 61.0, 1.54)
    }

    /// Cortical bone.
    pub fn bone() -> Self {
        Medium::new("bone", 12.0, 0.14)
    }

    /// The seven Fig. 11 evaluation media in presentation order.
    pub fn figure11_media() -> Vec<Medium> {
        vec![
            Medium::air(),
            Medium::water(),
            Medium::gastric_fluid(),
            Medium::intestinal_fluid(),
            Medium::steak(),
            Medium::bacon(),
            Medium::chicken(),
        ]
    }

    // ------------------------------------------------------------------
    // Derived propagation constants.
    // ------------------------------------------------------------------

    /// Loss tangent tanδ = σ/(ωε′) at `freq_hz`.
    pub fn loss_tangent(&self, freq_hz: f64) -> f64 {
        if self.conductivity == 0.0 {
            return 0.0;
        }
        let omega = TAU * freq_hz;
        self.conductivity / (omega * VACUUM_PERMITTIVITY * self.rel_permittivity)
    }

    /// Field attenuation constant α in Np/m (`e^{-αd}` amplitude decay).
    pub fn alpha(&self, freq_hz: f64) -> f64 {
        let omega = TAU * freq_hz;
        let eps = VACUUM_PERMITTIVITY * self.rel_permittivity;
        let tan_d = self.loss_tangent(freq_hz);
        omega
            * (VACUUM_PERMEABILITY * eps / 2.0).sqrt()
            * ((1.0 + tan_d * tan_d).sqrt() - 1.0).sqrt()
    }

    /// Phase constant β in rad/m.
    pub fn beta(&self, freq_hz: f64) -> f64 {
        let omega = TAU * freq_hz;
        let eps = VACUUM_PERMITTIVITY * self.rel_permittivity;
        let tan_d = self.loss_tangent(freq_hz);
        omega
            * (VACUUM_PERMEABILITY * eps / 2.0).sqrt()
            * ((1.0 + tan_d * tan_d).sqrt() + 1.0).sqrt()
    }

    /// Complex propagation constant γ = α + jβ.
    pub fn gamma(&self, freq_hz: f64) -> Complex64 {
        Complex64::new(self.alpha(freq_hz), self.beta(freq_hz))
    }

    /// Intrinsic wave impedance η (complex, ohms).
    pub fn impedance(&self, freq_hz: f64) -> Complex64 {
        let omega = TAU * freq_hz;
        let eps = VACUUM_PERMITTIVITY * self.rel_permittivity;
        let num = Complex64::new(0.0, omega * VACUUM_PERMEABILITY);
        let den = Complex64::new(self.conductivity, omega * eps);
        (num / den).sqrt()
    }

    /// Wavelength in the medium, 2π/β, metres.
    pub fn wavelength(&self, freq_hz: f64) -> f64 {
        TAU / self.beta(freq_hz)
    }

    /// Amplitude loss in dB per centimetre of travel at `freq_hz`.
    pub fn loss_db_per_cm(&self, freq_hz: f64) -> f64 {
        // 20·log10(e^{α·0.01})
        self.alpha(freq_hz) * 0.01 * 20.0 * std::f64::consts::LOG10_E
    }

    /// Complex amplitude factor after propagating `dist_m` metres:
    /// `e^{-(α+jβ)d}` — exponential decay plus phase rotation.
    pub fn propagate(&self, freq_hz: f64, dist_m: f64) -> Complex64 {
        assert!(dist_m >= 0.0, "distance must be non-negative");
        let amp = (-self.alpha(freq_hz) * dist_m).exp();
        Complex64::from_polar(amp, -self.beta(freq_hz) * dist_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_dsp::units::FREE_SPACE_IMPEDANCE;

    const F: f64 = 915e6;

    #[test]
    fn air_is_lossless_with_free_space_impedance() {
        let air = Medium::air();
        assert_eq!(air.alpha(F), 0.0);
        assert_eq!(air.loss_tangent(F), 0.0);
        let eta = air.impedance(F);
        assert!((eta.re - FREE_SPACE_IMPEDANCE).abs() < 0.1);
        assert!(eta.im.abs() < 0.1);
        // β matches free-space wavenumber.
        let k0 = TAU * F / ivn_dsp::units::SPEED_OF_LIGHT;
        assert!((air.beta(F) - k0).abs() / k0 < 1e-6);
    }

    #[test]
    fn muscle_loss_in_papers_range() {
        // Paper: 2.3–6.9 dB/cm for low-GHz in tissue; α between 13 and 80 /m.
        let m = Medium::muscle();
        let loss = m.loss_db_per_cm(F);
        assert!(loss > 1.5 && loss < 7.0, "muscle loss {loss} dB/cm");
        let alpha = m.alpha(F);
        assert!(alpha > 13.0 && alpha < 80.0, "alpha {alpha}");
    }

    #[test]
    fn all_tissue_presets_have_alpha_in_cited_range() {
        for m in [
            Medium::gastric_fluid(),
            Medium::intestinal_fluid(),
            Medium::muscle(),
            Medium::chicken(),
            Medium::skin(),
            Medium::stomach_wall(),
            Medium::blood(),
        ] {
            let a = m.alpha(F);
            assert!(a > 13.0 && a < 90.0, "{} alpha {a}", m.name);
        }
    }

    #[test]
    fn fat_is_less_lossy_than_muscle() {
        assert!(Medium::fat().alpha(F) < Medium::muscle().alpha(F) / 2.0);
    }

    #[test]
    fn impedance_drops_with_permittivity() {
        // η ≈ η0/√εr for low-loss media.
        let fat = Medium::fat();
        let eta = fat.impedance(F).norm();
        let expected = FREE_SPACE_IMPEDANCE / fat.rel_permittivity.sqrt();
        assert!((eta - expected).abs() / expected < 0.05);
    }

    #[test]
    fn wavelength_shortens_in_dielectric() {
        let air_l = Medium::air().wavelength(F);
        let water_l = Medium::water().wavelength(F);
        assert!((air_l - 0.3276).abs() < 1e-3);
        assert!(water_l < air_l / 8.0, "water wavelength {water_l}");
    }

    #[test]
    fn propagate_decays_and_rotates() {
        let m = Medium::muscle();
        let h1 = m.propagate(F, 0.01);
        let h2 = m.propagate(F, 0.02);
        assert!(h1.norm() < 1.0);
        // Twice the distance → squared amplitude factor.
        assert!((h2.norm() - h1.norm() * h1.norm()).abs() < 1e-12);
        // Zero distance → unity.
        assert_eq!(m.propagate(F, 0.0), Complex64::ONE);
    }

    #[test]
    fn five_cm_muscle_loss_matches_paper_range() {
        // Paper: 11.5 to 35.4 dB at 5 cm depth.
        let m = Medium::muscle();
        let h = m.propagate(F, 0.05);
        let loss_db = -20.0 * h.norm().log10();
        assert!(loss_db > 8.0 && loss_db < 36.0, "5 cm loss {loss_db} dB");
    }

    #[test]
    fn loss_increases_with_frequency() {
        let m = Medium::muscle();
        assert!(m.alpha(2.4e9) > m.alpha(915e6));
    }

    #[test]
    fn figure11_media_complete() {
        let media = Medium::figure11_media();
        assert_eq!(media.len(), 7);
        assert_eq!(media[0].name, "air");
        assert_eq!(media[6].name, "chicken");
    }

    #[test]
    #[should_panic(expected = "permittivity")]
    fn rejects_sub_unity_permittivity() {
        Medium::new("bogus", 0.5, 0.0);
    }
}
