//! Specific absorption rate (SAR) estimation.
//!
//! Human-exposure compliance is the paper's other safety leg (§7 cites
//! [57], a 915 MHz SAR analysis): tissue absorbs `σ|E|²/ρ` watts per
//! kilogram. CIB helps here exactly as with FCC limits — SAR limits bind
//! on *time-averaged* fields (FCC/ICNIRP average over 6–30 minutes), and
//! CIB's average power is N·P₀ regardless of its N²·P₀ peaks.

use crate::medium::Medium;

/// FCC localized SAR limit for the general public: 1.6 W/kg (1 g avg).
pub const FCC_LOCAL_SAR_LIMIT_W_PER_KG: f64 = 1.6;

/// ICNIRP whole-body SAR limit for the general public: 0.08 W/kg.
pub const ICNIRP_WHOLE_BODY_LIMIT_W_PER_KG: f64 = 0.08;

/// Mass density of soft tissue, kg/m³.
pub const TISSUE_DENSITY_KG_M3: f64 = 1050.0;

/// Local SAR for an RMS electric field `e_rms` (V/m) inside `medium`:
/// `SAR = σ·E²/ρ` (W/kg).
pub fn local_sar(medium: &Medium, e_rms: f64) -> f64 {
    assert!(e_rms >= 0.0, "field must be non-negative");
    medium.conductivity * e_rms * e_rms / TISSUE_DENSITY_KG_M3
}

/// The RMS field (V/m) at which a medium reaches a SAR limit.
pub fn field_at_sar_limit(medium: &Medium, limit_w_per_kg: f64) -> f64 {
    assert!(limit_w_per_kg > 0.0);
    if medium.conductivity == 0.0 {
        return f64::INFINITY;
    }
    (limit_w_per_kg * TISSUE_DENSITY_KG_M3 / medium.conductivity).sqrt()
}

/// Time-averaged SAR for a duty-cycled exposure: peak SAR × duty factor.
/// This is the CIB compliance story — enormous peaks, tiny duty.
pub fn averaged_sar(peak_sar: f64, duty_factor: f64) -> f64 {
    assert!((0.0..=1.0).contains(&duty_factor), "duty must be in [0,1]");
    peak_sar * duty_factor
}

/// Estimates the RMS field just inside the body surface for a plane wave
/// of incident power density `s_inc` (W/m²) entering `medium`:
/// `E = √(2·S·T·Re(η))` with boundary transmittance `T` (amplitude field
/// of the transmitted wave, using the medium's impedance).
pub fn surface_field(medium: &Medium, s_inc: f64, freq_hz: f64) -> f64 {
    assert!(s_inc >= 0.0);
    let t = crate::boundary::power_transmittance(&Medium::air(), medium, freq_hz);
    let eta = medium.impedance(freq_hz).re;
    (s_inc * t * eta).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sar_scales_with_conductivity_and_field_squared() {
        let muscle = Medium::muscle();
        let s1 = local_sar(&muscle, 10.0);
        let s2 = local_sar(&muscle, 20.0);
        assert!((s2 / s1 - 4.0).abs() < 1e-12);
        let fat = Medium::fat();
        assert!(local_sar(&fat, 10.0) < s1);
    }

    #[test]
    fn field_limit_roundtrip() {
        let muscle = Medium::muscle();
        let e = field_at_sar_limit(&muscle, FCC_LOCAL_SAR_LIMIT_W_PER_KG);
        assert!((local_sar(&muscle, e) - 1.6).abs() < 1e-9);
        // ~42 V/m for muscle: the ballpark of published 915 MHz studies.
        assert!(e > 20.0 && e < 80.0, "limit field {e} V/m");
    }

    #[test]
    fn air_never_hits_sar_limit() {
        assert_eq!(local_sar(&Medium::air(), 1000.0), 0.0);
        assert_eq!(field_at_sar_limit(&Medium::air(), 1.6), f64::INFINITY);
    }

    #[test]
    fn duty_cycling_restores_compliance() {
        let muscle = Medium::muscle();
        // A CIB peak 100× the average: peak-field SAR exceeds the limit...
        let peak_sar = local_sar(&muscle, 100.0);
        assert!(peak_sar > FCC_LOCAL_SAR_LIMIT_W_PER_KG);
        // ...but at 0.1 % duty the average is compliant.
        assert!(averaged_sar(peak_sar, 0.001) < FCC_LOCAL_SAR_LIMIT_W_PER_KG);
    }

    #[test]
    fn surface_field_reasonable_at_paper_power() {
        // One 37 dBm-EIRP antenna at 0.5 m: S = EIRP/(4πr²) ≈ 1.6 W/m².
        let s_inc = 5.01 / (4.0 * std::f64::consts::PI * 0.25);
        let e = surface_field(&Medium::skin(), s_inc, 915e6);
        // A few tens of V/m inside the skin — near but not over the
        // local-SAR limit field.
        assert!(e > 1.0 && e < 60.0, "surface field {e} V/m");
        let sar = local_sar(&Medium::skin(), e);
        assert!(sar < FCC_LOCAL_SAR_LIMIT_W_PER_KG, "sar {sar}");
    }
}
