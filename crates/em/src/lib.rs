//! # ivn-em — electromagnetics and tissue propagation substrate
//!
//! Implements the physical layer that the paper's hardware evaluation runs
//! over: dielectric media (air, fluids, biological tissues), plane-wave
//! attenuation, boundary transmittance, layered-body channels (the paper's
//! Eq. 2: `|E| = (T·A/r)·e^{-αd}`), multipath, and antenna apertures
//! (Eq. 3: `P_L = E²/η · A_eff`).
//!
//! Everything is deterministic; random channels draw from caller-provided
//! seeded RNGs.
//!
//! ```
//! use ivn_em::medium::Medium;
//!
//! // Muscle at 915 MHz loses roughly 2–7 dB/cm (paper §2.2.1).
//! let loss = Medium::muscle().loss_db_per_cm(915e6);
//! assert!(loss > 1.5 && loss < 7.0);
//! ```

pub mod antenna;
pub mod boundary;
pub mod channel;
pub mod coupling;
pub mod geometry;
pub mod layered;
pub mod medium;
pub mod multipath;
pub mod safety;
pub mod sar;
pub mod stream;

pub use channel::ChannelModel;
pub use medium::Medium;
