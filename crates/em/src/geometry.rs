//! Minimal 3D geometry for antenna and sensor placement.

/// A point (or vector) in 3D space, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
    /// z coordinate (m).
    pub z: f64,
}

impl Point3 {
    /// Origin.
    pub const ORIGIN: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point3) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2) + (self.z - other.z).powi(2))
            .sqrt()
    }

    /// Vector length.
    pub fn norm(self) -> f64 {
        self.distance(Point3::ORIGIN)
    }

    /// Component-wise addition.
    pub fn add(self, other: Point3) -> Point3 {
        Point3::new(self.x + other.x, self.y + other.y, self.z + other.z)
    }

    /// Component-wise subtraction (`self - other`).
    pub fn sub(self, other: Point3) -> Point3 {
        Point3::new(self.x - other.x, self.y - other.y, self.z - other.z)
    }

    /// Scales by a factor.
    pub fn scale(self, k: f64) -> Point3 {
        Point3::new(self.x * k, self.y * k, self.z * k)
    }

    /// Dot product.
    pub fn dot(self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    /// Panics on the zero vector.
    pub fn normalized(self) -> Point3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize zero vector");
        self.scale(1.0 / n)
    }
}

/// Generates positions of a uniform linear array of `n` elements spaced
/// `spacing` metres apart along the x axis, centred on `center`.
pub fn linear_array(center: Point3, n: usize, spacing: f64) -> Vec<Point3> {
    let offset = (n as f64 - 1.0) / 2.0;
    (0..n)
        .map(|i| Point3::new(center.x + (i as f64 - offset) * spacing, center.y, center.z))
        .collect()
}

/// Generates positions on a circular arc of radius `radius` in the x-y
/// plane around `center`, spanning `arc_radians` and facing the centre —
/// the paper's antennas were "positioned 30–80 cm lateral ... in line with
/// the coronal plane", i.e. spread around the subject.
pub fn arc_array(center: Point3, n: usize, radius: f64, arc_radians: f64) -> Vec<Point3> {
    assert!(n > 0, "array needs at least one element");
    (0..n)
        .map(|i| {
            let theta = if n == 1 {
                0.0
            } else {
                -arc_radians / 2.0 + arc_radians * i as f64 / (n as f64 - 1.0)
            };
            Point3::new(
                center.x + radius * theta.cos(),
                center.y + radius * theta.sin(),
                center.z,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn vector_ops() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 5.0, 6.0);
        assert_eq!(a.add(b), Point3::new(5.0, 7.0, 9.0));
        assert_eq!(b.sub(a), Point3::new(3.0, 3.0, 3.0));
        assert_eq!(a.scale(2.0), Point3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(b), 32.0);
    }

    #[test]
    fn normalized_is_unit() {
        let v = Point3::new(0.0, 3.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        Point3::ORIGIN.normalized();
    }

    #[test]
    fn linear_array_centred_and_spaced() {
        let a = linear_array(Point3::ORIGIN, 4, 0.2);
        assert_eq!(a.len(), 4);
        // Centre of mass at origin.
        let cx: f64 = a.iter().map(|p| p.x).sum::<f64>() / 4.0;
        assert!(cx.abs() < 1e-12);
        // Neighbour spacing.
        assert!((a[1].x - a[0].x - 0.2).abs() < 1e-12);
    }

    #[test]
    fn arc_array_on_radius() {
        let a = arc_array(Point3::ORIGIN, 5, 1.0, std::f64::consts::PI / 2.0);
        assert_eq!(a.len(), 5);
        for p in &a {
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
        // Single element sits on the x axis.
        let single = arc_array(Point3::ORIGIN, 1, 2.0, 1.0);
        assert_eq!(single[0], Point3::new(2.0, 0.0, 0.0));
    }
}
