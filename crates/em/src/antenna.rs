//! Antenna models: gain, effective aperture, orientation and polarization
//! mismatch.
//!
//! The paper's Eq. 3 ties harvested power to the sensor antenna's effective
//! area: `P_L = E²/η · A_eff`. The miniature Xerafy tag's mm-scale antenna
//! has an aperture orders of magnitude below the standard Avery tag's —
//! this single parameter is why the mini tag dies in the pig's stomach
//! while the standard tag survives (§6.2).

use ivn_dsp::units::db_to_linear;

/// An antenna characterized by its gain and polarization behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Antenna {
    /// Descriptive name.
    pub name: String,
    /// Boresight gain, dBi.
    pub gain_dbi: f64,
    /// Worst-case orientation loss in dB: a dipole side-on to the incident
    /// field keeps at least this much below boresight. Keeps the cos²
    /// pattern from producing unphysical perfect nulls.
    pub orientation_floor_db: f64,
    /// Extra fixed polarization mismatch loss in dB (e.g. 3 dB for a
    /// linear tag read by a circularly polarized reader antenna).
    pub polarization_loss_db: f64,
}

impl Antenna {
    /// The beamformer's MT-242025-style 7 dBi circularly polarized panel.
    pub fn reader_panel() -> Self {
        Antenna {
            name: "7 dBi RHCP panel".into(),
            gain_dbi: 7.0,
            orientation_floor_db: 10.0,
            polarization_loss_db: 0.0,
        }
    }

    /// A standard UHF RFID tag dipole (Avery AD-238u8 class, 1.4 × 7 cm).
    pub fn standard_tag() -> Self {
        Antenna {
            name: "standard tag dipole".into(),
            gain_dbi: 2.0,
            orientation_floor_db: 15.0,
            // Linear tag under a circular reader: 3 dB.
            polarization_loss_db: 3.0,
        }
    }

    /// The millimetre-scale implantable tag antenna (Xerafy Dash-On XS
    /// class, 1.2 cm × 3 mm). Electrically small ⇒ strongly negative gain.
    pub fn miniature_tag() -> Self {
        Antenna {
            name: "miniature tag antenna".into(),
            gain_dbi: -8.0,
            orientation_floor_db: 15.0,
            polarization_loss_db: 3.0,
        }
    }

    /// Linear boresight gain.
    pub fn gain_linear(&self) -> f64 {
        db_to_linear(self.gain_dbi)
    }

    /// Effective aperture at boresight, `A_eff = G λ²/(4π)`, m².
    ///
    /// `wavelength_m` should be the wavelength in the medium surrounding
    /// the antenna (the paper notes the tag is tube-matched to its
    /// immediate medium, §5c).
    pub fn effective_aperture(&self, wavelength_m: f64) -> f64 {
        assert!(wavelength_m > 0.0, "wavelength must be positive");
        self.gain_linear() * wavelength_m * wavelength_m / (4.0 * std::f64::consts::PI)
    }

    /// Orientation gain factor (linear, ≤ 1) for a misalignment angle
    /// `theta` radians off boresight: a floored cos² pattern.
    pub fn orientation_factor(&self, theta: f64) -> f64 {
        let floor = db_to_linear(-self.orientation_floor_db);
        (theta.cos().powi(2)).max(floor)
    }

    /// Linear polarization mismatch factor (≤ 1).
    pub fn polarization_factor(&self) -> f64 {
        db_to_linear(-self.polarization_loss_db)
    }

    /// Combined linear power gain at misalignment `theta`, including
    /// boresight gain, orientation and polarization factors.
    pub fn total_gain(&self, theta: f64) -> f64 {
        self.gain_linear() * self.orientation_factor(theta) * self.polarization_factor()
    }
}

/// Received power (W) at an antenna immersed in a field of RMS amplitude
/// `e_field` (V/m) in a medium of wave impedance `eta` (Ω): the paper's
/// Eq. 3, `P_L = E²/η · A_eff`.
pub fn received_power(e_field: f64, eta: f64, aperture_m2: f64) -> f64 {
    assert!(eta > 0.0, "impedance must be positive");
    e_field * e_field / eta * aperture_m2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aperture_scales_with_gain_and_wavelength() {
        let std_tag = Antenna::standard_tag();
        let mini = Antenna::miniature_tag();
        let lambda = 0.3276;
        let a_std = std_tag.effective_aperture(lambda);
        let a_mini = mini.effective_aperture(lambda);
        // 10 dB gain difference → 10× aperture difference.
        assert!((a_std / a_mini - 10.0).abs() < 0.01);
        // Isotropic aperture sanity: λ²/4π ≈ 85 cm² at 915 MHz; 2 dBi ≈ 1.58×.
        assert!((a_std - 1.585 * 0.00854).abs() < 2e-4, "A_eff {a_std}");
    }

    #[test]
    fn aperture_shrinks_in_dense_media() {
        // In high-permittivity tissue the wavelength shrinks ~√εr, cutting
        // aperture by εr — part of why implanted antennas harvest little.
        let tag = Antenna::standard_tag();
        let air = tag.effective_aperture(0.3276);
        let tissue = tag.effective_aperture(0.3276 / 55f64.sqrt());
        assert!((air / tissue - 55.0).abs() < 0.5);
    }

    #[test]
    fn orientation_pattern() {
        let tag = Antenna::standard_tag();
        assert!((tag.orientation_factor(0.0) - 1.0).abs() < 1e-12);
        let side = tag.orientation_factor(std::f64::consts::FRAC_PI_2);
        // Floored at −15 dB.
        assert!((side - db_to_linear(-15.0)).abs() < 1e-12);
        // 45° → cos² = 0.5.
        assert!((tag.orientation_factor(std::f64::consts::FRAC_PI_4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn polarization_loss() {
        let tag = Antenna::standard_tag();
        assert!((tag.polarization_factor() - 0.5012).abs() < 1e-3);
        let panel = Antenna::reader_panel();
        assert!((panel.polarization_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_gain_composition() {
        let tag = Antenna::standard_tag();
        let g = tag.total_gain(0.0);
        assert!((g - db_to_linear(2.0 - 3.0)).abs() < 1e-9);
    }

    #[test]
    fn received_power_eq3() {
        // E = 1 V/m in free space (η ≈ 377), aperture 0.01 m²:
        // P = 1/377 × 0.01 ≈ 26.5 µW.
        let p = received_power(1.0, 376.73, 0.01);
        assert!((p - 2.654e-5).abs() < 1e-8);
        // Quadratic in field.
        assert!((received_power(2.0, 376.73, 0.01) / p - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mini_tag_harvests_far_less() {
        // Same field, same medium: power ratio equals aperture ratio (10 dB).
        let lambda = 0.05;
        let p_std = received_power(
            1.0,
            50.0,
            Antenna::standard_tag().effective_aperture(lambda),
        );
        let p_mini = received_power(
            1.0,
            50.0,
            Antenna::miniature_tag().effective_aperture(lambda),
        );
        assert!(p_std / p_mini > 9.9);
    }
}
