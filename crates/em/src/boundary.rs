//! Planar boundary reflection and transmission (normal incidence).
//!
//! The first attenuation source in the paper's §2.2.1 is reflection at the
//! air–tissue boundary: "for RF signals in the 1 GHz range, this results in
//! a loss of around 3–5 dB". For normal incidence on the interface between
//! media with intrinsic impedances η₁ → η₂:
//!
//! ```text
//! Γ = (η₂ − η₁)/(η₂ + η₁)        field reflection
//! τ = 2η₂/(η₂ + η₁)              field transmission
//! T = 1 − |Γ|²                   power transmittance
//! ```

use crate::medium::Medium;
use ivn_dsp::complex::Complex64;

/// Field reflection coefficient Γ going from `from` into `into`.
pub fn reflection(from: &Medium, into: &Medium, freq_hz: f64) -> Complex64 {
    let e1 = from.impedance(freq_hz);
    let e2 = into.impedance(freq_hz);
    (e2 - e1) / (e2 + e1)
}

/// Field transmission coefficient τ going from `from` into `into`.
pub fn transmission(from: &Medium, into: &Medium, freq_hz: f64) -> Complex64 {
    let e1 = from.impedance(freq_hz);
    let e2 = into.impedance(freq_hz);
    2.0 * e2 / (e2 + e1)
}

/// Power transmittance `T = 1 − |Γ|²` across the boundary.
pub fn power_transmittance(from: &Medium, into: &Medium, freq_hz: f64) -> f64 {
    1.0 - reflection(from, into, freq_hz).norm_sqr()
}

/// Boundary power loss in dB (positive number).
pub fn boundary_loss_db(from: &Medium, into: &Medium, freq_hz: f64) -> f64 {
    -10.0 * power_transmittance(from, into, freq_hz).log10()
}

/// The *amplitude* factor to apply to a propagating field crossing the
/// boundary so that transported power is conserved: `√T`.
///
/// Using √T rather than |τ| accounts for the impedance change between the
/// media (power flux is E²/η); this is the `T` of the paper's Eq. 2 once
/// fields are referred to a common impedance.
pub fn amplitude_transmittance(from: &Medium, into: &Medium, freq_hz: f64) -> f64 {
    power_transmittance(from, into, freq_hz).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 915e6;

    #[test]
    fn identical_media_are_transparent() {
        let m = Medium::muscle();
        let g = reflection(&m, &m, F);
        assert!(g.norm() < 1e-12);
        assert!((power_transmittance(&m, &m, F) - 1.0).abs() < 1e-12);
        assert!(boundary_loss_db(&m, &m, F).abs() < 1e-9);
    }

    #[test]
    fn air_to_tissue_loss_matches_paper() {
        // Paper: ~3–5 dB at the air-tissue boundary around 1 GHz.
        let loss = boundary_loss_db(&Medium::air(), &Medium::muscle(), F);
        assert!(loss > 2.5 && loss < 5.5, "boundary loss {loss} dB");
    }

    #[test]
    fn air_to_water_loss_reasonable() {
        let loss = boundary_loss_db(&Medium::air(), &Medium::water(), F);
        assert!(loss > 3.0 && loss < 7.0, "air->water loss {loss} dB");
    }

    #[test]
    fn air_to_fat_is_milder_than_air_to_muscle() {
        let to_fat = boundary_loss_db(&Medium::air(), &Medium::fat(), F);
        let to_muscle = boundary_loss_db(&Medium::air(), &Medium::muscle(), F);
        assert!(to_fat < to_muscle);
    }

    #[test]
    fn energy_split_consistent() {
        // |Γ|² + T = 1 by construction; sanity-check numerically.
        let g = reflection(&Medium::air(), &Medium::skin(), F).norm_sqr();
        let t = power_transmittance(&Medium::air(), &Medium::skin(), F);
        assert!((g + t - 1.0).abs() < 1e-12);
        assert!(t > 0.0 && t < 1.0);
    }

    #[test]
    fn reflection_symmetry() {
        // Γ(a→b) = −Γ(b→a)
        let ab = reflection(&Medium::air(), &Medium::muscle(), F);
        let ba = reflection(&Medium::muscle(), &Medium::air(), F);
        assert!((ab + ba).norm() < 1e-12);
        // Power transmittance is reciprocal.
        let tab = power_transmittance(&Medium::air(), &Medium::muscle(), F);
        let tba = power_transmittance(&Medium::muscle(), &Medium::air(), F);
        assert!((tab - tba).abs() < 1e-12);
    }

    #[test]
    fn amplitude_transmittance_is_sqrt_power() {
        let t = power_transmittance(&Medium::air(), &Medium::muscle(), F);
        let a = amplitude_transmittance(&Medium::air(), &Medium::muscle(), F);
        assert!((a * a - t).abs() < 1e-12);
    }

    #[test]
    fn tissue_to_tissue_boundaries_are_mild() {
        // Layer-to-layer reflections inside the body are much weaker than
        // the air interface.
        let skin_fat = boundary_loss_db(&Medium::skin(), &Medium::fat(), F);
        let fat_muscle = boundary_loss_db(&Medium::fat(), &Medium::muscle(), F);
        let air_skin = boundary_loss_db(&Medium::air(), &Medium::skin(), F);
        assert!(skin_fat < air_skin);
        assert!(fat_muscle < air_skin);
    }
}
