//! Channel model abstraction and compositions.
//!
//! A [`ChannelModel`] maps an absolute RF frequency to a complex amplitude
//! response — everything between one transmit antenna's port and the
//! sensor's antenna port. Experiments hold one model per transmit antenna.
//!
//! The crucial property for IVN is captured by [`BlindChannel`]: whatever
//! physics produced the channel, each antenna's carrier arrives with an
//! *unknown, uniformly distributed phase* (PLL start-up phase θᵢ plus
//! propagation phase φᵢ — paper Eq. 5). All beamforming comparisons in the
//! paper reduce to how algorithms behave under that uniform-phase ensemble.

use crate::layered::LayeredPath;
use crate::multipath::MultipathChannel;
use ivn_dsp::complex::Complex64;
use ivn_runtime::rng::Rng;
use std::f64::consts::TAU;

/// Complex frequency response of a propagation channel.
pub trait ChannelModel {
    /// Response at absolute frequency `freq_hz` (linear amplitude + phase).
    fn response(&self, freq_hz: f64) -> Complex64;

    /// Power attenuation (|H|²) at `freq_hz`.
    fn power_gain(&self, freq_hz: f64) -> f64 {
        self.response(freq_hz).norm_sqr()
    }
}

impl ChannelModel for LayeredPath {
    fn response(&self, freq_hz: f64) -> Complex64 {
        LayeredPath::response(self, freq_hz)
    }
}

impl ChannelModel for MultipathChannel {
    fn response(&self, freq_hz: f64) -> Complex64 {
        MultipathChannel::response(self, freq_hz)
    }
}

/// A frequency-flat channel: fixed complex gain at every frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatChannel {
    /// The fixed response.
    pub gain: Complex64,
}

impl FlatChannel {
    /// Creates a flat channel with amplitude `amp` and a phase drawn
    /// uniformly from `[0, 2π)` — the blind-channel primitive.
    pub fn random_phase<R: Rng + ?Sized>(rng: &mut R, amp: f64) -> Self {
        FlatChannel {
            gain: Complex64::from_polar(amp, rng.random::<f64>() * TAU),
        }
    }

    /// Creates a flat channel with an explicit gain.
    pub fn new(gain: Complex64) -> Self {
        FlatChannel { gain }
    }
}

impl ChannelModel for FlatChannel {
    fn response(&self, _freq_hz: f64) -> Complex64 {
        self.gain
    }
}

/// The blind in-vivo channel of the paper's Eq. 5: a deterministic
/// amplitude (from physics) with a uniformly random phase β per antenna,
/// *plus* an optional narrowband dispersion term so that very different
/// frequencies decorrelate.
#[derive(Debug, Clone, PartialEq)]
pub struct BlindChannel {
    amplitude: f64,
    beta: f64,
    /// Extra group delay (s) applied to frequency offsets from the
    /// reference, modelling electrical length.
    group_delay_s: f64,
    reference_hz: f64,
}

impl BlindChannel {
    /// Draws a blind channel with the given deterministic amplitude,
    /// random phase, and electrical delay relative to `reference_hz`.
    pub fn draw<R: Rng + ?Sized>(
        rng: &mut R,
        amplitude: f64,
        group_delay_s: f64,
        reference_hz: f64,
    ) -> Self {
        BlindChannel {
            amplitude,
            beta: rng.random::<f64>() * TAU,
            group_delay_s,
            reference_hz,
        }
    }

    /// The realized (hidden) phase — test-only knowledge a real system
    /// never has.
    pub fn hidden_phase(&self) -> f64 {
        self.beta
    }

    /// The deterministic amplitude.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }
}

impl ChannelModel for BlindChannel {
    fn response(&self, freq_hz: f64) -> Complex64 {
        let df = freq_hz - self.reference_hz;
        Complex64::from_polar(self.amplitude, self.beta - TAU * df * self.group_delay_s)
    }
}

/// Product composition: physics path × small-scale fading × anything else.
pub struct ComposedChannel {
    stages: Vec<Box<dyn ChannelModel + Send + Sync>>,
}

impl ComposedChannel {
    /// Creates a composition; responses multiply in order.
    pub fn new(stages: Vec<Box<dyn ChannelModel + Send + Sync>>) -> Self {
        ComposedChannel { stages }
    }
}

impl ChannelModel for ComposedChannel {
    fn response(&self, freq_hz: f64) -> Complex64 {
        self.stages
            .iter()
            .fold(Complex64::ONE, |acc, s| acc * s.response(freq_hz))
    }
}

/// A set of per-transmit-antenna channels toward one receive point.
pub struct ChannelEnsemble {
    channels: Vec<Box<dyn ChannelModel + Send + Sync>>,
}

impl ChannelEnsemble {
    /// Creates an ensemble from per-antenna channels.
    pub fn new(channels: Vec<Box<dyn ChannelModel + Send + Sync>>) -> Self {
        ChannelEnsemble { channels }
    }

    /// Draws `n` blind channels of equal amplitude — the canonical
    /// Monte-Carlo ensemble of the paper's evaluation.
    pub fn blind<R: Rng + ?Sized>(
        rng: &mut R,
        n: usize,
        amplitude: f64,
        reference_hz: f64,
    ) -> Self {
        let channels = (0..n)
            .map(|_| {
                Box::new(BlindChannel::draw(rng, amplitude, 0.0, reference_hz))
                    as Box<dyn ChannelModel + Send + Sync>
            })
            .collect();
        ChannelEnsemble::new(channels)
    }

    /// Number of antennas.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Response of antenna `i` at `freq_hz`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn response(&self, i: usize, freq_hz: f64) -> Complex64 {
        ivn_runtime::obs_count!("em.channel_evals", 1);
        self.channels[i].response(freq_hz)
    }

    /// All responses at one frequency.
    pub fn responses(&self, freq_hz: f64) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; self.len()];
        self.responses_into(freq_hz, &mut out);
        out
    }

    /// Writes all responses at one frequency into `out` without
    /// allocating — the hot-path variant used by the block driver.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn responses_into(&self, freq_hz: f64, out: &mut [Complex64]) {
        assert_eq!(out.len(), self.len(), "one slot per antenna required");
        let _span = ivn_runtime::span!("em.ensemble_responses_ns");
        ivn_runtime::obs_count!("em.channel_evals", self.channels.len());
        for (slot, c) in out.iter_mut().zip(&self.channels) {
            *slot = c.response(freq_hz);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layered::single_medium_path;
    use crate::medium::Medium;
    use ivn_runtime::rng::StdRng;

    #[test]
    fn flat_channel_is_flat() {
        let ch = FlatChannel::new(Complex64::from_polar(0.5, 1.0));
        assert_eq!(ch.response(900e6), ch.response(915e6));
        assert!((ch.power_gain(915e6) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn random_phase_uniformity() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: Complex64 = (0..n)
            .map(|_| FlatChannel::random_phase(&mut rng, 1.0).gain)
            .sum::<Complex64>()
            / n as f64;
        // Uniform phases average to ~0.
        assert!(mean.norm() < 0.03, "mean phasor {}", mean.norm());
    }

    #[test]
    fn blind_channel_amplitude_fixed_phase_random() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = BlindChannel::draw(&mut rng, 0.7, 0.0, 915e6);
        let b = BlindChannel::draw(&mut rng, 0.7, 0.0, 915e6);
        assert!((a.response(915e6).norm() - 0.7).abs() < 1e-12);
        assert_ne!(a.hidden_phase(), b.hidden_phase());
        // Flat over CIB's narrow span when no dispersion is configured.
        assert!((a.response(915e6) - a.response(915e6 + 137.0)).norm() < 1e-12);
        assert_eq!(a.amplitude(), 0.7);
    }

    #[test]
    fn blind_channel_dispersion() {
        let mut rng = StdRng::seed_from_u64(13);
        // ~101 ns of group delay: a 137 Hz offset rotates by ~9e-5 rad —
        // negligible; a 35 MHz offset rotates by several full turns plus a
        // large fraction, i.e. an effectively independent phase.
        let ch = BlindChannel::draw(&mut rng, 1.0, 1.01e-7, 915e6);
        let near = (ch.response(915e6) - ch.response(915e6 + 137.0)).norm();
        let far = (ch.response(915e6) - ch.response(880e6)).norm();
        assert!(near < 1e-2);
        assert!(far > 0.1);
    }

    #[test]
    fn composed_multiplies() {
        let a = FlatChannel::new(Complex64::from_real(0.5));
        let b = FlatChannel::new(Complex64::from_polar(0.4, 1.0));
        let comp = ComposedChannel::new(vec![Box::new(a), Box::new(b)]);
        let h = comp.response(915e6);
        assert!((h.norm() - 0.2).abs() < 1e-12);
        assert!((h.arg() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn layered_path_implements_trait() {
        let path = single_medium_path(1.0, Medium::muscle(), 0.02);
        let h = ChannelModel::response(&path, 915e6);
        assert!(h.norm() > 0.0 && h.norm() < 1.0);
        assert!((ChannelModel::power_gain(&path, 915e6) - h.norm_sqr()).abs() < 1e-15);
    }

    #[test]
    fn ensemble_blind_draw() {
        let mut rng = StdRng::seed_from_u64(14);
        let ens = ChannelEnsemble::blind(&mut rng, 8, 0.3, 915e6);
        assert_eq!(ens.len(), 8);
        assert!(!ens.is_empty());
        let rs = ens.responses(915e6);
        assert_eq!(rs.len(), 8);
        for r in &rs {
            assert!((r.norm() - 0.3).abs() < 1e-12);
        }
        // Phases differ across antennas.
        assert!((rs[0].arg() - rs[1].arg()).abs() > 1e-6);
    }
}
