//! Tap-delay-line multipath channels.
//!
//! Indoor reflections (and in-vivo reflections off organs, §3.1 of the
//! paper) make the channel a superposition of paths with distinct delays
//! and complex gains. Within CIB's narrow band (≤137 Hz spread) the channel
//! is flat but *unknown*; across wider spans it becomes frequency
//! selective. Both behaviours emerge from this model.

use ivn_dsp::complex::Complex64;
use ivn_runtime::rng::Rng;
use std::f64::consts::TAU;

/// One propagation path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Path {
    /// Absolute delay in seconds.
    pub delay_s: f64,
    /// Complex gain (amplitude and phase at zero frequency offset).
    pub gain: Complex64,
}

/// A multipath channel as a sum of discrete paths.
#[derive(Debug, Clone, PartialEq)]
pub struct MultipathChannel {
    paths: Vec<Path>,
}

impl MultipathChannel {
    /// Creates a channel from explicit paths.
    ///
    /// # Panics
    /// Panics if no path is given or any delay is negative.
    pub fn new(paths: Vec<Path>) -> Self {
        assert!(!paths.is_empty(), "need at least one path");
        assert!(
            paths.iter().all(|p| p.delay_s >= 0.0),
            "delays must be non-negative"
        );
        MultipathChannel { paths }
    }

    /// A single line-of-sight path.
    pub fn line_of_sight(delay_s: f64, gain: Complex64) -> Self {
        Self::new(vec![Path { delay_s, gain }])
    }

    /// Draws a Rayleigh channel: `n_paths` scatterers with an exponential
    /// power-delay profile of RMS spread `rms_delay_s`, uniform phases, and
    /// total average power `total_power`.
    pub fn rayleigh<R: Rng + ?Sized>(
        rng: &mut R,
        n_paths: usize,
        rms_delay_s: f64,
        total_power: f64,
    ) -> Self {
        assert!(n_paths > 0, "need at least one path");
        assert!(rms_delay_s > 0.0 && total_power >= 0.0);
        let mut paths = Vec::with_capacity(n_paths);
        let mut norm = 0.0;
        let mut raw = Vec::with_capacity(n_paths);
        for _ in 0..n_paths {
            // Exponential delays.
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let delay = -rms_delay_s * u.ln();
            // Power follows the same exponential profile.
            let p = (-delay / rms_delay_s).exp();
            norm += p;
            raw.push((delay, p));
        }
        for (delay, p) in raw {
            let amp = (p / norm * total_power).sqrt();
            let phase = rng.random::<f64>() * TAU;
            paths.push(Path {
                delay_s: delay,
                gain: Complex64::from_polar(amp, phase),
            });
        }
        MultipathChannel::new(paths)
    }

    /// Draws a Rician channel: a LoS path carrying `k_factor/(1+k)` of the
    /// power plus a Rayleigh tail with the remainder.
    pub fn rician<R: Rng + ?Sized>(
        rng: &mut R,
        k_factor: f64,
        n_scatter: usize,
        rms_delay_s: f64,
        total_power: f64,
        los_delay_s: f64,
    ) -> Self {
        assert!(k_factor >= 0.0);
        let los_power = total_power * k_factor / (1.0 + k_factor);
        let nlos_power = total_power - los_power;
        let mut paths = vec![Path {
            delay_s: los_delay_s,
            gain: Complex64::from_polar(los_power.sqrt(), rng.random::<f64>() * TAU),
        }];
        if n_scatter > 0 && nlos_power > 0.0 {
            let tail = Self::rayleigh(rng, n_scatter, rms_delay_s, nlos_power);
            paths.extend(tail.paths.into_iter().map(|mut p| {
                p.delay_s += los_delay_s;
                p
            }));
        }
        MultipathChannel::new(paths)
    }

    /// Paths in this channel.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Frequency response `H(f) = Σ g_i e^{-j2πf τ_i}` at absolute
    /// frequency `freq_hz`.
    pub fn response(&self, freq_hz: f64) -> Complex64 {
        self.paths
            .iter()
            .map(|p| p.gain * Complex64::cis(-TAU * freq_hz * p.delay_s))
            .sum()
    }

    /// Average (delay-integrated) channel power `Σ |g_i|²`.
    pub fn mean_power(&self) -> f64 {
        self.paths.iter().map(|p| p.gain.norm_sqr()).sum()
    }

    /// RMS delay spread στ, seconds.
    pub fn rms_delay_spread(&self) -> f64 {
        let total = self.mean_power();
        if total == 0.0 {
            return 0.0;
        }
        let mean_delay: f64 = self
            .paths
            .iter()
            .map(|p| p.delay_s * p.gain.norm_sqr())
            .sum::<f64>()
            / total;
        let second: f64 = self
            .paths
            .iter()
            .map(|p| (p.delay_s - mean_delay).powi(2) * p.gain.norm_sqr())
            .sum::<f64>()
            / total;
        second.sqrt()
    }

    /// Approximate coherence bandwidth `1/(5στ)` Hz (50 %-correlation rule
    /// of thumb); infinite for a single path.
    pub fn coherence_bandwidth(&self) -> f64 {
        let s = self.rms_delay_spread();
        if s == 0.0 {
            f64::INFINITY
        } else {
            1.0 / (5.0 * s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::StdRng;

    #[test]
    fn los_channel_flat_magnitude() {
        let ch = MultipathChannel::line_of_sight(10e-9, Complex64::from_polar(0.5, 1.0));
        for f in [900e6, 915e6, 930e6] {
            assert!((ch.response(f).norm() - 0.5).abs() < 1e-12);
        }
        assert_eq!(ch.coherence_bandwidth(), f64::INFINITY);
    }

    #[test]
    fn narrowband_flatness_within_cib_span() {
        // Over 137 Hz, even a 100 ns-spread channel is essentially flat:
        // this is why CIB's tones all see the same |H| (paper §3.7).
        let mut rng = StdRng::seed_from_u64(1);
        let ch = MultipathChannel::rayleigh(&mut rng, 8, 100e-9, 1.0);
        let h1 = ch.response(915e6);
        let h2 = ch.response(915e6 + 137.0);
        assert!((h1 - h2).norm() / h1.norm().max(1e-12) < 1e-3);
    }

    #[test]
    fn wideband_selectivity() {
        // Across 35 MHz (the beamformer→reader spacing) the same channel
        // decorrelates: the out-of-band reader sees a different channel.
        let mut rng = StdRng::seed_from_u64(2);
        let mut decorrelated = 0;
        for _ in 0..50 {
            let ch = MultipathChannel::rayleigh(&mut rng, 8, 100e-9, 1.0);
            let h1 = ch.response(915e6);
            let h2 = ch.response(880e6);
            if (h1 - h2).norm() / h1.norm().max(1e-12) > 0.1 {
                decorrelated += 1;
            }
        }
        assert!(decorrelated > 35, "only {decorrelated}/50 decorrelated");
    }

    #[test]
    fn rayleigh_power_normalization() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let ch = MultipathChannel::rayleigh(&mut rng, 10, 50e-9, 2.0);
            assert!((ch.mean_power() - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rician_k_factor_split() {
        let mut rng = StdRng::seed_from_u64(4);
        let k = 4.0;
        let ch = MultipathChannel::rician(&mut rng, k, 6, 30e-9, 1.0, 5e-9);
        assert!((ch.mean_power() - 1.0).abs() < 1e-9);
        // LoS path is the first and carries k/(1+k) of power.
        let los = ch.paths()[0].gain.norm_sqr();
        assert!((los - 0.8).abs() < 1e-9);
    }

    #[test]
    fn pure_los_rician() {
        let mut rng = StdRng::seed_from_u64(5);
        let ch = MultipathChannel::rician(&mut rng, 1e12, 4, 30e-9, 1.0, 0.0);
        assert!((ch.paths()[0].gain.norm_sqr() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn delay_spread_and_coherence() {
        let ch = MultipathChannel::new(vec![
            Path {
                delay_s: 0.0,
                gain: Complex64::from_real(1.0),
            },
            Path {
                delay_s: 100e-9,
                gain: Complex64::from_real(1.0),
            },
        ]);
        // Equal powers at 0 and 100 ns → στ = 50 ns.
        assert!((ch.rms_delay_spread() - 50e-9).abs() < 1e-15);
        assert!((ch.coherence_bandwidth() - 4e6).abs() < 1.0);
    }

    #[test]
    fn two_path_fading_notch() {
        // Equal paths with delay difference τ create nulls every 1/τ Hz.
        let tau = 10e-9;
        let ch = MultipathChannel::new(vec![
            Path {
                delay_s: 0.0,
                gain: Complex64::from_real(1.0),
            },
            Path {
                delay_s: tau,
                gain: Complex64::from_real(1.0),
            },
        ]);
        // At f = 1/(2τ) = 50 MHz the paths cancel.
        assert!(ch.response(50e6).norm() < 1e-9);
        // At f = 1/τ they add.
        assert!((ch.response(100e6).norm() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_from_seed() {
        let a = MultipathChannel::rayleigh(&mut StdRng::seed_from_u64(9), 5, 50e-9, 1.0);
        let b = MultipathChannel::rayleigh(&mut StdRng::seed_from_u64(9), 5, 50e-9, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn rejects_empty() {
        MultipathChannel::new(vec![]);
    }
}
