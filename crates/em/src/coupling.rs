//! Inter-tag coupling: mutual detuning and body shadowing in dense
//! populations.
//!
//! A single implanted tag sees the channel the layered-path model
//! predicts. Pack tens of tags into the same organ and two additional
//! effects appear (Dumphart et al., "High-Density Effects" — PAPERS.md):
//!
//! * **Mutual detuning** — each neighbour's antenna loads the tag's
//!   near field, pulling its resonance off the carrier. The near-field
//!   coupling coefficient between small loops falls off as the cube of
//!   separation, so we accumulate a pairwise `(d₀/d)³` coupling sum and
//!   convert it to a power penalty via the mismatch form
//!   `1 / (1 + detuning·κ)²`.
//! * **Shadowing** — tags between a tag and the reader array absorb and
//!   scatter part of the illumination; each interposed neighbour costs a
//!   fixed dB step.
//!
//! Both effects are deterministic functions of the population geometry
//! (count + spacing along the implant axis, ordered away from the
//! array), returned as a per-tag multiplicative power-gain factor in
//! `(0, 1]` that experiments apply on top of the per-tag link budget.

/// Pairwise detuning/shadowing model for a linear population of tags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingModel {
    /// Detuning strength: power penalty `1/(1 + detuning·κ)²` where κ is
    /// the pairwise `(d₀/d)³` coupling sum. 0 disables.
    pub detuning: f64,
    /// Reference spacing d₀ (metres) at which a neighbour contributes a
    /// full unit of coupling.
    pub reference_spacing_m: f64,
    /// Shadowing cost in dB per tag interposed between a tag and the
    /// array. 0 disables.
    pub shadow_db_per_tag: f64,
}

impl CouplingModel {
    /// No inter-tag effects: every factor is exactly 1.
    pub fn none() -> Self {
        CouplingModel {
            detuning: 0.0,
            reference_spacing_m: 0.02,
            shadow_db_per_tag: 0.0,
        }
    }

    /// A dense-implant default: noticeable detuning inside 2 cm and a
    /// 0.1 dB shadowing step per interposed tag.
    pub fn dense_implants() -> Self {
        CouplingModel {
            detuning: 0.05,
            reference_spacing_m: 0.02,
            shadow_db_per_tag: 0.1,
        }
    }

    /// Builds a model from the scenario-level knobs.
    pub fn new(detuning: f64, reference_spacing_m: f64, shadow_db_per_tag: f64) -> Self {
        CouplingModel {
            detuning,
            reference_spacing_m,
            shadow_db_per_tag,
        }
    }

    /// Coupling contribution of a neighbour `m` spacings away.
    fn contrib(&self, m: usize, spacing_m: f64) -> f64 {
        let d0 = self.reference_spacing_m.max(1e-6);
        let d = (m as f64 * spacing_m.max(1e-4)).max(d0);
        (d0 / d).powi(3)
    }

    /// Power-gain factor for tag `index` in a line of `n` tags spaced
    /// `spacing_m` apart (index 0 nearest the array). Always in `(0, 1]`.
    pub fn gain_factor(&self, index: usize, n: usize, spacing_m: f64) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let mut kappa = 0.0;
        for m in 1..=index.max(n - 1 - index) {
            let c = self.contrib(m, spacing_m);
            if m <= index {
                kappa += c;
            }
            if m <= n - 1 - index {
                kappa += c;
            }
        }
        self.factor_from(kappa, index)
    }

    /// Power-gain factors for the whole line, O(n) via prefix sums of
    /// the distance-dependent contributions.
    pub fn gain_factors(&self, n: usize, spacing_m: f64) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        // prefix[k] = Σ_{m=1..k} contrib(m); tag i has neighbours at
        // distances 1..i on the array side and 1..(n-1-i) beyond it.
        let mut prefix = vec![0.0; n];
        for m in 1..n {
            prefix[m] = prefix[m - 1] + self.contrib(m, spacing_m);
        }
        (0..n)
            .map(|i| self.factor_from(prefix[i] + prefix[n - 1 - i], i))
            .collect()
    }

    fn factor_from(&self, kappa: f64, index: usize) -> f64 {
        let detune = 1.0 / (1.0 + self.detuning.max(0.0) * kappa).powi(2);
        let shadow = 10f64.powf(-self.shadow_db_per_tag.max(0.0) * index as f64 / 10.0);
        (detune * shadow).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_disabled_models_are_unity() {
        let m = CouplingModel::dense_implants();
        assert_eq!(m.gain_factor(0, 1, 0.01), 1.0);
        assert_eq!(m.gain_factors(1, 0.01), vec![1.0]);
        let off = CouplingModel::none();
        for f in off.gain_factors(16, 0.005) {
            assert_eq!(f, 1.0);
        }
    }

    #[test]
    fn factors_match_reference_implementation() {
        let m = CouplingModel::dense_implants();
        for &(n, d) in &[(2usize, 0.001f64), (5, 0.003), (16, 0.01), (64, 0.002)] {
            let fast = m.gain_factors(n, d);
            for (i, &f) in fast.iter().enumerate() {
                let slow = m.gain_factor(i, n, d);
                assert!((f - slow).abs() < 1e-12, "n={n} i={i}: {f} vs {slow}");
            }
        }
    }

    #[test]
    fn denser_packing_costs_more() {
        let m = CouplingModel::dense_implants();
        let sparse = m.gain_factors(8, 0.05);
        let dense = m.gain_factors(8, 0.002);
        for (s, d) in sparse.iter().zip(&dense) {
            assert!(d <= s, "denser spacing should not improve gain");
        }
        assert!(dense[4] < sparse[4]);
    }

    #[test]
    fn middle_tags_detune_most_edge_tags_shadow_least() {
        // Detuning only, spacing wide enough that pair distances differ.
        let m = CouplingModel::new(0.2, 0.02, 0.0);
        let f = m.gain_factors(9, 0.01);
        // Centre tag has the most close neighbours.
        assert!(f[4] < f[0]);
        assert!(f[4] < f[8]);
        // Pure detuning is symmetric about the centre.
        assert!((f[0] - f[8]).abs() < 1e-12);

        let s = CouplingModel::new(0.0, 0.02, 0.5); // shadowing only
        let g = s.gain_factors(5, 0.01);
        for w in g.windows(2) {
            assert!(w[1] < w[0], "deeper tags must be more shadowed");
        }
    }

    #[test]
    fn factors_always_in_unit_interval() {
        let m = CouplingModel::new(3.0, 0.05, 2.0);
        for f in m.gain_factors(200, 0.0005) {
            assert!(f > 0.0 && f <= 1.0);
        }
    }
}
