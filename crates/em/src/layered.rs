//! Layered-body propagation: the paper's Eq. 2 generalized to a stack of
//! tissue layers.
//!
//! A [`LayeredPath`] models one transmit antenna's signal reaching an
//! implanted sensor: an air gap of length `r` (spherical spreading, `1/r`
//! referenced to 1 m), then a sequence of tissue layers each contributing a
//! boundary transmittance and an exponential attenuation `e^{-α_i d_i}`
//! with phase `e^{-jβ_i d_i}`. This is exactly
//!
//! ```text
//! |E| = (T · A / r) · e^{-Σ α_i d_i}
//! ```
//!
//! with `T` the product of per-boundary amplitude transmittances, i.e. the
//! multi-layer form of the paper's `|E| = (T·A/r)·e^{-αd}`.

use crate::boundary::amplitude_transmittance;
use crate::medium::Medium;
use ivn_dsp::complex::Complex64;
use ivn_dsp::units::SPEED_OF_LIGHT;

/// One tissue layer: a medium and its thickness.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// The layer's medium.
    pub medium: Medium,
    /// Thickness along the propagation path, metres.
    pub thickness_m: f64,
}

impl Layer {
    /// Creates a layer.
    ///
    /// # Panics
    /// Panics on negative thickness.
    pub fn new(medium: Medium, thickness_m: f64) -> Self {
        assert!(thickness_m >= 0.0, "layer thickness must be non-negative");
        Layer {
            medium,
            thickness_m,
        }
    }
}

/// A one-way propagation path: air gap followed by a stack of layers.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredPath {
    /// Distance travelled in air before the first boundary, metres.
    pub air_distance_m: f64,
    /// Tissue layers in the order the wave crosses them.
    pub layers: Vec<Layer>,
}

impl LayeredPath {
    /// Creates a path with the given air gap and layers.
    ///
    /// # Panics
    /// Panics if the air distance is not strictly positive (the `1/r`
    /// spreading reference needs `r > 0`).
    pub fn new(air_distance_m: f64, layers: Vec<Layer>) -> Self {
        assert!(air_distance_m > 0.0, "air distance must be positive");
        LayeredPath {
            air_distance_m,
            layers,
        }
    }

    /// A pure free-space path of length `r` metres.
    pub fn free_space(r: f64) -> Self {
        Self::new(r, Vec::new())
    }

    /// Total tissue depth (sum of layer thicknesses), metres.
    pub fn depth(&self) -> f64 {
        self.layers.iter().map(|l| l.thickness_m).sum()
    }

    /// Complex channel response at `freq_hz`, referenced to unit amplitude
    /// at 1 m in free space.
    ///
    /// Amplitude: `(1/r) · Π √T_i · Π e^{-α_i d_i}`.
    /// Phase: free-space wavenumber over the air gap plus each layer's β·d.
    pub fn response(&self, freq_hz: f64) -> Complex64 {
        let air = Medium::air();
        // Spherical spreading over the air gap (amplitude 1/r, r in m,
        // normalized to 1 at r = 1 m) and free-space phase.
        let k0 = 2.0 * std::f64::consts::PI * freq_hz / SPEED_OF_LIGHT;
        let mut h = Complex64::from_polar(1.0 / self.air_distance_m, -k0 * self.air_distance_m);

        let mut prev = &air;
        for layer in &self.layers {
            // Boundary crossing into this layer.
            let t = amplitude_transmittance(prev, &layer.medium, freq_hz);
            h = h * t;
            // Bulk propagation through the layer.
            h *= layer.medium.propagate(freq_hz, layer.thickness_m);
            prev = &layer.medium;
        }
        h
    }

    /// Path loss in dB (positive) relative to the 1 m free-space reference.
    pub fn path_loss_db(&self, freq_hz: f64) -> f64 {
        -20.0 * self.response(freq_hz).norm().log10()
    }

    /// Group delay approximation of the path: air at `c`, layers at their
    /// phase velocities `ω/β`. Seconds.
    pub fn delay(&self, freq_hz: f64) -> f64 {
        let mut t = self.air_distance_m / SPEED_OF_LIGHT;
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        for layer in &self.layers {
            let v = omega / layer.medium.beta(freq_hz);
            t += layer.thickness_m / v;
        }
        t
    }
}

/// Convenience constructor for the paper's canonical experiment: an air gap
/// then a single medium at a given depth (the water tank of Fig. 7, or one
/// of the Fig. 11 media).
pub fn single_medium_path(air_m: f64, medium: Medium, depth_m: f64) -> LayeredPath {
    LayeredPath::new(air_m, vec![Layer::new(medium, depth_m)])
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 915e6;

    #[test]
    fn free_space_inverse_r() {
        let near = LayeredPath::free_space(1.0).response(F).norm();
        let far = LayeredPath::free_space(10.0).response(F).norm();
        assert!((near - 1.0).abs() < 1e-12);
        assert!((far - 0.1).abs() < 1e-12);
        // Power decays quadratically → 20 dB per decade.
        let pl = LayeredPath::free_space(10.0).path_loss_db(F);
        assert!((pl - 20.0).abs() < 1e-9);
    }

    #[test]
    fn tissue_depth_dominates_air_distance() {
        // Paper Fig. 3: in-air loss is polynomial, in-tissue exponential.
        // 5 extra cm of air ≈ negligible; 5 cm of muscle ≈ >10 dB.
        let base = single_medium_path(0.5, Medium::muscle(), 0.0).path_loss_db(F);
        let more_air = single_medium_path(0.55, Medium::muscle(), 0.0).path_loss_db(F);
        let more_tissue = single_medium_path(0.5, Medium::muscle(), 0.05).path_loss_db(F);
        assert!(more_air - base < 1.0);
        assert!(more_tissue - base > 8.0);
    }

    #[test]
    fn response_includes_boundary_loss() {
        let no_tissue = LayeredPath::free_space(0.5).path_loss_db(F);
        let zero_depth = single_medium_path(0.5, Medium::muscle(), 0.0).path_loss_db(F);
        let diff = zero_depth - no_tissue;
        // Only the boundary separates the two: 3-5 dB.
        assert!(diff > 2.5 && diff < 5.5, "boundary diff {diff}");
    }

    #[test]
    fn multilayer_skin_fat_muscle() {
        // A subcutaneous stack: the response must be the product of parts.
        let path = LayeredPath::new(
            0.5,
            vec![
                Layer::new(Medium::skin(), 0.002),
                Layer::new(Medium::fat(), 0.01),
                Layer::new(Medium::muscle(), 0.02),
            ],
        );
        assert!((path.depth() - 0.032).abs() < 1e-12);
        let h = path.response(F);
        assert!(h.norm() > 0.0 && h.norm() < 1.0);
        // Deeper stack attenuates more.
        let deeper = LayeredPath::new(
            0.5,
            vec![
                Layer::new(Medium::skin(), 0.002),
                Layer::new(Medium::fat(), 0.01),
                Layer::new(Medium::muscle(), 0.05),
            ],
        );
        assert!(deeper.response(F).norm() < h.norm());
    }

    #[test]
    fn phase_advances_with_distance() {
        let a = LayeredPath::free_space(1.0).response(F);
        let b = LayeredPath::free_space(1.0 + 0.3276 / 2.0).response(F); // half λ
                                                                         // Half a wavelength → phase flip.
        let dphi = (b * a.conj()).arg();
        assert!((dphi.abs() - std::f64::consts::PI).abs() < 0.01);
    }

    #[test]
    fn delay_slower_in_tissue() {
        let air = LayeredPath::free_space(1.0).delay(F);
        let tissue = single_medium_path(0.5, Medium::muscle(), 0.5).delay(F);
        assert!((air - 1.0 / SPEED_OF_LIGHT).abs() < 1e-15);
        // Same total length but half in muscle → longer delay.
        assert!(tissue > air);
    }

    #[test]
    fn different_frequencies_decorrelate_deep_paths() {
        // The phase difference between two close frequencies grows with
        // electrical length — the basis of frequency-selective behaviour.
        let path = single_medium_path(2.0, Medium::muscle(), 0.05);
        let h1 = path.response(900e6);
        let h2 = path.response(930e6);
        assert!((h1.arg() - h2.arg()).abs() > 1e-3);
    }

    #[test]
    #[should_panic(expected = "air distance")]
    fn rejects_zero_air_distance() {
        LayeredPath::new(0.0, vec![]);
    }
}
