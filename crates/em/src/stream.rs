//! Per-block channel application and superposition.
//!
//! The narrowband (flat-per-tone) assumption of the paper's Eq. 5 makes
//! the channel stage of the sample path a single complex gain per
//! antenna. [`BlockSuperposer`] captures those gains once — evaluating
//! each antenna's channel at that antenna's own emission frequency —
//! and then folds any number of aligned per-antenna sample blocks into
//! the received superposition, block by block, with no per-call
//! allocation. `TxBank::superpose` and this stage share the exact
//! accumulation loop (`ivn_dsp::block::accumulate_scaled`), so the
//! streaming and whole-buffer paths agree bit for bit.

use crate::channel::ChannelEnsemble;
use ivn_dsp::block::accumulate_scaled;
use ivn_dsp::buffer::IqBuffer;
use ivn_dsp::complex::Complex64;

/// Streaming fan-in: applies one flat gain per antenna and sums the
/// result at the receive point.
#[derive(Debug, Clone)]
pub struct BlockSuperposer {
    gains: Vec<Complex64>,
}

impl BlockSuperposer {
    /// A superposer with explicit per-antenna gains.
    ///
    /// # Panics
    /// Panics if `gains` is empty.
    pub fn new(gains: Vec<Complex64>) -> Self {
        assert!(!gains.is_empty(), "nothing to superpose");
        BlockSuperposer { gains }
    }

    /// Captures gains from `ensemble`, evaluating antenna `i`'s channel
    /// at `emission_hz(i)` — the per-tone narrowband evaluation the
    /// batch pipeline performs.
    ///
    /// # Panics
    /// Panics if the ensemble is empty.
    pub fn from_ensemble(ensemble: &ChannelEnsemble, emission_hz: impl Fn(usize) -> f64) -> Self {
        let n = ensemble.len();
        let mut scratch = vec![Complex64::ZERO; n];
        let mut gains = vec![Complex64::ZERO; n];
        for (i, g) in gains.iter_mut().enumerate() {
            ensemble.responses_into(emission_hz(i), &mut scratch);
            *g = scratch[i];
        }
        BlockSuperposer::new(gains)
    }

    /// The per-antenna gains.
    pub fn gains(&self) -> &[Complex64] {
        &self.gains
    }

    /// Number of antennas.
    pub fn len(&self) -> usize {
        self.gains.len()
    }

    /// Whether the superposer has no antennas (never after construction).
    pub fn is_empty(&self) -> bool {
        self.gains.is_empty()
    }

    /// Superposes one aligned block per antenna into `out` (cleared and
    /// refilled; capacity is reused across calls, so the steady state
    /// allocates nothing).
    ///
    /// # Panics
    /// Panics if the number of blocks differs from the number of gains
    /// or the blocks are not all the same length.
    pub fn superpose_block<'a>(
        &self,
        blocks: impl Iterator<Item = &'a [Complex64]>,
        out: &mut Vec<Complex64>,
    ) {
        out.clear();
        let mut seen = 0usize;
        for (block, &g) in blocks.zip(&self.gains) {
            if seen == 0 {
                out.resize(block.len(), Complex64::ZERO);
            }
            accumulate_scaled(out, block, g);
            seen += 1;
        }
        assert_eq!(seen, self.gains.len(), "one block per antenna required");
    }

    /// Whole-buffer convenience: superposes full per-antenna buffers in
    /// one call (a single maximal block).
    ///
    /// # Panics
    /// Panics on antenna-count or length mismatch, or empty input.
    pub fn superpose_buffers(&self, emissions: &[IqBuffer]) -> IqBuffer {
        assert!(!emissions.is_empty(), "nothing to superpose");
        let mut out = Vec::new();
        self.superpose_block(emissions.iter().map(|e| e.samples()), &mut out);
        IqBuffer::new(out, emissions[0].sample_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::StdRng;

    fn tone(phase_step: f64, len: usize) -> Vec<Complex64> {
        (0..len)
            .map(|k| Complex64::cis(phase_step * k as f64))
            .collect()
    }

    #[test]
    fn block_superposition_matches_whole_buffer() {
        let gains = vec![
            Complex64::from_polar(0.3, 0.4),
            Complex64::from_polar(0.3, 2.2),
            Complex64::from_polar(0.3, 5.0),
        ];
        let sp = BlockSuperposer::new(gains.clone());
        let emissions: Vec<Vec<Complex64>> =
            (0..3).map(|i| tone(0.01 * (i + 1) as f64, 500)).collect();

        let mut whole = Vec::new();
        sp.superpose_block(emissions.iter().map(|e| e.as_slice()), &mut whole);

        for block in [1usize, 7, 256] {
            let mut streamed: Vec<Complex64> = Vec::new();
            let mut scratch = Vec::new();
            let mut start = 0;
            while start < 500 {
                let end = (start + block).min(500);
                sp.superpose_block(emissions.iter().map(|e| &e[start..end]), &mut scratch);
                streamed.extend_from_slice(&scratch);
                start = end;
            }
            assert_eq!(streamed, whole, "block {block}");
        }
    }

    #[test]
    fn from_ensemble_picks_own_frequency_response() {
        let mut rng = StdRng::seed_from_u64(7);
        let ens = ChannelEnsemble::blind(&mut rng, 4, 0.3, 915e6);
        let freqs = [915e6, 915e6 + 7.0, 915e6 + 20.0, 915e6 + 49.0];
        let sp = BlockSuperposer::from_ensemble(&ens, |i| freqs[i]);
        for (i, &g) in sp.gains().iter().enumerate() {
            assert_eq!(g, ens.responses(freqs[i])[i], "antenna {i}");
        }
        assert_eq!(sp.len(), 4);
        assert!(!sp.is_empty());
    }

    #[test]
    #[should_panic(expected = "one block per antenna")]
    fn antenna_count_checked() {
        let sp = BlockSuperposer::new(vec![Complex64::ONE; 2]);
        let one = tone(0.1, 8);
        let mut out = Vec::new();
        sp.superpose_block(std::iter::once(one.as_slice()), &mut out);
    }
}
