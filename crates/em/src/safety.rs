//! Regulatory and exposure compliance checks.
//!
//! The paper argues (§7) that CIB's "intrinsic duty-cycled operation makes
//! it FCC compliant and safe for human exposure": the envelope peaks at N×
//! amplitude only for a vanishing fraction of each period, so the *average*
//! radiated power stays at the per-antenna budget while the *peak* clears
//! the harvester threshold. These helpers quantify that argument.

/// FCC Part 15.247 limit for 902–928 MHz ISM: 30 dBm transmit power into a
/// 6 dBi antenna, i.e. 36 dBm EIRP.
pub const FCC_EIRP_LIMIT_DBM: f64 = 36.0;

/// A transmit-side power budget under evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxBudget {
    /// Conducted power per antenna, dBm.
    pub per_antenna_dbm: f64,
    /// Antenna gain, dBi.
    pub antenna_gain_dbi: f64,
    /// Number of transmit antennas.
    pub n_antennas: usize,
}

impl TxBudget {
    /// Per-antenna EIRP, dBm.
    pub fn eirp_per_antenna_dbm(&self) -> f64 {
        self.per_antenna_dbm + self.antenna_gain_dbi
    }

    /// Whether each individual transmitter respects the FCC EIRP limit.
    ///
    /// CIB transmitters are on *different* frequencies, so each is an
    /// independent intentional radiator assessed on its own (unlike a
    /// phased array, whose coherent sum is assessed as one emission).
    pub fn per_antenna_compliant(&self) -> bool {
        self.eirp_per_antenna_dbm() <= FCC_EIRP_LIMIT_DBM + 1e-9
    }

    /// Total average radiated power across the bank, watts. Incoherent
    /// carriers add in average power regardless of phase.
    pub fn total_average_watts(&self) -> f64 {
        self.n_antennas as f64 * ivn_dsp::units::dbm_to_watts(self.eirp_per_antenna_dbm())
    }
}

/// Duty factor of a CIB envelope: the fraction of each period where the
/// envelope exceeds `threshold_fraction` of its peak.
///
/// `envelope` is one period of samples. A small duty factor is the paper's
/// safety argument: the N² peak exists for only a sliver of time.
pub fn peak_duty_factor(envelope: &[f64], threshold_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&threshold_fraction),
        "threshold fraction must be in [0,1]"
    );
    if envelope.is_empty() {
        return 0.0;
    }
    let peak = envelope.iter().cloned().fold(0.0, f64::max);
    if peak <= 0.0 {
        return 0.0;
    }
    let thr = peak * threshold_fraction;
    envelope.iter().filter(|&&v| v >= thr).count() as f64 / envelope.len() as f64
}

/// Time-averaged power of an envelope (mean of squared amplitude),
/// normalized to a single antenna's unit carrier. For an N-tone CIB
/// envelope of unit amplitudes this is ≈ N — the same average power as N
/// independent transmitters — even though the peak is N².
pub fn average_power(envelope: &[f64]) -> f64 {
    if envelope.is_empty() {
        return 0.0;
    }
    envelope.iter().map(|v| v * v).sum::<f64>() / envelope.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_dsp::osc::MultiTone;

    #[test]
    fn budget_compliance() {
        // The paper's prototype: 30 dBm PA into 7 dBi antenna = 37 dBm EIRP,
        // 1 dB over the Part 15 limit (experimental license territory).
        let paper = TxBudget {
            per_antenna_dbm: 30.0,
            antenna_gain_dbi: 7.0,
            n_antennas: 8,
        };
        assert!(!paper.per_antenna_compliant());
        let derated = TxBudget {
            per_antenna_dbm: 29.0,
            antenna_gain_dbi: 7.0,
            n_antennas: 8,
        };
        assert!(derated.per_antenna_compliant());
        assert!((derated.eirp_per_antenna_dbm() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn total_average_adds_incoherently() {
        let b = TxBudget {
            per_antenna_dbm: 30.0,
            antenna_gain_dbi: 0.0,
            n_antennas: 10,
        };
        assert!((b.total_average_watts() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cib_peak_is_rare() {
        // A 10-tone CIB envelope spends very little time near its peak.
        let offsets = [0.0, 7.0, 20.0, 49.0, 68.0, 73.0, 90.0, 113.0, 121.0, 137.0];
        let mt = MultiTone::from_freqs_phases(&offsets, &[0.0; 10]);
        let env: Vec<f64> = (0..100_000)
            .map(|k| mt.envelope(k as f64 / 100_000.0))
            .collect();
        let duty = peak_duty_factor(&env, 0.9);
        assert!(duty < 0.01, "duty at 90% of peak: {duty}");
    }

    #[test]
    fn cib_average_power_is_n_not_n_squared() {
        let offsets = [0.0, 7.0, 20.0, 49.0, 68.0];
        let mt = MultiTone::from_freqs_phases(&offsets, &[0.0; 5]);
        let env: Vec<f64> = (0..50_000)
            .map(|k| mt.envelope(k as f64 / 50_000.0))
            .collect();
        let avg = average_power(&env);
        // Average power of N unit tones ≈ N (5), while the peak is N² (25).
        assert!((avg - 5.0).abs() < 0.2, "avg power {avg}");
        let peak: f64 = env.iter().map(|v| v * v).fold(0.0, f64::max);
        assert!(peak > 24.0);
    }

    #[test]
    fn duty_factor_edge_cases() {
        assert_eq!(peak_duty_factor(&[], 0.5), 0.0);
        assert_eq!(peak_duty_factor(&[0.0, 0.0], 0.5), 0.0);
        assert_eq!(peak_duty_factor(&[1.0, 1.0], 0.5), 1.0);
        assert_eq!(average_power(&[]), 0.0);
    }
}
