//! Frequency-plan optimization — the paper's Eq. 10.
//!
//! Finds integer offsets `Δf₂…Δf_N` maximizing the Monte-Carlo expectation
//! of the peak envelope over random phase draws, subject to the Eq. 9 RMS
//! constraint. The paper solves this with a one-time Monte-Carlo
//! simulation ("less than 5 mins in MATLAB"); we use seeded random-restart
//! hill climbing, parallelized across restarts on the `ivn-runtime` scoped
//! worker pool. A worst-set search (same machinery, minimizing) provides
//! Fig. 6's bad example.

use crate::kernels::{CrnKernel, EnvelopeScratch};
use crate::waveform::rms_offset;
use ivn_runtime::rng::{Rng, StdRng};

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqSelConfig {
    /// Number of antennas N (tones including the zero-offset reference).
    pub n_antennas: usize,
    /// RMS-offset ceiling from Eq. 9, Hz.
    pub rms_limit_hz: f64,
    /// Largest single offset considered, Hz.
    pub max_offset_hz: u32,
    /// Monte-Carlo phase draws per objective evaluation.
    pub mc_draws: usize,
    /// Time-grid resolution for the per-draw peak search.
    pub grid: usize,
    /// Random restarts.
    pub restarts: usize,
    /// Hill-climbing iterations per restart.
    pub iterations: usize,
}

impl FreqSelConfig {
    /// The paper-scale configuration: N = 10, α = 0.5, Δt = 800 µs
    /// (RMS ≤ 199 Hz).
    pub fn paper_scale() -> Self {
        FreqSelConfig {
            n_antennas: 10,
            rms_limit_hz: 199.0,
            max_offset_hz: 256,
            mc_draws: 96,
            grid: 1024,
            restarts: 8,
            iterations: 160,
        }
    }

    /// A fast configuration for tests.
    pub fn test_scale(n: usize) -> Self {
        FreqSelConfig {
            n_antennas: n,
            rms_limit_hz: 199.0,
            max_offset_hz: 160,
            mc_draws: 32,
            grid: 512,
            restarts: 3,
            iterations: 60,
        }
    }
}

/// A selected frequency plan with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyPlan {
    /// Offsets in Hz, first always 0, ascending.
    pub offsets_hz: Vec<f64>,
    /// Expected peak envelope (Monte-Carlo estimate), in units of a single
    /// antenna's amplitude; the ideal ceiling is N.
    pub expected_peak: f64,
}

impl FrequencyPlan {
    /// Expected peak *power* gain over a single antenna, `(E[peak])²`.
    pub fn expected_power_gain(&self) -> f64 {
        self.expected_peak * self.expected_peak
    }

    /// RMS of the offsets.
    pub fn rms_hz(&self) -> f64 {
        rms_offset(&self.offsets_hz)
    }
}

/// Monte-Carlo estimate of `E_β[max_t Y(t)]` for an offset set, using
/// `draws` random phase vectors from `rng`.
///
/// Allocates one [`EnvelopeScratch`] for the call; batched evaluation
/// loops should hold their own scratch and use
/// [`expected_peak_scratch`].
pub fn expected_peak<R: Rng + ?Sized>(
    offsets_hz: &[f64],
    draws: usize,
    grid: usize,
    rng: &mut R,
) -> f64 {
    let mut scratch = EnvelopeScratch::new();
    expected_peak_scratch(&mut scratch, offsets_hz, draws, grid, rng)
}

/// [`expected_peak`] on a caller-supplied workspace: zero allocations in
/// steady state (the scratch's grid and phase buffers are reused across
/// calls and draws).
pub fn expected_peak_scratch<R: Rng + ?Sized>(
    scratch: &mut EnvelopeScratch,
    offsets_hz: &[f64],
    draws: usize,
    grid: usize,
    rng: &mut R,
) -> f64 {
    assert!(draws > 0);
    let _span = ivn_runtime::span!("freqsel.mc_eval_ns");
    let _kernel_span = ivn_runtime::span!("freqsel.kernel_batch_ns");
    ivn_runtime::obs_count!("freqsel.mc_evals", 1);
    ivn_runtime::obs_count!("freqsel.mc_draws", draws);
    scratch.expected_peak(offsets_hz, draws, grid, rng)
}

/// Whether an offset set satisfies the RMS constraint.
pub fn feasible(offsets_hz: &[f64], rms_limit_hz: f64) -> bool {
    rms_offset(offsets_hz) <= rms_limit_hz
}

fn draw_feasible_set<R: Rng + ?Sized>(cfg: &FreqSelConfig, rng: &mut R) -> Vec<u32> {
    // Draw distinct nonzero offsets until feasible (rejection sampling with
    // shrinking range).
    let mut range = cfg.max_offset_hz;
    loop {
        let mut set = std::collections::BTreeSet::new();
        while set.len() < cfg.n_antennas - 1 {
            set.insert(rng.random_range(1..=range));
        }
        let offsets: Vec<f64> = std::iter::once(0.0)
            .chain(set.iter().map(|&v| v as f64))
            .collect();
        if feasible(&offsets, cfg.rms_limit_hz) {
            return std::iter::once(0u32).chain(set).collect();
        }
        // Rejection-sampling cost is invisible in wall-clock profiles
        // (the draws are cheap but can loop many times at tight RMS
        // limits); count them so tight configs show up in reports.
        ivn_runtime::obs_count!("freqsel.rejection_draws", 1);
        range = (range * 3 / 4).max(cfg.n_antennas as u32);
    }
}

fn climb(cfg: &FreqSelConfig, seed: u64, maximize: bool) -> FrequencyPlan {
    let _span = ivn_runtime::span!("freqsel.restart_ns");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = draw_feasible_set(cfg, &mut rng);
    // Common random numbers: one evaluation seed reused for every
    // candidate in this restart, so the climb compares candidates on the
    // same phase draws (variance reduction). The CRN kernel fixes the
    // phase draws once and caches the per-draw complex grids of the
    // current set, so each one-tone candidate costs O(grid·draws)
    // instead of O(N·grid·draws).
    let eval_seed: u64 = rng.random();
    let offsets: Vec<f64> = current.iter().map(|&v| v as f64).collect();
    let mut eval_rng = StdRng::seed_from_u64(eval_seed);
    let mut kernel = CrnKernel::new(&offsets, cfg.mc_draws, cfg.grid, &mut eval_rng);
    let mut best_score = kernel.score_current();
    // Maintained incrementally so feasibility checks allocate nothing.
    let mut sum_sq: f64 = current.iter().map(|&v| (v as f64) * (v as f64)).sum();
    let n = current.len() as f64;
    for _ in 0..cfg.iterations {
        // Perturb one non-reference offset.
        let idx = rng.random_range(1..current.len());
        let delta = *[1i64, -1, 2, -2, 5, -5, 11, -11, 23, -23]
            .get(rng.random_range(0..10usize))
            .expect("in range");
        let newv = (current[idx] as i64 + delta).clamp(1, cfg.max_offset_hz as i64) as u32;
        if current.iter().any(|&v| v == newv) {
            continue; // collision with an existing tone
        }
        let old = current[idx] as f64;
        let new = newv as f64;
        let cand_sum_sq = sum_sq - old * old + new * new;
        if (cand_sum_sq / n).sqrt() > cfg.rms_limit_hz {
            continue; // infeasible — skip without touching the kernel
        }
        let s = {
            let _span = ivn_runtime::span!("freqsel.kernel_incr_ns");
            kernel.score_swap(idx, new)
        };
        let better = if maximize {
            s > best_score
        } else {
            s < best_score
        };
        if better {
            best_score = s;
            kernel.commit_swap(idx, new);
            current[idx] = newv;
            sum_sq = cand_sum_sq;
        }
    }
    let mut offsets: Vec<f64> = current.iter().map(|&v| v as f64).collect();
    offsets.sort_by(f64::total_cmp);
    FrequencyPlan {
        offsets_hz: offsets,
        expected_peak: best_score,
    }
}

/// Runs the full optimization (Eq. 10): random-restart hill climbing, with
/// restarts in parallel. Deterministic for a given `seed`.
pub fn optimize(cfg: &FreqSelConfig, seed: u64) -> FrequencyPlan {
    assert!(cfg.n_antennas >= 2, "need at least two antennas");
    run_restarts(cfg, seed, true)
}

/// Finds a deliberately *bad* feasible plan (Fig. 6's "worst frequency"
/// curve) by minimizing the same objective.
pub fn pessimize(cfg: &FreqSelConfig, seed: u64) -> FrequencyPlan {
    assert!(cfg.n_antennas >= 2, "need at least two antennas");
    run_restarts(cfg, seed, false)
}

fn run_restarts(cfg: &FreqSelConfig, seed: u64, maximize: bool) -> FrequencyPlan {
    // Each restart is seeded independently, so the pool's scheduling
    // cannot affect the result — only how fast it arrives.
    let restarts: Vec<u64> = (0..cfg.restarts as u64).collect();
    let plans = ivn_runtime::par::par_map(&restarts, |_, &r| {
        climb(cfg, seed.wrapping_add(r * 0x9E37), maximize)
    });
    plans
        .into_iter()
        .max_by(|a, b| {
            let (x, y) = (a.expected_peak, b.expected_peak);
            if maximize {
                x.total_cmp(&y)
            } else {
                y.total_cmp(&x)
            }
        })
        .expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_OFFSETS_HZ;

    #[test]
    fn expected_peak_of_single_tone_is_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = expected_peak(&[0.0], 16, 64, &mut rng);
        assert!((e - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_plan_scores_high() {
        // The paper's published set recovers ~0.75 of the N = 10 amplitude
        // ceiling in expectation — far above any same-frequency scheme
        // (√(π/4·10) ≈ 2.8) and close to what any feasible integer plan
        // achieves under the 199 Hz RMS cap.
        let mut rng = StdRng::seed_from_u64(2);
        let e = expected_peak(&PAPER_OFFSETS_HZ, 64, 2048, &mut rng);
        assert!(e > 7.2, "expected peak {e}");
    }

    #[test]
    fn degenerate_plan_scores_low() {
        // All tones at the same frequency cannot scan: expected peak is
        // the |sum of random phasors| ≈ √(π/4·N) ≪ N.
        let mut rng = StdRng::seed_from_u64(3);
        let e = expected_peak(&[0.0; 5], 128, 64, &mut rng);
        assert!(e < 3.0, "degenerate expected peak {e}");
    }

    #[test]
    fn feasibility_check() {
        assert!(feasible(&PAPER_OFFSETS_HZ, 199.0));
        assert!(!feasible(&[0.0, 500.0, 700.0], 199.0));
    }

    #[test]
    fn optimize_produces_feasible_high_scoring_plan() {
        let cfg = FreqSelConfig::test_scale(5);
        let plan = optimize(&cfg, 42);
        assert_eq!(plan.offsets_hz.len(), 5);
        assert_eq!(plan.offsets_hz[0], 0.0);
        assert!(feasible(&plan.offsets_hz, cfg.rms_limit_hz));
        // 5 antennas: a good plan should reach ≥ 85 % of ceiling.
        assert!(plan.expected_peak > 4.2, "peak {}", plan.expected_peak);
        // Offsets distinct and sorted.
        for w in plan.offsets_hz.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn pessimize_is_clearly_worse() {
        let cfg = FreqSelConfig::test_scale(5);
        let best = optimize(&cfg, 7);
        let worst = pessimize(&cfg, 7);
        assert!(feasible(&worst.offsets_hz, cfg.rms_limit_hz));
        assert!(
            best.expected_peak > worst.expected_peak + 0.2,
            "best {} worst {}",
            best.expected_peak,
            worst.expected_peak
        );
    }

    #[test]
    fn optimize_deterministic_per_seed() {
        let cfg = FreqSelConfig::test_scale(4);
        let a = optimize(&cfg, 9);
        let b = optimize(&cfg, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn power_gain_squares_peak() {
        let plan = FrequencyPlan {
            offsets_hz: vec![0.0, 7.0],
            expected_peak: 1.9,
        };
        assert!((plan.expected_power_gain() - 3.61).abs() < 1e-12);
        assert!((plan.rms_hz() - (49.0f64 / 2.0).sqrt()).abs() < 1e-9);
    }
}
