//! Population-scale inventory experiments: link budgets + inter-tag
//! coupling feeding a full Gen2 anti-collision inventory.
//!
//! This is the scenario-level consumer of the PR-10 seam: a
//! [`ScenarioKind::Inventory`] scenario declares a [`TagPopulation`]
//! (count, spacing, coupling knobs) and a
//! [`PolicySpec`](crate::scenario::PolicySpec); [`InventoryExperiment`]
//! resolves everything that is trial-invariant **once** — per-tag
//! placements along the geometry axis, coupling gain factors, and the
//! CIB frequency plan (through the global plan cache, so a fleet of
//! bodies sharing an array computes the plan one time) — and then runs
//! trials through [`ivn_rfid::population::inventory_population`].
//!
//! Determinism: a trial consumes only forks of its trial stream — tag
//! `i` draws from `fork(i)` (channel realization + protocol RNG seed)
//! and the reader-side capture contests from `fork(count)` — so results
//! are bit-identical at any thread count.
//!
//! Two trial flavours share the protocol stage:
//!
//! * [`run_trial`](InventoryExperiment::run_trial) draws blind per-tag
//!   channels (the physical campaign path used by `evaluate`);
//! * [`run_trial_nominal`](InventoryExperiment::run_trial_nominal)
//!   powers tags from the precomputed nominal link budget (coherent CIB
//!   peak), skipping the per-tag channel draws — the bench fleet uses it
//!   to push millions of tag-sessions through the protocol layer.

use crate::body::Placement;
use crate::body::TagSpec;
use crate::cib::CibConfig;
use crate::scenario::{Scenario, ScenarioKind, TagPopulation};
use ivn_dsp::units::dbm_to_watts;
use ivn_rfid::anticollision::CaptureModel;
use ivn_rfid::population::inventory_population;
use ivn_rfid::tag::Tag;
use ivn_runtime::rng::{Rng, StdRng};

/// EPC base for inventory populations; tag `i` gets `base + i`.
const INVENTORY_EPC_BASE: u128 = 0x3006_0000_0000_0000_0000_0000;

/// Aggregate outcome of one inventory trial (one body, one population).
#[derive(Debug, Clone, PartialEq)]
pub struct InventoryRun {
    /// Population size.
    pub population: usize,
    /// Tags that harvested enough power to participate.
    pub powered: usize,
    /// Tags actually inventoried.
    pub inventoried: usize,
    /// Inventory rounds executed.
    pub rounds: usize,
    /// Whether every powered tag was read before `max_rounds`.
    pub terminated: bool,
    /// Total protocol slots.
    pub slots: usize,
    /// Total collision slots.
    pub collisions: usize,
    /// Collision slots resolved by capture.
    pub captures: usize,
}

/// A prepared inventory experiment: everything trial-invariant resolved.
#[derive(Debug, Clone)]
pub struct InventoryExperiment {
    cib: CibConfig,
    spec: TagSpec,
    placements: Vec<Placement>,
    coupling: Vec<f64>,
    nominal_powers: Vec<f64>,
    policy: crate::scenario::PolicySpec,
    max_rounds: usize,
    capture_db: f64,
    fade_db: f64,
    eirp_w: f64,
}

impl InventoryExperiment {
    /// Resolves an `inventory` scenario: per-tag placements, coupling
    /// factors, nominal link budgets and the (cached) frequency plan.
    pub fn prepare(s: &Scenario, quick: bool) -> Result<Self, String> {
        let ScenarioKind::Inventory {
            population,
            policy,
            max_rounds,
            capture_db,
            fade_db,
        } = &s.kind
        else {
            return Err(format!(
                "scenario '{}' is not inventory (kind '{}')",
                s.name,
                s.kind.type_name()
            ));
        };
        Self::prepare_population(s, population, quick).map(|mut e| {
            e.policy = policy.clone();
            e.max_rounds = *max_rounds;
            e.capture_db = *capture_db;
            e.fade_db = *fade_db;
            e
        })
    }

    /// Resolves the trial-invariant state for an explicit population on
    /// the scenario's substrate (the campaign runner uses this to sweep
    /// population sizes without rewriting the scenario kind).
    pub fn prepare_population(
        s: &Scenario,
        population: &TagPopulation,
        quick: bool,
    ) -> Result<Self, String> {
        let cib = s.cib(quick);
        let spec = s.tag.spec();
        let eirp_w = dbm_to_watts(s.eirp_dbm);
        let coupling = population
            .coupling()
            .gain_factors(population.count, population.spacing_m);
        let mut placements = Vec::with_capacity(population.count);
        for i in 0..population.count {
            placements.push(
                s.placement
                    .at_offset(i as f64 * population.spacing_m)
                    .resolve()
                    .map_err(|e| e.reason)?,
            );
        }
        // Nominal budget at the coherent CIB peak: N² over one antenna.
        let n2 = (cib.n() * cib.n()) as f64;
        let nominal_powers: Vec<f64> = placements
            .iter()
            .zip(&coupling)
            .map(|(p, c)| p.nominal_rx_power(&spec, eirp_w, cib.carrier_hz) * n2 * c)
            .collect();
        Ok(InventoryExperiment {
            cib,
            spec,
            placements,
            coupling,
            nominal_powers,
            policy: crate::scenario::PolicySpec::Adaptive { q0: 4, c: 0.3 },
            max_rounds: 64,
            capture_db: 6.0,
            fade_db: 3.0,
            eirp_w,
        })
    }

    /// Population size.
    pub fn count(&self) -> usize {
        self.placements.len()
    }

    /// Same experiment with a different policy arm.
    pub fn with_policy(&self, policy: crate::scenario::PolicySpec) -> Self {
        InventoryExperiment {
            policy,
            ..self.clone()
        }
    }

    /// One physical trial: blind per-tag channel draws (tag `i` from
    /// `rng.fork(i)`), coupling-scaled CIB peak powers, then the full
    /// anti-collision inventory.
    pub fn run_trial(&self, rng: &StdRng) -> InventoryRun {
        let n = self.count();
        let mut tags = Vec::with_capacity(n);
        let mut powers = Vec::with_capacity(n);
        for i in 0..n {
            let mut tag_rng = rng.fork(i as u64);
            let trial = self.placements[i].draw_trial(
                &mut tag_rng,
                self.cib.n(),
                &self.spec,
                self.eirp_w,
                self.cib.carrier_hz,
            );
            let peak = self.cib.received_peak_power(&trial.channels) * self.coupling[i];
            self.push_tag(&mut tags, &mut powers, i, peak, tag_rng.random());
        }
        self.run_protocol(rng, tags, powers)
    }

    /// One protocol-dominated trial: tags power from the precomputed
    /// nominal budget (no channel draws); RNG is spent only on per-tag
    /// protocol seeds and capture contests. Bit-deterministic per trial
    /// stream, ~µs per tag — the fleet-scale bench path.
    pub fn run_trial_nominal(&self, rng: &StdRng) -> InventoryRun {
        let n = self.count();
        let mut tags = Vec::with_capacity(n);
        let mut powers = Vec::with_capacity(n);
        for i in 0..n {
            let mut tag_rng = rng.fork(i as u64);
            self.push_tag(
                &mut tags,
                &mut powers,
                i,
                self.nominal_powers[i],
                tag_rng.random(),
            );
        }
        self.run_protocol(rng, tags, powers)
    }

    fn push_tag(&self, tags: &mut Vec<Tag>, powers: &mut Vec<f64>, i: usize, peak: f64, seed: u64) {
        let mut tag = Tag::with_epc96(INVENTORY_EPC_BASE + i as u128, seed);
        tag.set_powered(self.spec.power.can_power_at_peak(peak));
        tag.set_single_read(true);
        powers.push(peak);
        tags.push(tag);
    }

    fn run_protocol(&self, rng: &StdRng, mut tags: Vec<Tag>, powers: Vec<f64>) -> InventoryRun {
        let powered = tags.iter().filter(|t| t.is_powered()).count();
        let mut policy = self.policy.build();
        let mut capture = (self.capture_db > 0.0).then(|| {
            CaptureModel::new(
                powers,
                self.capture_db,
                self.fade_db,
                rng.fork(self.count() as u64),
            )
        });
        let out = inventory_population(
            policy.as_mut(),
            capture.as_mut(),
            &mut tags,
            self.max_rounds,
        );
        InventoryRun {
            population: self.count(),
            powered,
            inventoried: out.epcs.len(),
            rounds: out.rounds.len(),
            terminated: out.terminated,
            slots: out.total_slots(),
            collisions: out.total_collisions(),
            captures: out.total_captures(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{builtin, PolicySpec};

    fn prepared() -> InventoryExperiment {
        InventoryExperiment::prepare(&builtin("inventory").unwrap(), true).unwrap()
    }

    #[test]
    fn builtin_inventory_reads_the_population() {
        let exp = prepared();
        let rng = StdRng::seed_from_u64(7);
        let run = exp.run_trial(&rng);
        assert_eq!(run.population, 64);
        assert!(run.powered > 32, "only {} powered", run.powered);
        assert_eq!(run.inventoried, run.powered);
        assert!(run.terminated, "{run:?}");
        assert!(run.rounds > 0 && run.slots >= run.powered);
    }

    #[test]
    fn trials_are_deterministic_per_stream() {
        let exp = prepared();
        let rng = StdRng::seed_from_u64(11);
        assert_eq!(exp.run_trial(&rng), exp.run_trial(&rng));
        assert_eq!(exp.run_trial_nominal(&rng), exp.run_trial_nominal(&rng));
    }

    #[test]
    fn nominal_path_powers_shallow_tags_only() {
        // The builtin spreads 64 tags from 2 cm down to ~14.6 cm of
        // water: the shallow half powers on the nominal budget, the deep
        // tail does not — and everyone powered gets read.
        let exp = prepared();
        let rng = StdRng::seed_from_u64(3);
        let run = exp.run_trial_nominal(&rng);
        assert!(
            run.powered > 32 && run.powered < 64,
            "powered {}",
            run.powered
        );
        assert!(run.terminated);
        assert_eq!(run.inventoried, run.powered);
    }

    #[test]
    fn every_policy_arm_completes() {
        let exp = prepared();
        let rng = StdRng::seed_from_u64(21);
        for policy in PolicySpec::default_arms() {
            let run = exp.with_policy(policy.clone()).run_trial_nominal(&rng);
            assert!(run.terminated, "{} did not finish: {run:?}", policy.name());
            assert_eq!(run.inventoried, run.powered);
        }
    }

    #[test]
    fn capture_disabled_still_converges() {
        let s = builtin("inventory").unwrap();
        let ScenarioKind::Inventory {
            mut population,
            policy,
            max_rounds,
            fade_db,
            ..
        } = s.kind.clone()
        else {
            panic!()
        };
        population.count = 16;
        let mut s2 = s.clone();
        s2.kind = ScenarioKind::Inventory {
            population,
            policy,
            max_rounds,
            capture_db: 0.0,
            fade_db,
        };
        let exp = InventoryExperiment::prepare(&s2, true).unwrap();
        let run = exp.run_trial_nominal(&StdRng::seed_from_u64(5));
        assert_eq!(run.captures, 0);
        assert!(run.terminated);
    }
}
