//! Seeded experiment runners for every figure in the paper's evaluation.
//!
//! Each figure-level function takes a declarative [`Scenario`] (built-in
//! ones come from [`crate::scenario::builtin`]) plus the quick/full run
//! mode, and returns the statistics the paper plots. The bench harness
//! (`ivn-bench`) formats them into the paper's rows/series; integration
//! tests assert their shapes. Low-level positional kernels
//! (`*_threads`, [`range_vs_antennas_env`]) remain for determinism tests
//! and micro-benchmarks.
//!
//! All Monte-Carlo loops run on the `ivn-runtime` worker pool: trial `i`
//! draws from an RNG stream forked off the campaign seed
//! (`StdRng::seed_from_u64(seed).fork(i)`), so the results are
//! byte-identical at any worker-thread count — including the serial
//! fallback. The `*_threads` variants take an explicit thread count; the
//! plain forms use [`ivn_runtime::par::num_threads`].

use crate::baselines::{Beamformer, BlindCoherent, CibBeamformer, CoherentMrt, SingleAntenna};
use crate::body::{Placement, TagSpec};
use crate::cib::CibConfig;
use crate::freqsel::{optimize, pessimize, FrequencyPlan};
use crate::scenario::{PlacementSpec, Scenario, ScenarioKind};
use crate::system::{IvnSystem, SystemConfig};
use ivn_dsp::complex::Complex64;
use ivn_dsp::stats::{Ecdf, Summary};
use ivn_dsp::units::dbm_to_watts;
use ivn_em::medium::Medium;
use ivn_runtime::par;
use ivn_runtime::rng::{Rng, StdRng};
use std::f64::consts::TAU;

/// Draws `n` unit-amplitude blind channels.
pub fn blind_channels<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|_| Complex64::from_polar(1.0, rng.random::<f64>() * TAU))
        .collect()
}

/// Rician K-factor used for the "measured in a room" campaigns (Figs. 9,
/// 11, 12): a dominant line-of-sight path plus indoor scatter. This is
/// what makes the *measured* gain-over-single-antenna exceed the
/// unit-amplitude analytic value — the single-antenna reference fades.
pub const LAB_RICIAN_K: f64 = 4.0;

/// Draws `n` blind channels with Rician-faded amplitudes (mean-square 1)
/// and uniform phases — the ensemble of a real room.
pub fn faded_channels<R: Rng + ?Sized>(rng: &mut R, n: usize, k_factor: f64) -> Vec<Complex64> {
    let los = (k_factor / (1.0 + k_factor)).sqrt();
    (0..n)
        .map(|_| {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let scatter_amp = (-u.ln()).sqrt() / (1.0 + k_factor).sqrt();
            let scatter_ph = rng.random::<f64>() * TAU;
            let amp =
                (Complex64::from_real(los) + Complex64::from_polar(scatter_amp, scatter_ph)).norm();
            Complex64::from_polar(amp, rng.random::<f64>() * TAU)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 6 — CDF of the 5-antenna peak power gain, best vs worst plan.
// ---------------------------------------------------------------------

/// Monte-Carlo CDF of the peak power gain for an offset plan under random
/// phases (`trials` draws), on the default worker-pool width.
pub fn peak_gain_cdf(offsets_hz: &[f64], trials: usize, grid: usize, seed: u64) -> Ecdf {
    peak_gain_cdf_threads(offsets_hz, trials, grid, seed, par::num_threads())
}

/// [`peak_gain_cdf`] with an explicit worker-thread count. The result is
/// independent of `threads`: trial `i` always draws from stream `fork(i)`.
pub fn peak_gain_cdf_threads(
    offsets_hz: &[f64],
    trials: usize,
    grid: usize,
    seed: u64,
    threads: usize,
) -> Ecdf {
    let _span = ivn_runtime::span!("experiment.peak_gain_cdf_ns");
    ivn_runtime::obs_count!("experiment.trials", trials);
    let cfg = CibConfig {
        offsets_hz: offsets_hz.to_vec(),
        carrier_hz: crate::BEAMFORMER_CARRIER_HZ,
        grid,
    };
    let n = offsets_hz.len();
    // Dispatched on the persistent pool: the sweep is issued per figure
    // row and per campaign scenario, so spawn amortization matters. The
    // closure owns its config (`move`) — the pool's workers outlive this
    // stack frame.
    let samples = par::ensemble_pool(threads, trials, seed, move |rng, _| {
        cfg.received_peak_power(&blind_channels(rng, n))
    });
    Ecdf::new(samples)
}

/// Fig. 6 as one experiment: the Eq. 10 search's best and worst plans and
/// their gain CDFs under random channels.
#[derive(Debug, Clone)]
pub struct GainCdfResult {
    /// The optimizer's best plan.
    pub best: FrequencyPlan,
    /// The pessimizer's worst feasible plan.
    pub worst: FrequencyPlan,
    /// Gain CDF of the best plan.
    pub best_cdf: Ecdf,
    /// Gain CDF of the worst plan.
    pub worst_cdf: Ecdf,
}

/// Runs a [`ScenarioKind::GainCdf`] scenario: optimize + pessimize with
/// the scenario's plan seed, then Monte-Carlo both CDFs with the
/// scenario's trial seed.
pub fn gain_cdf_experiment(s: &Scenario, quick: bool) -> GainCdfResult {
    let ScenarioKind::GainCdf {
        freqsel,
        plan_seed,
        cdf_grid,
    } = &s.kind
    else {
        panic!(
            "gain_cdf_experiment needs a 'gain_cdf' scenario, got '{}'",
            s.kind.type_name()
        )
    };
    let cfg = freqsel.resolve(quick);
    let best = optimize(&cfg, *plan_seed);
    let worst = pessimize(&cfg, *plan_seed);
    let trials = s.trial_count(quick);
    let grid = cdf_grid.get(quick);
    let best_cdf = peak_gain_cdf(&best.offsets_hz, trials, grid, s.seed);
    let worst_cdf = peak_gain_cdf(&worst.offsets_hz, trials, grid, s.seed);
    GainCdfResult {
        best,
        worst,
        best_cdf,
        worst_cdf,
    }
}

// ---------------------------------------------------------------------
// Fig. 9 — peak power gain vs number of antennas (nominal power budget).
// ---------------------------------------------------------------------

/// One Fig. 9 row: antenna count and the gain summary over `trials`
/// random channel conditions.
#[derive(Debug, Clone)]
pub struct GainVsAntennas {
    /// Antenna count.
    pub n: usize,
    /// Peak power gain over a single antenna (median, p10, p90).
    pub gain: Summary,
}

/// Runs a [`ScenarioKind::GainVsAntennas`] scenario: gain vs antennas,
/// `1..=n_max`, the scenario's trial count per point.
pub fn gain_vs_antennas(s: &Scenario, quick: bool) -> Vec<GainVsAntennas> {
    let ScenarioKind::GainVsAntennas { n_max } = s.kind else {
        panic!(
            "gain_vs_antennas needs a 'gain_vs_antennas' scenario, got '{}'",
            s.kind.type_name()
        )
    };
    gain_vs_antennas_threads(n_max, s.trial_count(quick), s.seed, par::num_threads())
}

/// Positional kernel behind [`gain_vs_antennas`] with an explicit
/// worker-thread count; the result is independent of `threads`.
pub fn gain_vs_antennas_threads(
    n_max: usize,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Vec<GainVsAntennas> {
    assert!((1..=10).contains(&n_max));
    let _span = ivn_runtime::span!("experiment.gain_vs_antennas_ns");
    ivn_runtime::obs_count!("experiment.trials", trials * n_max);
    ivn_runtime::obs_count!("experiment.rounds", n_max);
    (1..=n_max)
        .map(|n| {
            let cfg = CibConfig::paper_prototype_n(n);
            let gains = par::ensemble_pool(
                threads,
                trials,
                seed.wrapping_add(n as u64),
                move |rng, _| {
                    let ch = faded_channels(rng, n, LAB_RICIAN_K);
                    cfg.received_peak_power(&ch) / ch[0].norm_sqr()
                },
            );
            GainVsAntennas {
                n,
                gain: Summary::of(&gains).expect("non-empty"),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 10 — gain vs depth and orientation (stability).
// ---------------------------------------------------------------------

/// One Fig. 10 row: the swept parameter value and the gain summary.
#[derive(Debug, Clone)]
pub struct GainAtParameter {
    /// Depth in metres (Fig. 10a) or orientation in radians (Fig. 10b).
    pub parameter: f64,
    /// Peak power gain over a single antenna at the same location.
    pub gain: Summary,
}

fn stability_kind(s: &Scenario) -> (&[f64], &[f64]) {
    let ScenarioKind::GainStability {
        depths_m,
        orientations_rad,
    } = &s.kind
    else {
        panic!(
            "gain stability needs a 'gain_stability' scenario, got '{}'",
            s.kind.type_name()
        )
    };
    (depths_m, orientations_rad)
}

/// Fig. 10a: gain vs depth in water for a [`ScenarioKind::GainStability`]
/// scenario. The gain is the ratio of CIB's peak power to the
/// single-antenna power *at the same location*, so the medium attenuation
/// cancels and the result is flat (§6.1.1b).
pub fn gain_vs_depth(s: &Scenario, quick: bool) -> Vec<GainAtParameter> {
    let (depths_m, _) = stability_kind(s);
    let cfg = s.cib(quick);
    let n = s.array.n_antennas;
    let tag = s.tag.spec();
    let eirp = dbm_to_watts(s.eirp_dbm);
    let trials = s.trial_count(quick);
    depths_m
        .iter()
        .enumerate()
        .map(|(di, &d)| {
            let placement = Placement::water_tank(d);
            let gains = par::ensemble(trials, s.seed.wrapping_add(di as u64 * 977), |rng, _| {
                let trial = placement.draw_trial(rng, n, &tag, eirp, cfg.carrier_hz);
                let single = trial.channels[0].norm_sqr();
                cfg.received_peak_power(&trial.channels) / single
            });
            GainAtParameter {
                parameter: d,
                gain: Summary::of(&gains).expect("non-empty"),
            }
        })
        .collect()
}

/// Fig. 10b: gain vs receive-antenna orientation for the same scenario
/// (seed stream `seed + 1` so the two panels draw independently).
/// Orientation scales every antenna's channel equally, so the gain is
/// flat.
pub fn gain_vs_orientation(s: &Scenario, quick: bool) -> Vec<GainAtParameter> {
    let (_, orientations_rad) = stability_kind(s);
    let cfg = s.cib(quick);
    let n = s.array.n_antennas;
    let tag = s.tag.spec();
    let trials = s.trial_count(quick);
    let seed = s.seed.wrapping_add(1);
    orientations_rad
        .iter()
        .enumerate()
        .map(|(oi, &theta)| {
            let orient = tag.antenna.orientation_factor(theta);
            let gains = par::ensemble(trials, seed.wrapping_add(oi as u64 * 7919), |rng, _| {
                let channels: Vec<Complex64> = blind_channels(rng, n)
                    .into_iter()
                    .map(|c| c * orient.sqrt())
                    .collect();
                let single = channels[0].norm_sqr();
                cfg.received_peak_power(&channels) / single
            });
            GainAtParameter {
                parameter: theta,
                gain: Summary::of(&gains).expect("non-empty"),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 11 — gain across media, CIB vs the 10-antenna baseline.
// ---------------------------------------------------------------------

/// One Fig. 11 bar pair.
#[derive(Debug, Clone)]
pub struct MediaGain {
    /// Medium name.
    pub medium: String,
    /// CIB gain over a single antenna.
    pub cib: Summary,
    /// Blind 10-antenna baseline gain over a single antenna.
    pub baseline: Summary,
}

/// Runs a [`ScenarioKind::MediaGain`] scenario over the paper's seven
/// media.
pub fn gain_across_media(s: &Scenario, quick: bool) -> Vec<MediaGain> {
    assert!(
        matches!(s.kind, ScenarioKind::MediaGain),
        "gain_across_media needs a 'media_gain' scenario, got '{}'",
        s.kind.type_name()
    );
    let trials = s.trial_count(quick);
    let _span = ivn_runtime::span!("experiment.gain_across_media_ns");
    ivn_runtime::obs_count!("experiment.trials", trials * 7);
    let n = s.array.n_antennas;
    let cib = CibBeamformer {
        config: s.cib(quick),
    };
    let baseline = BlindCoherent { n };
    Medium::figure11_media()
        .into_iter()
        .enumerate()
        .map(|(mi, medium)| {
            // Bulk attenuation is common to all antennas, so the gain
            // over a single antenna is attenuation-free — the medium
            // randomizes *phases*, which every medium does equally.
            // This is the paper's Fig. 11 point: the gain is
            // medium-independent. Small-scale Rician fading supplies
            // the per-antenna amplitude spread of a real room.
            let pairs = par::ensemble(trials, s.seed.wrapping_add(mi as u64 * 104729), |rng, _| {
                let channels = faded_channels(rng, n, LAB_RICIAN_K);
                let single = channels[0].norm_sqr();
                (
                    cib.peak_power(&channels) / single,
                    baseline.peak_power(&channels) / single,
                )
            });
            let (cib_gains, base_gains): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            MediaGain {
                medium: medium.name,
                cib: Summary::of(&cib_gains).expect("non-empty"),
                baseline: Summary::of(&base_gains).expect("non-empty"),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 12 — CDF of the CIB / baseline power ratio per location.
// ---------------------------------------------------------------------

/// Runs a [`ScenarioKind::RatioCdf`] scenario: the per-location ratio of
/// CIB peak power to the blind baseline's power, as an ECDF.
pub fn cib_vs_baseline_cdf(s: &Scenario, quick: bool) -> Ecdf {
    assert!(
        matches!(s.kind, ScenarioKind::RatioCdf),
        "cib_vs_baseline_cdf needs a 'ratio_cdf' scenario, got '{}'",
        s.kind.type_name()
    );
    let trials = s.trial_count(quick);
    let _span = ivn_runtime::span!("experiment.cib_vs_baseline_ns");
    ivn_runtime::obs_count!("experiment.trials", trials);
    let n = s.array.n_antennas;
    let cib = CibBeamformer {
        config: s.cib(quick),
    };
    let baseline = BlindCoherent { n };
    let ratios = par::ensemble(trials, s.seed, |rng, _| {
        let channels = faded_channels(rng, n, LAB_RICIAN_K);
        cib.peak_power(&channels) / baseline.peak_power(&channels).max(1e-12)
    });
    Ecdf::new(ratios)
}

/// Ablation (§6.1.1c footnote): oracle coherent beamforming vs the blind
/// baseline — in non-line-of-sight media, coherent precoding without
/// valid channel estimates is no better than the baseline. Returns the
/// ECDF of MRT-with-stale-phases / baseline ratios.
pub fn stale_mrt_vs_baseline_cdf(trials: usize, seed: u64) -> Ecdf {
    let baseline = BlindCoherent { n: 10 };
    let ratios = par::ensemble(trials, seed, |rng, _| {
        // The "coherent beamformer" applied precoding for a *previous*
        // channel draw; the medium shifted the phases since.
        let stale = blind_channels(rng, 10);
        let current = blind_channels(rng, 10);
        let precoded: Vec<Complex64> = current
            .iter()
            .zip(&stale)
            .map(|(h, s)| *h * s.conj())
            .collect();
        let coherent_power = precoded.iter().copied().sum::<Complex64>().norm_sqr();
        coherent_power / baseline.peak_power(&current).max(1e-12)
    });
    Ecdf::new(ratios)
}

// ---------------------------------------------------------------------
// Fig. 13 — range/depth vs number of antennas, both tags.
// ---------------------------------------------------------------------

/// One Fig. 13 data point.
#[derive(Debug, Clone)]
pub struct RangePoint {
    /// Antenna count.
    pub n: usize,
    /// Maximum operating range/depth, metres.
    pub range_m: f64,
}

/// Which Fig. 13 panel to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeEnvironment {
    /// Line-of-sight air (Fig. 13a/b).
    Air,
    /// Water-tank depth (Fig. 13c/d).
    Water,
}

/// Runs a [`ScenarioKind::Range`] scenario: max range vs antennas for the
/// scenario's tag, in air for a free-space placement and water depth for
/// everything else.
pub fn range_vs_antennas(s: &Scenario, quick: bool) -> Vec<RangePoint> {
    let ScenarioKind::Range { n_max } = &s.kind else {
        panic!(
            "range_vs_antennas needs a 'range' scenario, got '{}'",
            s.kind.type_name()
        )
    };
    let env = match s.placement {
        PlacementSpec::FreeSpace { .. } => RangeEnvironment::Air,
        _ => RangeEnvironment::Water,
    };
    range_vs_antennas_env(env, s.tag.spec(), n_max.get(quick), s.seed, s.eirp_dbm)
}

/// Positional kernel behind [`range_vs_antennas`]: one panel's bisection
/// sweep over antenna counts.
pub fn range_vs_antennas_env(
    env: RangeEnvironment,
    tag: TagSpec,
    n_max: usize,
    seed: u64,
    eirp_dbm: f64,
) -> Vec<RangePoint> {
    let _span = ivn_runtime::span!("experiment.range_vs_antennas_ns");
    ivn_runtime::obs_count!("experiment.rounds", n_max);
    // Each antenna count is an independent bisection search with its own
    // seed, so the sweep parallelizes over `n` rather than over trials.
    let ns: Vec<usize> = (1..=n_max).collect();
    par::par_map(&ns, |_, &n| {
        let mut config = SystemConfig::paper_prototype(n, tag.clone());
        config.eirp_dbm = eirp_dbm;
        let sys = IvnSystem::new(config);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(n as u64 * 31));
        let range_m = match env {
            RangeEnvironment::Air => sys.max_range_air(&mut rng, 0.05, 80.0, 2),
            RangeEnvironment::Water => sys.max_depth_water(&mut rng, 0.5, 2),
        };
        RangePoint { n, range_m }
    })
}

// ---------------------------------------------------------------------
// §6.2 / Fig. 15 — in-vivo trials.
// ---------------------------------------------------------------------

/// One in-vivo campaign row.
#[derive(Debug, Clone)]
pub struct InVivoRow {
    /// Placement name.
    pub placement: String,
    /// Tag name.
    pub tag: String,
    /// Successful trials.
    pub successes: usize,
    /// Total trials.
    pub trials: usize,
    /// Median preamble correlation across trials.
    pub median_correlation: f64,
}

/// Runs a [`ScenarioKind::InVivo`] scenario — the §6.2 swine campaign:
/// gastric and subcutaneous placements × standard and miniature tags,
/// the scenario's trial count per cell with its antenna array.
pub fn in_vivo_campaign(s: &Scenario, quick: bool) -> Vec<InVivoRow> {
    assert!(
        matches!(s.kind, ScenarioKind::InVivo),
        "in_vivo_campaign needs an 'in_vivo' scenario, got '{}'",
        s.kind.type_name()
    );
    let trials = s.trial_count(quick);
    let _span = ivn_runtime::span!("experiment.in_vivo_campaign_ns");
    ivn_runtime::obs_count!("experiment.trials", trials * 4);
    ivn_runtime::obs_count!("experiment.rounds", 4);
    let placements = [Placement::swine_gastric(), Placement::swine_subcutaneous()];
    let tags = [TagSpec::standard(), TagSpec::miniature()];
    let mut rows = Vec::new();
    for (pi, placement) in placements.iter().enumerate() {
        for (ti, tag) in tags.iter().enumerate() {
            let mut config = SystemConfig::paper_prototype(s.array.n_antennas, tag.clone());
            config.eirp_dbm = s.eirp_dbm;
            let sys = IvnSystem::new(config);
            let outcomes = par::ensemble(
                trials,
                s.seed.wrapping_add((pi * 2 + ti) as u64 * 65537),
                |rng, _| {
                    let out = sys.run_session(rng, placement);
                    (out.success(), out.correlation)
                },
            );
            let successes = outcomes.iter().filter(|(ok, _)| *ok).count();
            let correlations: Vec<f64> = outcomes.iter().map(|(_, c)| *c).collect();
            rows.push(InVivoRow {
                placement: placement.name.clone(),
                tag: tag.power.name.clone(),
                successes,
                trials,
                median_correlation: ivn_dsp::stats::median(&correlations).unwrap_or(0.0),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Oracle comparison used by several tests.
// ---------------------------------------------------------------------

/// Mean CIB-to-MRT peak-power ratio over random channels: how close blind
/// CIB gets to the channel-aware optimum.
pub fn cib_mrt_efficiency(n: usize, trials: usize, seed: u64) -> f64 {
    let cib = CibBeamformer {
        config: CibConfig::paper_prototype_n(n.min(10)),
    };
    let mrt = CoherentMrt {
        n: cib.n_antennas(),
    };
    let single = SingleAntenna;
    let ratios = par::ensemble(trials, seed, |rng, _| {
        let ch = blind_channels(rng, cib.n_antennas());
        debug_assert!(single.peak_power(&ch) > 0.0);
        cib.peak_power(&ch) / mrt.peak_power(&ch)
    });
    ratios.iter().sum::<f64>() / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{builtin, QuickFull};

    fn scenario(name: &str, trials: usize, seed: u64) -> Scenario {
        let mut s = builtin(name).expect("builtin");
        s.trials = QuickFull::same(trials);
        s.seed = seed;
        s
    }

    #[test]
    fn fig9_gain_scales_with_antennas() {
        let rows = gain_vs_antennas(&scenario("fig9", 100, 1), true);
        assert_eq!(rows.len(), 10);
        // Monotone (with Monte-Carlo slack) increase in the median.
        for w in rows.windows(2) {
            assert!(
                w[1].gain.median > w[0].gain.median * 0.95,
                "not monotone at n={}: {} then {}",
                w[1].n,
                w[0].gain.median,
                w[1].gain.median
            );
        }
        // Paper anchors: median ≈ 55× at 8 antennas; gains "as high as
        // 85×" at 10 (upper percentile). Rows are looked up by antenna
        // count, not position.
        let g10 = rows.iter().find(|r| r.n == 10).unwrap().gain;
        let g8 = rows.iter().find(|r| r.n == 8).unwrap().gain;
        assert!(g10.median > 50.0 && g10.median <= 100.0, "g10 {g10}");
        assert!(g10.p90 > 80.0, "g10 p90 {}", g10.p90);
        assert!(g8.median > 35.0 && g8.median <= 70.0, "g8 {g8}");
        assert!((rows[0].gain.median - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fig10_gain_flat_in_depth_and_orientation() {
        let mut s = scenario("fig10", 40, 2);
        s.kind = ScenarioKind::GainStability {
            depths_m: vec![0.0, 0.05, 0.10, 0.15, 0.20],
            orientations_rad: vec![0.0, 0.8, 1.6, 2.4, 3.1],
        };
        let rows = gain_vs_depth(&s, true);
        let medians: Vec<f64> = rows.iter().map(|r| r.gain.median).collect();
        let spread = medians.iter().cloned().fold(f64::MIN, f64::max)
            - medians.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 20.0, "depth spread {spread}");
        for m in &medians {
            assert!(*m > 45.0 && *m <= 100.0, "median {m}");
        }

        let rows = gain_vs_orientation(&s, true);
        let medians: Vec<f64> = rows.iter().map(|r| r.gain.median).collect();
        let spread = medians.iter().cloned().fold(f64::MIN, f64::max)
            - medians.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 20.0, "orientation spread {spread}");
    }

    #[test]
    fn fig11_cib_beats_baseline_everywhere() {
        let rows = gain_across_media(&scenario("fig11", 80, 4), true);
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(
                row.cib.median > 45.0 && row.cib.median < 110.0,
                "{}: cib {}",
                row.medium,
                row.cib.median
            );
            assert!(
                row.baseline.median < 16.0,
                "{}: baseline {}",
                row.medium,
                row.baseline.median
            );
            // The headline 8.5× CIB-over-baseline factor, loosely.
            assert!(
                row.cib.median / row.baseline.median > 4.0,
                "{}: ratio {}",
                row.medium,
                row.cib.median / row.baseline.median
            );
        }
    }

    #[test]
    fn fig12_ratio_cdf_shape() {
        let cdf = cib_vs_baseline_cdf(&scenario("fig12", 400, 5), true);
        // CIB wins ≥99 % of locations.
        assert!(cdf.eval(1.0) < 0.01, "losses {}", cdf.eval(1.0));
        // Median ratio around 8-12×.
        let median = cdf.quantile(0.5).unwrap();
        assert!(median > 6.0 && median < 16.0, "median ratio {median}");
        // Heavy right tail: >100× happens.
        assert!(cdf.quantile(0.99).unwrap() > 100.0);
    }

    #[test]
    fn fig6_best_vs_worst_plan() {
        let best = peak_gain_cdf(&crate::PAPER_OFFSETS_HZ[..5], 150, 2048, 6);
        let worst = peak_gain_cdf(&[0.0, 1.0, 2.0, 3.0, 4.0], 150, 2048, 6);
        // Best: 90 % of trials above 0.85·25.
        assert!(
            best.eval(21.25) < 0.2,
            "best CDF at 21.25: {}",
            best.eval(21.25)
        );
        // Worst: most trials below that.
        assert!(worst.quantile(0.5).unwrap() < best.quantile(0.5).unwrap());
    }

    #[test]
    fn fig6_scenario_experiment_matches_kernels() {
        let s = builtin("fig6").unwrap();
        let r = gain_cdf_experiment(&s, true);
        assert_eq!(r.best_cdf.len(), 200);
        assert!(
            r.best_cdf.quantile(0.5).unwrap() > r.worst_cdf.quantile(0.5).unwrap(),
            "best should dominate worst"
        );
        // The experiment is exactly the positional kernels composed.
        let direct = peak_gain_cdf(&r.best.offsets_hz, 200, 1024, s.seed);
        assert_eq!(direct, r.best_cdf);
    }

    #[test]
    fn cib_efficiency_grows_toward_one() {
        // With 10 tones scanning a 1 s period, blind CIB recovers ~60 % of
        // the channel-aware MRT peak power on average (≈ 0.78 of the
        // amplitude ceiling).
        let e = cib_mrt_efficiency(10, 40, 7);
        assert!(e > 0.45 && e <= 1.0, "efficiency {e}");
        // Fewer antennas align better.
        let e3 = cib_mrt_efficiency(3, 40, 7);
        assert!(e3 > e, "e3 {e3} vs e10 {e}");
    }

    #[test]
    fn stale_mrt_no_better_than_baseline() {
        let cdf = stale_mrt_vs_baseline_cdf(300, 8);
        let median = cdf.quantile(0.5).unwrap();
        assert!(median < 3.0, "stale MRT median ratio {median}");
    }
}
