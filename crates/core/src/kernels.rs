//! Allocation-free CIB envelope kernels.
//!
//! The Eq. 10 frequency-plan search evaluates the envelope
//! `Y(t) = |Σᵢ aᵢ·e^{j(2πΔfᵢt + βᵢ)}|` millions of times; this module is
//! the kernel layer [`crate::freqsel`] (and [`crate::waveform`]'s grid
//! sampler) run on. Three stacked optimizations over the naive
//! per-evaluation path:
//!
//! 1. **Batched, allocation-free evaluation** — [`EnvelopeScratch`] owns
//!    the complex accumulator grid, the FFT buffer, and the phase-draw
//!    buffer, so a Monte-Carlo objective touches the allocator once per
//!    *call* instead of five times per *draw*. The peak search compares
//!    `|z|²` and takes the single `sqrt` at the winner instead of `grid`
//!    times per draw, and the iterative ternary refinement is replaced by
//!    one parabolic interpolation plus one direct evaluation.
//! 2. **Incremental one-tone re-evaluation** — the Eq. 10 hill climber
//!    perturbs exactly one offset per candidate under common random
//!    numbers. [`CrnKernel`] caches the per-draw complex grid of the
//!    current set and scores a candidate by subtracting the old tone and
//!    adding the new one: O(grid·draws) per candidate instead of
//!    O(N·grid·draws) — an ~N/3× algorithmic win at paper scale (N = 10).
//! 3. **An FFT path** — integer-hertz offsets on a uniform 1 s grid make
//!    the sampled period exactly an unnormalized inverse DFT of a sparse
//!    spectrum ([`ivn_dsp::fft::ifft_unnormalized`]); selected
//!    automatically when `N·grid > grid·log₂(grid)`, i.e. when the tone
//!    count exceeds `log₂(grid)`.
//!
//! All paths agree with [`crate::waveform::CibEnvelope::envelope`]
//! pointwise to well under 1e-9 (property-tested in
//! `crates/core/tests/kernel_props.rs`). Incremental phasor rotation is
//! resynchronized from exact trig every [`RENORM_INTERVAL`] samples so
//! rounding drift cannot compound across the grid.

use ivn_dsp::complex::Complex64;
use ivn_dsp::envelope::parabolic_peak;
use ivn_dsp::fft;
use ivn_runtime::rng::Rng;
use std::f64::consts::TAU;

/// The incremental-rotation loop re-derives its phasor from exact trig
/// every this many samples, bounding the compounded rounding error of
/// `ph *= step` to ~256 ulps regardless of grid size.
pub const RENORM_INTERVAL: usize = 256;

/// One tone pass over the grid: `WRITE = true` assigns (initializing the
/// buffer without a separate zeroing pass), `WRITE = false` accumulates.
///
/// The incremental rotation runs as **four interleaved rotators**, each
/// advancing by `4ω·dt`: a single rotator is a serial dependency chain —
/// every sample waits one complex-multiply latency on the previous — so
/// four independent chains keep the multiplier pipeline full, ~3× the
/// throughput of the textbook loop. Each [`RENORM_INTERVAL`] chunk
/// re-derives its rotators from exact trig, bounding compounded rounding
/// to a few hundred ulps regardless of grid size.
fn tone_pass<const WRITE: bool>(acc: &mut [Complex64], offset_hz: f64, phase: f64, amp: f64) {
    let grid = acc.len();
    let dt = 1.0 / grid as f64;
    let w = TAU * offset_hz * dt;
    let step1 = Complex64::cis(w);
    let step4 = Complex64::cis(4.0 * w);
    let mut start = 0usize;
    for chunk in acc.chunks_mut(RENORM_INTERVAL) {
        let len = chunk.len();
        let base = TAU * offset_hz * (start as f64 * dt) + phase;
        let p0 = Complex64::from_polar(amp, base);
        let mut p = [
            p0,
            p0 * step1,
            p0 * step1 * step1,
            p0 * step1 * step1 * step1,
        ];
        let mut quads = chunk.chunks_exact_mut(4);
        for quad in &mut quads {
            for j in 0..4 {
                if WRITE {
                    quad[j] = p[j];
                } else {
                    quad[j] += p[j];
                }
                p[j] *= step4;
            }
        }
        let rem = quads.into_remainder();
        let done = len - rem.len();
        for (j, a) in rem.iter_mut().enumerate() {
            let v = Complex64::from_polar(amp, base + w * (done + j) as f64);
            if WRITE {
                *a = v;
            } else {
                *a += v;
            }
        }
        start += len;
    }
}

/// Accumulates one tone `amp·e^{j(2πf·k/grid + phase)}` into `acc`
/// (`grid = acc.len()` samples spanning one 1-second period).
///
/// No trig in the inner loop (see [`tone_pass`]); resynchronized from
/// exact trig every [`RENORM_INTERVAL`] samples. A negative `amp`
/// subtracts the tone exactly (`from_polar(-a, θ)` is the exact negation
/// of `from_polar(a, θ)`), which is how [`CrnKernel`] removes a perturbed
/// tone from a cached grid.
pub fn accumulate_tone(acc: &mut [Complex64], offset_hz: f64, phase: f64, amp: f64) {
    tone_pass::<false>(acc, offset_hz, phase, amp);
}

/// [`accumulate_tone`] that *assigns* instead of accumulating — the first
/// tone of a fill initializes the buffer, saving the zeroing pass.
pub fn write_tone(acc: &mut [Complex64], offset_hz: f64, phase: f64, amp: f64) {
    tone_pass::<true>(acc, offset_hz, phase, amp);
}

/// Direct evaluation of the envelope `Y(t)` from raw tone parameters —
/// no intermediate struct, no allocation. `amps == None` means unit
/// amplitudes.
pub fn envelope_value(offsets_hz: &[f64], phases: &[f64], amps: Option<&[f64]>, t: f64) -> f64 {
    let mut acc = Complex64::ZERO;
    for i in 0..offsets_hz.len() {
        let a = amps.map_or(1.0, |a| a[i]);
        acc += Complex64::from_polar(a, TAU * offsets_hz[i] * t + phases[i]);
    }
    acc.norm()
}

/// Whether the sparse-spectrum FFT synthesis beats direct accumulation:
/// direct is O(N·grid), the FFT is O(grid·log₂ grid), so the FFT wins
/// once the tone count exceeds `log₂(grid)`. Requires a power-of-two
/// grid and exactly-integer offsets (the sparse bins must be exact).
pub fn fft_pays_off(n_tones: usize, grid: usize, offsets_hz: &[f64]) -> bool {
    grid.is_power_of_two()
        && n_tones > grid.trailing_zeros() as usize
        && offsets_hz
            .iter()
            .all(|f| f.fract() == 0.0 && f.abs() < 4.5e15)
}

/// Refined peak amplitude of a sampled complex grid: parabolic
/// interpolation of `|z|²` around the discrete argmax (periodic
/// neighbours), then one direct evaluation of the true envelope at the
/// interpolated instant. Never below the grid peak itself.
fn refined_peak(
    acc: &[Complex64],
    offsets_hz: &[f64],
    phases: &[f64],
    amps: Option<&[f64]>,
) -> f64 {
    let grid = acc.len();
    let (mut k, mut best_sqr) = (0usize, f64::MIN);
    for (i, z) in acc.iter().enumerate() {
        let p = z.norm_sqr();
        if p > best_sqr {
            best_sqr = p;
            k = i;
        }
    }
    let ym = acc[(k + grid - 1) % grid].norm_sqr();
    let yp = acc[(k + 1) % grid].norm_sqr();
    let (dx, _) = parabolic_peak(ym, best_sqr, yp);
    let t = (k as f64 + dx) / grid as f64;
    envelope_value(offsets_hz, phases, amps, t).max(best_sqr.sqrt())
}

/// Reusable workspace for batched envelope evaluation: the complex
/// accumulator grid and the phase-draw buffer live here, so repeated
/// evaluations (the Monte-Carlo objective, the grid sampler) never touch
/// the allocator in steady state.
#[derive(Debug, Default)]
pub struct EnvelopeScratch {
    acc: Vec<Complex64>,
    phase_buf: Vec<f64>,
}

impl EnvelopeScratch {
    /// An empty workspace; buffers grow to the working size on first use
    /// and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// The complex grid produced by the latest `fill_*` call.
    pub fn grid(&self) -> &[Complex64] {
        &self.acc
    }

    /// Fills the grid by direct per-tone accumulation: O(N·grid).
    pub fn fill_direct(
        &mut self,
        offsets_hz: &[f64],
        phases: &[f64],
        amps: Option<&[f64]>,
        grid: usize,
    ) {
        assert!(grid > 0);
        assert_eq!(offsets_hz.len(), phases.len(), "offsets/phases mismatch");
        if self.acc.len() != grid {
            self.acc.clear();
            self.acc.resize(grid, Complex64::ZERO);
        }
        if offsets_hz.is_empty() {
            self.acc.fill(Complex64::ZERO);
            return;
        }
        for i in 0..offsets_hz.len() {
            let a = amps.map_or(1.0, |a| a[i]);
            if i == 0 {
                // The first tone writes, initializing the grid without a
                // separate zeroing pass.
                write_tone(&mut self.acc, offsets_hz[i], phases[i], a);
            } else {
                accumulate_tone(&mut self.acc, offsets_hz[i], phases[i], a);
            }
        }
    }

    /// Fills the grid by sparse-spectrum inverse FFT: O(grid·log grid).
    ///
    /// Each integer offset `f` lands in bin `f mod grid` (negative
    /// offsets wrap); aliasing of `|f| ≥ grid` is *exact* on the sample
    /// grid since `e^{j2πfk/grid}` depends only on `f mod grid`.
    ///
    /// # Panics
    /// Panics if `grid` is not a power of two or any offset is not an
    /// exact integer.
    pub fn fill_fft(
        &mut self,
        offsets_hz: &[f64],
        phases: &[f64],
        amps: Option<&[f64]>,
        grid: usize,
    ) {
        assert!(grid.is_power_of_two(), "FFT path needs a power-of-two grid");
        assert_eq!(offsets_hz.len(), phases.len(), "offsets/phases mismatch");
        self.acc.clear();
        self.acc.resize(grid, Complex64::ZERO);
        for i in 0..offsets_hz.len() {
            let f = offsets_hz[i];
            assert!(f.fract() == 0.0, "FFT path needs integer offsets, got {f}");
            let bin = (f as i64).rem_euclid(grid as i64) as usize;
            let a = amps.map_or(1.0, |a| a[i]);
            self.acc[bin] += Complex64::from_polar(a, phases[i]);
        }
        fft::ifft_unnormalized(&mut self.acc);
    }

    /// Fills the grid, auto-selecting the FFT path when it is cheaper
    /// ([`fft_pays_off`]) and falling back to direct accumulation.
    pub fn fill(&mut self, offsets_hz: &[f64], phases: &[f64], amps: Option<&[f64]>, grid: usize) {
        if fft_pays_off(offsets_hz.len(), grid, offsets_hz) {
            self.fill_fft(offsets_hz, phases, amps, grid);
        } else {
            self.fill_direct(offsets_hz, phases, amps, grid);
        }
    }

    /// Refined peak amplitude of the current grid (see [`refined_peak`]).
    pub fn peak(&self, offsets_hz: &[f64], phases: &[f64], amps: Option<&[f64]>) -> f64 {
        refined_peak(&self.acc, offsets_hz, phases, amps)
    }

    /// Monte-Carlo `E[max_t Y(t)]` over `draws` uniform phase draws —
    /// the allocation-free engine behind
    /// [`crate::freqsel::expected_peak`]. Phase draws consume `rng` in
    /// the same order as the original per-draw loop, so seeded results
    /// remain reproducible.
    pub fn expected_peak<R: Rng + ?Sized>(
        &mut self,
        offsets_hz: &[f64],
        draws: usize,
        grid: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(draws > 0);
        let n = offsets_hz.len();
        let mut phases = std::mem::take(&mut self.phase_buf);
        phases.clear();
        phases.resize(n, 0.0);
        let mut acc = 0.0;
        for _ in 0..draws {
            let _t = ivn_runtime::trace_span!("freqsel.kernel_fill");
            for p in phases.iter_mut() {
                *p = rng.random::<f64>() * TAU;
            }
            self.fill(offsets_hz, &phases, None, grid);
            let y = self.peak(offsets_hz, &phases, None);
            // Physics probes (same contract as `peak_over_period`): the
            // per-draw peak amplitude, and how close the N unit carriers
            // came to perfect phase alignment (1.0 = fully coherent).
            ivn_runtime::trace_counter!("physics.envelope_peak", y);
            if n > 0 {
                ivn_runtime::trace_counter!("physics.phase_alignment", y / n as f64);
            }
            acc += y;
        }
        self.phase_buf = phases;
        acc / draws as f64
    }
}

/// Common-random-numbers incremental evaluator for the Eq. 10 hill
/// climber (unit amplitudes).
///
/// Caches, for every Monte-Carlo draw, the complex grid of the *current*
/// offset set. A candidate that swaps one tone is scored by copying each
/// cached grid into scratch, subtracting the old tone and adding the new
/// one — two tone passes instead of N — and an accepted swap is committed
/// to the cache with the same two passes. The phase draws are fixed at
/// construction (common random numbers), exactly the draw sequence
/// [`EnvelopeScratch::expected_peak`] would consume from the same RNG.
#[derive(Debug)]
pub struct CrnKernel {
    offsets_hz: Vec<f64>,
    cand: Vec<f64>,
    /// `draws × n` phase draws, row-major.
    phases: Vec<f64>,
    /// `draws × grid` cached complex grids of the current set, row-major.
    grids: Vec<Complex64>,
    scratch: Vec<Complex64>,
    draws: usize,
    grid: usize,
    commits_since_rebuild: usize,
}

/// Cached-grid rebuild cadence: accepted swaps mutate the cache by
/// `−old + new` deltas whose rounding could compound over a long climb,
/// so the cache is re-accumulated from scratch every this many commits.
const REBUILD_INTERVAL: usize = 32;

impl CrnKernel {
    /// Builds the evaluator for `offsets_hz`, drawing `draws × n` phases
    /// from `rng` (draw-major, tone-minor — the same order as the
    /// original re-seeded per-candidate evaluation).
    pub fn new<R: Rng + ?Sized>(
        offsets_hz: &[f64],
        draws: usize,
        grid: usize,
        rng: &mut R,
    ) -> Self {
        assert!(draws > 0 && grid > 0 && !offsets_hz.is_empty());
        let n = offsets_hz.len();
        let phases: Vec<f64> = (0..draws * n).map(|_| rng.random::<f64>() * TAU).collect();
        let mut kernel = CrnKernel {
            offsets_hz: offsets_hz.to_vec(),
            cand: offsets_hz.to_vec(),
            phases,
            grids: vec![Complex64::ZERO; draws * grid],
            scratch: vec![Complex64::ZERO; grid],
            draws,
            grid,
            commits_since_rebuild: 0,
        };
        kernel.rebuild();
        kernel
    }

    /// The current (committed) offset set.
    pub fn offsets_hz(&self) -> &[f64] {
        &self.offsets_hz
    }

    /// The phase draws of draw `d`.
    pub fn draw_phases(&self, d: usize) -> &[f64] {
        let n = self.offsets_hz.len();
        &self.phases[d * n..(d + 1) * n]
    }

    fn rebuild(&mut self) {
        let n = self.offsets_hz.len();
        self.grids.fill(Complex64::ZERO);
        for d in 0..self.draws {
            let acc = &mut self.grids[d * self.grid..(d + 1) * self.grid];
            for i in 0..n {
                accumulate_tone(acc, self.offsets_hz[i], self.phases[d * n + i], 1.0);
            }
        }
        self.commits_since_rebuild = 0;
    }

    /// Scores the current set from the cached grids: the mean refined
    /// peak over all draws.
    pub fn score_current(&self) -> f64 {
        let n = self.offsets_hz.len();
        let mut acc = 0.0;
        for d in 0..self.draws {
            acc += refined_peak(
                &self.grids[d * self.grid..(d + 1) * self.grid],
                &self.offsets_hz,
                &self.phases[d * n..(d + 1) * n],
                None,
            );
        }
        acc / self.draws as f64
    }

    /// Scores the candidate that replaces tone `idx` with `new_hz`,
    /// without committing it: O(grid·draws) regardless of N.
    pub fn score_swap(&mut self, idx: usize, new_hz: f64) -> f64 {
        let n = self.offsets_hz.len();
        let old_hz = self.offsets_hz[idx];
        self.cand.copy_from_slice(&self.offsets_hz);
        self.cand[idx] = new_hz;
        let mut acc = 0.0;
        for d in 0..self.draws {
            let phase = self.phases[d * n + idx];
            self.scratch
                .copy_from_slice(&self.grids[d * self.grid..(d + 1) * self.grid]);
            accumulate_tone(&mut self.scratch, old_hz, phase, -1.0);
            accumulate_tone(&mut self.scratch, new_hz, phase, 1.0);
            acc += refined_peak(
                &self.scratch,
                &self.cand,
                &self.phases[d * n..(d + 1) * n],
                None,
            );
        }
        acc / self.draws as f64
    }

    /// Commits the swap of tone `idx` to `new_hz`: applies the same
    /// `−old + new` delta [`score_swap`](Self::score_swap) evaluated to
    /// the cached grids, rebuilding from scratch every
    /// [`REBUILD_INTERVAL`] commits to bound delta-rounding drift.
    pub fn commit_swap(&mut self, idx: usize, new_hz: f64) {
        let n = self.offsets_hz.len();
        let old_hz = self.offsets_hz[idx];
        self.offsets_hz[idx] = new_hz;
        self.commits_since_rebuild += 1;
        if self.commits_since_rebuild >= REBUILD_INTERVAL {
            self.rebuild();
            return;
        }
        for d in 0..self.draws {
            let phase = self.phases[d * n + idx];
            let acc = &mut self.grids[d * self.grid..(d + 1) * self.grid];
            accumulate_tone(acc, old_hz, phase, -1.0);
            accumulate_tone(acc, new_hz, phase, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::CibEnvelope;
    use ivn_runtime::rng::StdRng;

    #[test]
    fn accumulate_matches_direct_trig_across_renorm_boundaries() {
        let mut acc = vec![Complex64::ZERO; 1024];
        accumulate_tone(&mut acc, 137.0, 0.9, 0.7);
        for k in (0..1024).step_by(41) {
            let t = k as f64 / 1024.0;
            let want = Complex64::from_polar(0.7, TAU * 137.0 * t + 0.9);
            assert!((acc[k] - want).norm() < 1e-12, "sample {k}");
        }
    }

    #[test]
    fn negative_amplitude_subtracts_exactly() {
        let mut acc = vec![Complex64::ZERO; 512];
        accumulate_tone(&mut acc, 49.0, 1.2, 1.0);
        accumulate_tone(&mut acc, 49.0, 1.2, -1.0);
        for z in &acc {
            assert_eq!(*z, Complex64::ZERO);
        }
    }

    #[test]
    fn fft_and_direct_fill_agree() {
        let offsets = [0.0, 7.0, 20.0, 49.0, 68.0, 73.0, 90.0, 113.0, 121.0, 137.0];
        let phases: Vec<f64> = (0..10).map(|i| 0.37 * i as f64).collect();
        let mut a = EnvelopeScratch::new();
        let mut b = EnvelopeScratch::new();
        a.fill_direct(&offsets, &phases, None, 256);
        b.fill_fft(&offsets, &phases, None, 256);
        for (x, y) in a.grid().iter().zip(b.grid()) {
            assert!((*x - *y).norm() < 1e-9);
        }
    }

    #[test]
    fn fft_aliasing_is_exact_on_grid() {
        // |offset| ≥ grid wraps modulo grid — identical on the samples.
        let mut a = EnvelopeScratch::new();
        let mut b = EnvelopeScratch::new();
        a.fill_direct(&[70.0], &[0.3], None, 64);
        b.fill_fft(&[70.0], &[0.3], None, 64);
        for (x, y) in a.grid().iter().zip(b.grid()) {
            assert!((*x - *y).norm() < 1e-9);
        }
    }

    #[test]
    fn auto_selection_predicate() {
        let int_offsets: Vec<f64> = (0..12).map(|i| i as f64 * 7.0).collect();
        // 12 tones > log2(1024) = 10 → FFT pays off.
        assert!(fft_pays_off(12, 1024, &int_offsets));
        // 10 tones on a 1024 grid: equal cost, stay direct.
        assert!(!fft_pays_off(10, 1024, &int_offsets[..10]));
        // Non-integer offsets or non-pow2 grids disqualify.
        assert!(!fft_pays_off(12, 1000, &int_offsets));
        assert!(!fft_pays_off(2, 2, &[0.0, 7.5]));
    }

    #[test]
    fn scratch_peak_close_to_iterative_peak_search() {
        let offsets = [0.0, 7.0, 20.0, 49.0, 68.0];
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..8 {
            let phases: Vec<f64> = (0..5).map(|_| rng.random::<f64>() * TAU).collect();
            let mut s = EnvelopeScratch::new();
            s.fill(&offsets, &phases, None, 1024);
            let fast = s.peak(&offsets, &phases, None);
            let (_, slow) = CibEnvelope::new(&offsets, &phases).peak_over_period(1024);
            assert!((fast - slow).abs() < 2e-3, "fast {fast} slow {slow}");
            assert!(fast <= slow + 1e-9, "refinement overshot: {fast} > {slow}");
        }
    }

    #[test]
    fn crn_swap_score_matches_fresh_evaluation() {
        let offsets = [0.0, 7.0, 20.0, 49.0, 68.0];
        let mut rng = StdRng::seed_from_u64(3);
        let mut k = CrnKernel::new(&offsets, 8, 512, &mut rng);
        let swapped = [0.0, 7.0, 25.0, 49.0, 68.0];
        let s_incr = k.score_swap(2, 25.0);
        // A fresh kernel over the swapped set with the same phase draws.
        let mut rng = StdRng::seed_from_u64(3);
        let fresh = CrnKernel::new(&swapped, 8, 512, &mut rng);
        let s_full = fresh.score_current();
        assert!(
            (s_incr - s_full).abs() < 1e-9,
            "incr {s_incr} full {s_full}"
        );
    }

    #[test]
    fn crn_commit_then_score_is_consistent() {
        let offsets = [0.0, 7.0, 20.0, 49.0, 68.0];
        let mut rng = StdRng::seed_from_u64(4);
        let mut k = CrnKernel::new(&offsets, 6, 256, &mut rng);
        let scored = k.score_swap(1, 11.0);
        k.commit_swap(1, 11.0);
        assert_eq!(k.offsets_hz()[1], 11.0);
        let rescored = k.score_current();
        assert!((scored - rescored).abs() < 1e-9, "{scored} vs {rescored}");
    }

    #[test]
    fn crn_rebuild_interval_keeps_cache_honest() {
        let offsets = [0.0, 5.0, 9.0];
        let mut rng = StdRng::seed_from_u64(5);
        let mut k = CrnKernel::new(&offsets, 4, 128, &mut rng);
        // Hammer far past the rebuild cadence.
        for step in 0..(2 * REBUILD_INTERVAL + 3) {
            let new_hz = 10.0 + (step % 50) as f64;
            k.commit_swap(2, new_hz);
        }
        let cached = k.score_current();
        let mut rng = StdRng::seed_from_u64(5);
        let fresh = CrnKernel::new(k.offsets_hz(), 4, 128, &mut rng).score_current();
        assert!((cached - fresh).abs() < 1e-9, "{cached} vs {fresh}");
    }
}
