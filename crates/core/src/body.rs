//! Experimental scenarios: tags, placements and the link budget.
//!
//! A [`Placement`] reproduces one of the paper's physical setups — free
//! space (Fig. 8), the water tank (Fig. 7), the Fig. 11 media, or the
//! swine placements of §6.2 — and converts it into per-antenna complex
//! channels in **√watt units**: `|channel|²` is the received RF power at
//! the tag's rectifier for one antenna's EIRP, and the phase is the
//! paper's blind β (PLL phase + propagation phase, uniformly random).
//!
//! ## Link budget
//!
//! ```text
//! P_rx = EIRP · G_tag(θ) · (λ₀/4π)² · |h_path|² · penalty_medium
//! ```
//!
//! where `h_path` is the layered-path response (spreading + boundary +
//! tissue, Eq. 2), `G_tag` folds boresight gain, orientation and
//! polarization (Eq. 3 via effective aperture), and `penalty_medium =
//! 1/√εr` for a tag whose antenna is matched for air but immersed in a
//! dense medium (the standard tag); a medium-matched implant antenna (the
//! tube-matched miniature tag, §5c) skips the penalty. Calibration
//! anchors and their derivations live in DESIGN.md §5.

use ivn_dsp::complex::Complex64;
use ivn_em::antenna::Antenna;
use ivn_em::layered::{single_medium_path, Layer, LayeredPath};
use ivn_em::medium::Medium;
use ivn_harvester::powerup::TagPowerProfile;
use ivn_runtime::rng::Rng;
use std::f64::consts::TAU;

/// The paper's per-antenna transmit EIRP: 30 dBm PA into a 7 dBi antenna.
pub const PAPER_EIRP_DBM: f64 = 37.0;

/// A complete tag specification: RF front door plus power profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TagSpec {
    /// Antenna model (gain, orientation floor, polarization).
    pub antenna: Antenna,
    /// Harvester/chip power profile.
    pub power: TagPowerProfile,
    /// Whether the antenna is matched to the surrounding medium
    /// (true for the tube-matched implant; false for an air dipole).
    pub matched_to_medium: bool,
}

impl TagSpec {
    /// The standard Avery-class tag: air-matched dipole.
    pub fn standard() -> Self {
        TagSpec {
            antenna: Antenna::standard_tag(),
            power: TagPowerProfile::standard_tag(),
            matched_to_medium: false,
        }
    }

    /// The miniature Xerafy-class implant tag: tube/medium-matched.
    pub fn miniature() -> Self {
        TagSpec {
            antenna: Antenna::miniature_tag(),
            power: TagPowerProfile::miniature_tag(),
            matched_to_medium: true,
        }
    }

    /// Linear medium-immersion aperture penalty (≤ 1).
    pub fn medium_penalty(&self, local: &Medium) -> f64 {
        if self.matched_to_medium {
            1.0
        } else {
            1.0 / local.rel_permittivity.sqrt()
        }
    }
}

/// One physical experiment setup.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Report name.
    pub name: String,
    /// Representative antenna→tag path.
    pub path: LayeredPath,
    /// Medium immediately surrounding the tag.
    pub local_medium: Medium,
    /// Per-trial tag orientation range (radians off boresight); drawn
    /// uniformly each trial.
    pub orientation_range: (f64, f64),
    /// Per-antenna amplitude jitter, dB RMS (antennas sit at slightly
    /// different ranges/angles).
    pub amplitude_jitter_db: f64,
}

impl Placement {
    /// Free-space line of sight at `range_m` (Fig. 8 / Fig. 13a-b).
    pub fn free_space(range_m: f64) -> Self {
        Placement {
            name: format!("free space @ {range_m:.2} m"),
            path: LayeredPath::free_space(range_m),
            local_medium: Medium::air(),
            orientation_range: (0.0, 0.0),
            amplitude_jitter_db: 0.5,
        }
    }

    /// The water tank: antennas 90 cm from the tank face, tag `depth_m`
    /// inside (Fig. 7 / Fig. 13c-d).
    pub fn water_tank(depth_m: f64) -> Self {
        Placement {
            name: format!("water tank @ {:.1} cm", depth_m * 100.0),
            path: single_medium_path(0.9, Medium::water(), depth_m),
            local_medium: Medium::water(),
            orientation_range: (0.0, 0.0),
            amplitude_jitter_db: 0.5,
        }
    }

    /// A Fig. 11 media container: antennas 50 cm away, sensor `depth_m`
    /// into the medium.
    pub fn media_box(medium: Medium, depth_m: f64) -> Self {
        Placement {
            name: format!("{} box @ {:.1} cm", medium.name, depth_m * 100.0),
            path: single_medium_path(0.5, medium.clone(), depth_m),
            local_medium: medium,
            orientation_range: (0.0, 0.0),
            amplitude_jitter_db: 0.5,
        }
    }

    /// Swine subcutaneous placement (§6.2): antennas ~55 cm lateral, tag
    /// under 2 mm skin + 8 mm fat. Surgically placed flat → controlled
    /// orientation (±45°).
    pub fn swine_subcutaneous() -> Self {
        Placement {
            name: "swine subcutaneous".into(),
            path: LayeredPath::new(
                0.55,
                vec![
                    Layer::new(Medium::skin(), 0.002),
                    Layer::new(Medium::fat(), 0.008),
                ],
            ),
            local_medium: Medium::fat(),
            orientation_range: (0.0, std::f64::consts::FRAC_PI_4),
            amplitude_jitter_db: 1.0,
        }
    }

    /// Swine intragastric placement (§6.2): antennas 30–80 cm lateral
    /// (0.55 m representative), through skin/fat/muscle/stomach wall into
    /// gastric content (~4 cm to the tag). Free-floating tube →
    /// uncontrolled orientation (0–90°).
    pub fn swine_gastric() -> Self {
        Placement {
            name: "swine gastric".into(),
            path: LayeredPath::new(
                0.55,
                vec![
                    Layer::new(Medium::skin(), 0.003),
                    Layer::new(Medium::fat(), 0.020),
                    Layer::new(Medium::muscle(), 0.020),
                    Layer::new(Medium::stomach_wall(), 0.005),
                    Layer::new(Medium::gastric_content(), 0.040),
                ],
            ),
            local_medium: Medium::gastric_content(),
            orientation_range: (0.0, std::f64::consts::FRAC_PI_2),
            amplitude_jitter_db: 1.5,
        }
    }

    /// Nominal received power (W) from one antenna at boresight
    /// orientation, for per-antenna EIRP `eirp_w` at `freq_hz`.
    pub fn nominal_rx_power(&self, tag: &TagSpec, eirp_w: f64, freq_hz: f64) -> f64 {
        let lambda0 = ivn_dsp::units::wavelength(freq_hz);
        let h = self.path.response(freq_hz).norm();
        eirp_w
            * tag.antenna.total_gain(0.0)
            * (lambda0 / (4.0 * std::f64::consts::PI)).powi(2)
            * h
            * h
            * tag.medium_penalty(&self.local_medium)
    }

    /// Draws one experimental trial: per-antenna √watt channels with
    /// blind phases, a shared random tag orientation, and per-antenna
    /// amplitude jitter.
    pub fn draw_trial<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_antennas: usize,
        tag: &TagSpec,
        eirp_w: f64,
        freq_hz: f64,
    ) -> Trial {
        let orientation = if self.orientation_range.1 > self.orientation_range.0 {
            rng.random_range(self.orientation_range.0..=self.orientation_range.1)
        } else {
            self.orientation_range.0
        };
        let nominal = self.nominal_rx_power(tag, eirp_w, freq_hz);
        // Apply the orientation factor relative to boresight.
        let orient =
            tag.antenna.orientation_factor(orientation) / tag.antenna.orientation_factor(0.0);
        let channels = (0..n_antennas)
            .map(|_| {
                let jitter_db = self.amplitude_jitter_db * (2.0 * rng.random::<f64>() - 1.0);
                let p = nominal * orient * ivn_dsp::units::db_to_linear(jitter_db);
                Complex64::from_polar(p.sqrt(), rng.random::<f64>() * TAU)
            })
            .collect();
        Trial {
            channels,
            orientation,
        }
    }
}

/// One realized trial: blind channels (√watt units) and the drawn tag
/// orientation.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Per-antenna complex channels; `|c|²` = watts received per antenna.
    pub channels: Vec<Complex64>,
    /// Tag orientation off boresight, radians.
    pub orientation: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_dsp::units::dbm_to_watts;
    use ivn_runtime::rng::StdRng;

    const F: f64 = 915e6;

    fn eirp() -> f64 {
        dbm_to_watts(PAPER_EIRP_DBM)
    }

    #[test]
    fn free_space_anchor_5_2m() {
        // The calibration anchor: a single 37 dBm antenna delivers exactly
        // the standard tag's −10 dBm wake-up power at ≈ 5.2 m.
        let tag = TagSpec::standard();
        let p = Placement::free_space(5.2).nominal_rx_power(&tag, eirp(), F);
        let required = tag.power.required_peak_power_watts();
        let margin_db = 10.0 * (p / required).log10();
        assert!(margin_db.abs() < 0.5, "margin at 5.2 m: {margin_db} dB");
    }

    #[test]
    fn mini_tag_air_range_about_ten_times_shorter() {
        let mini = TagSpec::miniature();
        let p = Placement::free_space(0.52).nominal_rx_power(&mini, eirp(), F);
        let required = mini.power.required_peak_power_watts();
        let margin_db = 10.0 * (p / required).log10();
        assert!(
            margin_db.abs() < 1.0,
            "mini margin at 0.52 m: {margin_db} dB"
        );
    }

    #[test]
    fn water_tank_face_margins() {
        // Standard tag at the tank face: small positive margin (it can
        // only reach a couple of cm without CIB). Miniature: clearly
        // negative (cannot power at all without CIB) — §6.1.2.
        let std_tag = TagSpec::standard();
        let mini = TagSpec::miniature();
        let face = Placement::water_tank(0.0);
        let m_std = 10.0
            * (face.nominal_rx_power(&std_tag, eirp(), F)
                / std_tag.power.required_peak_power_watts())
            .log10();
        let m_mini = 10.0
            * (face.nominal_rx_power(&mini, eirp(), F) / mini.power.required_peak_power_watts())
                .log10();
        assert!(m_std > 0.0 && m_std < 4.0, "std face margin {m_std}");
        assert!(m_mini < -5.0, "mini face margin {m_mini}");
    }

    #[test]
    fn gastric_deficit_matches_design() {
        // Single-antenna deficit ~12-14 dB for the standard tag in the
        // stomach: CIB's ~17 dB peak gain at 8 antennas makes it marginal,
        // reproducing the paper's 3-of-6 outcome.
        let tag = TagSpec::standard();
        let g = Placement::swine_gastric();
        let margin_db = 10.0
            * (g.nominal_rx_power(&tag, eirp(), F) / tag.power.required_peak_power_watts()).log10();
        assert!(
            margin_db > -16.0 && margin_db < -9.0,
            "gastric margin {margin_db} dB"
        );
    }

    #[test]
    fn subcutaneous_is_comfortable() {
        let tag = TagSpec::standard();
        let s = Placement::swine_subcutaneous();
        let margin_db = 10.0
            * (s.nominal_rx_power(&tag, eirp(), F) / tag.power.required_peak_power_watts()).log10();
        assert!(margin_db > 5.0, "subcutaneous margin {margin_db} dB");
    }

    #[test]
    fn medium_penalty_only_for_air_matched() {
        let std_tag = TagSpec::standard();
        let mini = TagSpec::miniature();
        let water = Medium::water();
        assert!(std_tag.medium_penalty(&water) < 0.15);
        assert_eq!(mini.medium_penalty(&water), 1.0);
        assert_eq!(std_tag.medium_penalty(&Medium::air()), 1.0);
    }

    #[test]
    fn trial_channels_have_blind_phases_and_right_power() {
        let mut rng = StdRng::seed_from_u64(1);
        let tag = TagSpec::standard();
        let pl = Placement::free_space(5.0);
        let trial = pl.draw_trial(&mut rng, 8, &tag, eirp(), F);
        assert_eq!(trial.channels.len(), 8);
        let nominal = pl.nominal_rx_power(&tag, eirp(), F);
        for c in &trial.channels {
            let ratio_db = 10.0 * (c.norm_sqr() / nominal).log10();
            assert!(ratio_db.abs() < 1.0, "jitter {ratio_db} dB");
        }
        // Phases spread over the circle.
        let mean: Complex64 = trial
            .channels
            .iter()
            .map(|c| *c / c.norm())
            .sum::<Complex64>()
            / 8.0;
        assert!(mean.norm() < 0.9);
    }

    #[test]
    fn gastric_trials_vary_orientation() {
        let mut rng = StdRng::seed_from_u64(2);
        let tag = TagSpec::standard();
        let pl = Placement::swine_gastric();
        let orientations: Vec<f64> = (0..32)
            .map(|_| pl.draw_trial(&mut rng, 4, &tag, eirp(), F).orientation)
            .collect();
        let min = orientations.iter().cloned().fold(f64::MAX, f64::min);
        let max = orientations.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 0.3 && max > 1.2, "orientation spread [{min}, {max}]");
    }

    #[test]
    fn deeper_water_weaker_signal() {
        let tag = TagSpec::standard();
        // 10 extra cm of water ≈ 7.8 dB of field loss (0.78 dB/cm).
        let p5 = Placement::water_tank(0.05).nominal_rx_power(&tag, eirp(), F);
        let p15 = Placement::water_tank(0.15).nominal_rx_power(&tag, eirp(), F);
        let loss_db = 10.0 * (p5 / p15).log10();
        assert!((loss_db - 7.8).abs() < 1.5, "10 cm water loss {loss_db} dB");
    }
}
