//! Comparison beamformers.
//!
//! Every scheme answers the same question the paper's evaluation asks:
//! *given per-antenna complex channels toward a sensor (amplitude =
//! physics, phase = unknowable PLL + propagation phase), what peak power
//! arrives during an observation window?*
//!
//! * [`SingleAntenna`] — the reference every gain is normalized to.
//! * [`BlindCoherent`] — the paper's baseline: N antennas, same carrier,
//!   phases unknown. Its static phasor sum averages N× the single-antenna
//!   power (pure power increase) and fades exponentially often.
//! * [`CoherentMrt`] — channel-aware maximum-ratio transmission: the
//!   unreachable-in-vivo upper bound `(Σ|hᵢ|)²`; realizable only with
//!   channel feedback.
//! * [`ArraySteering`] — geometric phased-array steering: precompensates
//!   assumed free-space phases; works in line-of-sight air, collapses in
//!   unknown layered media (the §7 footnote-5 comparison).
//! * [`CibBeamformer`] — CIB; its time-varying envelope peaks near
//!   `(Σ|hᵢ|)²` with *no* channel knowledge.

use crate::cib::CibConfig;
use ivn_dsp::complex::Complex64;
use ivn_dsp::units::SPEED_OF_LIGHT;

/// A beamforming scheme's peak delivery.
pub trait Beamformer {
    /// Scheme name for reports.
    fn name(&self) -> &str;

    /// Peak received power during an observation window, given the
    /// per-antenna channels (phase = everything the transmitter cannot
    /// know).
    fn peak_power(&self, channels: &[Complex64]) -> f64;

    /// Number of transmit antennas the scheme drives.
    fn n_antennas(&self) -> usize;
}

/// Single-antenna reference transmitter (uses channel 0 only).
#[derive(Debug, Clone, Copy)]
pub struct SingleAntenna;

impl Beamformer for SingleAntenna {
    fn name(&self) -> &str {
        "single antenna"
    }

    fn peak_power(&self, channels: &[Complex64]) -> f64 {
        assert!(!channels.is_empty());
        channels[0].norm_sqr()
    }

    fn n_antennas(&self) -> usize {
        1
    }
}

/// The paper's baseline: N antennas transmitting the same carrier with
/// unknown phases. The received power is the static random phasor sum —
/// time does not help because nothing changes.
#[derive(Debug, Clone, Copy)]
pub struct BlindCoherent {
    /// Antenna count.
    pub n: usize,
}

impl Beamformer for BlindCoherent {
    fn name(&self) -> &str {
        "blind coherent (baseline)"
    }

    fn peak_power(&self, channels: &[Complex64]) -> f64 {
        assert_eq!(channels.len(), self.n, "one channel per antenna");
        channels.iter().copied().sum::<Complex64>().norm_sqr()
    }

    fn n_antennas(&self) -> usize {
        self.n
    }
}

/// Channel-aware maximum-ratio transmission: the coherent upper bound.
#[derive(Debug, Clone, Copy)]
pub struct CoherentMrt {
    /// Antenna count.
    pub n: usize,
}

impl Beamformer for CoherentMrt {
    fn name(&self) -> &str {
        "coherent MRT (oracle)"
    }

    fn peak_power(&self, channels: &[Complex64]) -> f64 {
        assert_eq!(channels.len(), self.n, "one channel per antenna");
        let amp: f64 = channels.iter().map(|h| h.norm()).sum();
        amp * amp
    }

    fn n_antennas(&self) -> usize {
        self.n
    }
}

/// Geometric phased-array steering: precompensates the free-space phase
/// `k·dᵢ` for *assumed* antenna→target distances. Perfect when the true
/// channel is pure free space **and** the PLL phases are calibrated away;
/// helpless against tissue-induced phase and blind PLL phases.
#[derive(Debug, Clone)]
pub struct ArraySteering {
    /// Assumed propagation distances per antenna, metres.
    pub assumed_distances_m: Vec<f64>,
    /// Carrier used for the phase precompensation, Hz.
    pub carrier_hz: f64,
}

impl ArraySteering {
    /// Precompensation phasor for antenna `i`.
    pub fn precomp(&self, i: usize) -> Complex64 {
        let k = 2.0 * std::f64::consts::PI * self.carrier_hz / SPEED_OF_LIGHT;
        Complex64::cis(k * self.assumed_distances_m[i])
    }
}

impl Beamformer for ArraySteering {
    fn name(&self) -> &str {
        "array steering (geometric)"
    }

    fn peak_power(&self, channels: &[Complex64]) -> f64 {
        assert_eq!(
            channels.len(),
            self.assumed_distances_m.len(),
            "one channel per antenna"
        );
        channels
            .iter()
            .enumerate()
            .map(|(i, &h)| h * self.precomp(i))
            .sum::<Complex64>()
            .norm_sqr()
    }

    fn n_antennas(&self) -> usize {
        self.assumed_distances_m.len()
    }
}

/// CIB as a [`Beamformer`].
#[derive(Debug, Clone)]
pub struct CibBeamformer {
    /// The frequency plan and peak-search resolution.
    pub config: CibConfig,
}

impl Beamformer for CibBeamformer {
    fn name(&self) -> &str {
        "CIB"
    }

    fn peak_power(&self, channels: &[Complex64]) -> f64 {
        self.config.received_peak_power(channels)
    }

    fn n_antennas(&self) -> usize {
        self.config.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::{Rng, StdRng};
    use std::f64::consts::TAU;

    fn blind_channels(rng: &mut StdRng, n: usize, amp: f64) -> Vec<Complex64> {
        (0..n)
            .map(|_| Complex64::from_polar(amp, rng.random::<f64>() * TAU))
            .collect()
    }

    #[test]
    fn single_antenna_reference() {
        let ch = [Complex64::from_polar(0.2, 1.0)];
        assert!((SingleAntenna.peak_power(&ch) - 0.04).abs() < 1e-12);
        assert_eq!(SingleAntenna.n_antennas(), 1);
    }

    #[test]
    fn mrt_is_upper_bound_for_everyone() {
        let mut rng = StdRng::seed_from_u64(1);
        let cib = CibBeamformer {
            config: CibConfig::paper_prototype(),
        };
        let mrt = CoherentMrt { n: 10 };
        let blind = BlindCoherent { n: 10 };
        for _ in 0..20 {
            let ch = blind_channels(&mut rng, 10, 1.0);
            let bound = mrt.peak_power(&ch);
            assert!(cib.peak_power(&ch) <= bound + 1e-6);
            assert!(blind.peak_power(&ch) <= bound + 1e-6);
        }
    }

    #[test]
    fn cib_approaches_mrt_blind() {
        // The headline claim: CIB ≈ MRT without channel knowledge.
        let mut rng = StdRng::seed_from_u64(2);
        let cib = CibBeamformer {
            config: CibConfig::paper_prototype(),
        };
        let mrt = CoherentMrt { n: 10 };
        let mut ratio_sum = 0.0;
        for _ in 0..20 {
            let ch = blind_channels(&mut rng, 10, 1.0);
            ratio_sum += cib.peak_power(&ch) / mrt.peak_power(&ch);
        }
        let mean_ratio = ratio_sum / 20.0;
        // Blind CIB recovers more than half of the channel-aware optimum
        // (≈ 0.6 with the paper's 10-tone plan) — against ~0.1 for the
        // blind-coherent baseline.
        assert!(mean_ratio > 0.5, "CIB/MRT mean {mean_ratio}");
    }

    #[test]
    fn blind_coherent_averages_n_but_fades() {
        let mut rng = StdRng::seed_from_u64(3);
        let blind = BlindCoherent { n: 10 };
        let trials = 4000;
        let powers: Vec<f64> = (0..trials)
            .map(|_| blind.peak_power(&blind_channels(&mut rng, 10, 1.0)))
            .collect();
        let mean = powers.iter().sum::<f64>() / trials as f64;
        // E[|Σ e^{jβ}|²] = N.
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
        // But deep fades happen: some trials below 1 (worse than a single
        // antenna) — the paper's blind-spot phenomenon.
        let fades = powers.iter().filter(|&&p| p < 1.0).count();
        assert!(fades > trials / 20, "only {fades} fades");
    }

    #[test]
    fn cib_never_fades_like_blind_coherent() {
        let mut rng = StdRng::seed_from_u64(4);
        let cib = CibBeamformer {
            config: CibConfig::paper_prototype(),
        };
        for _ in 0..50 {
            let ch = blind_channels(&mut rng, 10, 1.0);
            // CIB always finds a high-peak instant: ≥ 30 % of the ceiling
            // power (the blind baseline drops below 1 % routinely).
            assert!(cib.peak_power(&ch) > 30.0, "peak {}", cib.peak_power(&ch));
        }
    }

    #[test]
    fn array_steering_perfect_only_with_known_geometry_and_phase() {
        // True free-space channels with *known* distances and no PLL
        // phase: steering achieves the MRT bound.
        let carrier = 915e6;
        let k = 2.0 * std::f64::consts::PI * carrier / SPEED_OF_LIGHT;
        let dists = [1.0, 1.07, 1.21, 1.38];
        let channels: Vec<Complex64> = dists
            .iter()
            .map(|&d| Complex64::from_polar(1.0, -k * d))
            .collect();
        let steer = ArraySteering {
            assumed_distances_m: dists.to_vec(),
            carrier_hz: carrier,
        };
        assert!((steer.peak_power(&channels) - 16.0).abs() < 1e-6);

        // Add unknown PLL phases: steering collapses toward the blind sum.
        let mut rng = StdRng::seed_from_u64(5);
        let with_pll: Vec<Complex64> = channels
            .iter()
            .map(|h| *h * Complex64::cis(rng.random::<f64>() * TAU))
            .collect();
        assert!(steer.peak_power(&with_pll) < 12.0);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            SingleAntenna.name().to_string(),
            BlindCoherent { n: 2 }.name().to_string(),
            CoherentMrt { n: 2 }.name().to_string(),
            CibBeamformer {
                config: CibConfig::paper_prototype_n(2),
            }
            .name()
            .to_string(),
        ];
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
