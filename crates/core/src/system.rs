//! The complete IVN system: beamformer + harvester + tag + out-of-band
//! reader, run as one sample-level session.
//!
//! [`IvnSystem::run_session`] walks the full chain the paper's prototype
//! exercises:
//!
//! 1. **Power-up** — the CIB envelope at the tag (√watt units) drives the
//!    harvester transient; the chip must reach its operating voltage.
//! 2. **Downlink** — a Gen2 Query is PIE-keyed synchronously on all
//!    antennas around the envelope peak; the tag's envelope detector must
//!    decode it *through* the CIB amplitude ripple (this is where the
//!    Eq. 7 flatness constraint becomes operational).
//! 3. **Tag logic** — the Gen2 state machine produces an RN16.
//! 4. **Uplink** — the tag backscatters the out-of-band reader's 880 MHz
//!    carrier; the reader averages periods, correlates the preamble, and
//!    must exceed 0.8 (§6.2).
//!
//! A session succeeds only if every stage succeeds — exactly the paper's
//! success criterion for Figs. 13 and 15.

use crate::body::{Placement, TagSpec, PAPER_EIRP_DBM};
use crate::cib::CibConfig;
use crate::oob::{DecodeResult, JamTone, OobReader, OobReaderConfig};
use crate::scenario::{Scenario, ScenarioKind};
use ivn_dsp::units::dbm_to_watts;
use ivn_rfid::backscatter::BackscatterModulator;
use ivn_rfid::commands::{Command, Session};
use ivn_rfid::link::LinkParams;
use ivn_rfid::pie;
use ivn_rfid::tag::{Tag, TagReply};
use ivn_runtime::rng::Rng;

/// Full-system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Beamformer frequency plan.
    pub cib: CibConfig,
    /// Tag under test.
    pub tag: TagSpec,
    /// Per-antenna EIRP, dBm.
    pub eirp_dbm: f64,
    /// Out-of-band reader.
    pub reader: OobReaderConfig,
    /// Link timing.
    pub link: LinkParams,
    /// Envelope sample rate for the harvester transient, S/s.
    pub powerup_rate: f64,
    /// Sample rate for command keying/decoding, S/s.
    pub command_rate: f64,
}

impl SystemConfig {
    /// The paper's prototype with `n` beamformer antennas and the given
    /// tag.
    pub fn paper_prototype(n: usize, tag: TagSpec) -> Self {
        SystemConfig {
            cib: CibConfig::paper_prototype_n(n),
            tag,
            eirp_dbm: PAPER_EIRP_DBM,
            reader: OobReaderConfig::paper_defaults(),
            link: LinkParams::paper_defaults(),
            powerup_rate: 4096.0,
            command_rate: 400e3,
        }
    }

    /// The system a [`Scenario`] describes: its array/frequency plan,
    /// tag, EIRP, and (for power-session scenarios) its sample rates.
    pub fn from_scenario(s: &Scenario, quick: bool) -> Self {
        let (powerup_rate, command_rate) = match s.kind {
            ScenarioKind::PowerSession {
                powerup_rate,
                command_rate,
            } => (powerup_rate, command_rate),
            _ => (4096.0, 400e3),
        };
        SystemConfig {
            cib: s.cib(quick),
            tag: s.tag.spec(),
            eirp_dbm: s.eirp_dbm,
            reader: OobReaderConfig::paper_defaults(),
            link: LinkParams::paper_defaults(),
            powerup_rate,
            command_rate,
        }
    }
}

/// Outcome of one end-to-end session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The chip reached its operating voltage.
    pub powered: bool,
    /// When it first did, seconds into the period.
    pub time_to_power_s: Option<f64>,
    /// The tag decoded the Query through the CIB ripple.
    pub command_decoded: bool,
    /// The reader recovered the RN16 (correlation ≥ threshold and
    /// payload intact).
    pub rn16_decoded: bool,
    /// Preamble correlation achieved at the reader.
    pub correlation: f64,
    /// Peak received power at the tag, watts.
    pub peak_power_w: f64,
    /// The drawn tag orientation, radians.
    pub orientation: f64,
}

impl SessionOutcome {
    /// Overall success: every stage passed.
    pub fn success(&self) -> bool {
        self.powered && self.command_decoded && self.rn16_decoded
    }
}

/// The assembled system.
#[derive(Debug, Clone)]
pub struct IvnSystem {
    /// Configuration.
    pub config: SystemConfig,
}

impl IvnSystem {
    /// Creates a system.
    pub fn new(config: SystemConfig) -> Self {
        IvnSystem { config }
    }

    /// Assembles the system a [`Scenario`] describes.
    pub fn from_scenario(s: &Scenario, quick: bool) -> Self {
        IvnSystem::new(SystemConfig::from_scenario(s, quick))
    }

    /// Runs one session for a scenario: the scenario's system against its
    /// resolved placement. Errors if the placement names an unknown
    /// medium.
    pub fn run_scenario<R: Rng + ?Sized>(
        rng: &mut R,
        s: &Scenario,
        quick: bool,
    ) -> Result<SessionOutcome, String> {
        let placement = s.placement.resolve().map_err(|e| e.reason)?;
        Ok(Self::from_scenario(s, quick).run_session(rng, &placement))
    }

    /// Runs one full session against a placement. All randomness (channel
    /// phases, orientation, RN16, noise) flows from `rng`.
    pub fn run_session<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        placement: &Placement,
    ) -> SessionOutcome {
        let cfg = &self.config;
        let eirp_w = dbm_to_watts(cfg.eirp_dbm);
        let trial = placement.draw_trial(rng, cfg.cib.n(), &cfg.tag, eirp_w, cfg.cib.carrier_hz);
        let envelope = cfg.cib.envelope_at(&trial.channels);

        // ---- Stage 1: power-up over one CIB period. ------------------
        let grid = cfg.powerup_rate as usize;
        let amp_env = envelope.sample_period(grid); // √W
        let power_env: Vec<f64> = amp_env.iter().map(|a| a * a).collect();
        let powerup = cfg.tag.power.power_up(&power_env, cfg.powerup_rate);
        let (t_peak, peak_amp) = envelope.peak_over_period(cfg.cib.grid);
        let peak_power_w = peak_amp * peak_amp;

        let mut outcome = SessionOutcome {
            powered: powerup.powered,
            time_to_power_s: powerup.time_to_power_s,
            command_decoded: false,
            rn16_decoded: false,
            correlation: 0.0,
            peak_power_w,
            orientation: trial.orientation,
        };
        if !powerup.powered {
            return outcome;
        }

        // ---- Stage 2: downlink Query through the CIB ripple. ---------
        let query = Command::Query {
            dr: ivn_rfid::commands::DivideRatio::Dr8,
            m: ivn_rfid::commands::TagEncoding::Fm0,
            trext: false,
            session: Session::S0,
            q: 0,
        };
        let bits = query.encode();
        let runs = pie::encode_frame(&bits, &cfg.link.pie, query.needs_trcal());
        let profile = pie::rasterize(&runs, cfg.command_rate, 0.0);
        // Key the command so its centre rides the envelope peak.
        let t_start = t_peak - profile.len() as f64 / cfg.command_rate / 2.0;
        let tag_env: Vec<f64> = profile
            .iter()
            .enumerate()
            .map(|(k, &p)| p * envelope.envelope(t_start + k as f64 / cfg.command_rate))
            .collect();
        let decoded = pie::decode_frame(&tag_env, cfg.command_rate);
        outcome.command_decoded = decoded.as_ref().map(|d| *d == bits).unwrap_or(false);
        if !outcome.command_decoded {
            return outcome;
        }

        // ---- Stage 3: tag state machine. -----------------------------
        let mut tag = Tag::with_epc96(0x3005_FB63_AC1F_3681_EC88_0467, rng.random());
        tag.set_powered(true);
        let rn16 = match tag.process(&query) {
            TagReply::Rn16(rn) => rn,
            _ => return outcome,
        };
        let rn_bits: Vec<bool> = (0..16).rev().map(|i| (rn16 >> i) & 1 == 1).collect();

        // ---- Stage 4: out-of-band uplink. ----------------------------
        // Reader illumination of the tag at 880 MHz (same EIRP budget).
        let orient = cfg.tag.antenna.orientation_factor(trial.orientation)
            / cfg.tag.antenna.orientation_factor(0.0);
        let p_reader_at_tag =
            placement.nominal_rx_power(&cfg.tag, eirp_w, cfg.reader.carrier_hz) * orient;
        // Reverse path: fractional loss for 1 W of re-radiated EIRP.
        let reverse_loss =
            placement.nominal_rx_power(&cfg.tag, 1.0, cfg.reader.carrier_hz) * orient;
        let modulator = BackscatterModulator::typical_rfid();
        let uplink_amp = (p_reader_at_tag * reverse_loss).sqrt() * modulator.differential();

        // The CIB tones leak into the reader antenna over an in-air path
        // (~1 m between racks).
        let jam_coupling = ivn_em::layered::LayeredPath::free_space(1.0)
            .response(cfg.cib.carrier_hz)
            .norm()
            * ivn_dsp::units::wavelength(cfg.cib.carrier_hz)
            / (4.0 * std::f64::consts::PI);
        let jam: Vec<JamTone> = (0..cfg.cib.n())
            .map(|i| JamTone {
                freq_hz: cfg.cib.emission_hz(i),
                amplitude: (eirp_w).sqrt() * jam_coupling,
                phase: rng.random::<f64>() * std::f64::consts::TAU,
            })
            .collect();

        let samples_per_half = ((cfg.reader.sample_rate / cfg.link.blf_hz()) / 2.0)
            .round()
            .max(1.0) as usize;
        let period_samples = (cfg.reader.sample_rate * 0.02) as usize; // 20 ms windows
        let reader = OobReader::new(cfg.reader.clone());
        let result: DecodeResult = reader.receive_and_decode(
            rng,
            uplink_amp,
            &rn_bits,
            samples_per_half,
            &jam,
            period_samples,
        );
        outcome.correlation = result.correlation;
        outcome.rn16_decoded = result.success && result.payload == rn_bits;
        outcome
    }

    /// Largest free-space range (m) at which a session still succeeds,
    /// found by bisection with `repeats` confirmations (the paper repeats
    /// 3× at the found range). Deterministic per seed.
    pub fn max_range_air<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        lo_m: f64,
        hi_m: f64,
        repeats: usize,
    ) -> f64 {
        self.bisect(rng, lo_m, hi_m, repeats, |r| Placement::free_space(r))
    }

    /// Largest water depth (m) at which a session still succeeds.
    pub fn max_depth_water<R: Rng + ?Sized>(&self, rng: &mut R, hi_m: f64, repeats: usize) -> f64 {
        self.bisect(rng, 0.0, hi_m, repeats, |d| Placement::water_tank(d))
    }

    fn bisect<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mut lo: f64,
        mut hi: f64,
        repeats: usize,
        make: impl Fn(f64) -> Placement,
    ) -> f64 {
        let works = |x: f64, rng: &mut R| -> bool {
            let placement = make(x.max(1e-3));
            (0..repeats.max(1)).all(|_| self.run_session(rng, &placement).success())
        };
        if !works(lo.max(1e-3), rng) {
            return 0.0;
        }
        if works(hi, rng) {
            return hi;
        }
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            if works(mid, rng) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::StdRng;

    #[test]
    fn close_range_session_succeeds_end_to_end() {
        let sys = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
        let mut rng = StdRng::seed_from_u64(1);
        let out = sys.run_session(&mut rng, &Placement::free_space(2.0));
        assert!(out.powered, "not powered: {out:?}");
        assert!(out.command_decoded, "command lost: {out:?}");
        assert!(out.rn16_decoded, "uplink lost: corr {}", out.correlation);
        assert!(out.success());
    }

    #[test]
    fn absurd_range_session_fails_at_powerup() {
        let sys = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
        let mut rng = StdRng::seed_from_u64(2);
        let out = sys.run_session(&mut rng, &Placement::free_space(500.0));
        assert!(!out.powered);
        assert!(!out.success());
        assert!(out.time_to_power_s.is_none());
    }

    #[test]
    fn single_antenna_vs_cib_in_water() {
        // 10 cm of water: a single antenna cannot power the standard tag;
        // 8 CIB antennas can.
        let mut rng = StdRng::seed_from_u64(3);
        let placement = Placement::water_tank(0.10);
        let single = IvnSystem::new(SystemConfig::paper_prototype(1, TagSpec::standard()));
        let eight = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
        let s1 = single.run_session(&mut rng, &placement);
        assert!(!s1.powered, "single antenna should fail at 10 cm");
        let mut successes = 0;
        for _ in 0..5 {
            if eight.run_session(&mut rng, &placement).success() {
                successes += 1;
            }
        }
        assert!(successes >= 4, "8-antenna CIB succeeded only {successes}/5");
    }

    #[test]
    fn range_search_monotone_in_antennas() {
        let mut rng = StdRng::seed_from_u64(4);
        let sys2 = IvnSystem::new(SystemConfig::paper_prototype(2, TagSpec::standard()));
        let sys8 = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
        let r2 = sys2.max_range_air(&mut rng, 1.0, 80.0, 1);
        let r8 = sys8.max_range_air(&mut rng, 1.0, 80.0, 1);
        assert!(r8 > r2 * 1.5, "r2 {r2} r8 {r8}");
        assert!(r2 > 4.0, "two antennas should beat single-antenna range");
    }

    #[test]
    fn eight_antenna_range_near_38m() {
        let mut rng = StdRng::seed_from_u64(5);
        let sys = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
        let r = sys.max_range_air(&mut rng, 1.0, 80.0, 2);
        assert!(r > 25.0 && r < 50.0, "8-antenna range {r} m");
    }

    #[test]
    fn session_outcome_orientation_recorded() {
        let sys = IvnSystem::new(SystemConfig::paper_prototype(4, TagSpec::standard()));
        let mut rng = StdRng::seed_from_u64(6);
        let out = sys.run_session(&mut rng, &Placement::swine_gastric());
        assert!(out.orientation >= 0.0 && out.orientation <= std::f64::consts::FRAC_PI_2);
    }
}
