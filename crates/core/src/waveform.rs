//! The CIB envelope and its analytics.
//!
//! Everything the paper derives in §3.3–§3.6 about the waveform
//! `Y(t) = |Σᵢ aᵢ·e^{j(2πΔfᵢt + βᵢ)}|` lives here: fast peak search over
//! one period, the amplitude-flatness metric around the peak (Eq. 7), and
//! the first-order droop bound (Eq. 8) that yields the RMS-offset
//! constraint (Eq. 9).

use ivn_dsp::complex::Complex64;
use std::f64::consts::TAU;

/// An analytic CIB envelope: tones at integer-hertz offsets with fixed
/// phases and amplitudes, periodic in 1 second.
#[derive(Debug, Clone)]
pub struct CibEnvelope {
    offsets_hz: Vec<f64>,
    phases: Vec<f64>,
    amplitudes: Vec<f64>,
}

impl CibEnvelope {
    /// Creates an envelope with unit amplitudes.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    pub fn new(offsets_hz: &[f64], phases: &[f64]) -> Self {
        Self::with_amplitudes(offsets_hz, phases, &vec![1.0; offsets_hz.len()])
    }

    /// Creates an envelope with per-tone amplitudes (the physical case:
    /// each antenna's channel has its own attenuation).
    ///
    /// # Panics
    /// Panics if lengths differ or no tone is given.
    pub fn with_amplitudes(offsets_hz: &[f64], phases: &[f64], amplitudes: &[f64]) -> Self {
        assert!(!offsets_hz.is_empty(), "need at least one tone");
        assert_eq!(offsets_hz.len(), phases.len(), "offsets/phases mismatch");
        assert_eq!(offsets_hz.len(), amplitudes.len(), "offsets/amps mismatch");
        CibEnvelope {
            offsets_hz: offsets_hz.to_vec(),
            phases: phases.to_vec(),
            amplitudes: amplitudes.to_vec(),
        }
    }

    /// Number of tones (antennas).
    pub fn n(&self) -> usize {
        self.offsets_hz.len()
    }

    /// The complex sum at time `t` seconds.
    pub fn sample(&self, t: f64) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for i in 0..self.offsets_hz.len() {
            acc += Complex64::from_polar(
                self.amplitudes[i],
                TAU * self.offsets_hz[i] * t + self.phases[i],
            );
        }
        acc
    }

    /// Envelope value `Y(t)`.
    pub fn envelope(&self, t: f64) -> f64 {
        self.sample(t).norm()
    }

    /// Sum of amplitudes — the unreachable-or-reached ceiling `Y ≤ Σaᵢ`
    /// (equals N for unit amplitudes; paper §3.4).
    pub fn ceiling(&self) -> f64 {
        self.amplitudes.iter().sum()
    }

    /// Samples one period (1 s for integer offsets) on a uniform grid.
    ///
    /// Runs on the [`crate::kernels`] layer: incremental rotation with
    /// periodic exact resynchronization (no unbounded rounding drift),
    /// switching to the sparse-spectrum FFT synthesis when that is
    /// cheaper ([`crate::kernels::fft_pays_off`]).
    pub fn sample_period(&self, grid: usize) -> Vec<f64> {
        assert!(grid > 0);
        let mut scratch = crate::kernels::EnvelopeScratch::new();
        scratch.fill(&self.offsets_hz, &self.phases, Some(&self.amplitudes), grid);
        scratch.grid().iter().map(|z| z.norm()).collect()
    }

    /// [`Self::sample_period`] forced through the sparse-spectrum FFT
    /// path: each integer-hertz tone is one bin of an unnormalized
    /// inverse DFT. O(grid·log grid) independent of the tone count.
    ///
    /// # Panics
    /// Panics if `grid` is not a power of two or any offset is not an
    /// exact integer.
    pub fn sample_period_fft(&self, grid: usize) -> Vec<f64> {
        let mut scratch = crate::kernels::EnvelopeScratch::new();
        scratch.fill_fft(&self.offsets_hz, &self.phases, Some(&self.amplitudes), grid);
        scratch.grid().iter().map(|z| z.norm()).collect()
    }

    /// Peak of the envelope over one period: `(t_peak, Y_peak)`.
    ///
    /// Grid search at `grid` points followed by local ternary refinement.
    pub fn peak_over_period(&self, grid: usize) -> (f64, f64) {
        let env = self.sample_period(grid);
        let (k, _) = env
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty grid");
        // Ternary-search refinement on the bracketing interval.
        let dt = 1.0 / grid as f64;
        let mut lo = (k as f64 - 1.0) * dt;
        let mut hi = (k as f64 + 1.0) * dt;
        for _ in 0..60 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if self.envelope(m1) < self.envelope(m2) {
                lo = m1;
            } else {
                hi = m2;
            }
        }
        let t = 0.5 * (lo + hi);
        let y = self.envelope(t);
        // Physics probes: the found peak amplitude, and how close the N
        // carriers came to perfect phase alignment there (Y_peak / Σaᵢ;
        // 1.0 = fully coherent).
        ivn_runtime::trace_counter!("physics.envelope_peak", y);
        if ivn_runtime::trace::enabled() {
            let ceiling = self.ceiling();
            if ceiling > 0.0 {
                ivn_runtime::trace_counter!("physics.phase_alignment", y / ceiling);
            }
        }
        (t.rem_euclid(1.0), y)
    }

    /// Peak *power* gain over a single reference antenna of amplitude
    /// `ref_amp`: `(Y_peak / ref_amp)²`.
    pub fn peak_power_gain(&self, grid: usize, ref_amp: f64) -> f64 {
        assert!(ref_amp > 0.0);
        let (_, y) = self.peak_over_period(grid);
        (y / ref_amp).powi(2)
    }

    /// The paper's Eq. 7 fluctuation `(A_max − A_min)/A_max` over a window
    /// of `duration_s` centred at `t_center`.
    pub fn fluctuation_around(&self, t_center: f64, duration_s: f64, grid: usize) -> f64 {
        assert!(grid > 1 && duration_s > 0.0);
        let mut a_max = f64::MIN;
        let mut a_min = f64::MAX;
        for k in 0..grid {
            let t = t_center - duration_s / 2.0 + duration_s * k as f64 / (grid - 1) as f64;
            let v = self.envelope(t);
            a_max = a_max.max(v);
            a_min = a_min.min(v);
        }
        if a_max <= 0.0 {
            0.0
        } else {
            (a_max - a_min) / a_max
        }
    }

    /// First-order droop bound (Eq. 8): starting from a perfectly aligned
    /// peak, after `dt` seconds the envelope is at least
    /// `N − 2π²·dt²·ΣΔfᵢ²` (unit amplitudes). Returns that lower bound.
    pub fn taylor_droop_bound(&self, dt: f64) -> f64 {
        let n = self.ceiling();
        let sum_sq: f64 = self.offsets_hz.iter().map(|f| f * f).sum();
        n - 2.0 * std::f64::consts::PI.powi(2) * dt * dt * sum_sq
    }

    /// RMS of the frequency offsets, Hz (the Eq. 9 quantity).
    pub fn rms_offset(&self) -> f64 {
        rms_offset(&self.offsets_hz)
    }
}

/// RMS of a set of offsets: `√(Σ Δfᵢ² / N)`.
pub fn rms_offset(offsets_hz: &[f64]) -> f64 {
    assert!(!offsets_hz.is_empty());
    (offsets_hz.iter().map(|f| f * f).sum::<f64>() / offsets_hz.len() as f64).sqrt()
}

/// The Eq. 9 RMS bound for fluctuation tolerance `alpha` and command
/// duration `dt_s`, in Hz.
pub fn eq9_rms_bound(alpha: f64, dt_s: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha) && dt_s > 0.0);
    (alpha / (2.0 * std::f64::consts::PI.powi(2) * dt_s * dt_s)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_OFFSETS_HZ;
    use ivn_runtime::rng::{Rng, StdRng};

    #[test]
    fn aligned_phases_peak_at_n() {
        let env = CibEnvelope::new(&PAPER_OFFSETS_HZ, &[0.0; 10]);
        let (t, y) = env.peak_over_period(8192);
        assert!((y - 10.0).abs() < 1e-6, "peak {y}");
        assert!(t < 1e-4 || t > 1.0 - 1e-4, "peak time {t}");
        assert!((env.peak_power_gain(8192, 1.0) - 100.0).abs() < 1e-3);
    }

    #[test]
    fn random_phases_still_near_ceiling() {
        // The CIB property: whatever the βᵢ, some instant in the period
        // re-aligns the tones most of the way to the ceiling N = 10.
        // (The 1-D time scan cannot align 9 independent phases perfectly;
        // empirically the paper plan reaches ~0.7–0.85 of the ceiling.)
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let phases: Vec<f64> = (0..10).map(|_| rng.random::<f64>() * TAU).collect();
            let env = CibEnvelope::new(&PAPER_OFFSETS_HZ, &phases);
            let (_, y) = env.peak_over_period(8192);
            assert!(y > 6.0, "peak only {y} with random phases");
        }
    }

    #[test]
    fn same_frequency_tones_do_not_scan() {
        // All offsets equal (a traditional blind beamformer): the envelope
        // is constant, and with adversarial phases it can be ~0 forever —
        // the blind-spot problem of §3.4.
        let phases = [0.0, TAU / 3.0, 2.0 * TAU / 3.0];
        let env = CibEnvelope::new(&[50.0; 3], &phases);
        let (_, y) = env.peak_over_period(4096);
        assert!(y < 1e-9, "three balanced phasors should cancel, got {y}");
    }

    #[test]
    fn peak_invariant_to_common_frequency_shift() {
        // The optimization depends only on offset differences (§3.6).
        let mut rng = StdRng::seed_from_u64(2);
        let phases: Vec<f64> = (0..5).map(|_| rng.random::<f64>() * TAU).collect();
        let a = CibEnvelope::new(&[0.0, 7.0, 20.0, 49.0, 68.0], &phases);
        let shifted: Vec<f64> = [0.0, 7.0, 20.0, 49.0, 68.0]
            .iter()
            .map(|f| f + 3.0)
            .collect();
        let b = CibEnvelope::new(&shifted, &phases);
        let (_, ya) = a.peak_over_period(8192);
        let (_, yb) = b.peak_over_period(8192);
        assert!((ya - yb).abs() < 1e-6);
    }

    #[test]
    fn amplitude_weighted_ceiling() {
        let env = CibEnvelope::with_amplitudes(&[0.0, 7.0], &[0.0, 0.0], &[2.0, 3.0]);
        assert_eq!(env.ceiling(), 5.0);
        let (_, y) = env.peak_over_period(4096);
        assert!((y - 5.0).abs() < 1e-6);
    }

    #[test]
    fn envelope_periodicity() {
        let env = CibEnvelope::new(&[0.0, 7.0, 20.0], &[0.3, 1.1, 2.7]);
        for k in 0..10 {
            let t = k as f64 * 0.083;
            assert!((env.envelope(t) - env.envelope(t + 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_period_matches_pointwise() {
        let env = CibEnvelope::new(&PAPER_OFFSETS_HZ, &[0.5; 10]);
        let grid = env.sample_period(1000);
        for k in (0..1000).step_by(97) {
            assert!((grid[k] - env.envelope(k as f64 / 1000.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_period_drift_bounded_at_large_grids() {
        // The incremental-rotation loop resynchronizes from exact trig
        // every 256 steps, so even at grid = 8192 every sample pins to a
        // full direct-trig evaluation to 1e-9.
        let mut rng = StdRng::seed_from_u64(7);
        let phases: Vec<f64> = (0..10).map(|_| rng.random::<f64>() * TAU).collect();
        let env = CibEnvelope::new(&PAPER_OFFSETS_HZ, &phases);
        let grid = env.sample_period(8192);
        for (k, &g) in grid.iter().enumerate() {
            let t = k as f64 / 8192.0;
            let direct = (0..10)
                .map(|i| Complex64::from_polar(1.0, TAU * PAPER_OFFSETS_HZ[i] * t + phases[i]))
                .sum::<Complex64>()
                .norm();
            assert!(
                (g - direct).abs() < 1e-9,
                "drift {} at sample {k}",
                (g - direct).abs()
            );
        }
    }

    #[test]
    fn sample_period_fft_matches_direct() {
        let mut rng = StdRng::seed_from_u64(8);
        let phases: Vec<f64> = (0..10).map(|_| rng.random::<f64>() * TAU).collect();
        let amps: Vec<f64> = (0..10).map(|_| 0.5 + rng.random::<f64>()).collect();
        let env = CibEnvelope::with_amplitudes(&PAPER_OFFSETS_HZ, &phases, &amps);
        let direct = env.sample_period(1024);
        let via_fft = env.sample_period_fft(1024);
        for (a, b) in direct.iter().zip(&via_fft) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn sample_period_fft_rejects_non_pow2() {
        CibEnvelope::new(&[0.0, 7.0], &[0.0, 0.0]).sample_period_fft(1000);
    }

    #[test]
    fn flatness_small_near_peak_for_paper_plan() {
        // Eq. 7/9: the paper plan keeps the envelope within α = 0.5 over a
        // ~800 µs command at the peak.
        let env = CibEnvelope::new(&PAPER_OFFSETS_HZ, &[0.0; 10]);
        let (t, _) = env.peak_over_period(8192);
        let fl = env.fluctuation_around(t + 400e-6, 800e-6, 256);
        assert!(fl < 0.5, "fluctuation {fl}");
    }

    #[test]
    fn taylor_bound_holds() {
        // The true envelope must sit at or above the Eq. 8 lower bound
        // near an aligned peak.
        let env = CibEnvelope::new(&PAPER_OFFSETS_HZ, &[0.0; 10]);
        for dt in [1e-4, 4e-4, 8e-4] {
            let bound = env.taylor_droop_bound(dt);
            let actual = env.envelope(dt);
            assert!(
                actual >= bound - 1e-9,
                "dt {dt}: actual {actual} < bound {bound}"
            );
        }
    }

    #[test]
    fn rms_and_eq9() {
        let rms = rms_offset(&PAPER_OFFSETS_HZ);
        assert!((rms - 81.9).abs() < 0.5, "rms {rms}");
        let bound = eq9_rms_bound(0.5, 800e-6);
        assert!((bound - 199.0).abs() < 1.5, "bound {bound}");
        assert!(rms < bound);
    }

    #[test]
    fn wider_offsets_droop_faster() {
        let narrow = CibEnvelope::new(&[0.0, 5.0, 11.0], &[0.0; 3]);
        let wide = CibEnvelope::new(&[0.0, 500.0, 1100.0], &[0.0; 3]);
        let dt = 8e-4;
        assert!(wide.envelope(dt) < narrow.envelope(dt));
    }

    #[test]
    #[should_panic(expected = "at least one tone")]
    fn rejects_empty() {
        CibEnvelope::new(&[], &[]);
    }
}
