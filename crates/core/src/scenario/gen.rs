//! Scenario mass-production: grid sweeps and seeded jitter over any
//! scenario field.
//!
//! The generator works on the **canonical JSON form** of a scenario, so
//! any field addressable by a dot path (`"placement.depth_m"`,
//! `"array.n_antennas"`, `"kind.population"`) can be swept or jittered
//! without the generator knowing the schema. Scenario `i` of a
//! [`GenSpec`]:
//!
//! * takes grid coordinates `i mod ∏|axis|` decomposed mixed-radix over
//!   the sweep axes (first axis varies fastest),
//! * multiplies each jittered numeric field by `1 + frac·(2u−1)` with
//!   `u` drawn from RNG stream `seed_from_u64(gen_seed).fork(i)`,
//! * is renamed `{base}-{i:05}` and reseeded `base_seed + i` so every
//!   generated scenario runs distinct trial streams,
//! * and is re-parsed through [`Scenario::from_json`], so an axis that
//!   breaks the schema is a per-scenario error, not a latent panic.
//!
//! Everything is deterministic in `(base, axes, jitters, count, seed)`.

use super::Scenario;
use ivn_runtime::json::{FromJson, Json, ToJson};
use ivn_runtime::rng::{Rng, StdRng};

/// One grid axis: a dot-path into the scenario JSON and the values it
/// cycles through.
#[derive(Debug, Clone)]
pub struct SweepAxis {
    /// Dot-separated field path, e.g. `"placement.depth_m"`.
    pub path: String,
    /// Values the axis takes (any JSON value).
    pub values: Vec<Json>,
}

/// Seeded multiplicative jitter on a numeric field: the value is scaled
/// by `1 + frac·(2u−1)`, `u ~ U[0,1)` per generated scenario.
#[derive(Debug, Clone)]
pub struct JitterSpec {
    /// Dot-separated field path; must address a number.
    pub path: String,
    /// Relative half-width, e.g. `0.1` for ±10%.
    pub frac: f64,
}

/// A full generation request.
#[derive(Debug, Clone)]
pub struct GenSpec {
    /// The scenario every variant starts from.
    pub base: Scenario,
    /// How many scenarios to produce; `0` means one per grid point.
    pub count: usize,
    /// Jitter seed (independent of the scenarios' trial seeds).
    pub seed: u64,
    /// Grid axes (may be empty).
    pub sweeps: Vec<SweepAxis>,
    /// Jittered fields (may be empty).
    pub jitters: Vec<JitterSpec>,
}

/// Looks up a mutable reference to the value at `path`.
fn at_path<'a>(root: &'a mut Json, path: &str) -> Result<&'a mut Json, String> {
    let mut cur = root;
    for seg in path.split('.') {
        let Json::Obj(pairs) = cur else {
            return Err(format!("path '{path}': '{seg}' parent is not an object"));
        };
        cur = match pairs.iter_mut().find(|(k, _)| k == seg) {
            Some((_, v)) => v,
            None => return Err(format!("path '{path}': no field '{seg}'")),
        };
    }
    Ok(cur)
}

/// Replaces the value at `path` (the field must already exist in the
/// canonical form — the generator never invents schema).
pub fn set_path(root: &mut Json, path: &str, value: Json) -> Result<(), String> {
    *at_path(root, path)? = value;
    Ok(())
}

/// Number of grid points (`1` when there are no sweep axes).
pub fn grid_size(sweeps: &[SweepAxis]) -> usize {
    sweeps
        .iter()
        .map(|a| a.values.len().max(1))
        .product::<usize>()
        .max(1)
}

/// Generates `spec.count` scenarios (or one per grid point when
/// `count == 0`). Deterministic; errors name the offending path.
pub fn generate(spec: &GenSpec) -> Result<Vec<Scenario>, String> {
    for axis in &spec.sweeps {
        if axis.values.is_empty() {
            return Err(format!("sweep '{}' has no values", axis.path));
        }
    }
    let grid = grid_size(&spec.sweeps);
    let count = if spec.count == 0 { grid } else { spec.count };
    let base_json = spec.base.to_json();
    let root_rng = StdRng::seed_from_u64(spec.seed);

    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let mut json = base_json.clone();

        // Grid coordinates, mixed radix, first axis fastest.
        let mut rem = i % grid;
        for axis in &spec.sweeps {
            let k = rem % axis.values.len();
            rem /= axis.values.len();
            set_path(&mut json, &axis.path, axis.values[k].clone())?;
        }

        // Seeded jitter, one RNG stream per scenario.
        let mut rng = root_rng.fork(i as u64);
        for j in &spec.jitters {
            let slot = at_path(&mut json, &j.path)?;
            let Json::Num(v) = slot else {
                return Err(format!("jitter '{}': field is not a number", j.path));
            };
            let u: f64 = rng.random();
            *slot = Json::Num(*v * (1.0 + j.frac * (2.0 * u - 1.0)));
        }

        // Distinct name + trial seed, then validate through the schema.
        set_path(
            &mut json,
            "name",
            Json::Str(format!("{}-{i:05}", spec.base.name)),
        )?;
        set_path(
            &mut json,
            "seed",
            Json::Num((spec.base.seed + i as u64) as f64),
        )?;
        let s = Scenario::from_json(&json)
            .map_err(|e| format!("scenario {i} failed validation: {}", e.reason))?;
        out.push(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::{builtin, PlacementSpec};
    use super::*;

    fn spec() -> GenSpec {
        GenSpec {
            base: builtin("session").unwrap(),
            count: 0,
            seed: 9,
            sweeps: vec![
                SweepAxis {
                    path: "placement.depth_m".into(),
                    values: vec![Json::Num(0.02), Json::Num(0.06), Json::Num(0.10)],
                },
                SweepAxis {
                    path: "array.n_antennas".into(),
                    values: vec![Json::Num(4.0), Json::Num(8.0)],
                },
            ],
            jitters: vec![JitterSpec {
                path: "eirp_dbm".into(),
                frac: 0.05,
            }],
        }
    }

    #[test]
    fn grid_covers_every_combination() {
        let scenarios = generate(&spec()).unwrap();
        assert_eq!(scenarios.len(), 6);
        let mut combos: Vec<(usize, String)> = scenarios
            .iter()
            .map(|s| {
                let PlacementSpec::WaterTank { depth_m } = s.placement else {
                    panic!("placement kind changed")
                };
                (s.array.n_antennas, format!("{depth_m:.2}"))
            })
            .collect();
        combos.sort();
        combos.dedup();
        assert_eq!(combos.len(), 6, "duplicate grid points");
    }

    #[test]
    fn names_and_seeds_are_distinct_and_stable() {
        let scenarios = generate(&spec()).unwrap();
        assert_eq!(scenarios[0].name, "session-00000");
        assert_eq!(scenarios[5].name, "session-00005");
        let base_seed = builtin("session").unwrap().seed;
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.seed, base_seed + i as u64);
        }
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let a = generate(&spec()).unwrap();
        let b = generate(&spec()).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y, "generation must be deterministic");
        }
        let mut distinct = false;
        for s in &a {
            let rel = (s.eirp_dbm - 37.0) / 37.0;
            assert!(rel.abs() <= 0.05 + 1e-12, "jitter out of range: {rel}");
            if s.eirp_dbm != 37.0 {
                distinct = true;
            }
        }
        assert!(distinct, "jitter had no effect");
    }

    #[test]
    fn count_beyond_grid_wraps_with_fresh_jitter() {
        let mut g = spec();
        g.count = 14;
        let scenarios = generate(&g).unwrap();
        assert_eq!(scenarios.len(), 14);
        // Same grid point, different jitter stream and seed.
        assert_eq!(scenarios[0].array.n_antennas, scenarios[6].array.n_antennas);
        assert_ne!(scenarios[0].eirp_dbm, scenarios[6].eirp_dbm);
        assert_ne!(scenarios[0].seed, scenarios[6].seed);
    }

    #[test]
    fn bad_paths_are_reported() {
        let mut g = spec();
        g.sweeps[0].path = "placement.range_m".into(); // water tank has depth_m
        let err = generate(&g).unwrap_err();
        assert!(err.contains("range_m"), "{err}");

        let mut g = spec();
        g.jitters[0].path = "name".into();
        let err = generate(&g).unwrap_err();
        assert!(err.contains("not a number"), "{err}");
    }

    #[test]
    fn generated_scenarios_revalidate_through_schema() {
        let mut g = spec();
        // Sweeping antennas to 0 must be caught by Scenario validation.
        g.sweeps[1].values = vec![Json::Num(0.0)];
        let err = generate(&g).unwrap_err();
        assert!(err.contains("validation"), "{err}");
    }
}
