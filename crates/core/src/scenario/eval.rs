//! The uniform per-scenario workload the campaign driver runs.
//!
//! [`evaluate`] takes any [`Scenario`] and produces the three quantities
//! every campaign aggregates — CIB peak gain, power-up time, and decode
//! success — by running the common physics substrate: draw blind
//! channels for the placement, form the CIB envelope, drive the
//! harvester transient through the streaming block API, and key a Gen2
//! Query through the envelope ripple at the peak. Multi-sensor scenarios
//! run the Gen2 arbitration campaign instead and report inventory
//! success as their decode metric.
//!
//! Determinism: trial `i` draws from `seed.fork(i)`; the result depends
//! only on the scenario and the run mode, never on thread count.

use super::{Scenario, ScenarioKind};
use crate::multisensor::{run_campaign, scenario_deployment};
use ivn_dsp::stats::Summary;
use ivn_dsp::units::dbm_to_watts;
use ivn_rfid::commands::{Command, DivideRatio, Session, TagEncoding};
use ivn_rfid::link::LinkParams;
use ivn_rfid::pie;
use ivn_runtime::json::{Json, ToJson};
use ivn_runtime::par;

/// Block size for the streaming harvester transient.
const POWER_BLOCK: usize = 1024;

/// Campaign metrics for one evaluated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMetrics {
    /// Scenario name.
    pub name: String,
    /// Trial units contributing to the fractions.
    pub trials: usize,
    /// Per-trial CIB peak gain over one antenna, dB.
    pub gains_db: Vec<f64>,
    /// Power-up times of the trials that powered, seconds.
    pub times_to_power_s: Vec<f64>,
    /// Trials that reached operating voltage.
    pub powered: usize,
    /// Trials whose downlink decoded (or sensors inventoried).
    pub decoded: usize,
}

impl ScenarioMetrics {
    /// Fraction of trials that powered.
    pub fn powered_frac(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.powered as f64 / self.trials as f64
        }
    }

    /// Fraction of trials that decoded.
    pub fn decode_frac(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.decoded as f64 / self.trials as f64
        }
    }

    /// Gain summary (`None` when the scenario has no gain samples).
    pub fn gain_summary(&self) -> Option<Summary> {
        Summary::of(&self.gains_db)
    }

    /// Power-up-time summary (`None` when nothing powered).
    pub fn time_summary(&self) -> Option<Summary> {
        Summary::of(&self.times_to_power_s)
    }
}

impl ToJson for ScenarioMetrics {
    fn to_json(&self) -> Json {
        let opt = |s: Option<Summary>| s.map(|v| v.to_json()).unwrap_or(Json::Null);
        Json::obj([
            ("name", self.name.clone().into()),
            ("trials", self.trials.into()),
            ("gain_db", opt(self.gain_summary())),
            ("time_to_power_s", opt(self.time_summary())),
            ("powered_frac", self.powered_frac().into()),
            ("decode_frac", self.decode_frac().into()),
        ])
    }
}

/// Envelope sample rates for the harvester transient and command keying.
fn rates(kind: &ScenarioKind) -> (f64, f64) {
    match kind {
        ScenarioKind::PowerSession {
            powerup_rate,
            command_rate,
        } => (*powerup_rate, *command_rate),
        _ => (4096.0, 400e3),
    }
}

/// Evaluates one scenario. Runs trials inline (single worker) so the
/// campaign driver can parallelize across scenarios without nesting
/// pools; the result is identical at any thread count regardless.
pub fn evaluate(s: &Scenario, quick: bool) -> Result<ScenarioMetrics, String> {
    let placement = s.placement.resolve().map_err(|e| e.reason)?;
    let cib = s.cib(quick);
    let tag = s.tag.spec();
    let eirp_w = dbm_to_watts(s.eirp_dbm);
    let trials = s.trial_count(quick).max(1);

    if let ScenarioKind::MultiSensor {
        population,
        max_rounds,
        ..
    } = &s.kind
    {
        let population = (*population).max(1);
        let sensors = scenario_deployment(s)?;
        ivn_runtime::obs_count!("experiment.trials", trials * population);
        let runs = par::ensemble_threads(1, trials, s.seed, |rng, _| {
            run_campaign(rng, &cib, s.eirp_dbm, &sensors, *max_rounds)
        });
        let mut metrics = ScenarioMetrics {
            name: s.name.clone(),
            trials: trials * population,
            gains_db: Vec::new(),
            times_to_power_s: Vec::new(),
            powered: 0,
            decoded: 0,
        };
        for outcome in runs.iter().flatten() {
            metrics.powered += outcome.powered as usize;
            metrics.decoded += outcome.inventoried as usize;
        }
        return Ok(metrics);
    }

    if let ScenarioKind::Inventory { population, .. } = &s.kind {
        let exp = crate::inventory::InventoryExperiment::prepare(s, quick)?;
        ivn_runtime::obs_count!("experiment.trials", trials * population.count);
        let runs = par::ensemble_threads(1, trials, s.seed, |rng, _| exp.run_trial(rng));
        let mut metrics = ScenarioMetrics {
            name: s.name.clone(),
            trials: trials * population.count,
            gains_db: Vec::new(),
            times_to_power_s: Vec::new(),
            powered: 0,
            decoded: 0,
        };
        for run in &runs {
            metrics.powered += run.powered;
            metrics.decoded += run.inventoried;
        }
        return Ok(metrics);
    }

    // Single-sensor substrate: gain → power-up transient → downlink.
    ivn_runtime::obs_count!("experiment.trials", trials);
    let _eval_span = ivn_runtime::span!("experiment.scenario_eval_ns");
    let (powerup_rate, command_rate) = rates(&s.kind);
    let query = Command::Query {
        dr: DivideRatio::Dr8,
        m: TagEncoding::Fm0,
        trext: false,
        session: Session::S0,
        q: 0,
    };
    let bits = query.encode();
    let link = LinkParams::paper_defaults();
    let pie_runs = pie::encode_frame(&bits, &link.pie, query.needs_trcal());
    let profile = pie::rasterize(&pie_runs, command_rate, 0.0);

    struct TrialOut {
        gain_db: f64,
        powered: bool,
        time_to_power_s: Option<f64>,
        decoded: bool,
    }

    let outs = par::ensemble_threads(1, trials, s.seed, |rng, _| {
        let trial = placement.draw_trial(rng, cib.n(), &tag, eirp_w, cib.carrier_hz);
        let envelope = cib.envelope_at(&trial.channels);
        let single_w = trial.channels[0].norm_sqr();
        let (t_peak, peak_amp) = envelope.peak_over_period(cib.grid);
        let gain_db = 10.0 * (peak_amp * peak_amp / single_w).log10();

        // Harvester transient over one CIB period, streamed block-wise.
        let amp = envelope.sample_period(powerup_rate as usize);
        let mut state = tag.power.begin_power_up(powerup_rate);
        let mut power_block = Vec::with_capacity(POWER_BLOCK);
        for chunk in amp.chunks(POWER_BLOCK) {
            power_block.clear();
            power_block.extend(chunk.iter().map(|a| a * a));
            state.step_block(&power_block);
        }
        let up = state.finish();

        // Downlink Query keyed on the envelope peak, decoded through the
        // CIB ripple (only meaningful once powered).
        let decoded = up.powered && {
            let t_start = t_peak - profile.len() as f64 / command_rate / 2.0;
            let tag_env: Vec<f64> = profile
                .iter()
                .enumerate()
                .map(|(k, &p)| p * envelope.envelope(t_start + k as f64 / command_rate))
                .collect();
            pie::decode_frame(&tag_env, command_rate)
                .map(|d| d == bits)
                .unwrap_or(false)
        };
        TrialOut {
            gain_db,
            powered: up.powered,
            time_to_power_s: up.time_to_power_s,
            decoded,
        }
    });

    let mut metrics = ScenarioMetrics {
        name: s.name.clone(),
        trials,
        gains_db: Vec::with_capacity(trials),
        times_to_power_s: Vec::new(),
        powered: 0,
        decoded: 0,
    };
    for o in outs {
        metrics.gains_db.push(o.gain_db);
        if let Some(t) = o.time_to_power_s {
            metrics.times_to_power_s.push(t);
        }
        metrics.powered += o.powered as usize;
        metrics.decoded += o.decoded as usize;
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::super::builtin;
    use super::*;

    #[test]
    fn session_builtin_powers_and_decodes() {
        let s = builtin("session").unwrap();
        let m = evaluate(&s, true).unwrap();
        assert_eq!(m.trials, 4);
        assert_eq!(m.gains_db.len(), 4);
        assert!(m.powered_frac() > 0.5, "powered {}", m.powered_frac());
        assert!(m.decode_frac() > 0.0, "decoded {}", m.decode_frac());
        assert_eq!(m.times_to_power_s.len(), m.powered);
        let g = m.gain_summary().unwrap();
        assert!(g.median > 5.0 && g.median < 25.0, "gain {g}");
    }

    #[test]
    fn evaluate_is_deterministic() {
        let s = builtin("session").unwrap();
        let a = evaluate(&s, true).unwrap();
        let b = evaluate(&s, true).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json().dump(), b.to_json().dump());
    }

    #[test]
    fn multisensor_builtin_inventories_population() {
        let s = builtin("multisensor").unwrap();
        let m = evaluate(&s, true).unwrap();
        assert_eq!(m.trials, 15); // 3 trials × 5 sensors
        assert!(m.gains_db.is_empty());
        assert!(m.powered_frac() > 0.5, "powered {}", m.powered_frac());
        assert!(m.decode_frac() > 0.0, "inventoried {}", m.decode_frac());
        assert_eq!(m.to_json().get("gain_db"), Some(&Json::Null));
    }

    #[test]
    fn evaluate_counts_experiment_trials() {
        // The campaign path must feed the same `experiment.trials`
        // counter the figure experiments do — it was stuck at zero in
        // the embedded obs_report because only figure entry points
        // incremented it.
        ivn_runtime::obs::set_enabled(true);
        let before = ivn_runtime::obs::report()
            .counter("experiment.trials")
            .unwrap_or(0);
        let s = builtin("session").unwrap();
        let m = evaluate(&s, true).unwrap();
        let multi = builtin("multisensor").unwrap();
        let mm = evaluate(&multi, true).unwrap();
        let after = ivn_runtime::obs::report()
            .counter("experiment.trials")
            .unwrap_or(0);
        assert!(after > before, "experiment.trials did not advance");
        assert!(
            after - before >= (m.trials + mm.trials) as u64,
            "expected >= {} new trials, got {}",
            m.trials + mm.trials,
            after - before
        );
    }

    #[test]
    fn unknown_medium_is_an_error_not_a_panic() {
        let mut s = builtin("session").unwrap();
        s.placement = super::super::PlacementSpec::MediaBox {
            medium: "unobtainium".into(),
            depth_m: 0.05,
        };
        let err = evaluate(&s, true).unwrap_err();
        assert!(err.contains("unobtainium"), "{err}");
    }
}
