//! Declarative experiment scenarios — the configuration substrate every
//! workload in this repo runs on.
//!
//! A [`Scenario`] captures everything a measurement campaign needs:
//! the body/placement preset and its media stack, the tag under test,
//! the antenna-array geometry and frequency plan (fixed offsets or an
//! Eq. 10 [`crate::freqsel`] search), per-antenna EIRP, trial counts
//! (with a single quick/full policy, [`QuickFull`]) and the campaign
//! seed. The [`ScenarioKind`] field selects the experiment family and
//! carries its family-specific knobs.
//!
//! Scenarios round-trip through the in-tree JSON layer
//! ([`ivn_runtime::json`]): `Scenario::from_json(&Json::parse(text)?)`
//! reads a user-supplied file (unknown fields are tolerated, so files
//! can carry annotations), and [`ToJson`] emits a canonical form whose
//! bytes are stable under parse→dump.
//!
//! The built-in registry ([`builtin`]) names one scenario per paper
//! figure/table; the bench harness resolves `reproduce` targets through
//! it. [`gen`] sweeps and jitters any scenario field to mass-produce
//! scenario files, and [`eval`] is the uniform per-scenario workload
//! (gain / power-up / decode metrics) the campaign driver aggregates.

pub mod eval;
pub mod gen;

use crate::body::{Placement, TagSpec, PAPER_EIRP_DBM};
use crate::cib::CibConfig;
use crate::freqsel::{optimize, FreqSelConfig};
use ivn_em::medium::Medium;
use ivn_runtime::json::{field, FromJson, Json, JsonError, ToJson};

pub use eval::{evaluate, ScenarioMetrics};

fn err<T>(reason: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        offset: 0,
        reason: reason.into(),
    })
}

/// Reads an optional object field, `None` when absent.
fn opt_field<T: FromJson>(value: &Json, key: &str) -> Result<Option<T>, JsonError> {
    match value.get(key) {
        Some(v) => T::from_json(v).map(Some),
        None => Ok(None),
    }
}

// ---------------------------------------------------------------------
// Quick/full policy
// ---------------------------------------------------------------------

/// A value with distinct quick-mode and full-mode settings — the single
/// place the `--quick` trial-count policy lives. In JSON either
/// `{"quick": 50, "full": 150}` or a bare number (same value for both).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuickFull<T> {
    /// CI-speed value.
    pub quick: T,
    /// Paper-scale value.
    pub full: T,
}

impl<T: Copy> QuickFull<T> {
    /// Same value in both modes.
    pub fn same(v: T) -> Self {
        QuickFull { quick: v, full: v }
    }

    /// Resolves the policy for a run mode.
    pub fn get(&self, quick: bool) -> T {
        if quick {
            self.quick
        } else {
            self.full
        }
    }
}

impl<T: ToJson + PartialEq> ToJson for QuickFull<T> {
    fn to_json(&self) -> Json {
        Json::obj([
            ("quick", self.quick.to_json()),
            ("full", self.full.to_json()),
        ])
    }
}

impl<T: FromJson + Copy> FromJson for QuickFull<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Json::Obj(_) = value {
            Ok(QuickFull {
                quick: field(value, "quick")?,
                full: field(value, "full")?,
            })
        } else {
            // A bare scalar applies to both modes.
            let v = T::from_json(value)?;
            Ok(QuickFull { quick: v, full: v })
        }
    }
}

// ---------------------------------------------------------------------
// Tag
// ---------------------------------------------------------------------

/// Which of the paper's two tags a scenario powers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagKind {
    /// The Avery-class air-matched dipole tag.
    Standard,
    /// The Xerafy-class medium-matched implant tag.
    Miniature,
}

impl TagKind {
    /// Resolves to the full electrical specification.
    pub fn spec(&self) -> TagSpec {
        match self {
            TagKind::Standard => TagSpec::standard(),
            TagKind::Miniature => TagSpec::miniature(),
        }
    }

    /// The JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            TagKind::Standard => "standard",
            TagKind::Miniature => "miniature",
        }
    }
}

impl ToJson for TagKind {
    fn to_json(&self) -> Json {
        Json::Str(self.name().into())
    }
}

impl FromJson for TagKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("standard") => Ok(TagKind::Standard),
            Some("miniature") => Ok(TagKind::Miniature),
            Some(other) => err(format!("unknown tag '{other}'")),
            None => err("tag must be a string"),
        }
    }
}

// ---------------------------------------------------------------------
// Placement / media stack
// ---------------------------------------------------------------------

/// Resolves a medium by its report name (the `Medium::name` field of the
/// in-tree presets).
pub fn medium_by_name(name: &str) -> Option<Medium> {
    let all = [
        Medium::air(),
        Medium::water(),
        Medium::gastric_fluid(),
        Medium::intestinal_fluid(),
        Medium::muscle(),
        Medium::steak(),
        Medium::fat(),
        Medium::bacon(),
        Medium::chicken(),
        Medium::skin(),
        Medium::stomach_wall(),
        Medium::gastric_content(),
        Medium::blood(),
        Medium::bone(),
    ];
    all.into_iter().find(|m| m.name == name)
}

/// Declarative form of a [`Placement`]: which body/media preset the
/// sensor sits in, plus its geometric knob.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementSpec {
    /// Free-space line of sight at `range_m`.
    FreeSpace {
        /// Antenna-to-tag range, metres.
        range_m: f64,
    },
    /// The paper's water tank; tag `depth_m` inside.
    WaterTank {
        /// Immersion depth, metres.
        depth_m: f64,
    },
    /// A Fig. 11 media container: named medium, sensor `depth_m` deep.
    MediaBox {
        /// Medium preset name (see [`medium_by_name`]).
        medium: String,
        /// Depth into the medium, metres.
        depth_m: f64,
    },
    /// Swine intragastric placement (§6.2).
    SwineGastric,
    /// Swine subcutaneous placement (§6.2).
    SwineSubcutaneous,
}

impl PlacementSpec {
    /// Resolves to the physical placement (media stack + link budget).
    pub fn resolve(&self) -> Result<Placement, JsonError> {
        Ok(match self {
            PlacementSpec::FreeSpace { range_m } => Placement::free_space(*range_m),
            PlacementSpec::WaterTank { depth_m } => Placement::water_tank(*depth_m),
            PlacementSpec::MediaBox { medium, depth_m } => {
                let m = medium_by_name(medium).ok_or(JsonError {
                    offset: 0,
                    reason: format!("unknown medium '{medium}'"),
                })?;
                Placement::media_box(m, *depth_m)
            }
            PlacementSpec::SwineGastric => Placement::swine_gastric(),
            PlacementSpec::SwineSubcutaneous => Placement::swine_subcutaneous(),
        })
    }

    /// The same placement family shifted `offset_m` deeper/farther —
    /// used to spread a multi-sensor population along the geometry axis.
    pub fn at_offset(&self, offset_m: f64) -> PlacementSpec {
        match self {
            PlacementSpec::FreeSpace { range_m } => PlacementSpec::FreeSpace {
                range_m: range_m + offset_m,
            },
            PlacementSpec::WaterTank { depth_m } => PlacementSpec::WaterTank {
                depth_m: depth_m + offset_m,
            },
            PlacementSpec::MediaBox { medium, depth_m } => PlacementSpec::MediaBox {
                medium: medium.clone(),
                depth_m: depth_m + offset_m,
            },
            other => other.clone(),
        }
    }
}

impl ToJson for PlacementSpec {
    fn to_json(&self) -> Json {
        match self {
            PlacementSpec::FreeSpace { range_m } => Json::obj([
                ("type", "free_space".into()),
                ("range_m", (*range_m).into()),
            ]),
            PlacementSpec::WaterTank { depth_m } => Json::obj([
                ("type", "water_tank".into()),
                ("depth_m", (*depth_m).into()),
            ]),
            PlacementSpec::MediaBox { medium, depth_m } => Json::obj([
                ("type", "media_box".into()),
                ("medium", medium.clone().into()),
                ("depth_m", (*depth_m).into()),
            ]),
            PlacementSpec::SwineGastric => Json::obj([("type", "swine_gastric".into())]),
            PlacementSpec::SwineSubcutaneous => Json::obj([("type", "swine_subcutaneous".into())]),
        }
    }
}

impl FromJson for PlacementSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind: String = field(value, "type")?;
        match kind.as_str() {
            "free_space" => Ok(PlacementSpec::FreeSpace {
                range_m: field(value, "range_m")?,
            }),
            "water_tank" => Ok(PlacementSpec::WaterTank {
                depth_m: field(value, "depth_m")?,
            }),
            "media_box" => Ok(PlacementSpec::MediaBox {
                medium: field(value, "medium")?,
                depth_m: field(value, "depth_m")?,
            }),
            "swine_gastric" => Ok(PlacementSpec::SwineGastric),
            "swine_subcutaneous" => Ok(PlacementSpec::SwineSubcutaneous),
            other => err(format!("unknown placement type '{other}'")),
        }
    }
}

// ---------------------------------------------------------------------
// Frequency plan / freqsel
// ---------------------------------------------------------------------

/// Declarative form of a [`FreqSelConfig`] with quick/full effort levels.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqSelSpec {
    /// Number of antennas N.
    pub n_antennas: usize,
    /// Eq. 9 RMS ceiling, Hz.
    pub rms_limit_hz: f64,
    /// Largest single offset considered, Hz.
    pub max_offset_hz: usize,
    /// Monte-Carlo draws per objective evaluation.
    pub mc_draws: QuickFull<usize>,
    /// Time-grid resolution.
    pub grid: QuickFull<usize>,
    /// Random restarts.
    pub restarts: QuickFull<usize>,
    /// Hill-climbing iterations per restart.
    pub iterations: QuickFull<usize>,
}

impl FreqSelSpec {
    /// The paper-scale search with the historical quick-mode trims.
    pub fn paper_scale() -> Self {
        FreqSelSpec {
            n_antennas: 10,
            rms_limit_hz: 199.0,
            max_offset_hz: 256,
            mc_draws: QuickFull {
                quick: 32,
                full: 96,
            },
            grid: QuickFull {
                quick: 512,
                full: 1024,
            },
            restarts: QuickFull { quick: 3, full: 8 },
            iterations: QuickFull {
                quick: 60,
                full: 160,
            },
        }
    }

    /// The historical test-scale search for `n` antennas.
    pub fn test_scale(n: usize) -> Self {
        FreqSelSpec {
            n_antennas: n,
            rms_limit_hz: 199.0,
            max_offset_hz: 160,
            mc_draws: QuickFull {
                quick: 32,
                full: 32,
            },
            grid: QuickFull::same(512),
            restarts: QuickFull { quick: 3, full: 3 },
            iterations: QuickFull {
                quick: 60,
                full: 60,
            },
        }
    }

    /// Resolves to the optimizer configuration for a run mode.
    pub fn resolve(&self, quick: bool) -> FreqSelConfig {
        FreqSelConfig {
            n_antennas: self.n_antennas,
            rms_limit_hz: self.rms_limit_hz,
            max_offset_hz: self.max_offset_hz as u32,
            mc_draws: self.mc_draws.get(quick),
            grid: self.grid.get(quick),
            restarts: self.restarts.get(quick),
            iterations: self.iterations.get(quick),
        }
    }
}

impl ToJson for FreqSelSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n_antennas", self.n_antennas.into()),
            ("rms_limit_hz", self.rms_limit_hz.into()),
            ("max_offset_hz", self.max_offset_hz.into()),
            ("mc_draws", self.mc_draws.to_json()),
            ("grid", self.grid.to_json()),
            ("restarts", self.restarts.to_json()),
            ("iterations", self.iterations.to_json()),
        ])
    }
}

impl FromJson for FreqSelSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(FreqSelSpec {
            n_antennas: field(value, "n_antennas")?,
            rms_limit_hz: field(value, "rms_limit_hz")?,
            max_offset_hz: field(value, "max_offset_hz")?,
            mc_draws: field(value, "mc_draws")?,
            grid: field(value, "grid")?,
            restarts: field(value, "restarts")?,
            iterations: field(value, "iterations")?,
        })
    }
}

/// Where a scenario's CIB frequency plan comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum FreqPlan {
    /// The paper's published plan, truncated to the array size.
    Paper,
    /// Explicit offsets in Hz.
    Offsets(Vec<f64>),
    /// Run the Eq. 10 search with this spec and seed.
    Optimize {
        /// Search configuration.
        spec: FreqSelSpec,
        /// Optimizer seed.
        seed: u64,
    },
}

impl ToJson for FreqPlan {
    fn to_json(&self) -> Json {
        match self {
            FreqPlan::Paper => Json::Str("paper".into()),
            FreqPlan::Offsets(v) => {
                Json::obj([("type", "offsets".into()), ("offsets_hz", v.clone().into())])
            }
            FreqPlan::Optimize { spec, seed } => Json::obj([
                ("type", "optimize".into()),
                ("seed", (*seed as f64).into()),
                ("freqsel", spec.to_json()),
            ]),
        }
    }
}

impl FromJson for FreqPlan {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Some(s) = value.as_str() {
            return match s {
                "paper" => Ok(FreqPlan::Paper),
                other => err(format!("unknown plan '{other}'")),
            };
        }
        let kind: String = field(value, "type")?;
        match kind.as_str() {
            "offsets" => Ok(FreqPlan::Offsets(field(value, "offsets_hz")?)),
            "optimize" => Ok(FreqPlan::Optimize {
                seed: field::<f64>(value, "seed")? as u64,
                spec: field(value, "freqsel")?,
            }),
            other => err(format!("unknown plan type '{other}'")),
        }
    }
}

/// Antenna-array geometry: how many antennas, which frequency plan they
/// emit, and the analytic peak-search resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySpec {
    /// Antenna count.
    pub n_antennas: usize,
    /// Frequency plan source.
    pub plan: FreqPlan,
    /// Band-centre carrier, Hz.
    pub carrier_hz: f64,
    /// Grid resolution for analytic envelope-peak searches.
    pub grid: usize,
}

impl ArraySpec {
    /// The paper's prototype array truncated to `n` antennas.
    pub fn paper(n: usize) -> Self {
        ArraySpec {
            n_antennas: n,
            plan: FreqPlan::Paper,
            carrier_hz: crate::BEAMFORMER_CARRIER_HZ,
            grid: 4096,
        }
    }

    /// Resolves to the CIB transmitter configuration (runs the Eq. 10
    /// search for [`FreqPlan::Optimize`] plans, consulting the global
    /// [`PlanCache`](crate::plancache::PlanCache) first — the search
    /// depends only on the spec, seed and quick flag, so fleets sharing
    /// an array config compute each plan once).
    pub fn cib(&self, quick: bool) -> CibConfig {
        let offsets_hz = match &self.plan {
            FreqPlan::Paper => {
                assert!(
                    (1..=crate::PAPER_OFFSETS_HZ.len()).contains(&self.n_antennas),
                    "paper plan has 1..=10 antennas"
                );
                crate::PAPER_OFFSETS_HZ[..self.n_antennas].to_vec()
            }
            FreqPlan::Offsets(v) => v.clone(),
            FreqPlan::Optimize { spec, seed } => crate::plancache::PlanCache::global()
                .get_or_compute(&self.plan_key(quick), || {
                    optimize(&spec.resolve(quick), *seed).offsets_hz
                }),
        };
        CibConfig {
            offsets_hz,
            carrier_hz: self.carrier_hz,
            grid: self.grid,
        }
    }

    /// The canonical [`PlanCache`](crate::plancache::PlanCache) key for
    /// this array at the given resolution: the array's canonical JSON
    /// (fixed field order) plus the quick flag — exactly the inputs
    /// that reach the plan optimizer, and nothing else (body,
    /// placement, EIRP and trial seeds cannot influence the offsets, so
    /// sweep/jitter fleets share the entry).
    pub fn plan_key(&self, quick: bool) -> String {
        format!("quick={quick}|{}", self.to_json().dump())
    }
}

impl ToJson for ArraySpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n_antennas", self.n_antennas.into()),
            ("plan", self.plan.to_json()),
            ("carrier_hz", self.carrier_hz.into()),
            ("grid", self.grid.into()),
        ])
    }
}

impl FromJson for ArraySpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let plan: FreqPlan = opt_field(value, "plan")?.unwrap_or(FreqPlan::Paper);
        let n_antennas = match (&plan, opt_field::<usize>(value, "n_antennas")?) {
            (FreqPlan::Offsets(v), None) => v.len(),
            (FreqPlan::Offsets(v), Some(n)) => {
                if n != v.len() {
                    return err(format!("n_antennas {n} != {} explicit offsets", v.len()));
                }
                n
            }
            (_, Some(n)) => n,
            (_, None) => return err("missing field 'n_antennas'"),
        };
        if n_antennas == 0 {
            return err("n_antennas must be positive");
        }
        Ok(ArraySpec {
            n_antennas,
            plan,
            carrier_hz: opt_field(value, "carrier_hz")?.unwrap_or(crate::BEAMFORMER_CARRIER_HZ),
            grid: opt_field(value, "grid")?.unwrap_or(4096),
        })
    }
}

// ---------------------------------------------------------------------
// Tag populations / anti-collision policies
// ---------------------------------------------------------------------

/// A population of tags spread along the placement's geometry axis,
/// with the inter-tag coupling knobs (ivn-em's
/// [`CouplingModel`](ivn_em::coupling::CouplingModel)). Tag `i` sits at
/// `i × spacing_m` past the scenario placement and draws its RNG from
/// the trial stream's fork `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct TagPopulation {
    /// Number of tags.
    pub count: usize,
    /// Spacing between consecutive tags along the geometry axis, metres.
    pub spacing_m: f64,
    /// Mutual-detuning strength (0 disables).
    pub detuning: f64,
    /// Shadowing cost per interposed tag, dB (0 disables).
    pub shadow_db: f64,
}

impl TagPopulation {
    /// A population with the coupling knobs off.
    pub fn uncoupled(count: usize, spacing_m: f64) -> Self {
        TagPopulation {
            count,
            spacing_m,
            detuning: 0.0,
            shadow_db: 0.0,
        }
    }

    /// The population's coupling model (2 cm reference spacing).
    pub fn coupling(&self) -> ivn_em::coupling::CouplingModel {
        ivn_em::coupling::CouplingModel::new(self.detuning, 0.02, self.shadow_db)
    }
}

impl ToJson for TagPopulation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", self.count.into()),
            ("spacing_m", self.spacing_m.into()),
            ("detuning", self.detuning.into()),
            ("shadow_db", self.shadow_db.into()),
        ])
    }
}

impl FromJson for TagPopulation {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let count: usize = field(value, "count")?;
        if count == 0 {
            return err("population count must be positive");
        }
        Ok(TagPopulation {
            count,
            spacing_m: opt_field(value, "spacing_m")?.unwrap_or(0.001),
            detuning: opt_field(value, "detuning")?.unwrap_or(0.0),
            shadow_db: opt_field(value, "shadow_db")?.unwrap_or(0.0),
        })
    }
}

/// Declarative form of an anti-collision policy
/// ([`ivn_rfid::anticollision::AntiCollision`]); `build` instantiates
/// the trait object, so a scenario file can pick any registered policy.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// The Gen2 adaptive Q-algorithm.
    Adaptive {
        /// Initial Q.
        q0: u8,
        /// Step constant C.
        c: f64,
    },
    /// A constant frame size.
    Fixed {
        /// Frame size exponent.
        q: u8,
    },
    /// Schoute backlog estimation.
    Schoute {
        /// Initial Q.
        q0: u8,
    },
}

impl PolicySpec {
    /// The JSON/report name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Adaptive { .. } => "adaptive",
            PolicySpec::Fixed { .. } => "fixed",
            PolicySpec::Schoute { .. } => "schoute",
        }
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn ivn_rfid::anticollision::AntiCollision> {
        use ivn_rfid::anticollision::{AdaptiveQ, FixedQ, SchouteQ};
        use ivn_rfid::reader::QAlgorithm;
        match self {
            PolicySpec::Adaptive { q0, c } => {
                Box::new(AdaptiveQ::new(QAlgorithm { q0: *q0, c: *c }))
            }
            PolicySpec::Fixed { q } => Box::new(FixedQ::new(*q)),
            PolicySpec::Schoute { q0 } => Box::new(SchouteQ::new(*q0)),
        }
    }

    /// The three default policy arms every comparison runs.
    pub fn default_arms() -> Vec<PolicySpec> {
        vec![
            PolicySpec::Adaptive { q0: 4, c: 0.3 },
            PolicySpec::Fixed { q: 6 },
            PolicySpec::Schoute { q0: 4 },
        ]
    }
}

impl ToJson for PolicySpec {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> =
            vec![("type".to_string(), Json::Str(self.name().into()))];
        match self {
            PolicySpec::Adaptive { q0, c } => {
                pairs.push(("q0".into(), (*q0 as usize).into()));
                pairs.push(("c".into(), (*c).into()));
            }
            PolicySpec::Fixed { q } => pairs.push(("q".into(), (*q as usize).into())),
            PolicySpec::Schoute { q0 } => pairs.push(("q0".into(), (*q0 as usize).into())),
        }
        Json::Obj(pairs)
    }
}

impl FromJson for PolicySpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind: String = field(value, "type")?;
        Ok(match kind.as_str() {
            "adaptive" => PolicySpec::Adaptive {
                q0: opt_field::<usize>(value, "q0")?.unwrap_or(4) as u8,
                c: opt_field(value, "c")?.unwrap_or(0.3),
            },
            "fixed" => PolicySpec::Fixed {
                q: opt_field::<usize>(value, "q")?.unwrap_or(6) as u8,
            },
            "schoute" => PolicySpec::Schoute {
                q0: opt_field::<usize>(value, "q0")?.unwrap_or(4) as u8,
            },
            other => return err(format!("unknown policy '{other}'")),
        })
    }
}

// ---------------------------------------------------------------------
// ScenarioKind
// ---------------------------------------------------------------------

/// The experiment family a scenario runs, with family-specific knobs.
/// The common substrate (array, tag, placement, trials, seed) lives on
/// [`Scenario`] itself.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// Fig. 2 — diode I-V curves.
    Diode,
    /// Fig. 3 — tissue-vs-air path loss.
    TissueLoss,
    /// Fig. 4 — conduction angle across placements.
    Conduction,
    /// Fig. 6 — best-vs-worst frequency-plan gain CDFs.
    GainCdf {
        /// Eq. 10 search configuration.
        freqsel: FreqSelSpec,
        /// Seed of the plan search (distinct from the CDF seed).
        plan_seed: u64,
        /// Envelope grid for the CDF trials.
        cdf_grid: QuickFull<usize>,
    },
    /// Fig. 9 — gain vs number of antennas.
    GainVsAntennas {
        /// Largest antenna count swept.
        n_max: usize,
    },
    /// Fig. 10 — gain stability vs depth and orientation.
    GainStability {
        /// Depths swept, metres.
        depths_m: Vec<f64>,
        /// Orientations swept, radians.
        orientations_rad: Vec<f64>,
    },
    /// Fig. 11 — gain across the seven media.
    MediaGain,
    /// Fig. 12 — CIB/baseline power-ratio CDF.
    RatioCdf,
    /// Fig. 13 — range vs antennas (one panel; the figure derives four).
    Range {
        /// Largest antenna count searched.
        n_max: QuickFull<usize>,
    },
    /// §6.2 / Fig. 15 — the in-vivo swine campaign.
    InVivo,
    /// §5 — the frequency-plan optimization table.
    FreqPlanSearch {
        /// Eq. 10 search configuration.
        freqsel: FreqSelSpec,
    },
    /// Design-choice ablations.
    Ablations,
    /// End-to-end sample-path chain.
    Pipeline,
    /// The campaign workhorse: per-trial gain, power-up transient and
    /// downlink decode through the CIB ripple.
    PowerSession {
        /// Envelope sample rate for the harvester transient, S/s.
        powerup_rate: f64,
        /// Sample rate for command keying/decoding, S/s.
        command_rate: f64,
    },
    /// Multi-sensor population: CIB power-up + Gen2 inventory.
    MultiSensor {
        /// Population size.
        population: usize,
        /// Geometric spacing between consecutive sensors, metres.
        spacing_m: f64,
        /// Maximum Gen2 inventory rounds.
        max_rounds: usize,
    },
    /// Population-scale anti-collision inventory: link budgets + inter-tag
    /// coupling feed a full Gen2 inventory under a pluggable policy.
    Inventory {
        /// The tag population and its coupling knobs.
        population: TagPopulation,
        /// Frame-sizing policy.
        policy: PolicySpec,
        /// Maximum inventory rounds per trial.
        max_rounds: usize,
        /// Capture threshold in dB (≤ 0 disables capture arbitration).
        capture_db: f64,
        /// Per-reply fade half-range in dB for capture contests.
        fade_db: f64,
    },
}

impl ScenarioKind {
    /// The JSON tag.
    pub fn type_name(&self) -> &'static str {
        match self {
            ScenarioKind::Diode => "diode",
            ScenarioKind::TissueLoss => "tissue_loss",
            ScenarioKind::Conduction => "conduction",
            ScenarioKind::GainCdf { .. } => "gain_cdf",
            ScenarioKind::GainVsAntennas { .. } => "gain_vs_antennas",
            ScenarioKind::GainStability { .. } => "gain_stability",
            ScenarioKind::MediaGain => "media_gain",
            ScenarioKind::RatioCdf => "ratio_cdf",
            ScenarioKind::Range { .. } => "range",
            ScenarioKind::InVivo => "in_vivo",
            ScenarioKind::FreqPlanSearch { .. } => "freq_plan_search",
            ScenarioKind::Ablations => "ablations",
            ScenarioKind::Pipeline => "pipeline",
            ScenarioKind::PowerSession { .. } => "power_session",
            ScenarioKind::MultiSensor { .. } => "multi_sensor",
            ScenarioKind::Inventory { .. } => "inventory",
        }
    }
}

impl ToJson for ScenarioKind {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> =
            vec![("type".to_string(), Json::Str(self.type_name().into()))];
        match self {
            ScenarioKind::GainCdf {
                freqsel,
                plan_seed,
                cdf_grid,
            } => {
                pairs.push(("freqsel".into(), freqsel.to_json()));
                pairs.push(("plan_seed".into(), (*plan_seed as f64).into()));
                pairs.push(("cdf_grid".into(), cdf_grid.to_json()));
            }
            ScenarioKind::GainVsAntennas { n_max } => {
                pairs.push(("n_max".into(), (*n_max).into()));
            }
            ScenarioKind::GainStability {
                depths_m,
                orientations_rad,
            } => {
                pairs.push(("depths_m".into(), depths_m.clone().into()));
                pairs.push(("orientations_rad".into(), orientations_rad.clone().into()));
            }
            ScenarioKind::Range { n_max } => {
                pairs.push(("n_max".into(), n_max.to_json()));
            }
            ScenarioKind::FreqPlanSearch { freqsel } => {
                pairs.push(("freqsel".into(), freqsel.to_json()));
            }
            ScenarioKind::PowerSession {
                powerup_rate,
                command_rate,
            } => {
                pairs.push(("powerup_rate".into(), (*powerup_rate).into()));
                pairs.push(("command_rate".into(), (*command_rate).into()));
            }
            ScenarioKind::MultiSensor {
                population,
                spacing_m,
                max_rounds,
            } => {
                pairs.push(("population".into(), (*population).into()));
                pairs.push(("spacing_m".into(), (*spacing_m).into()));
                pairs.push(("max_rounds".into(), (*max_rounds).into()));
            }
            ScenarioKind::Inventory {
                population,
                policy,
                max_rounds,
                capture_db,
                fade_db,
            } => {
                pairs.push(("population".into(), population.to_json()));
                pairs.push(("policy".into(), policy.to_json()));
                pairs.push(("max_rounds".into(), (*max_rounds).into()));
                pairs.push(("capture_db".into(), (*capture_db).into()));
                pairs.push(("fade_db".into(), (*fade_db).into()));
            }
            _ => {}
        }
        Json::Obj(pairs)
    }
}

impl FromJson for ScenarioKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind: String = field(value, "type")?;
        Ok(match kind.as_str() {
            "diode" => ScenarioKind::Diode,
            "tissue_loss" => ScenarioKind::TissueLoss,
            "conduction" => ScenarioKind::Conduction,
            "gain_cdf" => ScenarioKind::GainCdf {
                freqsel: field(value, "freqsel")?,
                plan_seed: field::<f64>(value, "plan_seed")? as u64,
                cdf_grid: field(value, "cdf_grid")?,
            },
            "gain_vs_antennas" => ScenarioKind::GainVsAntennas {
                n_max: field(value, "n_max")?,
            },
            "gain_stability" => ScenarioKind::GainStability {
                depths_m: field(value, "depths_m")?,
                orientations_rad: field(value, "orientations_rad")?,
            },
            "media_gain" => ScenarioKind::MediaGain,
            "ratio_cdf" => ScenarioKind::RatioCdf,
            "range" => ScenarioKind::Range {
                n_max: field(value, "n_max")?,
            },
            "in_vivo" => ScenarioKind::InVivo,
            "freq_plan_search" => ScenarioKind::FreqPlanSearch {
                freqsel: field(value, "freqsel")?,
            },
            "ablations" => ScenarioKind::Ablations,
            "pipeline" => ScenarioKind::Pipeline,
            "power_session" => ScenarioKind::PowerSession {
                powerup_rate: opt_field(value, "powerup_rate")?.unwrap_or(4096.0),
                command_rate: opt_field(value, "command_rate")?.unwrap_or(400e3),
            },
            "multi_sensor" => ScenarioKind::MultiSensor {
                population: field(value, "population")?,
                spacing_m: opt_field(value, "spacing_m")?.unwrap_or(0.0),
                max_rounds: opt_field(value, "max_rounds")?.unwrap_or(40),
            },
            "inventory" => ScenarioKind::Inventory {
                population: field(value, "population")?,
                policy: opt_field(value, "policy")?
                    .unwrap_or(PolicySpec::Adaptive { q0: 4, c: 0.3 }),
                max_rounds: opt_field(value, "max_rounds")?.unwrap_or(64),
                capture_db: opt_field(value, "capture_db")?.unwrap_or(6.0),
                fade_db: opt_field(value, "fade_db")?.unwrap_or(3.0),
            },
            other => return err(format!("unknown scenario kind '{other}'")),
        })
    }
}

// ---------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------

/// One declarative experiment: the full configuration a campaign needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Name for reports and file naming.
    pub name: String,
    /// Campaign seed; trial `i` draws from stream `fork(i)`.
    pub seed: u64,
    /// Monte-Carlo trials per measurement (quick/full policy).
    pub trials: QuickFull<usize>,
    /// Antenna array + frequency plan.
    pub array: ArraySpec,
    /// Tag under test.
    pub tag: TagKind,
    /// Where the sensor sits (body preset / media stack).
    pub placement: PlacementSpec,
    /// Per-antenna EIRP, dBm.
    pub eirp_dbm: f64,
    /// Experiment family + its knobs.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// A neutral base scenario: paper array, standard tag, free space.
    pub fn base(name: &str, kind: ScenarioKind) -> Self {
        Scenario {
            name: name.to_string(),
            seed: 1,
            trials: QuickFull { quick: 8, full: 50 },
            array: ArraySpec::paper(10),
            tag: TagKind::Standard,
            placement: PlacementSpec::FreeSpace { range_m: 2.0 },
            eirp_dbm: PAPER_EIRP_DBM,
            kind,
        }
    }

    /// Trial count for a run mode (the quick-mode policy).
    pub fn trial_count(&self, quick: bool) -> usize {
        self.trials.get(quick)
    }

    /// Resolved CIB configuration.
    pub fn cib(&self, quick: bool) -> CibConfig {
        self.array.cib(quick)
    }

    /// Same scenario with a different tag.
    pub fn with_tag(&self, tag: TagKind) -> Scenario {
        Scenario {
            tag,
            ..self.clone()
        }
    }

    /// Same scenario with a different placement.
    pub fn with_placement(&self, placement: PlacementSpec) -> Scenario {
        Scenario {
            placement,
            ..self.clone()
        }
    }

    /// Same scenario with a different name.
    pub fn with_name(&self, name: &str) -> Scenario {
        Scenario {
            name: name.to_string(),
            ..self.clone()
        }
    }

    /// Same scenario with a different seed.
    pub fn with_seed(&self, seed: u64) -> Scenario {
        Scenario {
            seed,
            ..self.clone()
        }
    }

    /// Parses a scenario from JSON text.
    pub fn parse(text: &str) -> Result<Scenario, JsonError> {
        Scenario::from_json(&Json::parse(text)?)
    }

    /// Canonical JSON text (stable under parse → dump).
    pub fn dump(&self) -> String {
        self.to_json().dump()
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.clone().into()),
            ("seed", (self.seed as f64).into()),
            ("trials", self.trials.to_json()),
            ("array", self.array.to_json()),
            ("tag", self.tag.to_json()),
            ("placement", self.placement.to_json()),
            ("eirp_dbm", self.eirp_dbm.into()),
            ("kind", self.kind.to_json()),
        ])
    }
}

impl FromJson for Scenario {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if !matches!(value, Json::Obj(_)) {
            return err("scenario must be a JSON object");
        }
        Ok(Scenario {
            name: opt_field(value, "name")?.unwrap_or_else(|| "scenario".to_string()),
            seed: opt_field::<f64>(value, "seed")?.unwrap_or(1.0) as u64,
            trials: opt_field(value, "trials")?.unwrap_or(QuickFull { quick: 8, full: 50 }),
            array: opt_field(value, "array")?.unwrap_or_else(|| ArraySpec::paper(10)),
            tag: opt_field(value, "tag")?.unwrap_or(TagKind::Standard),
            placement: opt_field(value, "placement")?
                .unwrap_or(PlacementSpec::FreeSpace { range_m: 2.0 }),
            eirp_dbm: opt_field(value, "eirp_dbm")?.unwrap_or(PAPER_EIRP_DBM),
            kind: field(value, "kind")?,
        })
    }
}

// ---------------------------------------------------------------------
// Built-in registry
// ---------------------------------------------------------------------

/// Names of every built-in scenario, in `reproduce all` order plus the
/// campaign workhorses.
pub const BUILTIN_NAMES: [&str; 16] = [
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "invivo",
    "freqs",
    "ablations",
    "pipeline",
    "session",
    "multisensor",
    "inventory",
];

/// Resolves a built-in scenario by name. Every figure/table target of
/// the paper's evaluation is one entry; `session` and `multisensor` are
/// the campaign workhorses.
pub fn builtin(name: &str) -> Option<Scenario> {
    let s = match name {
        "fig2" => Scenario {
            trials: QuickFull::same(1),
            ..Scenario::base("fig2", ScenarioKind::Diode)
        },
        "fig3" => Scenario {
            trials: QuickFull::same(1),
            placement: PlacementSpec::MediaBox {
                medium: "muscle".into(),
                depth_m: 0.10,
            },
            ..Scenario::base("fig3", ScenarioKind::TissueLoss)
        },
        "fig4" => Scenario {
            trials: QuickFull::same(1),
            placement: PlacementSpec::MediaBox {
                medium: "muscle".into(),
                depth_m: 0.055,
            },
            ..Scenario::base("fig4", ScenarioKind::Conduction)
        },
        "fig6" => Scenario {
            seed: 606,
            trials: QuickFull {
                quick: 200,
                full: 2000,
            },
            array: ArraySpec::paper(5),
            ..Scenario::base(
                "fig6",
                ScenarioKind::GainCdf {
                    freqsel: FreqSelSpec {
                        mc_draws: QuickFull {
                            quick: 32,
                            full: 96,
                        },
                        restarts: QuickFull { quick: 3, full: 6 },
                        iterations: QuickFull {
                            quick: 60,
                            full: 200,
                        },
                        ..FreqSelSpec::test_scale(5)
                    },
                    plan_seed: 2018,
                    cdf_grid: QuickFull {
                        quick: 1024,
                        full: 4096,
                    },
                },
            )
        },
        "fig9" => Scenario {
            seed: 918,
            trials: QuickFull {
                quick: 50,
                full: 150,
            },
            ..Scenario::base("fig9", ScenarioKind::GainVsAntennas { n_max: 10 })
        },
        "fig10" => Scenario {
            seed: 1010,
            trials: QuickFull {
                quick: 30,
                full: 100,
            },
            placement: PlacementSpec::WaterTank { depth_m: 0.10 },
            ..Scenario::base(
                "fig10",
                ScenarioKind::GainStability {
                    depths_m: vec![0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20],
                    orientations_rad: (0..9)
                        .map(|k| k as f64 * std::f64::consts::TAU / 8.0 / 2.0)
                        .collect(),
                },
            )
        },
        "fig11" => Scenario {
            seed: 1111,
            trials: QuickFull {
                quick: 40,
                full: 100,
            },
            ..Scenario::base("fig11", ScenarioKind::MediaGain)
        },
        "fig12" => Scenario {
            seed: 1212,
            trials: QuickFull {
                quick: 300,
                full: 3000,
            },
            ..Scenario::base("fig12", ScenarioKind::RatioCdf)
        },
        "fig13" => Scenario {
            seed: 1313,
            trials: QuickFull::same(1),
            ..Scenario::base(
                "fig13",
                ScenarioKind::Range {
                    n_max: QuickFull { quick: 4, full: 8 },
                },
            )
        },
        "invivo" => Scenario {
            seed: 1515,
            trials: QuickFull { quick: 6, full: 12 },
            array: ArraySpec::paper(8),
            placement: PlacementSpec::SwineGastric,
            ..Scenario::base("invivo", ScenarioKind::InVivo)
        },
        "freqs" => Scenario {
            seed: 5150,
            trials: QuickFull::same(1),
            ..Scenario::base(
                "freqs",
                ScenarioKind::FreqPlanSearch {
                    freqsel: FreqSelSpec::paper_scale(),
                },
            )
        },
        "ablations" => Scenario {
            trials: QuickFull::same(1),
            ..Scenario::base("ablations", ScenarioKind::Ablations)
        },
        "pipeline" => Scenario {
            seed: 42,
            trials: QuickFull::same(1),
            array: ArraySpec::paper(5),
            ..Scenario::base("pipeline", ScenarioKind::Pipeline)
        },
        "session" => Scenario {
            seed: 77,
            trials: QuickFull { quick: 4, full: 24 },
            array: ArraySpec {
                grid: 1024,
                ..ArraySpec::paper(8)
            },
            placement: PlacementSpec::WaterTank { depth_m: 0.08 },
            ..Scenario::base(
                "session",
                ScenarioKind::PowerSession {
                    powerup_rate: 2048.0,
                    command_rate: 400e3,
                },
            )
        },
        "multisensor" => Scenario {
            seed: 88,
            trials: QuickFull { quick: 3, full: 10 },
            array: ArraySpec::paper(8),
            placement: PlacementSpec::WaterTank { depth_m: 0.02 },
            ..Scenario::base(
                "multisensor",
                ScenarioKind::MultiSensor {
                    population: 5,
                    spacing_m: 0.03,
                    max_rounds: 40,
                },
            )
        },
        "inventory" => Scenario {
            seed: 1001,
            trials: QuickFull { quick: 2, full: 8 },
            array: ArraySpec::paper(8),
            placement: PlacementSpec::WaterTank { depth_m: 0.02 },
            ..Scenario::base(
                "inventory",
                ScenarioKind::Inventory {
                    population: TagPopulation {
                        count: 64,
                        spacing_m: 0.002,
                        detuning: 0.05,
                        shadow_db: 0.1,
                    },
                    policy: PolicySpec::Adaptive { q0: 6, c: 0.3 },
                    max_rounds: 256,
                    capture_db: 6.0,
                    fade_db: 3.0,
                },
            )
        },
        _ => return None,
    };
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_round_trips_byte_identically() {
        for name in BUILTIN_NAMES {
            let s = builtin(name).expect(name);
            let text = s.dump();
            let back = Scenario::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, s, "{name} value round trip");
            assert_eq!(back.dump(), text, "{name} byte round trip");
        }
    }

    #[test]
    fn unknown_fields_tolerated() {
        let mut s = builtin("fig9").unwrap().to_json();
        if let Json::Obj(pairs) = &mut s {
            pairs.push(("comment".into(), Json::Str("hand-edited".into())));
            pairs.insert(0, ("_version".into(), Json::Num(2.0)));
        }
        let back = Scenario::from_json(&s).unwrap();
        assert_eq!(back, builtin("fig9").unwrap());
    }

    #[test]
    fn defaults_fill_missing_substrate() {
        let s = Scenario::parse(r#"{"kind":{"type":"media_gain"}}"#).unwrap();
        assert_eq!(s.name, "scenario");
        assert_eq!(s.seed, 1);
        assert_eq!(s.array.n_antennas, 10);
        assert_eq!(s.tag, TagKind::Standard);
        assert!(matches!(s.placement, PlacementSpec::FreeSpace { .. }));
        assert_eq!(s.eirp_dbm, PAPER_EIRP_DBM);
    }

    #[test]
    fn kind_is_required() {
        assert!(Scenario::parse(r#"{"name":"x"}"#).is_err());
    }

    #[test]
    fn quickfull_accepts_bare_scalar() {
        let s = Scenario::parse(r#"{"trials":17,"kind":{"type":"ratio_cdf"}}"#).unwrap();
        assert_eq!(
            s.trials,
            QuickFull {
                quick: 17,
                full: 17
            }
        );
    }

    #[test]
    fn float_fields_round_trip_exactly() {
        let mut s = builtin("session").unwrap();
        s.eirp_dbm = 36.99999999999997;
        s.placement = PlacementSpec::WaterTank {
            depth_m: 0.1 + 1e-17,
        };
        s.array.carrier_hz = 915e6 + 1.0 / 3.0;
        let back = Scenario::parse(&s.dump()).unwrap();
        assert_eq!(back.eirp_dbm.to_bits(), s.eirp_dbm.to_bits());
        assert_eq!(
            back.array.carrier_hz.to_bits(),
            s.array.carrier_hz.to_bits()
        );
        let (PlacementSpec::WaterTank { depth_m: a }, PlacementSpec::WaterTank { depth_m: b }) =
            (&back.placement, &s.placement)
        else {
            panic!("placement kind changed");
        };
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn explicit_offsets_infer_antenna_count() {
        let s = Scenario::parse(
            r#"{"array":{"plan":{"type":"offsets","offsets_hz":[0,11,29]}},
                "kind":{"type":"ratio_cdf"}}"#,
        )
        .unwrap();
        assert_eq!(s.array.n_antennas, 3);
        assert_eq!(s.cib(true).offsets_hz, vec![0.0, 11.0, 29.0]);
    }

    #[test]
    fn mismatched_offsets_count_rejected() {
        let r = Scenario::parse(
            r#"{"array":{"n_antennas":5,"plan":{"type":"offsets","offsets_hz":[0,11]}},
                "kind":{"type":"ratio_cdf"}}"#,
        );
        assert!(r.is_err());
    }

    #[test]
    fn medium_lookup_covers_figure11_media() {
        for m in Medium::figure11_media() {
            assert!(medium_by_name(&m.name).is_some(), "missing {}", m.name);
        }
        assert!(medium_by_name("unobtainium").is_none());
    }

    #[test]
    fn inventory_kind_defaults_and_tolerance() {
        // Only the population count is mandatory; everything else
        // defaults, and unknown fields are tolerated.
        let s = Scenario::parse(
            r#"{"kind":{"type":"inventory","population":{"count":100,"note":"dense"},
                "future_knob":1}}"#,
        )
        .unwrap();
        let ScenarioKind::Inventory {
            population,
            policy,
            max_rounds,
            capture_db,
            fade_db,
        } = &s.kind
        else {
            panic!("wrong kind");
        };
        assert_eq!(population.count, 100);
        assert_eq!(population.spacing_m, 0.001);
        assert_eq!(*policy, PolicySpec::Adaptive { q0: 4, c: 0.3 });
        assert_eq!(*max_rounds, 64);
        assert_eq!(*capture_db, 6.0);
        assert_eq!(*fade_db, 3.0);
        assert!(
            Scenario::parse(r#"{"kind":{"type":"inventory","population":{"count":0}}}"#).is_err()
        );
    }

    #[test]
    fn policy_specs_round_trip_and_build() {
        for p in PolicySpec::default_arms() {
            let back = PolicySpec::from_json(&p.to_json()).unwrap();
            assert_eq!(back, p);
            assert_eq!(back.build().name(), p.name());
        }
        assert!(PolicySpec::from_json(&Json::parse(r#"{"type":"aloha"}"#).unwrap()).is_err());
    }

    #[test]
    fn placement_offsets_move_the_geometry_axis() {
        let p = PlacementSpec::WaterTank { depth_m: 0.05 };
        let PlacementSpec::WaterTank { depth_m } = p.at_offset(0.03) else {
            panic!()
        };
        assert!((depth_m - 0.08).abs() < 1e-12);
        // Swine presets have no geometry knob; the offset is a no-op.
        assert_eq!(
            PlacementSpec::SwineGastric.at_offset(1.0),
            PlacementSpec::SwineGastric
        );
    }
}
