//! The CIB transmitter: configuration and the analytic received-peak
//! calculator.
//!
//! Two levels of fidelity coexist:
//!
//! * the **analytic path** ([`CibConfig::received_peak`]) treats each
//!   antenna's narrowband channel as a complex gain and finds the peak of
//!   the resulting envelope — this is what the Monte-Carlo experiments
//!   sweep thousands of times;
//! * the **sample path** ([`CibConfig::build_bank`] +
//!   [`ivn_sdr::bank::TxBank::emit_all`]) synthesizes every device's IQ
//!   stream through the PA/clock models for the end-to-end protocol
//!   sessions in [`crate::system`].

use crate::waveform::CibEnvelope;
use ivn_dsp::complex::Complex64;
use ivn_runtime::rng::Rng;
use ivn_sdr::bank::TxBank;
use ivn_sdr::clock::ClockDistribution;

/// Static configuration of a CIB beamformer.
#[derive(Debug, Clone, PartialEq)]
pub struct CibConfig {
    /// Per-antenna frequency offsets from the band centre, Hz. The length
    /// sets the antenna count.
    pub offsets_hz: Vec<f64>,
    /// Band-centre carrier, Hz.
    pub carrier_hz: f64,
    /// Grid resolution for analytic peak searches.
    pub grid: usize,
}

impl CibConfig {
    /// The paper's 10-antenna prototype configuration.
    pub fn paper_prototype() -> Self {
        CibConfig {
            offsets_hz: crate::PAPER_OFFSETS_HZ.to_vec(),
            carrier_hz: crate::BEAMFORMER_CARRIER_HZ,
            grid: 4096,
        }
    }

    /// A prototype restricted to the first `n` antennas (the paper's
    /// gain-vs-antennas sweep, Fig. 9).
    pub fn paper_prototype_n(n: usize) -> Self {
        assert!((1..=10).contains(&n), "paper prototype has 1..=10 antennas");
        CibConfig {
            offsets_hz: crate::PAPER_OFFSETS_HZ[..n].to_vec(),
            carrier_hz: crate::BEAMFORMER_CARRIER_HZ,
            grid: 4096,
        }
    }

    /// Number of antennas.
    pub fn n(&self) -> usize {
        self.offsets_hz.len()
    }

    /// Absolute emission frequency of antenna `i`.
    pub fn emission_hz(&self, i: usize) -> f64 {
        self.carrier_hz + self.offsets_hz[i]
    }

    /// Builds the envelope produced at a receive point whose per-antenna
    /// complex channels are `channels` (amplitude = attenuation, phase =
    /// PLL phase + propagation phase — the paper's βᵢ).
    pub fn envelope_at(&self, channels: &[Complex64]) -> CibEnvelope {
        assert_eq!(channels.len(), self.n(), "one channel per antenna");
        let phases: Vec<f64> = channels.iter().map(|h| h.arg()).collect();
        let amps: Vec<f64> = channels.iter().map(|h| h.norm()).collect();
        CibEnvelope::with_amplitudes(&self.offsets_hz, &phases, &amps)
    }

    /// Peak received amplitude over one CIB period, `(t_peak, amplitude)`.
    pub fn received_peak(&self, channels: &[Complex64]) -> (f64, f64) {
        self.envelope_at(channels).peak_over_period(self.grid)
    }

    /// Peak received *power*.
    pub fn received_peak_power(&self, channels: &[Complex64]) -> f64 {
        let (_, a) = self.received_peak(channels);
        a * a
    }

    /// Constructs the synchronized SDR bank realizing this configuration.
    pub fn build_bank<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sample_rate: f64,
        clock: &ClockDistribution,
    ) -> TxBank {
        TxBank::new(
            rng,
            self.n(),
            self.carrier_hz,
            sample_rate,
            &self.offsets_hz,
            clock,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::StdRng;
    use std::f64::consts::TAU;

    #[test]
    fn prototype_shape() {
        let cfg = CibConfig::paper_prototype();
        assert_eq!(cfg.n(), 10);
        assert_eq!(cfg.emission_hz(9), 915e6 + 137.0);
        let small = CibConfig::paper_prototype_n(3);
        assert_eq!(small.offsets_hz, vec![0.0, 7.0, 20.0]);
    }

    #[test]
    fn received_peak_near_ceiling_in_blind_channels() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = CibConfig::paper_prototype();
        for _ in 0..10 {
            let channels: Vec<Complex64> = (0..10)
                .map(|_| Complex64::from_polar(0.01, rng.random::<f64>() * TAU))
                .collect();
            let p = cfg.received_peak_power(&channels);
            // Ceiling is (10 × 0.01)² = 1e-2; the 1-D time scan recovers
            // ≥ 42 % of it (≈ 0.65² of the amplitude ceiling) in the worst
            // draws and ~60 % typically.
            assert!(p > 0.42e-2, "peak power {p}");
            assert!(p <= 1.0001e-2);
        }
    }

    #[test]
    fn unequal_amplitudes_respected() {
        let cfg = CibConfig::paper_prototype_n(2);
        let channels = [
            Complex64::from_polar(1.0, 0.3),
            Complex64::from_polar(0.5, 2.0),
        ];
        let (_, a) = cfg.received_peak(&channels);
        assert!((a - 1.5).abs() < 1e-6, "peak amplitude {a}");
    }

    #[test]
    fn single_antenna_degenerates_to_channel_amplitude() {
        let cfg = CibConfig::paper_prototype_n(1);
        let ch = [Complex64::from_polar(0.37, 1.1)];
        let (_, a) = cfg.received_peak(&ch);
        assert!((a - 0.37).abs() < 1e-9);
    }

    #[test]
    fn bank_matches_config() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = CibConfig::paper_prototype_n(4);
        let bank = cfg.build_bank(&mut rng, 100e3, &ClockDistribution::octoclock());
        assert_eq!(bank.len(), 4);
        assert_eq!(bank.offsets_hz(), &cfg.offsets_hz[..]);
        assert_eq!(bank.emission_hz(2), cfg.emission_hz(2));
    }

    #[test]
    #[should_panic(expected = "one channel per antenna")]
    fn channel_count_checked() {
        let cfg = CibConfig::paper_prototype_n(3);
        cfg.received_peak(&[Complex64::ONE]);
    }
}
