//! Scenario-keyed frequency-plan cache.
//!
//! The Eq. 10 plan search ([`crate::freqsel::optimize`]) is the most
//! expensive per-scenario artifact in a campaign — hundreds of
//! microseconds to a handful of milliseconds against a sub-millisecond
//! scenario evaluation. Sweep and jitter fleets, however, share one
//! array configuration across hundreds of scenarios: the optimizer's
//! output depends *only* on the resolved [`FreqSelConfig`] and the seed,
//! never on body, placement, or EIRP. A [`PlanCache`] keyed by those
//! plan-relevant fields lets a fleet compute each distinct plan once.
//!
//! ## Keying (DESIGN.md §8)
//!
//! The key is the canonical JSON dump of the [`ArraySpec`] (antenna
//! count, plan source with spec + seed, carrier, grid) plus the
//! quick/full resolution flag — every input that can reach the
//! optimizer, and deliberately nothing else. Body tissue, tag
//! placement, EIRP and trial seeds are excluded *because they cannot
//! influence the offsets*: a depth sweep or an EIRP jitter fleet hits
//! the cache on every scenario after the first. Canonical JSON (fixed
//! field order, `f64::to_string` round-trip formatting) makes the key
//! stable across processes.
//!
//! ## Determinism
//!
//! `optimize` is a pure function of `(config, seed)`, so a cache hit
//! returns the byte-identical offsets a cold computation would produce
//! — pinned by `plan_cache_semantics` tests and the campaign
//! cold-vs-warm bench. Concurrent misses on the same key may race to
//! compute, but both compute the same value; the cache keeps the first
//! insert. Computation happens *outside* the lock so a slow search
//! never serializes unrelated lookups.
//!
//! [`FreqSelConfig`]: crate::freqsel::FreqSelConfig
//! [`ArraySpec`]: crate::scenario::ArraySpec

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A bounded, least-recently-used cache of frequency-plan offsets.
///
/// Thread-safe; lookups take a short mutex, plan computation runs
/// unlocked. Disable (for cold benchmarking) with
/// [`Self::set_enabled`] — a disabled cache computes every call and
/// records neither hits nor misses.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    /// Monotone logical clock driving LRU eviction.
    stamp: u64,
}

#[derive(Debug)]
struct Entry {
    offsets_hz: Vec<f64>,
    last_used: u64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be positive");
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity,
            enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The process-wide cache consulted by
    /// [`crate::scenario::ArraySpec::cib`]. Sized for fleet-scale
    /// campaigns (hundreds of distinct array configs) while bounding
    /// memory under adversarial churn.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(|| PlanCache::new(512))
    }

    /// Returns the cached offsets for `key`, or computes, stores and
    /// returns them. `compute` must be a pure function of the key (the
    /// cache trusts it: a hit returns the stored value verbatim).
    pub fn get_or_compute(&self, key: &str, compute: impl FnOnce() -> Vec<f64>) -> Vec<f64> {
        if !self.enabled.load(Ordering::Relaxed) {
            return compute();
        }
        if let Some(hit) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ivn_runtime::obs_count!("freqsel.plan_cache_hits", 1);
            return hit;
        }
        // Miss: compute outside the lock. A concurrent miss on the same
        // key computes the same deterministic value; first insert wins.
        let offsets = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        ivn_runtime::obs_count!("freqsel.plan_cache_misses", 1);
        self.insert(key, &offsets);
        offsets
    }

    fn lookup(&self, key: &str) -> Option<Vec<f64>> {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.stamp += 1;
        let stamp = inner.stamp;
        let entry = inner.map.get_mut(key)?;
        entry.last_used = stamp;
        Some(entry.offsets_hz.clone())
    }

    fn insert(&self, key: &str, offsets_hz: &[f64]) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.stamp += 1;
        let stamp = inner.stamp;
        if !inner.map.contains_key(key) && inner.map.len() >= self.capacity {
            // Evict the least-recently-used entry.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                ivn_runtime::obs_count!("freqsel.plan_cache_evictions", 1);
            }
        }
        inner.map.entry(key.to_owned()).or_insert(Entry {
            offsets_hz: offsets_hz.to_vec(),
            last_used: stamp,
        });
    }

    /// Plans currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are kept; see
    /// [`Self::reset_counters`]).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.map.clear();
        inner.stamp = 0;
    }

    /// Enables or disables lookups; returns the previous setting.
    /// Disabled, [`Self::get_or_compute`] always computes — the cold
    /// path for cache-effect benchmarking.
    pub fn set_enabled(&self, enabled: bool) -> bool {
        self.enabled.swap(enabled, Ordering::Relaxed)
    }

    /// Lifetime `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Zeroes the hit/miss counters (cache contents are kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> Vec<f64> {
        (0..4).map(|k| (seed * 100 + k) as f64).collect()
    }

    #[test]
    fn hit_returns_stored_value_verbatim() {
        let cache = PlanCache::new(8);
        let cold = cache.get_or_compute("k", || plan(7));
        let warm = cache.get_or_compute("k", || panic!("must not recompute"));
        assert_eq!(
            cold.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            warm.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(cache.counters(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_miss() {
        let cache = PlanCache::new(8);
        cache.get_or_compute("a", || plan(1));
        cache.get_or_compute("b", || plan(2));
        assert_eq!(cache.counters(), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache = PlanCache::new(2);
        cache.get_or_compute("a", || plan(1));
        cache.get_or_compute("b", || plan(2));
        cache.get_or_compute("a", || panic!("a cached")); // refresh a
        cache.get_or_compute("c", || plan(3)); // evicts b (LRU)
        assert_eq!(cache.len(), 2);
        cache.get_or_compute("a", || panic!("a survived"));
        cache.get_or_compute("c", || panic!("c survived"));
        let mut recomputed = false;
        cache.get_or_compute("b", || {
            recomputed = true;
            plan(2)
        });
        assert!(recomputed, "b was evicted");
    }

    #[test]
    fn disabled_cache_always_computes() {
        let cache = PlanCache::new(8);
        cache.set_enabled(false);
        let mut calls = 0;
        for _ in 0..3 {
            cache.get_or_compute("k", || {
                calls += 1;
                plan(1)
            });
        }
        assert_eq!(calls, 3);
        assert_eq!(cache.counters(), (0, 0));
        assert!(cache.is_empty());
        assert!(!cache.set_enabled(true));
        cache.get_or_compute("k", || plan(1));
        assert_eq!(cache.counters(), (0, 1));
    }

    #[test]
    fn clear_and_reset() {
        let cache = PlanCache::new(8);
        cache.get_or_compute("k", || plan(1));
        cache.get_or_compute("k", || plan(1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.counters(), (1, 1));
        cache.reset_counters();
        assert_eq!(cache.counters(), (0, 0));
        let mut recomputed = false;
        cache.get_or_compute("k", || {
            recomputed = true;
            plan(1)
        });
        assert!(recomputed);
    }
}
