//! Two-stage CIB (paper §3.7, "optimizing power transfer with depth
//! knowledge").
//!
//! Plain CIB maximizes the *peak* because it must assume nothing about
//! attenuation. But once a sensor has been woken and the link margin is
//! known, a better strategy exists: choose a frequency plan that
//! maximizes the *time the envelope spends above the harvester
//! threshold* (the conduction window) rather than the height of the
//! peak. The paper sketches this as a discovery/steady two-stage design;
//! this module implements it:
//!
//! * stage 1 — **discovery**: the standard Eq. 10 peak-optimized plan;
//! * stage 2 — **steady**: once the margin `m = peak/threshold` is
//!   known, re-optimize for expected above-threshold duty.

use crate::freqsel::{feasible, FreqSelConfig, FrequencyPlan};
use crate::waveform::CibEnvelope;
use ivn_runtime::rng::{Rng, StdRng};
use std::f64::consts::TAU;

/// Monte-Carlo estimate of the expected fraction of the period the
/// envelope spends above `threshold` (in units of a single antenna's
/// amplitude), over random phase draws.
pub fn expected_duty<R: Rng + ?Sized>(
    offsets_hz: &[f64],
    threshold: f64,
    draws: usize,
    grid: usize,
    rng: &mut R,
) -> f64 {
    assert!(draws > 0 && grid > 0 && threshold >= 0.0);
    let mut acc = 0.0;
    let mut phases = vec![0.0; offsets_hz.len()];
    for _ in 0..draws {
        for p in phases.iter_mut() {
            *p = rng.random::<f64>() * TAU;
        }
        let env = CibEnvelope::new(offsets_hz, &phases);
        let samples = env.sample_period(grid);
        let above = samples.iter().filter(|&&v| v > threshold).count();
        acc += above as f64 / grid as f64;
    }
    acc / draws as f64
}

/// Result of a stage-2 optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyPlan {
    /// Offsets, first always 0, ascending.
    pub offsets_hz: Vec<f64>,
    /// Expected above-threshold duty achieved.
    pub expected_duty: f64,
    /// The threshold (single-antenna amplitude units) it was tuned for.
    pub threshold: f64,
}

/// Optimizes a frequency plan for above-threshold duty at a given
/// threshold, using the same constrained hill-climbing machinery as the
/// Eq. 10 optimizer. Deterministic per seed.
pub fn optimize_duty(cfg: &FreqSelConfig, threshold: f64, seed: u64) -> SteadyPlan {
    assert!(cfg.n_antennas >= 2);
    let mut best: Option<SteadyPlan> = None;
    for restart in 0..cfg.restarts {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(restart as u64 * 7717));
        // Initial feasible set: small distinct offsets (tight plans favour
        // long conduction windows).
        let mut current: Vec<u32> = (0..cfg.n_antennas as u32).collect();
        let eval_seed: u64 = rng.random();
        let eval = |set: &[u32]| -> f64 {
            let offsets: Vec<f64> = set.iter().map(|&v| v as f64).collect();
            let mut r = StdRng::seed_from_u64(eval_seed);
            expected_duty(&offsets, threshold, cfg.mc_draws, cfg.grid, &mut r)
        };
        let mut score = eval(&current);
        for _ in 0..cfg.iterations {
            let idx = rng.random_range(1..current.len());
            let delta = *[1i64, -1, 2, -2, 5, -5, 13, -13]
                .get(rng.random_range(0..8usize))
                .expect("in range");
            let mut cand = current.clone();
            let newv = (cand[idx] as i64 + delta).clamp(1, cfg.max_offset_hz as i64) as u32;
            if cand.iter().any(|&v| v == newv) {
                continue;
            }
            cand[idx] = newv;
            let offsets: Vec<f64> = cand.iter().map(|&v| v as f64).collect();
            if !feasible(&offsets, cfg.rms_limit_hz) {
                continue;
            }
            let s = eval(&cand);
            if s > score {
                score = s;
                current = cand;
            }
        }
        let mut offsets: Vec<f64> = current.iter().map(|&v| v as f64).collect();
        offsets.sort_by(f64::total_cmp);
        let plan = SteadyPlan {
            offsets_hz: offsets,
            expected_duty: score,
            threshold,
        };
        if best
            .as_ref()
            .map(|b| plan.expected_duty > b.expected_duty)
            .unwrap_or(true)
        {
            best = Some(plan);
        }
    }
    best.expect("at least one restart")
}

/// The two-stage controller.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoStageCib {
    /// Stage-1 peak-optimized plan (Eq. 10).
    pub discovery: FrequencyPlan,
    /// Optimizer settings reused for stage 2.
    pub config: FreqSelConfig,
    /// Seed for deterministic stage-2 optimization.
    pub seed: u64,
}

impl TwoStageCib {
    /// Creates a controller from an existing discovery plan.
    pub fn new(discovery: FrequencyPlan, config: FreqSelConfig, seed: u64) -> Self {
        TwoStageCib {
            discovery,
            config,
            seed,
        }
    }

    /// Stage-2 transition: given the *measured* link margin (ratio of the
    /// discovery peak amplitude to the harvester threshold amplitude,
    /// > 1 once the tag wakes), returns the steady plan tuned to keep the
    /// envelope above threshold as long as possible.
    ///
    /// # Panics
    /// Panics if `margin <= 1` (the tag never woke; stay in discovery).
    pub fn steady_plan(&self, margin: f64) -> SteadyPlan {
        assert!(margin > 1.0, "stage 2 requires a positive margin");
        // The threshold in single-antenna units: the discovery peak
        // reaches ≈ expected_peak; threshold = peak/margin.
        let threshold = self.discovery.expected_peak / margin;
        optimize_duty(&self.config, threshold, self.seed)
    }

    /// Estimated harvest improvement of stage 2 over stage 1 at a given
    /// margin: ratio of expected above-threshold duty.
    pub fn duty_improvement<R: Rng + ?Sized>(&self, margin: f64, rng: &mut R) -> f64 {
        let steady = self.steady_plan(margin);
        let d_discovery = expected_duty(
            &self.discovery.offsets_hz,
            steady.threshold,
            self.config.mc_draws,
            self.config.grid,
            rng,
        );
        if d_discovery <= 0.0 {
            f64::INFINITY
        } else {
            steady.expected_duty / d_discovery
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freqsel::optimize;

    fn cfg() -> FreqSelConfig {
        let mut c = FreqSelConfig::test_scale(5);
        c.mc_draws = 24;
        c.grid = 512;
        c
    }

    #[test]
    fn duty_decreases_with_threshold() {
        let mut rng = StdRng::seed_from_u64(1);
        let d_low = expected_duty(&crate::PAPER_OFFSETS_HZ, 1.0, 16, 512, &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let d_high = expected_duty(&crate::PAPER_OFFSETS_HZ, 8.0, 16, 512, &mut rng);
        assert!(d_low > d_high);
        assert!(d_low > 0.5, "duty above 1σ threshold {d_low}");
        assert!(d_high < 0.05, "duty near ceiling {d_high}");
    }

    #[test]
    fn zero_threshold_full_duty() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = expected_duty(&[0.0, 7.0, 20.0], 0.0, 8, 256, &mut rng);
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn steady_plan_beats_discovery_at_comfortable_margin() {
        // With a 3× margin the steady plan should hold the envelope above
        // threshold for a longer fraction of the period than the
        // peak-chasing discovery plan.
        let c = cfg();
        let discovery = optimize(&c, 11);
        let controller = TwoStageCib::new(discovery, c, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let improvement = controller.duty_improvement(3.0, &mut rng);
        assert!(improvement >= 1.0, "improvement {improvement}");
    }

    #[test]
    fn steady_plan_feasible_and_deterministic() {
        let c = cfg();
        let discovery = optimize(&c, 21);
        let controller = TwoStageCib::new(discovery.clone(), c.clone(), 22);
        let a = controller.steady_plan(2.0);
        let b = controller.steady_plan(2.0);
        assert_eq!(a, b);
        assert!(feasible(&a.offsets_hz, c.rms_limit_hz));
        assert_eq!(a.offsets_hz[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "positive margin")]
    fn stage2_requires_wakeup() {
        let c = cfg();
        let discovery = optimize(&c, 31);
        TwoStageCib::new(discovery, c, 32).steady_plan(0.9);
    }
}
