//! Adaptive centre-frequency hopping (paper §3.7, "robustness to
//! multipath and mobility").
//!
//! CIB's offsets all sit inside the coherence bandwidth, so when the
//! whole band lands in a frequency-selective fade, every tone fades
//! together and the delivered power drops — the gain survives, the
//! absolute level doesn't. The paper's suggested extension "adaptively
//! hop[s] the center frequency to a different band": probe candidate
//! centres across the ISM band, measure delivered peak power, and camp on
//! the best.

use crate::cib::CibConfig;
use ivn_dsp::complex::Complex64;
use ivn_em::channel::ChannelModel;

/// The 902–928 MHz ISM band hop set used by default: 13 centres on a
/// 2 MHz grid.
pub fn ism_hop_set() -> Vec<f64> {
    (0..13).map(|k| 903e6 + k as f64 * 2e6).collect()
}

/// Result of a hop search.
#[derive(Debug, Clone, PartialEq)]
pub struct HopDecision {
    /// The chosen centre frequency, Hz.
    pub carrier_hz: f64,
    /// Peak power delivered at that centre.
    pub peak_power: f64,
    /// Peak power at the original centre (for the improvement ratio).
    pub baseline_power: f64,
}

impl HopDecision {
    /// Improvement over staying put.
    pub fn improvement(&self) -> f64 {
        if self.baseline_power <= 0.0 {
            f64::INFINITY
        } else {
            self.peak_power / self.baseline_power
        }
    }
}

/// Probes every candidate centre with the given per-antenna channels and
/// returns the best. The channels are frequency-dependent
/// ([`ChannelModel`]), which is the whole point: a static beamformer
/// cannot escape a notch, a hopping one can.
pub fn choose_center(
    cib: &CibConfig,
    channels: &[Box<dyn ChannelModel + Send + Sync>],
    candidates: &[f64],
) -> HopDecision {
    assert_eq!(channels.len(), cib.n(), "one channel per antenna");
    assert!(!candidates.is_empty(), "need at least one candidate");
    let probe = |center: f64| -> f64 {
        let hs: Vec<Complex64> = (0..cib.n())
            .map(|i| channels[i].response(center + cib.offsets_hz[i]))
            .collect();
        cib.received_peak_power(&hs)
    };
    let baseline_power = probe(cib.carrier_hz);
    let mut best = (cib.carrier_hz, baseline_power);
    for &c in candidates {
        let p = probe(c);
        if p > best.1 {
            best = (c, p);
        }
    }
    HopDecision {
        carrier_hz: best.0,
        peak_power: best.1,
        baseline_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_em::multipath::{MultipathChannel, Path};
    use ivn_runtime::rng::{Rng, StdRng};

    /// A two-ray channel with a deep notch exactly at `notch_hz`.
    fn notched_channel(notch_hz: f64, rng: &mut StdRng) -> MultipathChannel {
        // Paths of equal gain separated by τ cancel at odd multiples of
        // 1/(2τ); choose τ so the notch lands on `notch_hz`.
        // f_notch = (k + 1/2)/τ → pick k so τ ≈ 50 ns.
        let k = (notch_hz * 50e-9 - 0.5).round();
        let tau = (k + 0.5) / notch_hz;
        let phase = rng.random::<f64>() * std::f64::consts::TAU;
        MultipathChannel::new(vec![
            Path {
                delay_s: 0.0,
                gain: Complex64::from_polar(0.5, phase),
            },
            Path {
                delay_s: tau,
                gain: Complex64::from_polar(0.5, phase),
            },
        ])
    }

    #[test]
    fn hop_set_covers_ism() {
        let set = ism_hop_set();
        assert_eq!(set.len(), 13);
        assert!(set[0] >= 902e6 && *set.last().unwrap() <= 928e6);
    }

    #[test]
    fn hopping_escapes_a_notch() {
        let mut rng = StdRng::seed_from_u64(5);
        let cib = CibConfig::paper_prototype_n(6);
        let channels: Vec<Box<dyn ChannelModel + Send + Sync>> = (0..6)
            .map(|_| {
                Box::new(notched_channel(915e6, &mut rng)) as Box<dyn ChannelModel + Send + Sync>
            })
            .collect();
        let decision = choose_center(&cib, &channels, &ism_hop_set());
        assert_ne!(decision.carrier_hz, 915e6, "should hop away from the notch");
        assert!(
            decision.improvement() > 5.0,
            "improvement {}",
            decision.improvement()
        );
    }

    #[test]
    fn flat_channel_stays_put_or_ties() {
        use ivn_em::channel::FlatChannel;
        let mut rng = StdRng::seed_from_u64(6);
        let cib = CibConfig::paper_prototype_n(4);
        let channels: Vec<Box<dyn ChannelModel + Send + Sync>> = (0..4)
            .map(|_| {
                Box::new(FlatChannel::random_phase(&mut rng, 1.0))
                    as Box<dyn ChannelModel + Send + Sync>
            })
            .collect();
        let decision = choose_center(&cib, &channels, &ism_hop_set());
        // Flat channels: every centre is identical, improvement ≈ 1.
        assert!((decision.improvement() - 1.0).abs() < 1e-9);
        assert!((decision.peak_power - decision.baseline_power).abs() < 1e-12);
    }

    #[test]
    fn probes_respect_per_tone_frequencies() {
        // A channel with strong dispersion across the CIB span would make
        // per-tone responses differ; verify the probe evaluates each tone
        // at its own emission frequency by using a channel whose response
        // changes with every hertz.
        struct Comb;
        impl ChannelModel for Comb {
            fn response(&self, f: f64) -> Complex64 {
                // 1 on even-hertz, 0.1 on odd-hertz frequencies.
                if (f as u64) % 2 == 0 {
                    Complex64::from_real(1.0)
                } else {
                    Complex64::from_real(0.1)
                }
            }
        }
        let cib = CibConfig {
            offsets_hz: vec![0.0, 7.0],
            carrier_hz: 915e6,
            grid: 512,
        };
        let channels: Vec<Box<dyn ChannelModel + Send + Sync>> =
            vec![Box::new(Comb), Box::new(Comb)];
        let d = choose_center(&cib, &channels, &[915e6]);
        // Tone 0 at even (1.0), tone 1 at odd (0.1): ceiling (1.1)² = 1.21.
        assert!(d.peak_power <= 1.21 + 1e-9);
        assert!(d.peak_power > 1.0);
    }
}
