//! # ivn-core — the IVN system: coherently-incoherent beamforming
//!
//! The paper's contribution, implemented end to end:
//!
//! * [`waveform`] — the CIB envelope `Y(t) = |Σᵢ e^{j(2πΔfᵢt + βᵢ)}|`:
//!   peak search, amplitude flatness (Eq. 7), the Taylor droop bound
//!   (Eq. 8/9);
//! * [`kernels`] — allocation-free batched/incremental/FFT envelope
//!   kernels the optimizer's Monte-Carlo objective runs on;
//! * [`freqsel`] — the constrained Monte-Carlo frequency-plan optimizer of
//!   Eq. 10, plus the worst-set search used for Fig. 6;
//! * [`cib`] — the CIB transmitter configuration and the analytic
//!   received-peak calculator experiments sweep;
//! * [`baselines`] — the comparison beamformers: single antenna, the
//!   paper's blind N-antenna baseline, channel-aware MRT, and geometric
//!   array steering;
//! * [`oob`] — the out-of-band reader (§4): 880 vs 915 MHz, SAW rejection,
//!   1-second coherent averaging, preamble correlation ≥ 0.8;
//! * [`body`] — water tank, Fig. 11 media, and swine body presets;
//! * [`system`] — [`system::IvnSystem`]: SDR bank + channels + harvester +
//!   tag + reader, sample-level sessions and range search;
//! * [`experiment`] — seeded trial runners that produce the statistics
//!   each paper figure reports;
//! * [`scenario`] — the declarative configuration substrate: JSON-backed
//!   [`scenario::Scenario`] descriptions every experiment entry point
//!   consumes, a built-in registry for the paper's figures, a
//!   sweep/jitter generator, and the uniform campaign evaluator.

pub mod baselines;
pub mod body;
pub mod cib;
pub mod experiment;
pub mod freqsel;
pub mod hopping;
pub mod inventory;
pub mod kernels;
pub mod multisensor;
pub mod oob;
pub mod plancache;
pub mod scenario;
pub mod system;
pub mod twostage;
pub mod waveform;

/// The frequency plan the paper's prototype used (§5): relative offsets in
/// hertz from the 915 MHz band centre.
pub const PAPER_OFFSETS_HZ: [f64; 10] =
    [0.0, 7.0, 20.0, 49.0, 68.0, 73.0, 90.0, 113.0, 121.0, 137.0];

/// The paper's beamformer band centre.
pub const BEAMFORMER_CARRIER_HZ: f64 = 915e6;

/// The paper's out-of-band reader carrier.
pub const READER_CARRIER_HZ: f64 = 880e6;
