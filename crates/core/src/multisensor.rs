//! Multi-sensor operation (paper §3.7, "powering and communicating with
//! multiple sensors").
//!
//! A CIB beamformer scans 3D space through its time-varying channel, so
//! one frequency plan charges *every* sensor — each at its own instant in
//! the period. Collision control reuses standard Gen2 machinery: Select
//! commands address a sensor population subset, and the slotted-ALOHA
//! Q-algorithm resolves the rest. Select lengthens the downlink frame,
//! which tightens the Eq. 9 RMS budget — [`select_rms_budget`] quantifies
//! that.

use crate::body::{Placement, TagSpec};
use crate::cib::CibConfig;
use crate::scenario::{Scenario, ScenarioKind};
use crate::waveform::eq9_rms_bound;
use ivn_dsp::units::dbm_to_watts;
use ivn_rfid::commands::Command;
use ivn_rfid::link::LinkParams;
use ivn_rfid::reader::{QAlgorithm, Reader, SlotOutcome};
use ivn_rfid::tag::Tag;
use ivn_runtime::rng::Rng;

/// One sensor in a deployment: identity, electrical spec and placement.
#[derive(Debug, Clone)]
pub struct SensorDeployment {
    /// 96-bit EPC.
    pub epc: u128,
    /// Tag electrical specification.
    pub spec: TagSpec,
    /// Where it sits.
    pub placement: Placement,
}

/// Outcome for one sensor in a multi-sensor round.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorOutcome {
    /// The sensor's EPC.
    pub epc: u128,
    /// Whether CIB delivered wake-up power during the period.
    pub powered: bool,
    /// Whether it was successfully inventoried.
    pub inventoried: bool,
}

/// The Eq. 9 RMS budget when the query must carry a Select command of
/// `mask_bits` (the §3.7 "incorporate this into the Δt constraint").
pub fn select_rms_budget(link: &LinkParams, mask_bits: usize, alpha: f64) -> f64 {
    let select = Command::Select {
        mask: vec![true; mask_bits],
    };
    let query = Command::Query {
        dr: ivn_rfid::commands::DivideRatio::Dr8,
        m: ivn_rfid::commands::TagEncoding::Fm0,
        trext: false,
        session: ivn_rfid::commands::Session::S0,
        q: 0,
    };
    // Select and Query ride the same envelope peak back to back.
    let dt = link.command_duration_s(&select) + link.command_duration_s(&query);
    eq9_rms_bound(alpha, dt)
}

/// EPC base for scenario-declared populations; sensor `i` gets `base+i`.
const SCENARIO_EPC_BASE: u128 = 0x3005_0000_0000_0000_0000_0000;

/// The sensor population a [`ScenarioKind::MultiSensor`] scenario
/// declares: `population` copies of the scenario's tag, spread
/// `spacing_m` apart along the placement's geometry axis.
pub fn scenario_deployment(s: &Scenario) -> Result<Vec<SensorDeployment>, String> {
    let ScenarioKind::MultiSensor {
        population,
        spacing_m,
        ..
    } = s.kind
    else {
        return Err(format!(
            "scenario '{}' is not multi_sensor (kind '{}')",
            s.name,
            s.kind.type_name()
        ));
    };
    let spec = s.tag.spec();
    (0..population.max(1))
        .map(|i| {
            Ok(SensorDeployment {
                epc: SCENARIO_EPC_BASE + i as u128,
                spec: spec.clone(),
                placement: s
                    .placement
                    .at_offset(i as f64 * spacing_m)
                    .resolve()
                    .map_err(|e| e.reason)?,
            })
        })
        .collect()
}

/// Runs one multi-sensor campaign for a scenario: its population, array
/// and EIRP, with the scenario's `max_rounds` arbitration budget.
pub fn run_scenario<R: Rng + ?Sized>(
    rng: &mut R,
    s: &Scenario,
    quick: bool,
) -> Result<Vec<SensorOutcome>, String> {
    let ScenarioKind::MultiSensor { max_rounds, .. } = s.kind else {
        return Err(format!(
            "scenario '{}' is not multi_sensor (kind '{}')",
            s.name,
            s.kind.type_name()
        ));
    };
    let sensors = scenario_deployment(s)?;
    Ok(run_campaign(
        rng,
        &s.cib(quick),
        s.eirp_dbm,
        &sensors,
        max_rounds,
    ))
}

/// Runs one multi-sensor campaign: powers the population with CIB,
/// inventories whoever woke via Gen2 arbitration.
///
/// Returns per-sensor outcomes. Deterministic per RNG.
pub fn run_campaign<R: Rng + ?Sized>(
    rng: &mut R,
    cib: &CibConfig,
    eirp_dbm: f64,
    sensors: &[SensorDeployment],
    max_rounds: usize,
) -> Vec<SensorOutcome> {
    let eirp = dbm_to_watts(eirp_dbm);
    // Stage 1: per-sensor power-up from each sensor's own channel draw.
    let mut tags: Vec<Tag> = Vec::with_capacity(sensors.len());
    let mut powered_flags = Vec::with_capacity(sensors.len());
    for (i, s) in sensors.iter().enumerate() {
        let trial = s
            .placement
            .draw_trial(rng, cib.n(), &s.spec, eirp, cib.carrier_hz);
        let peak = cib.received_peak_power(&trial.channels);
        let powered = s.spec.power.can_power_at_peak(peak);
        let mut tag = Tag::with_epc96(s.epc, rng.random::<u64>() ^ i as u64);
        tag.set_powered(powered);
        powered_flags.push(powered);
        tags.push(tag);
    }

    // Stage 2: Gen2 inventory over the powered population.
    let mut reader = Reader::new(
        ivn_rfid::commands::Session::S0,
        QAlgorithm { q0: 2, c: 0.3 },
    );
    let mut inventoried: Vec<Vec<bool>> = Vec::new();
    for _ in 0..max_rounds {
        let (outcomes, _) = reader.run_round(&mut tags);
        for o in outcomes {
            if let SlotOutcome::Inventoried(epc) = o {
                if !inventoried.contains(&epc) {
                    inventoried.push(epc);
                }
            }
        }
        if inventoried.len() == powered_flags.iter().filter(|&&p| p).count() {
            break;
        }
    }

    sensors
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let epc_bits: Vec<bool> = (0..96).rev().map(|b| (s.epc >> b) & 1 == 1).collect();
            SensorOutcome {
                epc: s.epc,
                powered: powered_flags[i],
                inventoried: inventoried.contains(&epc_bits),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::StdRng;

    fn deployment(epc: u128, placement: Placement) -> SensorDeployment {
        SensorDeployment {
            epc,
            spec: TagSpec::standard(),
            placement,
        }
    }

    #[test]
    fn nearby_population_fully_inventoried() {
        let mut rng = StdRng::seed_from_u64(1);
        let cib = CibConfig::paper_prototype_n(8);
        let sensors: Vec<SensorDeployment> = (0..5)
            .map(|i| {
                deployment(
                    0xE000 + i as u128,
                    Placement::free_space(2.0 + i as f64 * 0.3),
                )
            })
            .collect();
        let out = run_campaign(&mut rng, &cib, 37.0, &sensors, 40);
        assert_eq!(out.len(), 5);
        for o in &out {
            assert!(o.powered, "{o:?}");
            assert!(o.inventoried, "{o:?}");
        }
    }

    #[test]
    fn out_of_reach_sensor_reported_unpowered() {
        let mut rng = StdRng::seed_from_u64(2);
        let cib = CibConfig::paper_prototype_n(4);
        let sensors = vec![
            deployment(0xA1, Placement::free_space(2.0)),
            deployment(0xA2, Placement::free_space(500.0)), // hopeless
        ];
        let out = run_campaign(&mut rng, &cib, 37.0, &sensors, 30);
        assert!(out[0].inventoried);
        assert!(!out[1].powered);
        assert!(!out[1].inventoried);
    }

    #[test]
    fn mixed_depths_match_single_sensor_behaviour() {
        // One shallow, one deep-in-water sensor: CIB reaches the shallow
        // one; the deep one stays silent — exactly as the per-sensor
        // sessions would predict.
        let mut rng = StdRng::seed_from_u64(3);
        let cib = CibConfig::paper_prototype_n(8);
        let sensors = vec![
            deployment(0xB1, Placement::water_tank(0.05)),
            deployment(0xB2, Placement::water_tank(0.45)),
        ];
        let out = run_campaign(&mut rng, &cib, 37.0, &sensors, 30);
        assert!(out[0].powered && out[0].inventoried, "{out:?}");
        assert!(!out[1].powered, "{out:?}");
    }

    #[test]
    fn select_shrinks_rms_budget() {
        let link = LinkParams::paper_defaults();
        let plain = eq9_rms_bound(
            0.5,
            link.command_duration_s(&Command::Query {
                dr: ivn_rfid::commands::DivideRatio::Dr8,
                m: ivn_rfid::commands::TagEncoding::Fm0,
                trext: false,
                session: ivn_rfid::commands::Session::S0,
                q: 0,
            }),
        );
        let with_select = select_rms_budget(&link, 32, 0.5);
        assert!(with_select < plain, "{with_select} vs {plain}");
        // A longer mask tightens further.
        let longer = select_rms_budget(&link, 96, 0.5);
        assert!(longer < with_select);
        // Quantitatively: a 32-bit-mask Select+Query lasts long enough
        // that the paper's 82 Hz-RMS plan no longer satisfies Eq. 9 — the
        // §3.7 remark that Select "can be incorporated into the Δt
        // constraint" is a *requirement*, not an afterthought: the plan
        // must be re-optimized under the tighter budget.
        assert!(
            with_select < 82.0,
            "expected the Select frame to break the paper plan: {with_select}"
        );
    }

    #[test]
    fn campaign_deterministic() {
        let cib = CibConfig::paper_prototype_n(6);
        let sensors = vec![
            deployment(0xC1, Placement::free_space(3.0)),
            deployment(0xC2, Placement::free_space(4.0)),
        ];
        let a = run_campaign(&mut StdRng::seed_from_u64(9), &cib, 37.0, &sensors, 20);
        let b = run_campaign(&mut StdRng::seed_from_u64(9), &cib, 37.0, &sensors, 20);
        assert_eq!(a, b);
    }
}
