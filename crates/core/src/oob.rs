//! The out-of-band reader (paper §4).
//!
//! CIB's transmissions can combine constructively at the receive antenna
//! just as they do at the sensor, saturating a conventional reader. IVN's
//! reader therefore operates 35 MHz below the beamformer (880 vs
//! 915 MHz): because backscatter modulation is frequency-agnostic, the
//! powered tag also modulates the reader's own carrier, and a SAW filter
//! strips the beamformer jam before the ADC.
//!
//! To survive deep-tissue uplink budgets, the reader coherently averages
//! the tag response over repeated CIB periods (1 s each in the paper) and
//! correlates against the known 12-bit FM0 preamble; correlation ≥ 0.8
//! declares success (§6.2).

use ivn_dsp::complex::Complex64;
use ivn_dsp::correlate::{best_match_real, coherent_average};
use ivn_dsp::noise::AwgnSource;
use ivn_rfid::fm0::Fm0;
use ivn_runtime::rng::Rng;
use ivn_sdr::adc::{Adc, SawFilter};
use std::f64::consts::TAU;

/// Reader configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OobReaderConfig {
    /// Reader carrier, Hz (880 MHz in the paper).
    pub carrier_hz: f64,
    /// Beamformer band centre, Hz (the jam to reject).
    pub beamformer_hz: f64,
    /// The SAW pre-filter.
    pub saw: SawFilter,
    /// Whether the SAW filter is installed (ablation switch).
    pub use_saw: bool,
    /// Receiver sample rate, S/s.
    pub sample_rate: f64,
    /// Number of CIB periods averaged coherently.
    pub averaging_periods: usize,
    /// Correlation threshold for declaring a decode (0.8 in the paper).
    pub correlation_threshold: f64,
    /// Receiver noise power, watts (thermal + NF in the RX bandwidth).
    pub noise_watts: f64,
    /// ADC model.
    pub adc: Adc,
    /// TX→RX leakage attenuation of the reader's own carrier, dB.
    pub self_leak_db: f64,
    /// Digital down-converter rejection of components outside ±fs/2, dB.
    /// Applied *after* the ADC — out-of-band blockers still consume
    /// dynamic range (desensitization) even though the DDC removes them.
    pub ddc_rejection_db: f64,
}

impl OobReaderConfig {
    /// The paper's reader: 880 MHz, high-rejection SAW, 1-second
    /// averaging windows (20 periods by default — the paper integrates
    /// whole CIB periods), 0.8 correlation threshold.
    pub fn paper_defaults() -> Self {
        OobReaderConfig {
            carrier_hz: crate::READER_CARRIER_HZ,
            beamformer_hz: crate::BEAMFORMER_CARRIER_HZ,
            saw: SawFilter::reader_880(),
            use_saw: true,
            sample_rate: 400e3,
            averaging_periods: 20,
            correlation_threshold: 0.8,
            noise_watts: ivn_dsp::units::dbm_to_watts(-92.0),
            adc: Adc::new(0.5, 14),
            self_leak_db: 30.0,
            ddc_rejection_db: 60.0,
        }
    }

    /// The in-band ablation: reader at the beamformer frequency with no
    /// SAW — demonstrates the self-jamming failure.
    pub fn in_band_ablation() -> Self {
        let mut cfg = Self::paper_defaults();
        cfg.carrier_hz = cfg.beamformer_hz;
        cfg.use_saw = false;
        cfg
    }
}

/// One interfering CIB tone as seen at the reader antenna.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JamTone {
    /// Absolute frequency, Hz.
    pub freq_hz: f64,
    /// Amplitude at the reader antenna, √W.
    pub amplitude: f64,
    /// Phase, radians.
    pub phase: f64,
}

/// Result of one decode attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeResult {
    /// Best preamble correlation found.
    pub correlation: f64,
    /// Whether the correlation beat the threshold.
    pub success: bool,
    /// Offset (samples) of the best match within the averaged window.
    pub offset: usize,
    /// The decoded payload bits after the preamble (when successful).
    pub payload: Vec<bool>,
    /// Fraction of ADC samples that saturated (self-jamming indicator).
    pub adc_saturation: f64,
}

/// The out-of-band reader.
#[derive(Debug, Clone)]
pub struct OobReader {
    /// Configuration.
    pub config: OobReaderConfig,
}

impl OobReader {
    /// Creates a reader.
    pub fn new(config: OobReaderConfig) -> Self {
        OobReader { config }
    }

    /// Simulates reception and decoding of a tag uplink.
    ///
    /// * `uplink_amplitude` — backscatter signal amplitude at the reader
    ///   antenna (√W): forward illumination × Γ-differential × reverse
    ///   channel.
    /// * `message_bits` — the FM0 payload the tag repeats each period
    ///   (preamble prepended internally).
    /// * `samples_per_half` — FM0 half-symbol duration in RX samples.
    /// * `jam` — CIB tones present at the antenna.
    /// * `period_samples` — samples per CIB repetition period.
    ///
    /// Returns the decode verdict after SAW filtering, ADC conversion,
    /// coherent averaging and preamble correlation.
    pub fn receive_and_decode<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        uplink_amplitude: f64,
        message_bits: &[bool],
        samples_per_half: usize,
        jam: &[JamTone],
        period_samples: usize,
    ) -> DecodeResult {
        assert!(uplink_amplitude >= 0.0);
        assert!(samples_per_half > 0 && period_samples > 0);
        let cfg = &self.config;
        let fs = cfg.sample_rate;
        let fm0 = Fm0::new(samples_per_half);

        // The repeated uplink waveform: preamble + payload, FM0 levels.
        let mut bits = ivn_rfid::PAPER_PREAMBLE_BITS.to_vec();
        bits.extend_from_slice(message_bits);
        let baseband = fm0.encode(&bits);
        assert!(
            baseband.len() <= period_samples,
            "uplink longer than the repetition period"
        );

        // Self-leak of the reader's own carrier (DC in its own baseband).
        let leak_amp = uplink_amplitude.max(1e-12)
            * ivn_dsp::units::db_to_amplitude(40.0) // illumination ≫ echo
            * ivn_dsp::units::db_to_amplitude(-cfg.self_leak_db);

        let mut noise = AwgnSource::new(cfg.noise_watts);
        let total = period_samples * cfg.averaging_periods;
        // Jam tones after the SAW (the analog front end sees these): the
        // tones are not commensurate with the sampling, so precompute
        // per-sample rotations relative to the reader carrier.
        struct JamOsc {
            state: Complex64,
            rot: Complex64,
            ddc_gain: f64,
        }
        let mut jam_osc: Vec<JamOsc> = jam
            .iter()
            .map(|t| {
                let df = t.freq_hz - cfg.carrier_hz;
                let saw_gain = if cfg.use_saw {
                    cfg.saw.gain_at(t.freq_hz)
                } else {
                    1.0
                };
                let ddc_gain = if df.abs() > fs / 2.0 {
                    ivn_dsp::units::db_to_amplitude(-cfg.ddc_rejection_db)
                } else {
                    1.0
                };
                JamOsc {
                    state: Complex64::from_polar(t.amplitude * saw_gain, t.phase),
                    rot: Complex64::cis(TAU * df / fs),
                    ddc_gain,
                }
            })
            .collect();

        let self_gain = if cfg.use_saw {
            cfg.saw.gain_at(cfg.carrier_hz)
        } else {
            1.0
        };
        // `frontend[k]` is what reaches the ADC (post-SAW, pre-DDC); the
        // DDC-filtered jam residual is tracked separately so blockers
        // consume dynamic range without surviving digitally.
        let mut frontend = Vec::with_capacity(total);
        let mut ddc_jam = Vec::with_capacity(total);
        for k in 0..total {
            let in_period = k % period_samples;
            let bb = if in_period < baseband.len() {
                baseband[in_period]
            } else {
                0.0
            };
            // Backscatter: tag switches between two reflection states; the
            // differential component is ±uplink_amplitude/2 around a mean.
            let signal = Complex64::from_real(uplink_amplitude * 0.5 * bb) * self_gain;
            let leak = Complex64::from_real(leak_amp) * self_gain;
            let base = signal + leak + noise.sample(rng);
            let mut jam_full = Complex64::ZERO;
            let mut jam_filtered = Complex64::ZERO;
            for o in jam_osc.iter_mut() {
                jam_full += o.state;
                jam_filtered += o.state * o.ddc_gain;
                o.state *= o.rot;
            }
            frontend.push(base + jam_full);
            ddc_jam.push(jam_filtered - jam_full);
        }

        // AGC: the variable-gain stage scales the *front-end* signal to a
        // quarter of the ADC range. A strong blocker therefore steals
        // resolution from the wanted signal — the §4 desensitization.
        let rms = (frontend.iter().map(|s| s.norm_sqr()).sum::<f64>() / frontend.len() as f64)
            .sqrt()
            .max(1e-30);
        let agc_gain = 0.25 * cfg.adc.full_scale / rms;

        // ADC conversion at AGC gain, then digital down-conversion
        // (removing the out-of-band jam), then undo the gain.
        let mut converted = Vec::with_capacity(total);
        for (s, dj) in frontend.iter().zip(&ddc_jam) {
            let q = cfg.adc.convert(*s * agc_gain);
            converted.push(q * (1.0 / agc_gain) + *dj);
        }
        let saturation = {
            let scaled: Vec<Complex64> = frontend.iter().map(|s| *s * agc_gain).collect();
            cfg.adc.saturation_fraction(&scaled)
        };

        // Coherent averaging across periods.
        let averaged = coherent_average(&converted, period_samples, cfg.averaging_periods)
            .expect("sized above");

        // Remove the DC component (leak) and take the in-phase envelope
        // deviation for the real-valued correlator.
        let mean: Complex64 = averaged.iter().copied().sum::<Complex64>() / averaged.len() as f64;
        let real_env: Vec<f64> = averaged.iter().map(|s| (*s - mean).re).collect();

        // Correlate against the preamble template.
        let template = ivn_rfid::fm0::preamble_waveform(samples_per_half);
        let (offset, correlation) = best_match_real(&real_env, &template).unwrap_or((0, 0.0));
        let success = correlation >= cfg.correlation_threshold;

        // Decode the payload following the matched preamble.
        let payload = if success {
            let start = offset + template.len();
            let end = (start + message_bits.len() * samples_per_half * 2).min(real_env.len());
            if end > start {
                fm0.decode(&real_env[start..end])
            } else {
                Vec::new()
            }
        } else {
            Vec::new()
        };

        DecodeResult {
            correlation,
            success,
            offset,
            payload,
            adc_saturation: saturation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::StdRng;

    fn rn16_bits(v: u16) -> Vec<bool> {
        (0..16).rev().map(|i| (v >> i) & 1 == 1).collect()
    }

    fn jam_tones(amp: f64) -> Vec<JamTone> {
        crate::PAPER_OFFSETS_HZ
            .iter()
            .enumerate()
            .map(|(i, &df)| JamTone {
                freq_hz: 915e6 + df,
                amplitude: amp,
                phase: i as f64,
            })
            .collect()
    }

    #[test]
    fn clean_uplink_decodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let reader = OobReader::new(OobReaderConfig::paper_defaults());
        let msg = rn16_bits(0xBEEF);
        let r = reader.receive_and_decode(&mut rng, 1e-3, &msg, 4, &[], 2000);
        assert!(r.success, "correlation {}", r.correlation);
        assert_eq!(r.payload, msg);
        assert!(r.adc_saturation < 0.01);
    }

    #[test]
    fn decodes_under_full_cib_jam() {
        // The headline §4 scenario: 10 CIB tones far stronger than the
        // backscatter echo; the SAW makes the decode survive.
        let mut rng = StdRng::seed_from_u64(2);
        let reader = OobReader::new(OobReaderConfig::paper_defaults());
        let msg = rn16_bits(0x1234);
        let r = reader.receive_and_decode(&mut rng, 1e-4, &msg, 4, &jam_tones(0.05), 2000);
        assert!(r.success, "correlation {}", r.correlation);
        assert_eq!(r.payload, msg);
    }

    #[test]
    fn in_band_reader_fails_under_jam() {
        // Ablation: same jam, reader parked in-band with no SAW → the ADC
        // saturates / correlation collapses.
        let mut rng = StdRng::seed_from_u64(3);
        let reader = OobReader::new(OobReaderConfig::in_band_ablation());
        let msg = rn16_bits(0x1234);
        let r = reader.receive_and_decode(&mut rng, 1e-4, &msg, 4, &jam_tones(0.05), 2000);
        assert!(
            !r.success,
            "in-band decode should fail, corr {}",
            r.correlation
        );
        // The AGC backs off for the blocker, crushing the signal below the
        // quantization floor — the §4 desensitization mechanism.
    }

    #[test]
    fn weak_uplink_fails_without_averaging_succeeds_with() {
        let msg = rn16_bits(0xA5A5);
        // Uplink buried in noise: single period fails.
        let mut one = OobReaderConfig::paper_defaults();
        one.averaging_periods = 1;
        let mut rng = StdRng::seed_from_u64(4);
        let r1 = OobReader::new(one).receive_and_decode(&mut rng, 2.2e-6, &msg, 4, &[], 2000);

        let mut many = OobReaderConfig::paper_defaults();
        many.averaging_periods = 64;
        let mut rng2 = StdRng::seed_from_u64(4);
        let r64 = OobReader::new(many).receive_and_decode(&mut rng2, 2.2e-6, &msg, 4, &[], 2000);
        assert!(
            r64.correlation > r1.correlation,
            "averaging did not help: {} vs {}",
            r64.correlation,
            r1.correlation
        );
        assert!(r64.success, "64-period correlation {}", r64.correlation);
    }

    #[test]
    fn zero_uplink_never_succeeds() {
        let mut rng = StdRng::seed_from_u64(5);
        let reader = OobReader::new(OobReaderConfig::paper_defaults());
        let msg = rn16_bits(0xFFFF);
        let r = reader.receive_and_decode(&mut rng, 0.0, &msg, 4, &[], 2000);
        assert!(!r.success, "false positive at corr {}", r.correlation);
    }

    #[test]
    fn deterministic_per_seed() {
        let reader = OobReader::new(OobReaderConfig::paper_defaults());
        let msg = rn16_bits(0x0F0F);
        let a = reader.receive_and_decode(
            &mut StdRng::seed_from_u64(6),
            1e-4,
            &msg,
            4,
            &jam_tones(0.01),
            1500,
        );
        let b = reader.receive_and_decode(
            &mut StdRng::seed_from_u64(6),
            1e-4,
            &msg,
            4,
            &jam_tones(0.01),
            1500,
        );
        assert_eq!(a, b);
    }
}
