//! Property-based tests for the CIB core.

use ivn_core::cib::CibConfig;
use ivn_core::freqsel::{expected_peak, feasible};
use ivn_core::twostage::expected_duty;
use ivn_core::waveform::{eq9_rms_bound, rms_offset, CibEnvelope};
use ivn_dsp::complex::Complex64;
use ivn_runtime::prop::{any, btree_set, vec as pvec, Just, Strategy};
use ivn_runtime::rng::StdRng;
use ivn_runtime::{prop_assert, prop_assert_eq, props};

fn offsets() -> impl Strategy<Value = Vec<f64>> {
    btree_set(1u32..300, 1..9).prop_map(|set| {
        std::iter::once(0.0)
            .chain(set.into_iter().map(|v| v as f64))
            .collect()
    })
}

fn phases(n: usize) -> impl Strategy<Value = Vec<f64>> {
    pvec(0.0f64..std::f64::consts::TAU, n..=n)
}

props! {
    cases = 64;

    fn envelope_bounded_by_tone_count((offs, ph) in offsets().prop_flat_map(|o| {
        let n = o.len();
        (Just(o), phases(n))
    }), t in 0.0f64..1.0) {
        let env = CibEnvelope::new(&offs, &ph);
        prop_assert!(env.envelope(t) <= env.n() as f64 + 1e-9);
    }

    fn peak_at_least_one_tone((offs, ph) in offsets().prop_flat_map(|o| {
        let n = o.len();
        (Just(o), phases(n))
    })) {
        // The time average of Y² is N, so the peak envelope is ≥ √N —
        // a fortiori ≥ 1.
        let env = CibEnvelope::new(&offs, &ph);
        let (_, y) = env.peak_over_period(2048);
        prop_assert!(y >= (env.n() as f64).sqrt() - 1e-6, "peak {y} for n={}", env.n());
    }

    fn peak_power_between_static_and_mrt((offs, ph) in offsets().prop_flat_map(|o| {
        let n = o.len();
        (Just(o), phases(n))
    })) {
        let n = offs.len();
        let channels: Vec<Complex64> =
            ph.iter().map(|&p| Complex64::from_polar(1.0, p)).collect();
        let cfg = CibConfig { offsets_hz: offs, carrier_hz: 915e6, grid: 2048 };
        let peak = cfg.received_peak_power(&channels);
        let static_power = channels.iter().copied().sum::<Complex64>().norm_sqr();
        prop_assert!(peak >= static_power - 1e-6);
        prop_assert!(peak <= (n * n) as f64 + 1e-6);
    }

    fn expected_peak_within_bounds(offs in offsets(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = expected_peak(&offs, 8, 256, &mut rng);
        let n = offs.len() as f64;
        prop_assert!(e >= n.sqrt() - 1e-6, "E[peak] {e} below √N");
        prop_assert!(e <= n + 1e-9, "E[peak] {e} above N");
    }

    fn duty_antitone_in_threshold(offs in offsets(), seed in any::<u64>(),
                                  thr in 0.0f64..5.0, extra in 0.0f64..5.0) {
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let d_low = expected_duty(&offs, thr, 6, 256, &mut r1);
        let d_high = expected_duty(&offs, thr + extra, 6, 256, &mut r2);
        prop_assert!(d_high <= d_low + 1e-12);
        prop_assert!((0.0..=1.0).contains(&d_low));
    }

    fn rms_scale_invariance(offs in offsets(), k in 1.0f64..10.0) {
        let scaled: Vec<f64> = offs.iter().map(|f| f * k).collect();
        prop_assert!((rms_offset(&scaled) - k * rms_offset(&offs)).abs() < 1e-9);
        // Feasibility threshold scales accordingly.
        let limit = rms_offset(&offs) + 1.0;
        prop_assert!(feasible(&offs, limit));
        prop_assert_eq!(
            feasible(&scaled, k * limit),
            true
        );
    }

    fn eq9_bound_antitone_in_dt(alpha in 0.05f64..1.0, dt in 1e-5f64..1e-2, k in 1.1f64..10.0) {
        prop_assert!(eq9_rms_bound(alpha, dt * k) < eq9_rms_bound(alpha, dt));
    }

    fn taylor_bound_is_a_lower_bound(offs in offsets(), dt in 0.0f64..5e-4) {
        // At an aligned peak (zero phases) the true envelope sits at or
        // above the Eq. 8 second-order bound.
        let env = CibEnvelope::new(&offs, &vec![0.0; offs.len()]);
        prop_assert!(env.envelope(dt) >= env.taylor_droop_bound(dt) - 1e-9);
    }
}
