//! Property tests for the envelope kernels (`ivn_core::kernels`): every
//! fast path — batched scratch fill, FFT synthesis, incremental CRN
//! swap — must agree with the reference `CibEnvelope::envelope` sum to
//! 1e-9, and the optimizer built on them must stay deterministic per
//! seed.

use ivn_core::freqsel::{optimize, pessimize, FreqSelConfig};
use ivn_core::kernels::{CrnKernel, EnvelopeScratch};
use ivn_core::waveform::CibEnvelope;
use ivn_runtime::prop::{any, btree_set, vec as pvec, Just, Strategy};
use ivn_runtime::rng::StdRng;
use ivn_runtime::{prop_assert, prop_assert_eq, prop_assume, props};

fn offsets() -> impl Strategy<Value = Vec<f64>> {
    btree_set(1u32..300, 1..9).prop_map(|set| {
        std::iter::once(0.0)
            .chain(set.into_iter().map(|v| v as f64))
            .collect()
    })
}

fn phases(n: usize) -> impl Strategy<Value = Vec<f64>> {
    pvec(0.0f64..std::f64::consts::TAU, n..=n)
}

fn offsets_and_phases() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    offsets().prop_flat_map(|o| {
        let n = o.len();
        (Just(o), phases(n))
    })
}

/// Power-of-two grids large enough to resolve the offset range.
fn pow2_grid() -> impl Strategy<Value = usize> {
    (9u32..12).prop_map(|p| 1usize << p)
}

props! {
    cases = 48;

    fn scratch_fill_matches_reference_pointwise(
        (offs, ph) in offsets_and_phases(), grid in pow2_grid()
    ) {
        // The batched allocation-free fill (whichever path `fill`
        // auto-selects) reproduces |Σᵢ e^{j(2πfᵢt+βᵢ)}| on every grid
        // sample.
        let env = CibEnvelope::new(&offs, &ph);
        let mut s = EnvelopeScratch::new();
        s.fill(&offs, &ph, None, grid);
        for (k, z) in s.grid().iter().enumerate() {
            let t = k as f64 / grid as f64;
            prop_assert!(
                (z.norm() - env.envelope(t)).abs() < 1e-9,
                "sample {k}/{grid} diverged"
            );
        }
    }

    fn fft_fill_matches_direct_fill(
        (offs, ph) in offsets_and_phases(), grid in pow2_grid()
    ) {
        let mut direct = EnvelopeScratch::new();
        let mut fft = EnvelopeScratch::new();
        direct.fill_direct(&offs, &ph, None, grid);
        fft.fill_fft(&offs, &ph, None, grid);
        for (k, (a, b)) in direct.grid().iter().zip(fft.grid()).enumerate() {
            prop_assert!((*a - *b).norm() < 1e-9, "sample {k}/{grid} diverged");
        }
    }

    fn sample_period_fft_matches_reference(
        (offs, ph) in offsets_and_phases(), grid in pow2_grid()
    ) {
        let env = CibEnvelope::new(&offs, &ph);
        let samples = env.sample_period_fft(grid);
        for (k, y) in samples.iter().enumerate() {
            let t = k as f64 / grid as f64;
            prop_assert!(
                (y - env.envelope(t)).abs() < 1e-9,
                "sample {k}/{grid} diverged"
            );
        }
    }

    fn crn_swap_matches_fresh_evaluation(
        offs in offsets(), seed in any::<u64>(),
        idx_pick in any::<u32>(), new_off in 1u32..300
    ) {
        // Scoring a one-tone perturbation incrementally (copy cached
        // grid, −old +new) must equal a from-scratch evaluation of the
        // perturbed set under the same phase draws.
        let n = offs.len();
        prop_assume!(n >= 2);
        let idx = 1 + (idx_pick as usize) % (n - 1); // never tone 0
        let draws = 4;
        let grid = 512;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kernel = CrnKernel::new(&offs, draws, grid, &mut rng);
        let incr = kernel.score_swap(idx, new_off as f64);

        let mut swapped = offs.clone();
        swapped[idx] = new_off as f64;
        let mut s = EnvelopeScratch::new();
        let mut acc = 0.0;
        for d in 0..draws {
            let ph = kernel.draw_phases(d).to_vec();
            s.fill(&swapped, &ph, None, grid);
            acc += s.peak(&swapped, &ph, None);
        }
        let fresh = acc / draws as f64;
        prop_assert!(
            (incr - fresh).abs() < 1e-9,
            "incremental {incr} vs fresh {fresh}"
        );
    }

    fn crn_commit_keeps_scores_consistent(
        offs in offsets(), seed in any::<u64>(), new_off in 1u32..300
    ) {
        // After committing a swap, the cached grids must score the new
        // set exactly as a kernel built directly on it would.
        let n = offs.len();
        prop_assume!(n >= 2);
        let draws = 3;
        let grid = 512;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kernel = CrnKernel::new(&offs, draws, grid, &mut rng);
        kernel.score_swap(n - 1, new_off as f64);
        kernel.commit_swap(n - 1, new_off as f64);
        let committed = kernel.score_current();

        let mut swapped = offs.clone();
        swapped[n - 1] = new_off as f64;
        let mut s = EnvelopeScratch::new();
        let mut acc = 0.0;
        for d in 0..draws {
            let ph = kernel.draw_phases(d).to_vec();
            s.fill(&swapped, &ph, None, grid);
            acc += s.peak(&swapped, &ph, None);
        }
        let fresh = acc / draws as f64;
        prop_assert!(
            (committed - fresh).abs() < 1e-9,
            "committed {committed} vs fresh {fresh}"
        );
    }

    fn optimize_deterministic_per_seed(seed in any::<u64>()) {
        let cfg = FreqSelConfig {
            n_antennas: 3,
            rms_limit_hz: 199.0,
            max_offset_hz: 96,
            mc_draws: 4,
            grid: 128,
            restarts: 2,
            iterations: 10,
        };
        let a = optimize(&cfg, seed);
        let b = optimize(&cfg, seed);
        prop_assert_eq!(a.offsets_hz, b.offsets_hz);
        prop_assert_eq!(a.expected_peak, b.expected_peak);
        let p = pessimize(&cfg, seed);
        let q = pessimize(&cfg, seed);
        prop_assert_eq!(p.offsets_hz, q.offsets_hz);
        prop_assert_eq!(p.expected_peak, q.expected_peak);
    }
}
