//! Scheduling properties of the persistent worker pool.
//!
//! The repo-wide contract is that parallelism changes *when* the answer
//! arrives, never *what* it is. For the pool that means: chunked
//! work-stealing is deterministic (byte-identical results at 1/2/8
//! widths, regardless of which worker ran which chunk), reuse across
//! successive dispatches leaks no state between calls, degenerate
//! inputs (empty, one item) complete without deadlocking, and the
//! pooled ensemble entry point reproduces the scoped one bit for bit.

use ivn_runtime::par;
use ivn_runtime::pool::{chunk_size, WorkerPool};
use ivn_runtime::prop::any;
use ivn_runtime::rng::{Rng, StdRng};
use ivn_runtime::{prop_assert, prop_assert_eq, props};

props! {
    cases = 48;

    fn map_indexed_identical_at_any_width(n in 0usize..300, seed in any::<u64>()) {
        let pool = WorkerPool::new(3);
        let f = move |i: usize| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            rng.random::<u64>()
        };
        let reference: Vec<u64> = (0..n).map(f).collect();
        for width in [1usize, 2, 8] {
            let got = pool.map_indexed(n, width, f);
            prop_assert_eq!(&got, &reference);
        }
    }

    fn map_move_identical_at_any_width(n in 0usize..200, seed in any::<u64>()) {
        let pool = WorkerPool::new(2);
        let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let reference: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.rotate_left((i % 61) as u32))
            .collect();
        for width in [1usize, 2, 8] {
            let got = pool.map_move(items.clone(), width, |i, x: u64| {
                x.rotate_left((i % 61) as u32)
            });
            prop_assert_eq!(&got, &reference);
        }
    }

    fn ensemble_pool_matches_scoped_ensemble(trials in 0usize..150, seed in any::<u64>()) {
        // The pooled ensemble must be a drop-in for the scoped one:
        // same fork-per-trial streams, same order, bit-identical draws.
        let scoped = par::ensemble_threads(2, trials, seed, |rng, i| (i, rng.random::<f64>()));
        for width in [1usize, 2, 8] {
            let pooled = par::ensemble_pool(width, trials, seed, |rng, i| (i, rng.random::<f64>()));
            prop_assert_eq!(&pooled, &scoped);
        }
    }

    fn reuse_leaks_no_state(rounds in 2usize..20, seed in any::<u64>()) {
        // Back-to-back dispatches of different shapes on one pool: each
        // call's output must depend only on that call's inputs, and the
        // pool must end each round fully drained.
        let pool = WorkerPool::new(2);
        for round in 0..rounds {
            let n = 1 + (seed as usize).wrapping_add(round * 37) % 90;
            let tag = seed.wrapping_add(round as u64);
            let got = pool.map_indexed(n, 8, move |i| tag.wrapping_mul(i as u64 + 1));
            let want: Vec<u64> = (0..n).map(|i| tag.wrapping_mul(i as u64 + 1)).collect();
            prop_assert_eq!(got, want);
        }
    }

    fn chunk_boundaries_are_pure(n in 0usize..100_000, width in 1usize..64) {
        // Determinism rests on chunking being a pure function of
        // (n, width): never zero, covers the range, ~4 chunks/worker.
        let c = chunk_size(n, width);
        prop_assert!(c >= 1);
        if n > 0 {
            let chunks = n.div_ceil(c);
            prop_assert!(chunks <= 4 * width + 1, "{} chunks for width {}", chunks, width);
            prop_assert!(chunks * c >= n);
        }
    }
}

#[test]
fn empty_and_single_inputs_complete() {
    let pool = WorkerPool::new(2);
    for width in [1usize, 2, 8] {
        let none: Vec<u32> = pool.map_indexed(0, width, |i| i as u32);
        assert!(none.is_empty());
        assert_eq!(pool.map_indexed(1, width, |i| i + 7), vec![7]);
        let empty_move: Vec<u32> = pool.map_move(Vec::<u32>::new(), width, |_, x| x);
        assert!(empty_move.is_empty());
        assert_eq!(pool.map_move(vec![9u32], width, |_, x| x * 2), vec![18]);
        assert_eq!(
            par::ensemble_pool(width, 0, 1, |_, i| i),
            Vec::<usize>::new()
        );
    }
}

#[test]
fn global_pool_survives_many_generations_of_dispatch() {
    // The global pool is shared by the campaign driver, BankStreamer and
    // the Monte-Carlo sweeps; hammer it with interleaved shapes.
    let pool = WorkerPool::global();
    for g in 0..50u64 {
        let a = pool.map_indexed(17, 8, move |i| g + i as u64);
        assert_eq!(a[16], g + 16);
        let b = pool.map_move((0..9u64).collect::<Vec<_>>(), 2, move |_, x| x * g);
        assert_eq!(b[8], 8 * g);
    }
}

#[test]
fn panicked_dispatch_leaves_pool_reusable() {
    let pool = WorkerPool::new(2);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.map_indexed(32, 8, |i| {
            assert!(i != 17, "boom");
            i
        })
    }));
    assert!(r.is_err());
    // The panic must not wedge workers or leave stale queue entries.
    assert_eq!(pool.map_indexed(5, 8, |i| i * 3), vec![0, 3, 6, 9, 12]);
}
