//! Property-based tests for the observability layer.
//!
//! The three guarantees the pipeline instrumentation leans on:
//! histogram merging is a commutative monoid (so per-shard snapshots can
//! combine in any order), counter totals are independent of how the
//! `par` worker pool schedules the increments, and a `Report` survives a
//! round trip through the in-tree `json` layer bit-for-bit.

use ivn_runtime::json::{FromJson, Json, ToJson};
use ivn_runtime::obs::{self, HistogramSnapshot, Report};
use ivn_runtime::par;
use ivn_runtime::prop::{vec, Just, Strategy};
use ivn_runtime::{prop_assert, prop_assert_eq, prop_oneof, props};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh metric name per property case: the registry is process-global,
/// so every case records into its own counter.
fn unique_name(prefix: &str) -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    format!("{prefix}.{}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Sample values spanning every histogram bucket from 0 up to 2^40.
fn values() -> impl Strategy<Value = Vec<u64>> {
    vec(
        prop_oneof![
            Just(0u64),
            1u64..16,
            16u64..4096,
            4096u64..(1 << 20),
            (1u64 << 20)..(1 << 40),
        ],
        0..48,
    )
}

/// A structurally arbitrary report whose numbers all survive the f64
/// bridge the JSON layer uses (counters < 2^50, sums < 2^53).
fn report_strategy() -> impl Strategy<Value = Report> {
    (
        vec(0u64..(1 << 50), 0..5),
        vec(-1e12f64..1e12, 0..5),
        vec(values(), 0..4),
    )
        .prop_map(|(counters, gauges, hists)| Report {
            counters: counters
                .into_iter()
                .enumerate()
                .map(|(i, v)| (format!("c{i}"), v))
                .collect(),
            gauges: gauges
                .into_iter()
                .enumerate()
                .map(|(i, v)| (format!("g{i}"), v))
                .collect(),
            histograms: hists
                .into_iter()
                .enumerate()
                .map(|(i, vs)| (format!("h{i}"), HistogramSnapshot::from_values(&vs)))
                .collect(),
        })
}

props! {
    cases = 64;

    fn histogram_merge_is_commutative(a in values(), b in values()) {
        let (sa, sb) = (HistogramSnapshot::from_values(&a), HistogramSnapshot::from_values(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    fn histogram_merge_is_associative(a in values(), b in values(), c in values()) {
        let sa = HistogramSnapshot::from_values(&a);
        let sb = HistogramSnapshot::from_values(&b);
        let sc = HistogramSnapshot::from_values(&c);
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    fn histogram_merge_matches_concatenation(a in values(), b in values()) {
        let merged = HistogramSnapshot::from_values(&a)
            .merge(&HistogramSnapshot::from_values(&b));
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, HistogramSnapshot::from_values(&concat));
        // Count and sum are exactly the concatenation's.
        prop_assert_eq!(
            HistogramSnapshot::from_values(&concat).count,
            (a.len() + b.len()) as u64
        );
    }

    fn counter_total_scheduling_independent(
        increments in vec(0u64..1_000_000, 0..64),
        threads in prop_oneof![Just(1usize), Just(2usize), Just(8usize)]
    ) {
        obs::set_enabled(true);
        let c = obs::counter(&unique_name("prop.counter"));
        par::par_map_threads(threads, &increments, |_, &n| c.add(n));
        prop_assert_eq!(c.total(), increments.iter().sum::<u64>());
    }

    fn span_count_scheduling_independent(
        n_spans in 0usize..64,
        threads in prop_oneof![Just(1usize), Just(2usize), Just(8usize)]
    ) {
        obs::set_enabled(true);
        let h = obs::histogram(&unique_name("prop.hist"));
        let items: Vec<usize> = (0..n_spans).collect();
        par::par_map_threads(threads, &items, |_, &i| {
            h.record(i as u64);
        });
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, n_spans as u64);
        prop_assert_eq!(snap.sum, items.iter().map(|&i| i as u64).sum::<u64>());
    }

    fn report_round_trips_through_json(r in report_strategy()) {
        // JSON carries the pruned view (zero counters and empty
        // histograms dropped); everything that ever fired survives the
        // round trip bit-for-bit, and pruning is idempotent.
        let text = r.to_json().dump();
        let parsed = Json::parse(&text).expect("parse emitted JSON");
        let back = Report::from_json(&parsed).expect("decode report");
        prop_assert_eq!(&back, &r.pruned());
        prop_assert_eq!(back.pruned(), back);
    }

    fn pruning_preserves_merge(a in report_strategy(), b in report_strategy()) {
        // The entries pruning drops are merge identities, so merging the
        // pruned view back into any report that names the same metrics
        // gives the same totals as merging the full view.
        let full = a.merge(&b);
        let via_pruned = a.pruned().merge(&b);
        for (name, v) in &full.counters {
            if b.counter(name).is_some() || a.counter(name).unwrap_or(0) > 0 {
                prop_assert_eq!(via_pruned.counter(name), Some(*v));
            }
        }
        for (name, s) in &full.histograms {
            let survived = b.histogram(name).is_some()
                || a.histogram(name).map(|h| h.count > 0).unwrap_or(false);
            if survived {
                prop_assert_eq!(via_pruned.histogram(name), Some(s));
            }
        }
    }

    fn delta_merge_identity(prev in report_strategy(), extra in report_strategy()) {
        // Build `cur` as a later snapshot of `prev` (same or grown name
        // set, monotone counters/histograms), then check the flight
        // recorder's core identity: prev ⊎ (cur − prev) == cur, and the
        // delta never goes negative (saturating arithmetic).
        let cur = prev.merge(&extra);
        let d = cur.delta(&prev);
        prop_assert_eq!(prev.merge(&d), cur);
        for (name, v) in &d.counters {
            let (p, c) = (prev.counter(name).unwrap_or(0), cur.counter(name).unwrap_or(0));
            prop_assert_eq!(*v, c - p);
        }
        // Reversed-order delta saturates to zero instead of wrapping.
        for (name, v) in &prev.delta(&cur).counters {
            let (p, c) = (prev.counter(name).unwrap_or(0), cur.counter(name).unwrap_or(0));
            prop_assert_eq!(*v, p.saturating_sub(c));
        }
    }

    fn delta_scheduling_independent(
        increments in vec(1u64..1_000_000, 1..48),
        threads in prop_oneof![Just(1usize), Just(2usize), Just(8usize)]
    ) {
        // The interval delta a heartbeat reports depends only on what was
        // recorded, not on which worker recorded it.
        obs::set_enabled(true);
        let name = unique_name("prop.delta");
        let c = obs::counter(&name);
        let prev = obs::report();
        par::par_map_threads(threads, &increments, |_, &n| c.add(n));
        let d = obs::report().delta(&prev);
        prop_assert_eq!(d.counter(&name), Some(increments.iter().sum::<u64>()));
    }

    fn snapshot_mean_sits_inside_bucket_range(vs in values()) {
        let s = HistogramSnapshot::from_values(&vs);
        if let Some(mean) = s.mean() {
            let lo = vs.iter().min().copied().unwrap_or(0) as f64;
            let hi = vs.iter().max().copied().unwrap_or(0) as f64;
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "mean {mean} outside [{lo}, {hi}]");
        } else {
            prop_assert!(vs.is_empty());
        }
    }
}
