//! Edge-case coverage for the minimal JSON layer: string escapes,
//! nesting limits, tolerance of unknown fields, and bit-exact float
//! round-trips — the properties the scenario substrate leans on.

use ivn_runtime::json::{FromJson, Json};

// ---------------------------------------------------------------------
// String escapes.
// ---------------------------------------------------------------------

#[test]
fn escape_round_trips() {
    let cases = [
        "plain",
        "tab\there",
        "newline\nand return\r",
        "quote\"backslash\\slash/",
        "control \u{1} \u{1f} bytes",
        "bell\u{8}feed\u{c}",
        "unicode é ü 中文 ελληνικά",
        "emoji \u{1f600} pair \u{1f680}",
        "",
    ];
    for s in cases {
        let dumped = Json::Str(s.to_string()).dump();
        let parsed = Json::parse(&dumped).unwrap_or_else(|e| panic!("{s:?}: {}", e.reason));
        assert_eq!(parsed, Json::Str(s.to_string()), "{s:?} via {dumped}");
    }
}

#[test]
fn surrogate_pairs_and_bad_escapes() {
    // A surrogate pair decodes to one astral-plane scalar.
    assert_eq!(
        Json::parse("\"\\ud83d\\ude00\"").unwrap(),
        Json::Str("\u{1f600}".into())
    );
    // A lone high surrogate is an error, not replacement garbage.
    assert!(Json::parse("\"\\ud83d\"").is_err());
    // A high surrogate followed by a non-surrogate escape is an error.
    assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
    // Truncated and invalid \u escapes are errors.
    assert!(Json::parse("\"\\u00\"").is_err());
    assert!(Json::parse("\"\\uZZZZ\"").is_err());
    // Unknown single-letter escapes are errors.
    assert!(Json::parse("\"\\x\"").is_err());
}

// ---------------------------------------------------------------------
// Deep nesting: the parser refuses stack-blowing inputs at a fixed
// depth rather than crashing.
// ---------------------------------------------------------------------

fn nested_arrays(depth: usize) -> String {
    let mut s = String::new();
    for _ in 0..depth {
        s.push('[');
    }
    s.push('1');
    for _ in 0..depth {
        s.push(']');
    }
    s
}

#[test]
fn nesting_accepted_below_limit_rejected_above() {
    // 127 nested arrays parse; a pathological 5000-deep input errors
    // cleanly instead of overflowing the stack.
    assert!(Json::parse(&nested_arrays(127)).is_ok());
    let err = Json::parse(&nested_arrays(5000)).unwrap_err();
    assert!(err.reason.contains("deep"), "{}", err.reason);
    // Mixed object/array nesting hits the same guard.
    let mut deep = String::new();
    for _ in 0..3000 {
        deep.push_str("{\"k\":[");
    }
    assert!(Json::parse(&deep).is_err());
}

// ---------------------------------------------------------------------
// Unknown-field tolerance: decoding through `get` ignores extra keys,
// so scenario files written by newer versions still load.
// ---------------------------------------------------------------------

#[test]
fn unknown_fields_are_ignored_by_get() {
    let v = Json::parse(r#"{"known": 3, "future_knob": {"a": [1,2]}, "note": "hi"}"#).unwrap();
    assert_eq!(f64::from_json(v.get("known").unwrap()).unwrap(), 3.0);
    assert!(v.get("missing").is_none());
    // Unknown keys survive a round-trip untouched (insertion order kept).
    assert_eq!(Json::parse(&v.dump()).unwrap(), v);
}

// ---------------------------------------------------------------------
// Float round-trips: dump → parse must be bit-exact for every value the
// scenario engine stores (depths, rates, seeds-as-f64, jittered EIRPs).
// ---------------------------------------------------------------------

#[test]
fn floats_round_trip_bit_exact() {
    let cases = [
        0.0,
        -0.0,
        0.1,
        1.0 / 3.0,
        2.5e-8,
        915e6,
        199.0,
        f64::MIN_POSITIVE,          // smallest normal
        f64::MIN_POSITIVE / 1024.0, // subnormal
        f64::MAX,
        -f64::MAX,
        1e308,
        123456789.123456789,
        (1u64 << 53) as f64,
        37.0 * (1.0 + 0.05 * (2.0 * 0.123456789 - 1.0)), // a jittered EIRP
    ];
    for x in cases {
        let dumped = Json::Num(x).dump();
        let parsed = Json::parse(&dumped).unwrap();
        let Json::Num(y) = parsed else {
            panic!("{x} parsed to non-number")
        };
        assert_eq!(x.to_bits(), y.to_bits(), "{x} via {dumped} -> {y}");
    }
}

#[test]
fn float_dump_is_stable_under_reparse() {
    // dump(parse(dump(x))) == dump(x): byte-identity for re-exports.
    for x in [0.1, 1e-300, 7.0 / 11.0, 1.7976931348623157e308] {
        let once = Json::Num(x).dump();
        let twice = Json::parse(&once).unwrap().dump();
        assert_eq!(once, twice);
    }
}

#[test]
fn non_finite_numbers_are_unrepresentable() {
    // JSON has no NaN/Infinity; the parser must reject the idents and
    // the emitter must not produce unparseable output for them.
    assert!(Json::parse("NaN").is_err());
    assert!(Json::parse("Infinity").is_err());
    assert!(Json::parse("-Infinity").is_err());
}
