//! Ring-buffer edge cases for `ivn_runtime::trace`: wraparound after
//! capacity events, concurrent emission from the `par` worker pool, and
//! empty-trace export validity.
//!
//! Trace state is process-global (enable flag, track rings shared through
//! the free-list), so every test takes one mutex and filters snapshots by
//! test-unique event names.

use ivn_runtime::json::Json;
use ivn_runtime::trace::{self, EventKind, Trace, TraceEvent};
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn mine<'a>(t: &'a Trace, prefix: &str) -> Vec<&'a TraceEvent> {
    t.events
        .iter()
        .filter(|e| e.name.starts_with(prefix))
        .collect()
}

#[test]
fn wraparound_keeps_newest_events() {
    let _guard = serial();
    trace::reset();
    trace::set_enabled(true);
    let tok = trace::intern("props.wrap");
    let cap = trace::track_capacity();
    // Overfill this thread's ring by half a capacity; values encode
    // emission order.
    let total = cap + cap / 2;
    for i in 0..total {
        trace::counter(tok, i as f64);
    }
    trace::set_enabled(false);
    let snap = trace::snapshot();
    let ours = mine(&snap, "props.wrap");
    assert_eq!(ours.len(), cap, "ring retains exactly `capacity` events");
    assert!(snap.dropped >= (total - cap) as u64, "overflow counted");
    // The survivors are precisely the newest `cap` emissions, in order.
    for (k, e) in ours.iter().enumerate() {
        assert_eq!(e.value, (total - cap + k) as f64, "event {k}");
    }
    trace::reset();
}

#[test]
fn concurrent_emit_from_par_pool() {
    let _guard = serial();
    trace::reset();
    trace::set_enabled(true);
    const WORKERS: usize = 8;
    const TRIALS: usize = 16;
    const PER_TRIAL: usize = 10;
    let tok = trace::intern("props.par");
    let items: Vec<usize> = (0..TRIALS).collect();
    ivn_runtime::par::par_map_threads(WORKERS, &items, |_, &trial| {
        for k in 0..PER_TRIAL {
            trace::counter(tok, (trial * 1000 + k) as f64);
        }
        trial
    });
    trace::set_enabled(false);
    let snap = trace::snapshot();
    let ours = mine(&snap, "props.par");
    // Every event from every worker thread is present...
    assert_eq!(ours.len(), TRIALS * PER_TRIAL);
    for trial in 0..TRIALS {
        for k in 0..PER_TRIAL {
            let v = (trial * 1000 + k) as f64;
            assert!(
                ours.iter().any(|e| e.value == v),
                "missing event {trial}/{k}"
            );
        }
    }
    // ...and per-track (= per-thread) ordering is preserved: a trial runs
    // entirely on one thread, so within any track its samples must appear
    // in emission order (k strictly ascending).
    let mut tracks: Vec<u32> = ours.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for track in tracks {
        let mut last_k: Vec<(usize, usize)> = Vec::new(); // (trial, last k seen)
        for e in ours.iter().filter(|e| e.track == track) {
            let trial = (e.value as usize) / 1000;
            let k = (e.value as usize) % 1000;
            match last_k.iter_mut().find(|(t, _)| *t == trial) {
                Some((_, prev)) => {
                    assert!(k > *prev, "track {track}: trial {trial} out of order");
                    *prev = k;
                }
                None => last_k.push((trial, k)),
            }
        }
    }
    trace::reset();
}

#[test]
fn empty_trace_exports_valid_json() {
    let _guard = serial();
    trace::reset();
    let snap = trace::snapshot();
    let ours = mine(&snap, "props.");
    assert!(ours.is_empty(), "reset left events behind: {ours:?}");
    let doc = snap.to_chrome_json();
    let text = doc.dump();
    let parsed = Json::parse(&text).expect("exported empty trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array present");
    assert!(events.is_empty());
    let back = Trace::from_chrome_json(&parsed).expect("round trip");
    assert!(back.events.is_empty());
    assert_eq!(back.check_balanced(), Ok(0));
}

#[test]
fn export_balances_spans_across_wraparound() {
    let _guard = serial();
    trace::reset();
    trace::set_enabled(true);
    let outer = trace::intern("props.bal.outer");
    let inner = trace::intern("props.bal.inner");
    // An outer span whose begin is guaranteed to be overwritten: open it,
    // then flood the ring with inner spans past capacity.
    trace::begin(outer);
    let cap = trace::track_capacity();
    for _ in 0..(cap / 2 + 2) {
        trace::begin(inner);
        trace::end(inner);
    }
    trace::end(outer);
    trace::set_enabled(false);
    let exported = Trace::from_chrome_json(&trace::snapshot().to_chrome_json()).unwrap();
    exported
        .check_balanced()
        .expect("export must balance even with the outer begin overwritten");
    let outers = mine(&exported, "props.bal.outer");
    assert!(
        outers.is_empty(),
        "orphan outer end must be dropped: {outers:?}"
    );
    let inners = mine(&exported, "props.bal.inner");
    assert!(!inners.is_empty() && inners.len() % 2 == 0);
    trace::reset();
}
