//! Seeded, shrink-free property testing.
//!
//! A small in-tree replacement for the `proptest` surface the workspace
//! used: the [`props!`](crate::props) macro declares properties over
//! generated inputs, [`Strategy`] implementations produce the inputs, and
//! failures report the case number, the derived seed and a `Debug` dump of
//! the inputs — enough to reproduce deterministically, with no shrinking.
//!
//! Case generation is fully deterministic: test `name`, case `i` draws
//! from `StdRng::seed_from_stream(fnv1a(name), i)`, so failures reproduce
//! across runs and machines without a persisted regressions file.
//!
//! ```
//! use ivn_runtime::prop::Strategy;
//! use ivn_runtime::{prop_assert, props};
//!
//! props! {
//!     cases = 32;
//!     fn addition_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
//!         prop_assert!((a + b - (b + a)).abs() < 1e-12);
//!     }
//! }
//! ```

use crate::rng::{Sample, SampleRange, StdRng};
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// A strategy generating from the strategy `f` builds out of each of
    /// this strategy's values (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous [`prop_oneof!`][crate::prop_oneof] lists).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform over the type's whole domain (`[0, 1)` for `f64`).
pub struct Any<T>(PhantomData<T>);

/// A strategy drawing any value of `T` uniformly.
pub fn any<T: Sample>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Sample> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample(rng)
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange + Clone,
{
    type Value = <core::ops::Range<T> as SampleRange>::Output;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        use crate::rng::Rng as _;
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange + Clone,
{
    type Value = <core::ops::RangeInclusive<T> as SampleRange>::Output;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        use crate::rng::Rng as _;
        rng.random_range(self.clone())
    }
}

/// A collection-size specification accepted by [`vec`] and [`btree_set`]:
/// built from `lo..hi`, `lo..=hi` or an exact `usize`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut StdRng) -> usize {
        use crate::rng::Rng as _;
        rng.random_range(self.lo..=self.hi_inclusive)
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    len: SizeRange,
}

/// A strategy for `Vec`s whose length is drawn from `len` and whose
/// elements come from `elem`.
pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        len: len.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.len.draw(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    elem: S,
    len: SizeRange,
}

/// A strategy for ordered sets of distinct elements with a size drawn
/// from `len`. Duplicate draws are retried; if the element domain is too
/// small to reach the drawn size, the set is returned at the size reached.
pub fn btree_set<S>(elem: S, len: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        len: len.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.len.draw(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < 20 * target + 100 {
            set.insert(self.elem.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// See [`prop_oneof!`][crate::prop_oneof].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A strategy choosing uniformly among `options` each case.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use crate::rng::Rng as _;
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

/// The deterministic RNG for case `case` of property `name`.
pub fn case_rng(name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name picks the per-property base seed.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    StdRng::seed_from_stream(h, case)
}

/// Declares deterministic property tests.
///
/// ```ignore
/// props! {
///     cases = 96;                         // optional; default 64
///     fn my_property(x in 0.0f64..1.0, v in vec(any::<bool>(), 1..8)) {
///         prop_assert!(v.len() as f64 > x - 1.0);
///     }
/// }
/// ```
///
/// Each property becomes a `#[test]`. Inputs are drawn from the listed
/// strategies with a seed derived from the property name and case index;
/// a failure reports both alongside the `Debug` form of the inputs.
/// Inside the body use [`prop_assert!`](crate::prop_assert),
/// [`prop_assert_eq!`](crate::prop_assert_eq) and
/// [`prop_assume!`](crate::prop_assume).
#[macro_export]
macro_rules! props {
    (cases = $cases:expr; $($rest:tt)*) => { $crate::__props_internal! { $cases; $($rest)* } };
    ($($rest:tt)*) => { $crate::__props_internal! { 64; $($rest)* } };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __props_internal {
    ($cases:expr; $($(#[$meta:meta])* fn $name:ident
        ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block)*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let __cases: u64 = $cases;
            for __case in 0..__cases {
                let mut __rng = $crate::prop::case_rng(stringify!($name), __case);
                let __vals = ( $($crate::prop::Strategy::generate(&($strat), &mut __rng),)+ );
                let __report = ::std::format!("{:?}", __vals);
                let ( $($pat,)+ ) = __vals;
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    ::std::panic!(
                        "property '{}' failed at case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name), __case, __cases, __msg, __report,
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`props!`](crate::props) body, failing the
/// case with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({})", stringify!($cond), ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`props!`](crate::props) body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// A strategy choosing uniformly among the listed strategies (all must
/// generate the same type). The in-tree analogue of proptest's
/// `prop_oneof!`; weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop::OneOf::new(::std::vec![
            $($crate::prop::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic_and_name_sensitive() {
        use crate::rng::Rng as _;
        assert_eq!(case_rng("a", 0), case_rng("a", 0));
        assert_ne!(case_rng("a", 0), case_rng("a", 1));
        assert_ne!(case_rng("a", 0).next_u64(), case_rng("b", 0).next_u64());
    }

    #[test]
    fn strategies_generate_expected_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = vec(0u32..10, 3..=3).generate(&mut rng);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|&x| x < 10));

        let s = btree_set(0u32..100, 5..6).generate(&mut rng);
        assert_eq!(s.len(), 5);

        let (a, b) = (0.0f64..1.0, Just(7u8)).generate(&mut rng);
        assert!((0.0..1.0).contains(&a));
        assert_eq!(b, 7);

        let mapped = (0u32..5).prop_map(|x| x * 2).generate(&mut rng);
        assert!(mapped < 10 && mapped % 2 == 0);

        let dependent = (1usize..4)
            .prop_flat_map(|n| vec(any::<bool>(), n..=n))
            .generate(&mut rng);
        assert!((1..4).contains(&dependent.len()));

        let one: u8 = crate::prop_oneof![Just(1u8), Just(2u8)].generate(&mut rng);
        assert!(one == 1 || one == 2);
    }

    #[test]
    fn btree_set_saturates_on_tiny_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = btree_set(0u32..2, 5..6).generate(&mut rng);
        assert!(s.len() <= 2);
    }

    // The macro itself, exercised end to end.
    crate::props! {
        cases = 16;
        fn macro_smoke(x in 0.0f64..1.0, flag in any::<bool>(), v in vec(0u8..4, 0..5)) {
            crate::prop_assume!(v.len() < 100);
            crate::prop_assert!((0.0..1.0).contains(&x));
            crate::prop_assert_eq!(flag, flag);
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            // Simulate what the macro expands to for a failing body.
            let mut rng = case_rng("doomed", 0);
            let val = Strategy::generate(&(0u32..10), &mut rng);
            let report = format!("{:?}", (val,));
            let outcome: Result<(), String> = (|| {
                crate::prop_assert!(val > 1000, "val was {val}");
                Ok(())
            })();
            if let Err(msg) = outcome {
                panic!("property 'doomed' failed at case 0: {msg}; inputs: {report}");
            }
        });
        let payload = result.expect_err("property must fail");
        let text = payload.downcast_ref::<String>().expect("string panic");
        assert!(text.contains("doomed") && text.contains("inputs"), "{text}");
    }
}
