//! A persistent work-stealing worker pool for coarse-grained parallelism.
//!
//! [`par::par_map_threads`](crate::par::par_map_threads) spawns fresh OS
//! threads on every call — fine for second-long Monte-Carlo sweeps, pure
//! overhead for the millisecond-scale dispatches the streaming sample
//! path and the campaign driver issue thousands of times per run
//! (BENCH_runtime.json before this module: 8-thread `parallel_sweep` at
//! 0.38–0.92x). [`WorkerPool`] fixes the constant factor:
//!
//! * **Persistent workers.** Threads are spawned once (lazily, via
//!   [`WorkerPool::global`]) and parked on a condvar between calls, so a
//!   dispatch costs a queue push + wakeup instead of `thread::spawn`.
//! * **Chunked work-stealing.** Work is split into contiguous index
//!   chunks sized by [`chunk_size`] (≈4 chunks per worker, so uneven
//!   chunk costs still load-balance). Each chunk is pushed to a
//!   per-worker deque; idle workers pop their own queue from the front
//!   and steal from other queues' backs.
//! * **Determinism by construction.** Chunk boundaries depend only on
//!   `(len, width)`, every chunk is tagged with its start index, and the
//!   caller reassembles results in index order — so the output is
//!   byte-identical no matter which worker ran which chunk or in what
//!   order (pinned by `tests/pool_props.rs`).
//!
//! The workspace denies `unsafe`, so unlike rayon the pool cannot smuggle
//! borrowed closures across threads: jobs must be `'static` and own their
//! data ([`WorkerPool::map_move`] moves items through the pool and back).
//! Call sites that only have borrowed data either clone it (campaign
//! scenarios), move it (BankStreamer lane slots), or keep using the
//! scoped spawning path in [`par`](crate::par).
//!
//! Nested dispatches from inside a pool worker run inline on that worker
//! (a thread-local flag), so a pooled task may itself call pooled code
//! without deadlocking on the pool's own capacity. Callers *help*: while
//! waiting for results they execute queued chunks themselves, so a
//! dispatch never pays a context switch per chunk and the caller thread
//! counts as an extra executor.

use crate::obs;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True when the current thread is one of the pool's workers. Nested
/// pool calls detect this and run inline to avoid self-deadlock.
pub fn on_pool_worker() -> bool {
    IS_POOL_WORKER.with(|f| f.get())
}

/// Chunk length used to split `n` items across a dispatch of `width`
/// logical workers: ~4 chunks per worker, never zero. Depends only on
/// the two arguments, which is what makes pooled maps deterministic.
pub fn chunk_size(n: usize, width: usize) -> usize {
    n.div_ceil(width.max(1) * 4).max(1)
}

/// Always-on per-lane execution counters (relaxed atomics — one
/// `fetch_add` next to a mutex lock that was already there). Lane `i`
/// for `i < workers` is worker thread `i`; the extra trailing lane
/// aggregates every *helping caller* (threads executing queued jobs
/// while they wait in [`WorkerPool::collect_helping`]).
#[derive(Debug, Default)]
struct LaneStats {
    /// Jobs this lane grabbed and ran.
    tasks: AtomicU64,
    /// Jobs taken from another lane's queue.
    steals: AtomicU64,
    /// Probes of other queues that came up empty.
    steal_misses: AtomicU64,
    /// Times the lane ran out of local + stealable work and parked.
    parks: AtomicU64,
    /// Condvar wakeups received while parked.
    wakes: AtomicU64,
    /// Wall time spent executing jobs.
    busy_ns: AtomicU64,
    /// Wall time spent parked between jobs.
    idle_ns: AtomicU64,
    /// Jobs submitted into this lane's queue (workers only).
    queue_pushed: AtomicU64,
    /// Deepest this lane's queue has ever been (workers only).
    queue_depth_peak: AtomicU64,
}

struct Shared {
    /// One job deque per worker; owners pop the front, thieves the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// `queues.len() + 1` lanes — see [`LaneStats`].
    stats: Vec<LaneStats>,
    /// Jobs pushed but not yet grabbed (not: not yet finished).
    pending: AtomicUsize,
    shutdown: AtomicBool,
    /// Guards the sleep/wake handshake only — holds no data.
    gate: Mutex<()>,
    cv: Condvar,
}

impl Shared {
    /// Takes one job: own queue front first, then steal from the back of
    /// the other queues, nearest first. `lane` is the stats lane doing
    /// the grabbing (a worker's home index, or the callers lane).
    fn grab(&self, home: usize, lane: usize) -> Option<Job> {
        let k = self.queues.len();
        for off in 0..k {
            let qi = (home + off) % k;
            let mut q = self.queues[qi].lock().unwrap();
            let job = if off == 0 {
                q.pop_front()
            } else {
                q.pop_back()
            };
            if let Some(job) = job {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                self.stats[lane].tasks.fetch_add(1, Ordering::Relaxed);
                if off != 0 {
                    self.stats[lane].steals.fetch_add(1, Ordering::Relaxed);
                    crate::trace_instant!("pool.steal");
                }
                return Some(job);
            }
            if off != 0 {
                self.stats[lane]
                    .steal_misses
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        None
    }

    /// Runs one grabbed job, charging its wall time to `lane` and
    /// framing it as a `pool.job` span on the executing thread's trace
    /// track (that is what makes per-lane utilization visible in
    /// `trace_report`).
    fn run_job(&self, job: Job, lane: usize) {
        let t0 = Instant::now();
        {
            let _job_span = crate::trace_span!("pool.job");
            // Jobs built by map_* catch their own panics; this outer
            // catch only keeps the executor alive if a raw job leaks one.
            let _ = catch_unwind(AssertUnwindSafe(job));
        }
        self.stats[lane]
            .busy_ns
            .fetch_add(elapsed_ns(t0), Ordering::Relaxed);
    }
}

#[inline]
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

fn worker_loop(shared: &Shared, home: usize) {
    IS_POOL_WORKER.with(|f| f.set(true));
    let stats = &shared.stats[home];
    loop {
        while let Some(job) = shared.grab(home, home) {
            shared.run_job(job, home);
        }
        let parked_at = Instant::now();
        stats.parks.fetch_add(1, Ordering::Relaxed);
        let mut guard = shared.gate.lock().unwrap();
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                stats
                    .idle_ns
                    .fetch_add(elapsed_ns(parked_at), Ordering::Relaxed);
                return;
            }
            if shared.pending.load(Ordering::Acquire) > 0 {
                break;
            }
            guard = shared.cv.wait(guard).unwrap();
            stats.wakes.fetch_add(1, Ordering::Relaxed);
        }
        drop(guard);
        stats
            .idle_ns
            .fetch_add(elapsed_ns(parked_at), Ordering::Relaxed);
    }
}

/// A fixed-size pool of parked worker threads with per-worker deques and
/// work stealing. See the module docs for the design rationale.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Round-robin cursor for spreading submitted chunks across queues.
    next_queue: AtomicUsize,
}

impl WorkerPool {
    /// Spawns a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            stats: (0..workers + 1).map(|_| LaneStats::default()).collect(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|home| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ivn-pool-{home}"))
                    .spawn(move || worker_loop(&shared, home))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
            next_queue: AtomicUsize::new(0),
        }
    }

    /// The process-wide pool, created on first use with
    /// [`num_threads`](crate::par::num_threads) workers. Its lane stats
    /// are published as `pool.*` gauges on every
    /// [`obs::report`](crate::obs::report) via a registered collector.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let pool = WorkerPool::new(crate::par::num_threads());
            let shared = Arc::clone(&pool.shared);
            obs::register_collector(move || publish_stats(&shared));
            pool
        })
    }

    /// Number of worker threads in this pool.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Enqueues owned jobs round-robin across the worker deques and wakes
    /// the workers. With observability on, each job is stamped at
    /// submission and reports its queue→execution latency into the
    /// `pool.dispatch_latency_ns` histogram; the queue depth seen at each
    /// push lands in `pool.queue_depth`.
    fn submit(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        let k = self.shared.queues.len();
        let many = jobs.len() > 1;
        let measure = obs::enabled();
        for job in jobs {
            let qi = self.next_queue.fetch_add(1, Ordering::Relaxed) % k;
            let job = if measure {
                let queued_at = Instant::now();
                Box::new(move || {
                    dispatch_latency_hist().record(elapsed_ns(queued_at));
                    job();
                }) as Job
            } else {
                job
            };
            self.shared.pending.fetch_add(1, Ordering::AcqRel);
            let depth = {
                let mut q = self.shared.queues[qi].lock().unwrap();
                q.push_back(job);
                q.len() as u64
            };
            let stats = &self.shared.stats[qi];
            stats.queue_pushed.fetch_add(1, Ordering::Relaxed);
            stats.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
            if measure {
                queue_depth_hist().record(depth);
            }
        }
        // Lock-then-notify so a worker between its pending check and its
        // wait cannot miss the wakeup.
        drop(self.shared.gate.lock().unwrap());
        if many {
            self.shared.cv.notify_all();
        } else {
            self.shared.cv.notify_one();
        }
    }

    /// Maps `f` over indices `0..n` with chunked dispatch, returning
    /// results in index order. `width` shapes the chunking exactly like a
    /// thread count: `width <= 1` (or trivial input, or a nested call
    /// from a pool worker) runs inline on the caller.
    ///
    /// # Panics
    /// Re-raises the first (lowest-index-chunk) panic from any job.
    pub fn map_indexed<U, F>(&self, n: usize, width: usize, f: F) -> Vec<U>
    where
        U: Send + 'static,
        F: Fn(usize) -> U + Send + Sync + 'static,
    {
        if n == 0 {
            return Vec::new();
        }
        if width <= 1 || n == 1 || on_pool_worker() {
            return (0..n).map(f).collect();
        }
        let chunk = chunk_size(n, width);
        let f = Arc::new(f);
        let (tx, rx) = channel();
        let mut jobs: Vec<Job> = Vec::with_capacity(n.div_ceil(chunk));
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let f = Arc::clone(&f);
            let tx = tx.clone();
            jobs.push(Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    (start..end).map(|i| f(i)).collect::<Vec<U>>()
                }));
                let _ = tx.send((start, r));
            }));
            start = end;
        }
        drop(tx);
        let chunks = jobs.len();
        self.submit(jobs);
        let mut parts = self.collect_helping(chunks, &rx);
        parts.sort_unstable_by_key(|(s, _)| *s);
        let mut out = Vec::with_capacity(n);
        for (_, r) in parts {
            match r {
                Ok(v) => out.extend(v),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    }

    /// Moves `items` through the pool: each is passed by value to
    /// `f(index, item)` and the outputs come back in input order. This is
    /// the owned-data analogue of
    /// [`par::par_map_threads`](crate::par::par_map_threads) — the shape
    /// the no-`unsafe` rule forces on persistent-thread dispatch.
    ///
    /// # Panics
    /// Re-raises the first (lowest-index-chunk) panic from any job.
    pub fn map_move<T, U, F>(&self, items: Vec<T>, width: usize, f: F) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(usize, T) -> U + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if width <= 1 || n == 1 || on_pool_worker() {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let chunk = chunk_size(n, width);
        let f = Arc::new(f);
        let (tx, rx) = channel();
        let mut jobs: Vec<Job> = Vec::with_capacity(n.div_ceil(chunk));
        let mut iter = items.into_iter();
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let batch: Vec<T> = iter.by_ref().take(end - start).collect();
            let f = Arc::clone(&f);
            let tx = tx.clone();
            jobs.push(Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    batch
                        .into_iter()
                        .enumerate()
                        .map(|(j, t)| f(start + j, t))
                        .collect::<Vec<U>>()
                }));
                let _ = tx.send((start, r));
            }));
            start = end;
        }
        drop(tx);
        let chunks = jobs.len();
        self.submit(jobs);
        let mut parts = self.collect_helping(chunks, &rx);
        parts.sort_unstable_by_key(|(s, _)| *s);
        let mut out = Vec::with_capacity(n);
        for (_, r) in parts {
            match r {
                Ok(v) => out.extend(v),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    }

    /// Waits for `chunks` results while *helping*: as long as any queue
    /// holds a job, the caller executes it instead of parking in
    /// `recv()`. On a busy or single-core host this turns a dispatch
    /// into mostly-inline execution (no context-switch per chunk), and
    /// it makes nested dispatch deadlock-free even from non-pool
    /// threads: a queued job can always be run by whoever is waiting
    /// on it.
    fn collect_helping<P>(&self, chunks: usize, rx: &std::sync::mpsc::Receiver<P>) -> Vec<P> {
        let mut parts = Vec::with_capacity(chunks);
        while parts.len() < chunks {
            while let Ok(p) = rx.try_recv() {
                parts.push(p);
            }
            if parts.len() >= chunks {
                break;
            }
            let callers_lane = self.shared.queues.len();
            if let Some(job) = self.shared.grab(0, callers_lane) {
                // May be a chunk of an unrelated concurrent dispatch —
                // executing it is still progress, and ours can only be
                // taken by someone who will finish it.
                self.shared.run_job(job, callers_lane);
            } else {
                // Queues are empty: block for a worker's result. This
                // wait is the callers lane's idle time — without
                // charging it, `pool.callers.busy_frac` reads a
                // meaningless 1.0 (the lane only ever logged busy_ns).
                let waited_at = Instant::now();
                let part = rx.recv().expect("pool worker delivered result");
                self.shared.stats[callers_lane]
                    .idle_ns
                    .fetch_add(elapsed_ns(waited_at), Ordering::Relaxed);
                parts.push(part);
            }
        }
        parts
    }

    /// Point-in-time copy of every lane's counters: one entry per worker
    /// (`w0`, `w1`, …) plus the aggregate `callers` lane for threads
    /// that executed jobs while waiting on their own dispatch.
    pub fn stats(&self) -> Vec<LaneSnapshot> {
        lane_snapshots(&self.shared)
    }
}

/// Exported view of one lane's [`LaneStats`]; see
/// [`WorkerPool::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSnapshot {
    /// `"w0"`, `"w1"`, … for workers; `"callers"` for helping callers.
    pub lane: String,
    /// Jobs grabbed and run by this lane.
    pub tasks: u64,
    /// Jobs taken from another lane's queue.
    pub steals: u64,
    /// Probes of other queues that found them empty.
    pub steal_misses: u64,
    /// Times the lane parked (workers only).
    pub parks: u64,
    /// Condvar wakeups received while parked (workers only).
    pub wakes: u64,
    /// Wall time spent executing jobs.
    pub busy_ns: u64,
    /// Wall time spent parked (workers only).
    pub idle_ns: u64,
    /// Jobs submitted into this lane's queue (workers only).
    pub queue_pushed: u64,
    /// Deepest the lane's queue has been (workers only).
    pub queue_depth_peak: u64,
}

impl LaneSnapshot {
    /// Fraction of accounted wall time spent executing jobs
    /// (`busy / (busy + idle)`; 0.0 before the lane has done anything).
    pub fn busy_frac(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

fn lane_snapshots(shared: &Shared) -> Vec<LaneSnapshot> {
    let k = shared.queues.len();
    shared
        .stats
        .iter()
        .enumerate()
        .map(|(i, s)| LaneSnapshot {
            lane: if i < k {
                format!("w{i}")
            } else {
                "callers".to_string()
            },
            tasks: s.tasks.load(Ordering::Relaxed),
            steals: s.steals.load(Ordering::Relaxed),
            steal_misses: s.steal_misses.load(Ordering::Relaxed),
            parks: s.parks.load(Ordering::Relaxed),
            wakes: s.wakes.load(Ordering::Relaxed),
            busy_ns: s.busy_ns.load(Ordering::Relaxed),
            idle_ns: s.idle_ns.load(Ordering::Relaxed),
            queue_pushed: s.queue_pushed.load(Ordering::Relaxed),
            queue_depth_peak: s.queue_depth_peak.load(Ordering::Relaxed),
        })
        .collect()
}

/// Publishes the global pool's lane stats as `pool.<lane>.*` gauges —
/// runs as an [`obs::register_collector`] hook on every `obs::report()`
/// (and therefore on every flight-recorder heartbeat).
fn publish_stats(shared: &Shared) {
    for s in lane_snapshots(shared) {
        let set = |suffix: &str, v: f64| {
            obs::gauge(&format!("pool.{}.{suffix}", s.lane)).set_unchecked(v);
        };
        set("tasks", s.tasks as f64);
        set("steals", s.steals as f64);
        set("steal_misses", s.steal_misses as f64);
        set("parks", s.parks as f64);
        set("wakes", s.wakes as f64);
        set("busy_ns", s.busy_ns as f64);
        set("idle_ns", s.idle_ns as f64);
        set("busy_frac", s.busy_frac());
        if !s.lane.starts_with("callers") {
            set("queue_pushed", s.queue_pushed as f64);
            set("queue_depth_peak", s.queue_depth_peak as f64);
        }
    }
    for (i, q) in shared.queues.iter().enumerate() {
        let depth = q.lock().unwrap().len() as f64;
        obs::gauge(&format!("pool.w{i}.queue_depth")).set_unchecked(depth);
    }
}

fn dispatch_latency_hist() -> &'static obs::Histogram {
    static H: OnceLock<&'static obs::Histogram> = OnceLock::new();
    H.get_or_init(|| obs::histogram("pool.dispatch_latency_ns"))
}

fn queue_depth_hist() -> &'static obs::Histogram {
    static H: OnceLock<&'static obs::Histogram> = OnceLock::new();
    H.get_or_init(|| obs::histogram("pool.queue_depth"))
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(self.shared.gate.lock().unwrap());
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("pending", &self.shared.pending.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        let pool = WorkerPool::new(3);
        for width in [1, 2, 3, 8] {
            let out = pool.map_indexed(257, width, |i| i * 2);
            assert_eq!(out, (0..257).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_move_round_trips_items() {
        let pool = WorkerPool::new(2);
        let items: Vec<String> = (0..40).map(|i| format!("x{i}")).collect();
        let out = pool.map_move(items.clone(), 8, |i, s| format!("{i}:{s}"));
        for (i, s) in out.iter().enumerate() {
            assert_eq!(*s, format!("{i}:x{i}"));
        }
    }

    #[test]
    fn empty_and_single_do_not_deadlock() {
        let pool = WorkerPool::new(2);
        let none: Vec<u32> = pool.map_indexed(0, 8, |i| i as u32);
        assert!(none.is_empty());
        assert_eq!(pool.map_indexed(1, 8, |i| i + 10), vec![10]);
        assert_eq!(pool.map_move(vec![7u32], 8, |_, x| x + 1), vec![8]);
    }

    #[test]
    fn panics_propagate() {
        let pool = WorkerPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(64, 8, |i| {
                assert!(i != 33, "boom");
                i
            })
        }));
        assert!(r.is_err());
        // Pool still usable after a panicked dispatch.
        assert_eq!(pool.map_indexed(4, 2, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn nested_dispatch_does_not_deadlock() {
        // One worker + nested calls: workers inline nested dispatches
        // and the caller helps execute queued jobs, so this cannot
        // exhaust pool capacity no matter which thread runs a chunk.
        let pool = Arc::new(WorkerPool::new(1));
        let inner = Arc::clone(&pool);
        let out = pool.map_indexed(4, 8, move |i| inner.map_indexed(3, 8, move |j| i * 10 + j));
        assert_eq!(out[3], vec![30, 31, 32]);
    }

    #[test]
    fn chunk_size_is_stable() {
        assert_eq!(chunk_size(0, 8), 1);
        assert_eq!(chunk_size(1, 8), 1);
        assert_eq!(chunk_size(1_000_000, 8), 31_250);
        assert_eq!(chunk_size(5, 0), 2);
    }

    #[test]
    fn lane_stats_account_for_every_job() {
        let pool = WorkerPool::new(2);
        let before: u64 = pool.stats().iter().map(|s| s.tasks).sum();
        pool.map_indexed(100, 8, |i| i * 3);
        let stats = pool.stats();
        assert_eq!(stats.len(), 3, "w0, w1, callers");
        assert_eq!(stats[0].lane, "w0");
        assert_eq!(stats[2].lane, "callers");
        let tasks: u64 = stats.iter().map(|s| s.tasks).sum();
        // Every chunk was grabbed by exactly one lane.
        let chunks = 100u64.div_ceil(chunk_size(100, 8) as u64);
        assert_eq!(tasks - before, chunks, "stats: {stats:?}");
        let pushed: u64 = stats.iter().map(|s| s.queue_pushed).sum();
        assert!(pushed >= chunks, "stats: {stats:?}");
        for s in &stats {
            assert!(s.busy_frac() >= 0.0 && s.busy_frac() <= 1.0);
        }
    }

    #[test]
    fn callers_lane_accounts_recv_wait_as_idle() {
        // A helping caller that parks in `recv()` (queues drained, a
        // worker still finishing) must charge that wait to the callers
        // lane's idle_ns — otherwise its busy_frac is pinned at 1.0 and
        // `trace_report --attribute` over-credits the main thread. The
        // exact interleaving is scheduler-dependent, so retry dispatches
        // until a recv-wait is observed; without the accounting this
        // never succeeds.
        let pool = WorkerPool::new(2);
        let callers = pool.stats().len() - 1;
        let mut observed = false;
        for _ in 0..50 {
            pool.map_indexed(8, 8, |i| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                i
            });
            let s = &pool.stats()[callers];
            assert_eq!(s.lane, "callers");
            if s.idle_ns > 0 {
                assert!(s.busy_frac() < 1.0, "stats: {s:?}");
                observed = true;
                break;
            }
        }
        assert!(observed, "caller never recorded a recv wait");
    }

    #[test]
    fn dispatch_latency_recorded_when_obs_enabled() {
        obs::set_enabled(true);
        let pool = WorkerPool::new(2);
        let before = obs::histogram("pool.dispatch_latency_ns").snapshot().count;
        pool.map_indexed(64, 8, |i| i + 1);
        let after = obs::histogram("pool.dispatch_latency_ns").snapshot().count;
        assert!(after > before, "dispatch latency not recorded");
        assert!(obs::histogram("pool.queue_depth").snapshot().count > 0);
    }
}
