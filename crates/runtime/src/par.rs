//! Scoped worker-pool parallelism for embarrassingly parallel ensembles.
//!
//! The paper's frequency-plan search (Eq. 10) and every evaluation figure
//! are Monte-Carlo ensembles: many independent trials whose results are
//! merged. [`par_map`] runs such work across a scoped worker pool built on
//! `std::thread::scope`; [`ensemble`] adds the seeding discipline — trial
//! `i` draws from RNG stream `i` forked off the ensemble seed — that makes
//! results **bit-identical at any worker-thread count** (verified by
//! `tests/determinism.rs`).
//!
//! Work distribution is dynamic (an atomic cursor), so uneven trial costs
//! load-balance; outputs are reassembled in input order regardless of
//! which worker produced them.

use crate::rng::StdRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count used by the convenience entry points: the
/// `IVN_THREADS` environment variable if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("IVN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Maps `f` over `items` on `threads` workers, preserving input order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or one item) the
/// map runs inline on the caller's thread — the output is identical either
/// way as long as `f` is a pure function of its arguments.
///
/// # Panics
/// Re-raises the first panic from any worker.
pub fn par_map_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let workers = threads.min(n);
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return local;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Reassemble in input order.
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, v) in buckets.drain(..).flatten() {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("every index produced exactly once"))
        .collect()
}

/// Runs `f` over `items` **in place** on `threads` workers.
///
/// The streaming sample path uses this to advance per-device block
/// emitters concurrently: each item owns independent mutable state
/// (oscillator phase, scratch buffer), the slice is split into
/// contiguous chunks — one worker per chunk — and every worker mutates
/// only its own chunk. Because `f(i, item)` touches nothing shared, the
/// result is identical at any thread count (streaming determinism is
/// pinned by `tests/streaming_equivalence.rs`).
///
/// With `threads <= 1` (or one item) the loop runs inline.
///
/// # Panics
/// Re-raises the first panic from any worker.
pub fn par_for_each_mut_threads<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(workers);
        for (ci, chunk_items) in items.chunks_mut(chunk).enumerate() {
            handles.push(scope.spawn(move || {
                for (j, item) in chunk_items.iter_mut().enumerate() {
                    f(ci * chunk + j, item);
                }
            }));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// [`par_map_threads`] with the default worker count ([`num_threads`]).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_threads(num_threads(), items, f)
}

/// Runs `trials` Monte-Carlo trials in parallel on `threads` workers.
///
/// Trial `i` receives `StdRng::seed_from_u64(seed).fork(i)` and its index,
/// so the result vector depends only on `(seed, trials)` — never on the
/// thread count or scheduling.
pub fn ensemble_threads<U, F>(threads: usize, trials: usize, seed: u64, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(&mut StdRng, usize) -> U + Sync,
{
    let root = StdRng::seed_from_u64(seed);
    let indices: Vec<usize> = (0..trials).collect();
    par_map_threads(threads, &indices, |_, &i| {
        let mut rng = root.fork(i as u64);
        f(&mut rng, i)
    })
}

/// [`ensemble_threads`] with the default worker count ([`num_threads`]).
pub fn ensemble<U, F>(trials: usize, seed: u64, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(&mut StdRng, usize) -> U + Sync,
{
    ensemble_threads(num_threads(), trials, seed, f)
}

/// [`ensemble_threads`] dispatched on the persistent global
/// [`WorkerPool`](crate::pool::WorkerPool) instead of freshly spawned
/// scoped threads.
///
/// Same seeding discipline — trial `i` draws from
/// `StdRng::seed_from_u64(seed).fork(i)` — so the results are
/// bit-identical to [`ensemble_threads`] at every `(threads, trials,
/// seed)` (pinned by `tests/pool_props.rs`). The trade for amortized
/// dispatch is the `'static` bound: `f` must own its captures, because
/// the pool's worker threads outlive the caller's stack frame and the
/// no-`unsafe` rule forbids lying about that.
pub fn ensemble_pool<U, F>(threads: usize, trials: usize, seed: u64, f: F) -> Vec<U>
where
    U: Send + 'static,
    F: Fn(&mut StdRng, usize) -> U + Send + Sync + 'static,
{
    let root = StdRng::seed_from_u64(seed);
    crate::pool::WorkerPool::global().map_indexed(trials, threads, move |i| {
        let mut rng = root.fork(i as u64);
        f(&mut rng, i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map_threads(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_threads(4, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn ensemble_identical_across_thread_counts() {
        let reference = ensemble_threads(1, 100, 42, |rng, i| (i, rng.random::<f64>()));
        for threads in [2, 3, 8] {
            let out = ensemble_threads(threads, 100, 42, |rng, i| (i, rng.random::<f64>()));
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn ensemble_trials_use_distinct_streams() {
        let draws = ensemble_threads(1, 50, 1, |rng, _| rng.random::<u64>());
        let mut unique = draws.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), draws.len());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_map_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            par_map_threads(2, &[0usize, 1, 2, 3], |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
