//! Flight recorder: live heartbeats over the [`obs`](crate::obs) layer.
//!
//! `obs` and `trace` only answer questions *after* a run finishes. The
//! flight recorder closes that gap for long campaigns and resident
//! services: a sampler thread wakes on a fixed interval, snapshots the
//! metric registry, diffs it against the previous snapshot with
//! [`Report::delta`], and appends one JSON object per heartbeat —
//! newline-delimited, flushed per line — to any `Write` sink. Each line
//! carries the sequence number, wall-clock offsets, nonzero counter
//! deltas, derived per-second rates, gauge values, and span (histogram)
//! activity for the interval, so an operator can `tail -f` a live run or
//! feed the stream to a dashboard without touching the hot path.
//!
//! Cost model: the recorded process pays only what it already pays for
//! `obs` — the sampler reads the same relaxed atomics `report()` reads,
//! on its own thread, a few times per second. With observability off
//! nothing records, every delta is empty, and output bytes of the
//! workload itself are unchanged (the recorder never writes to stdout).

use crate::json::Json;
use crate::obs::{self, Report};
use std::io::Write;
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One heartbeat: the interval delta plus the cumulative totals at the
/// moment the sample was taken.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Heartbeat index, starting at 0 (the baseline sample).
    pub seq: u64,
    /// Seconds since the recorder started.
    pub elapsed_s: f64,
    /// Seconds covered by this interval (since the previous heartbeat).
    pub dt_s: f64,
    /// Interval difference: counter/histogram deltas, current gauges.
    pub delta: Report,
    /// Cumulative registry snapshot at sample time.
    pub totals: Report,
}

impl Snapshot {
    /// Per-second rate of a counter over this interval (`None` when the
    /// counter is unknown; 0.0 for an idle interval).
    pub fn rate(&self, counter: &str) -> Option<f64> {
        let d = self.delta.counter(counter)?;
        Some(d as f64 / self.dt_s.max(1e-9))
    }

    /// The NDJSON line body (no trailing newline). Only metrics that
    /// moved during the interval appear; `rates` mirrors `counters`
    /// divided by the interval length.
    pub fn to_json(&self) -> Json {
        let dt = self.dt_s.max(1e-9);
        let active: Vec<(&String, u64)> = self
            .delta
            .counters
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(n, v)| (n, *v))
            .collect();
        let counters = Json::Obj(
            active
                .iter()
                .map(|(n, v)| ((*n).clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let rates = Json::Obj(
            active
                .iter()
                .map(|(n, v)| ((*n).clone(), Json::Num(*v as f64 / dt)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.delta
                .gauges
                .iter()
                .map(|(n, v)| (n.clone(), Json::Num(*v)))
                .collect(),
        );
        let spans = Json::Obj(
            self.delta
                .histograms
                .iter()
                .filter(|(_, s)| s.count > 0)
                .map(|(n, s)| {
                    (
                        n.clone(),
                        Json::obj([
                            ("count", (s.count as f64).into()),
                            ("mean_ns", s.mean().unwrap_or(0.0).into()),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("seq", (self.seq as f64).into()),
            ("elapsed_s", self.elapsed_s.into()),
            ("dt_s", self.dt_s.into()),
            ("counters", counters),
            ("rates", rates),
            ("gauges", gauges),
            ("spans", spans),
        ])
    }
}

/// Handle to a running flight recorder; [`stop`](FlightRecorder::stop)
/// it to emit the final heartbeat and flush the sink.
#[derive(Debug)]
pub struct FlightRecorder {
    stop_tx: Sender<()>,
    handle: Option<JoinHandle<std::io::Result<()>>>,
}

/// Starts a recorder emitting one NDJSON heartbeat per `interval` to
/// `sink`. Heartbeat 0 is an immediate all-zero-delta baseline; one
/// final heartbeat is emitted on [`stop`](FlightRecorder::stop), so even
/// an instant run yields at least two lines.
pub fn start<W: Write + Send + 'static>(interval: Duration, sink: W) -> FlightRecorder {
    start_with(interval, sink, |_| {})
}

/// [`start`], plus a callback invoked with every [`Snapshot`] after it
/// is written — the hook `reproduce campaign --live` uses for progress
/// lines without parsing its own output file.
pub fn start_with<W, F>(interval: Duration, mut sink: W, mut on_snapshot: F) -> FlightRecorder
where
    W: Write + Send + 'static,
    F: FnMut(&Snapshot) + Send + 'static,
{
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    // Seed `prev` with the current registry state so heartbeat 0 is a
    // clean baseline instead of a lifetime-sized "delta". Taken on the
    // caller's thread: anything counted after `start` returns lands in
    // an interval delta even when the sampler thread is scheduled late.
    let baseline = obs::report();
    let t0 = Instant::now();
    let handle = std::thread::Builder::new()
        .name("ivn-flight-recorder".into())
        .spawn(move || -> std::io::Result<()> {
            let mut prev = baseline;
            let mut prev_t = t0;
            let mut seq = 0u64;
            let mut emit = |sink: &mut W,
                            prev: &mut Report,
                            prev_t: &mut Instant,
                            seq: &mut u64|
             -> std::io::Result<()> {
                let totals = obs::report();
                let now = Instant::now();
                let snap = Snapshot {
                    seq: *seq,
                    elapsed_s: now.duration_since(t0).as_secs_f64(),
                    dt_s: now.duration_since(*prev_t).as_secs_f64(),
                    delta: totals.delta(prev),
                    totals: totals.clone(),
                };
                writeln!(sink, "{}", snap.to_json().dump())?;
                sink.flush()?;
                on_snapshot(&snap);
                *prev = totals;
                *prev_t = now;
                *seq += 1;
                Ok(())
            };
            emit(&mut sink, &mut prev, &mut prev_t, &mut seq)?;
            loop {
                match stop_rx.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => {
                        emit(&mut sink, &mut prev, &mut prev_t, &mut seq)?;
                    }
                    // Stop requested, or the handle was dropped.
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            emit(&mut sink, &mut prev, &mut prev_t, &mut seq)
        })
        .expect("spawn flight recorder thread");
    FlightRecorder {
        stop_tx,
        handle: Some(handle),
    }
}

impl FlightRecorder {
    /// Signals the sampler, waits for the final heartbeat, and returns
    /// any I/O error the sink produced along the way.
    pub fn stop(mut self) -> std::io::Result<()> {
        let _ = self.stop_tx.send(());
        match self.handle.take() {
            Some(h) => h.join().expect("flight recorder thread panicked"),
            None => Ok(()),
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        // Dropping without `stop()` still shuts the thread down (the
        // channel disconnects); the final heartbeat's write result is
        // deliberately discarded.
        let _ = self.stop_tx.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Validates a heartbeat stream: every line parses as JSON, `seq` runs
/// 0,1,2,… with no gaps, `elapsed_s` is non-decreasing, and each line
/// carries `counters`/`rates`/`gauges` objects. Returns the number of
/// heartbeats.
pub fn validate_ndjson(text: &str) -> Result<usize, String> {
    let mut n = 0usize;
    let mut last_elapsed = -1.0f64;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {}: {:?}", lineno + 1, e))?;
        let seq = v
            .get("seq")
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("line {}: missing integer 'seq'", lineno + 1))?;
        if seq != n {
            return Err(format!("line {}: seq {} (expected {})", lineno + 1, seq, n));
        }
        let elapsed = v
            .get("elapsed_s")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: missing 'elapsed_s'", lineno + 1))?;
        if elapsed < last_elapsed {
            return Err(format!("line {}: elapsed_s went backwards", lineno + 1));
        }
        last_elapsed = elapsed;
        for key in ["counters", "rates", "gauges"] {
            match v.get(key) {
                Some(Json::Obj(_)) => {}
                _ => return Err(format!("line {}: missing object '{key}'", lineno + 1)),
            }
        }
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A `Write` sink the test can inspect after the recorder stops.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn recorder_emits_validated_stream() {
        obs::set_enabled(true);
        let buf = SharedBuf::default();
        let rec = start(Duration::from_millis(5), buf.clone());
        obs::counter("test.telemetry.beats").add(11);
        // Wait until the sampler has actually ticked >= 3 times rather
        // than sleeping a fixed interval: on a loaded 1-core test
        // runner the recorder thread can be starved for tens of
        // milliseconds at a stretch.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let lines = buf
                .0
                .lock()
                .unwrap()
                .iter()
                .filter(|&&b| b == b'\n')
                .count();
            if lines >= 3 || std::time::Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        obs::counter("test.telemetry.beats").add(4);
        rec.stop().expect("recorder I/O");
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let n = validate_ndjson(&text).expect("well-formed NDJSON");
        assert!(n >= 3, "expected >= 3 heartbeats, got {n}:\n{text}");
        // The 15 increments must appear across the interval deltas.
        let total: f64 = text
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .filter_map(|v| {
                v.get("counters")
                    .and_then(|c| c.get("test.telemetry.beats"))
                    .and_then(Json::as_f64)
            })
            .sum();
        assert!(total >= 15.0, "deltas sum to {total}:\n{text}");
        assert!(text.contains("\"rates\""));
    }

    #[test]
    fn validator_rejects_broken_streams() {
        assert!(validate_ndjson("not json\n").is_err());
        let good = "{\"seq\":0,\"elapsed_s\":0.0,\"counters\":{},\"rates\":{},\"gauges\":{}}";
        assert_eq!(validate_ndjson(good).unwrap(), 1);
        let gap = format!("{good}\n{}", good.replace("\"seq\":0", "\"seq\":2"));
        assert!(validate_ndjson(&gap).is_err(), "seq gap must fail");
        let missing = "{\"seq\":0,\"elapsed_s\":0.0,\"counters\":{}}";
        assert!(validate_ndjson(missing).is_err(), "missing keys must fail");
    }
}
