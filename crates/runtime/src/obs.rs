//! Pipeline observability: spans, counters, gauges, histograms, reports.
//!
//! Answers "where do time and energy go inside a CIB query cycle" without
//! perturbing the simulation: every crate in the workspace records into a
//! process-global metric registry, and [`report`] snapshots the whole
//! registry into a [`Report`] that serializes through the in-tree
//! [`json`](crate::json) layer.
//!
//! Design constraints, in order:
//!
//! 1. **The uninstrumented hot path stays branch-predictable.** All
//!    recording is gated on one process-global [`AtomicBool`]; a disabled
//!    call site is a relaxed load plus an always-not-taken branch and
//!    touches no other shared state. The [`Obs`] handle hoists even that
//!    load out of hot loops.
//! 2. **Recording is lock-free and safe under the `par` worker pool.**
//!    Counters are sharded across cache-line-padded atomics indexed by a
//!    per-thread slot, so the workers of
//!    [`par::par_map`](crate::par::par_map) never contend on one line;
//!    histograms and gauges are plain atomics. Only *creating* a metric
//!    (first use of a name) takes a mutex, and the [`obs_count!`],
//!    [`span!`](crate::span) and [`obs_gauge!`] macros cache that lookup
//!    per call site.
//! 3. **Observability must never change results.** Metrics are
//!    write-only from the simulation's perspective: nothing in the
//!    workspace reads a metric to make a decision, and
//!    `tests/determinism.rs` pins experiment outputs byte-for-byte with
//!    observability on and off.
//!
//! Histograms are power-of-two bucketed (bucket `i ≥ 1` covers
//! `[2^(i-1), 2^i)`), which is exactly what merging requires: a merge is
//! a bucket-wise sum, associative and commutative (property-tested in
//! `crates/runtime/tests/obs_props.rs`). Span durations are recorded in
//! nanoseconds.

use crate::json::{field, FromJson, Json, JsonError, ToJson};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Global enable flag.
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on or off process-wide.
///
/// Disabled (the default), every instrumentation point reduces to one
/// relaxed atomic load and an untaken branch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether metric recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A copyable handle caching the enable flag.
///
/// Hot loops that would otherwise re-load the global flag per iteration
/// take an `Obs` once ([`Obs::current`]) and branch on a local bool.
/// Because the flag is sampled at construction, a handle created while
/// observability is off records nothing even if recording is enabled
/// mid-loop — which is the desired scoping for deterministic stages.
#[derive(Debug, Clone, Copy)]
pub struct Obs {
    on: bool,
}

impl Obs {
    /// A handle reflecting the global flag at this instant.
    #[inline]
    pub fn current() -> Obs {
        Obs { on: enabled() }
    }

    /// A handle that never records (for explicitly silent paths).
    #[inline]
    pub fn off() -> Obs {
        Obs { on: false }
    }

    /// Whether this handle records.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Adds `n` to `c` if this handle records.
    #[inline]
    pub fn add(&self, c: &Counter, n: u64) {
        if self.on {
            c.add_unchecked(n);
        }
    }

    /// Records `v` into `h` if this handle records.
    #[inline]
    pub fn record(&self, h: &Histogram, v: u64) {
        if self.on {
            h.record_unchecked(v);
        }
    }

    /// Sets `g` to `v` if this handle records.
    #[inline]
    pub fn set(&self, g: &Gauge, v: f64) {
        if self.on {
            g.set_unchecked(v);
        }
    }

    /// Starts a span timer into `h` if this handle records.
    #[inline]
    pub fn timer(&self, h: &'static Histogram) -> Timer {
        if self.on {
            Timer {
                inner: Some((Instant::now(), h)),
            }
        } else {
            Timer { inner: None }
        }
    }
}

// ---------------------------------------------------------------------
// Sharding.
// ---------------------------------------------------------------------

/// Counter shard count; a power of two comfortably above the worker-pool
/// widths the simulator uses.
const N_SHARDS: usize = 16;

/// One cache line per shard so parallel workers do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard(AtomicU64);

/// This thread's shard slot, assigned round-robin on first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
            slot.set(v);
        }
        v
    })
}

// ---------------------------------------------------------------------
// Metric types.
// ---------------------------------------------------------------------

/// A monotonically increasing event count, sharded per thread slot.
#[derive(Debug)]
pub struct Counter {
    name: String,
    shards: Vec<Shard>,
}

impl Counter {
    fn new(name: &str) -> Counter {
        Counter {
            name: name.to_string(),
            shards: (0..N_SHARDS).map(|_| Shard::default()).collect(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `n` when observability is enabled; otherwise a relaxed load
    /// and an untaken branch.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.add_unchecked(n);
        }
    }

    #[inline]
    fn add_unchecked(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The total across all shards.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-writer-wins scalar (stored as `f64` bits in an atomic).
#[derive(Debug)]
pub struct Gauge {
    name: String,
    bits: AtomicU64,
}

impl Gauge {
    fn new(name: &str) -> Gauge {
        Gauge {
            name: name.to_string(),
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stores `v` when observability is enabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.set_unchecked(v);
        }
    }

    #[inline]
    pub(crate) fn set_unchecked(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The stored value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets: index `0` holds zeros, index `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, up to `i = 64` for `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The smallest value a bucket admits (`0` for bucket 0).
pub fn bucket_low(i: usize) -> u64 {
    assert!(i < HIST_BUCKETS, "bucket out of range");
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A lock-free power-of-two-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(name: &str) -> Histogram {
        Histogram {
            name: name.to_string(),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records `v` when observability is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.record_unchecked(v);
        }
    }

    #[inline]
    fn record_unchecked(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// An immutable histogram snapshot: total count, total sum, and the
/// non-empty `(bucket index, count)` pairs in ascending bucket order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples (wrapping is the caller's concern).
    pub sum: u64,
    /// Sparse `(bucket index, count)` pairs, ascending, counts nonzero.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Builds a snapshot by bucketing `values` directly (test/merge use).
    pub fn from_values(values: &[u64]) -> HistogramSnapshot {
        let mut dense = [0u64; HIST_BUCKETS];
        let mut sum = 0u64;
        for &v in values {
            dense[bucket_of(v)] += 1;
            sum = sum.wrapping_add(v);
        }
        HistogramSnapshot {
            count: values.len() as u64,
            sum,
            buckets: dense
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (n > 0).then_some((i, n)))
                .collect(),
        }
    }

    /// Bucket-wise sum of two snapshots — associative and commutative.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut dense = [0u64; HIST_BUCKETS];
        for &(i, n) in self.buckets.iter().chain(&other.buckets) {
            dense[i] += n;
        }
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            buckets: dense
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (n > 0).then_some((i, n)))
                .collect(),
        }
    }

    /// Bucket-wise difference `self − prev` for monotonically growing
    /// recordings (a later snapshot of the same histogram). Counts
    /// saturate at zero so a stale `prev` can never produce negative
    /// buckets; `sum` subtracts wrapping, the exact inverse of
    /// [`merge`](Self::merge)'s wrapping add.
    pub fn diff(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        let mut dense = [0u64; HIST_BUCKETS];
        for &(i, n) in &self.buckets {
            dense[i] = n;
        }
        for &(i, n) in &prev.buckets {
            dense[i] = dense[i].saturating_sub(n);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(prev.count),
            sum: self.sum.wrapping_sub(prev.sum),
            buckets: dense
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (n > 0).then_some((i, n)))
                .collect(),
        }
    }

    /// Mean of the recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Lower bound of the highest non-empty bucket (`None` when empty).
    pub fn max_bucket_low(&self) -> Option<u64> {
        self.buckets.last().map(|&(i, _)| bucket_low(i))
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", (self.count as f64).into()),
            ("sum", (self.sum as f64).into()),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, n)| Json::Arr(vec![Json::Num(i as f64), Json::Num(n as f64)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for HistogramSnapshot {
    fn from_json(value: &Json) -> Result<HistogramSnapshot, JsonError> {
        let count: usize = field(value, "count")?;
        let sum: usize = field(value, "sum")?;
        let pairs = value
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError {
                offset: 0,
                reason: "missing 'buckets' array".into(),
            })?;
        let mut buckets = Vec::with_capacity(pairs.len());
        for p in pairs {
            let pair = p.as_array().ok_or_else(|| JsonError {
                offset: 0,
                reason: "bucket entry must be a pair".into(),
            })?;
            match pair {
                [i, n] => {
                    let i = i.as_usize().ok_or_else(|| JsonError {
                        offset: 0,
                        reason: "bucket index must be an integer".into(),
                    })?;
                    let n = n.as_usize().ok_or_else(|| JsonError {
                        offset: 0,
                        reason: "bucket count must be an integer".into(),
                    })?;
                    buckets.push((i, n as u64));
                }
                _ => {
                    return Err(JsonError {
                        offset: 0,
                        reason: "bucket entry must be a pair".into(),
                    })
                }
            }
        }
        Ok(HistogramSnapshot {
            count: count as u64,
            sum: sum as u64,
            buckets,
        })
    }
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    collectors: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        collectors: Mutex::new(Vec::new()),
    })
}

/// Registers a hook that [`report`] runs before snapshotting, so
/// subsystems that keep their own always-on internals (the worker pool's
/// per-lane atomics) can publish them as gauges just in time. Hooks must
/// not call [`report`] themselves.
pub fn register_collector(f: impl Fn() + Send + Sync + 'static) {
    registry()
        .collectors
        .lock()
        .expect("metric registry poisoned")
        .push(Box::new(f));
}

fn find_or_create<T>(
    list: &Mutex<Vec<&'static T>>,
    name: &str,
    name_of: impl Fn(&T) -> &str,
    create: impl FnOnce(&str) -> T,
) -> &'static T {
    let mut guard = list.lock().expect("metric registry poisoned");
    if let Some(existing) = guard.iter().find(|m| name_of(m) == name) {
        return existing;
    }
    // Metrics live for the whole process; leaking is the intended
    // lifetime and keeps handles `&'static` without unsafe code.
    let created: &'static T = Box::leak(Box::new(create(name)));
    guard.push(created);
    created
}

/// The counter registered under `name`, created on first use.
///
/// Call sites should cache the returned handle (the [`obs_count!`] macro
/// does) — lookup takes the registry mutex; recording never does.
pub fn counter(name: &str) -> &'static Counter {
    find_or_create(&registry().counters, name, Counter::name, Counter::new)
}

/// The gauge registered under `name`, created on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    find_or_create(&registry().gauges, name, Gauge::name, Gauge::new)
}

/// The histogram registered under `name`, created on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    find_or_create(
        &registry().histograms,
        name,
        Histogram::name,
        Histogram::new,
    )
}

/// Zeroes every registered metric (names stay registered).
///
/// Intended for scoping a [`report`] to one run; concurrent recorders
/// may land increments on either side of the reset.
pub fn reset() {
    let r = registry();
    for c in r.counters.lock().expect("metric registry poisoned").iter() {
        c.reset();
    }
    for g in r.gauges.lock().expect("metric registry poisoned").iter() {
        g.reset();
    }
    for h in r
        .histograms
        .lock()
        .expect("metric registry poisoned")
        .iter()
    {
        h.reset();
    }
}

// ---------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------

/// RAII span timer: records elapsed nanoseconds into a histogram on drop.
///
/// Construct through [`span!`](crate::span) or [`Obs::timer`]; a timer
/// started while observability is off holds nothing and records nothing.
#[must_use = "a span records when the timer drops; bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct Timer {
    inner: Option<(Instant, &'static Histogram)>,
}

impl Timer {
    /// Starts a timer into `h` (no-op when observability is off).
    #[inline]
    pub fn start(h: &'static Histogram) -> Timer {
        Obs::current().timer(h)
    }

    /// A timer that records nothing.
    #[inline]
    pub fn noop() -> Timer {
        Timer { inner: None }
    }

    /// Stops the timer, recording now rather than at scope end.
    pub fn stop(self) {}
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.inner.take() {
            hist.record_unchecked(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// Combined guard from [`span!`](crate::span): an `obs` histogram
/// [`Timer`] plus a [`trace`](crate::trace) timeline span over the same
/// scope. Either half is a no-op when its layer is disabled.
///
/// Field order matters: the timer drops (and records its duration) before
/// the trace end event is emitted, so histogram numbers never include the
/// cost of the timeline write.
#[must_use = "a span records when it drops; bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct Span {
    _timer: Timer,
    _trace: crate::trace::TraceSpan,
}

impl Span {
    /// Pairs an obs timer with a timeline span.
    #[inline]
    pub fn new(timer: Timer, trace: crate::trace::TraceSpan) -> Span {
        Span {
            _timer: timer,
            _trace: trace,
        }
    }
}

/// Times the enclosing scope into the named histogram, and emits matching
/// begin/end events on the current [`trace`](crate::trace) track.
///
/// ```
/// # use ivn_runtime::span;
/// let _span = span!("rfid.encode_ns");
/// // ... work ...
/// ```
///
/// The histogram and the interned trace token are each cached per call
/// site; with both layers off the expansion is two relaxed loads and two
/// untaken branches.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        let timer = if $crate::obs::enabled() {
            static SPAN: std::sync::OnceLock<&'static $crate::obs::Histogram> =
                std::sync::OnceLock::new();
            $crate::obs::Timer::start(SPAN.get_or_init(|| $crate::obs::histogram($name)))
        } else {
            $crate::obs::Timer::noop()
        };
        let trace = if $crate::trace::enabled() {
            static TOK: std::sync::OnceLock<$crate::trace::Token> = std::sync::OnceLock::new();
            $crate::trace::TraceSpan::enter(*TOK.get_or_init(|| $crate::trace::intern($name)))
        } else {
            $crate::trace::TraceSpan::noop()
        };
        $crate::obs::Span::new(timer, trace)
    }};
}

/// Adds to the named counter (lookup cached per call site).
#[macro_export]
macro_rules! obs_count {
    ($name:expr, $n:expr) => {
        if $crate::obs::enabled() {
            static COUNTER: std::sync::OnceLock<&'static $crate::obs::Counter> =
                std::sync::OnceLock::new();
            COUNTER
                .get_or_init(|| $crate::obs::counter($name))
                .add($n as u64);
        }
    };
}

/// Sets the named gauge (lookup cached per call site).
#[macro_export]
macro_rules! obs_gauge {
    ($name:expr, $v:expr) => {
        if $crate::obs::enabled() {
            static GAUGE: std::sync::OnceLock<&'static $crate::obs::Gauge> =
                std::sync::OnceLock::new();
            GAUGE
                .get_or_init(|| $crate::obs::gauge($name))
                .set($v as f64);
        }
    };
}

// ---------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------

/// A point-in-time snapshot of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// `(name, total)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Snapshots the whole registry (running registered collectors first).
pub fn report() -> Report {
    let r = registry();
    for c in r
        .collectors
        .lock()
        .expect("metric registry poisoned")
        .iter()
    {
        c();
    }
    let mut counters: Vec<(String, u64)> = r
        .counters
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|c| (c.name().to_string(), c.total()))
        .collect();
    counters.sort();
    let mut gauges: Vec<(String, f64)> = r
        .gauges
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|g| (g.name().to_string(), g.get()))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let mut histograms: Vec<(String, HistogramSnapshot)> = r
        .histograms
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|h| (h.name().to_string(), h.snapshot()))
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    Report {
        counters,
        gauges,
        histograms,
    }
}

impl Report {
    /// Total of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Snapshot of the named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Interval difference `self − prev`, for two snapshots of the same
    /// process taken in that order: counters subtract (saturating, so a
    /// counter absent from `self` or reset in between never underflows),
    /// histograms subtract bucket-wise, and gauges keep `self`'s values
    /// (a gauge is a level, not an accumulation). Names present only in
    /// `self` pass through whole; names present only in `prev` are
    /// dropped — the registry never unregisters, so that only happens
    /// with a foreign `prev`.
    ///
    /// For monotone recordings, `prev.merge(&cur.delta(&prev)) == cur`.
    pub fn delta(&self, prev: &Report) -> Report {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(prev.counter(n).unwrap_or(0))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, s)| {
                let d = match prev.histogram(n) {
                    Some(p) => s.diff(p),
                    None => s.clone(),
                };
                (n.clone(), d)
            })
            .collect();
        Report {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Element-wise union: counters add, histograms merge bucket-wise,
    /// and for gauges `other` wins on a shared name (it is the later
    /// snapshot). Output stays sorted by name.
    pub fn merge(&self, other: &Report) -> Report {
        fn unioned<T: Clone>(
            a: &[(String, T)],
            b: &[(String, T)],
            combine: impl Fn(&T, &T) -> T,
        ) -> Vec<(String, T)> {
            let mut out: Vec<(String, T)> = a.to_vec();
            for (n, v) in b {
                match out.iter_mut().find(|(name, _)| name == n) {
                    Some((_, existing)) => *existing = combine(existing, v),
                    None => out.push((n.clone(), v.clone())),
                }
            }
            out.sort_by(|x, y| x.0.cmp(&y.0));
            out
        }
        Report {
            counters: unioned(&self.counters, &other.counters, |a, b| a.wrapping_add(*b)),
            gauges: unioned(&self.gauges, &other.gauges, |_, b| *b),
            histograms: unioned(&self.histograms, &other.histograms, |a, b| a.merge(b)),
        }
    }

    /// A copy without never-hit metrics: counters at zero and histograms
    /// with no samples. Gauges survive — `0.0` is a legitimate last
    /// written value, not evidence of silence. Pruned entries are merge
    /// identities, so `a.pruned().merge(&b) == a.merge(&b).pruned()`
    /// whenever `b` covers `a`'s names: dropping them loses nothing.
    pub fn pruned(&self) -> Report {
        Report {
            counters: self
                .counters
                .iter()
                .filter(|(_, v)| *v > 0)
                .cloned()
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .filter(|(_, s)| s.count > 0)
                .cloned()
                .collect(),
        }
    }

    /// Human-readable multi-line rendering (stable ordering). Metrics
    /// that never fired — zero counters, empty histograms — are omitted.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let r = self.pruned();
        for (name, v) in &r.counters {
            let _ = writeln!(out, "counter    {name:<40} {v}");
        }
        for (name, v) in &r.gauges {
            let _ = writeln!(out, "gauge      {name:<40} {v}");
        }
        for (name, s) in &r.histograms {
            let mean = s.mean().unwrap_or(0.0);
            let _ = writeln!(
                out,
                "histogram  {name:<40} n={} mean={mean:.1} max_bucket_low={}",
                s.count,
                s.max_bucket_low().unwrap_or(0),
            );
        }
        out
    }
}

impl ToJson for Report {
    /// Serializes the [`pruned`](Report::pruned) view: zero counters and
    /// empty histograms are merge identities and carry no information.
    fn to_json(&self) -> Json {
        let r = self.pruned();
        Json::obj([
            (
                "counters",
                Json::Obj(
                    r.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    r.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    r.histograms
                        .iter()
                        .map(|(n, s)| (n.clone(), s.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Report {
    fn from_json(value: &Json) -> Result<Report, JsonError> {
        fn obj<'a>(value: &'a Json, key: &str) -> Result<&'a [(String, Json)], JsonError> {
            match value.get(key) {
                Some(Json::Obj(pairs)) => Ok(pairs),
                _ => Err(JsonError {
                    offset: 0,
                    reason: format!("missing object field '{key}'"),
                }),
            }
        }
        let counters = obj(value, "counters")?
            .iter()
            .map(|(n, v)| {
                v.as_usize()
                    .map(|x| (n.clone(), x as u64))
                    .ok_or_else(|| JsonError {
                        offset: 0,
                        reason: format!("counter '{n}' must be a non-negative integer"),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let gauges = obj(value, "gauges")?
            .iter()
            .map(|(n, v)| {
                v.as_f64().map(|x| (n.clone(), x)).ok_or_else(|| JsonError {
                    offset: 0,
                    reason: format!("gauge '{n}' must be a number"),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let histograms = obj(value, "histograms")?
            .iter()
            .map(|(n, v)| HistogramSnapshot::from_json(v).map(|s| (n.clone(), s)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Report {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metric names in this module are unique per test so the process-wide
    // registry keeps tests independent even when they run concurrently.

    #[test]
    fn disabled_records_nothing() {
        let c = counter("test.obs.disabled_counter");
        set_enabled(false);
        c.add(5);
        assert_eq!(c.total(), 0);
        let h = histogram("test.obs.disabled_hist");
        h.record(10);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn counter_accumulates_when_enabled() {
        let c = counter("test.obs.counter_accumulates");
        let before = c.total();
        set_enabled(true);
        c.add(3);
        c.add(4);
        assert_eq!(c.total() - before, 7);
    }

    #[test]
    fn counter_handles_are_shared_by_name() {
        let a = counter("test.obs.shared_name");
        let b = counter("test.obs.shared_name");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_low(0), 0);
        assert_eq!(bucket_low(1), 1);
        assert_eq!(bucket_low(4), 8);
        for v in [0u64, 1, 7, 1 << 20, u64::MAX] {
            let i = bucket_of(v);
            assert!(bucket_low(i) <= v);
            if i + 1 < HIST_BUCKETS {
                assert!(v < bucket_low(i + 1));
            }
        }
    }

    #[test]
    fn histogram_snapshot_and_stats() {
        set_enabled(true);
        let h = histogram("test.obs.hist_stats");
        for v in [0u64, 1, 1, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1007);
        assert_eq!(s.mean(), Some(1007.0 / 5.0));
        assert_eq!(s.max_bucket_low(), Some(512));
        assert_eq!(
            s.buckets,
            vec![(0, 1), (1, 2), (3, 1), (10, 1)],
            "buckets {:?}",
            s.buckets
        );
    }

    #[test]
    fn snapshot_merge_matches_concatenation() {
        let a = HistogramSnapshot::from_values(&[1, 2, 3, 900]);
        let b = HistogramSnapshot::from_values(&[0, 5, 70]);
        let both = HistogramSnapshot::from_values(&[1, 2, 3, 900, 0, 5, 70]);
        assert_eq!(a.merge(&b), both);
        assert_eq!(b.merge(&a), both);
    }

    #[test]
    fn gauge_last_writer_wins() {
        set_enabled(true);
        let g = gauge("test.obs.gauge");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn timer_records_into_histogram() {
        set_enabled(true);
        let h = histogram("test.obs.timer_hist");
        let before = h.snapshot().count;
        {
            let _t = Timer::start(h);
            std::hint::black_box(17u64 * 13);
        }
        assert_eq!(h.snapshot().count, before + 1);
    }

    #[test]
    fn macros_compile_and_record() {
        set_enabled(true);
        obs_count!("test.obs.macro_counter", 2);
        obs_count!("test.obs.macro_counter", 3);
        obs_gauge!("test.obs.macro_gauge", 4.5);
        {
            let _span = span!("test.obs.macro_span");
        }
        let r = report();
        assert_eq!(r.counter("test.obs.macro_counter"), Some(5));
        assert_eq!(r.gauge("test.obs.macro_gauge"), Some(4.5));
        assert!(r.histogram("test.obs.macro_span").unwrap().count >= 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        set_enabled(true);
        counter("test.obs.rt_counter").add(42);
        gauge("test.obs.rt_gauge").set(0.125);
        histogram("test.obs.rt_hist").record(999);
        let r = report();
        let text = r.to_json().dump();
        let back = Report::from_json(&Json::parse(&text).expect("parse")).expect("from_json");
        // JSON carries the pruned view; merge semantics are unchanged
        // because the dropped entries are merge identities.
        assert_eq!(back, r.pruned());
        assert_eq!(back.counter("test.obs.rt_counter"), Some(42));
    }

    #[test]
    fn json_omits_zero_count_metrics() {
        set_enabled(true);
        counter("test.obs.zero_counter"); // registered, never incremented
        histogram("test.obs.zero_hist"); // registered, never recorded
        counter("test.obs.nonzero_counter").add(1);
        let text = report().to_json().dump();
        assert!(!text.contains("test.obs.zero_counter"));
        assert!(!text.contains("test.obs.zero_hist"));
        assert!(text.contains("test.obs.nonzero_counter"));
        let rendered = report().render();
        assert!(!rendered.contains("test.obs.zero_counter"));
        assert!(!rendered.contains("test.obs.zero_hist"));
    }

    #[test]
    fn pruning_preserves_merge_semantics() {
        let a = Report {
            counters: vec![("c.live".into(), 3), ("c.zero".into(), 0)],
            gauges: vec![("g".into(), 1.5)],
            histograms: vec![
                ("h.empty".into(), HistogramSnapshot::default()),
                ("h.live".into(), HistogramSnapshot::from_values(&[7, 9])),
            ],
        };
        let b = Report {
            counters: vec![("c.live".into(), 2), ("c.zero".into(), 5)],
            gauges: vec![("g".into(), 2.5)],
            histograms: vec![
                ("h.empty".into(), HistogramSnapshot::from_values(&[1])),
                ("h.live".into(), HistogramSnapshot::from_values(&[4])),
            ],
        };
        // Zero entries are merge identities: pruning before the merge
        // changes nothing as long as the other side names them.
        assert_eq!(a.pruned().merge(&b), a.merge(&b).pruned());
        assert_eq!(a.merge(&b).counter("c.live"), Some(5));
        assert_eq!(a.merge(&b).gauge("g"), Some(2.5));
    }

    #[test]
    fn delta_then_merge_recovers_later_snapshot() {
        set_enabled(true);
        counter("test.obs.delta_counter").add(10);
        histogram("test.obs.delta_hist").record(100);
        let prev = report();
        counter("test.obs.delta_counter").add(7);
        histogram("test.obs.delta_hist").record(2000);
        gauge("test.obs.delta_gauge").set(3.25);
        let cur = report();
        let d = cur.delta(&prev);
        assert_eq!(d.counter("test.obs.delta_counter"), Some(7));
        assert_eq!(d.histogram("test.obs.delta_hist").unwrap().count, 1);
        assert_eq!(d.gauge("test.obs.delta_gauge"), Some(3.25));
        assert_eq!(prev.merge(&d), cur);
        // Self-delta is all-zero; reversed order saturates instead of wrapping.
        for (n, v) in &cur.delta(&cur).counters {
            assert_eq!(*v, 0, "counter {n} nonzero in self-delta");
        }
        assert_eq!(prev.delta(&cur).counter("test.obs.delta_counter"), Some(0));
    }

    #[test]
    fn render_lists_every_metric_kind() {
        set_enabled(true);
        counter("test.obs.render_counter").add(1);
        gauge("test.obs.render_gauge").set(2.0);
        histogram("test.obs.render_hist").record(3);
        let text = report().render();
        assert!(text.contains("test.obs.render_counter"));
        assert!(text.contains("test.obs.render_gauge"));
        assert!(text.contains("test.obs.render_hist"));
    }

    #[test]
    fn obs_handle_gates_recording() {
        set_enabled(true);
        let c = counter("test.obs.handle_counter");
        let before = c.total();
        Obs::off().add(c, 100);
        assert_eq!(c.total(), before);
        Obs::current().add(c, 2);
        assert_eq!(c.total(), before + 2);
    }
}
