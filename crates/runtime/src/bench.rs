//! A tiny wall-clock micro-benchmark harness.
//!
//! Replaces `criterion` for the workspace's `cargo bench` targets
//! (declared with `harness = false`): each target's `main` builds a
//! [`Bench`], registers closures, and the harness calibrates an iteration
//! count per sample, takes several samples, and reports min / median /
//! mean nanoseconds per iteration. [`Bench::to_json`] exposes the results
//! through the [`json`](crate::json) layer for machine-readable output
//! (`BENCH_runtime.json`).

use crate::json::Json;
use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier used around benchmark inputs and
/// results.
pub use std::hint::black_box;

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timing sample (after calibration).
    pub iters_per_sample: u64,
    /// Number of timing samples taken.
    pub samples: usize,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample, nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean over samples, nanoseconds per iteration.
    pub mean_ns: f64,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.as_str().into()),
            ("iters_per_sample", (self.iters_per_sample as f64).into()),
            ("samples", self.samples.into()),
            ("min_ns", self.min_ns.into()),
            ("median_ns", self.median_ns.into()),
            ("mean_ns", self.mean_ns.into()),
        ])
    }
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} {:>12} /iter (min {}, {} samples x {} iters)",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.min_ns),
            self.samples,
            self.iters_per_sample,
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A benchmark runner accumulating [`BenchResult`]s.
pub struct Bench {
    target_sample: Duration,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

impl Bench {
    /// A runner with the default budget: 9 samples of ≥ 10 ms each.
    ///
    /// Set `IVN_BENCH_FAST=1` to shrink the budget (3 samples of ≥ 1 ms)
    /// for smoke runs.
    pub fn new() -> Self {
        let fast = std::env::var("IVN_BENCH_FAST").is_ok_and(|v| v == "1");
        if fast {
            Bench::with_budget(Duration::from_millis(1), 3)
        } else {
            Bench::with_budget(Duration::from_millis(10), 9)
        }
    }

    /// A runner taking `samples` samples of at least `target_sample` each.
    pub fn with_budget(target_sample: Duration, samples: usize) -> Self {
        assert!(samples > 0);
        Bench {
            target_sample,
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f`, prints one summary line, and records the result.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) -> &BenchResult {
        // Calibrate: double the iteration count until one sample meets the
        // time budget.
        let mut iters: u64 = 1;
        loop {
            let t = Self::sample(&mut f, iters);
            if t >= self.target_sample || iters >= 1 << 30 {
                break;
            }
            // Jump close to the target, at least doubling.
            let scale = self.target_sample.as_secs_f64() / t.as_secs_f64().max(1e-9);
            iters = (iters * 2).max((iters as f64 * scale.min(100.0)) as u64);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| Self::sample(&mut f, iters).as_secs_f64() * 1e9 / iters as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let result = BenchResult {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: self.samples,
            min_ns: per_iter[0],
            median_ns: per_iter[self.samples / 2],
            mean_ns: per_iter.iter().sum::<f64>() / self.samples as f64,
        };
        println!("{result}");
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    fn sample<T, F: FnMut() -> T>(f: &mut F, iters: u64) -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        start.elapsed()
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The recorded results as a JSON array.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.results.iter().map(BenchResult::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_reports() {
        let mut b = Bench::with_budget(Duration::from_micros(50), 3);
        let r = b.bench("spin", || (0..100u64).sum::<u64>()).clone();
        assert_eq!(r.name, "spin");
        assert!(r.min_ns > 0.0 && r.min_ns <= r.median_ns);
        assert_eq!(b.results().len(), 1);
        let json = b.to_json().dump();
        assert!(json.contains("\"name\":\"spin\""), "{json}");
    }

    #[test]
    fn formatting_scales_units() {
        assert!(fmt_ns(12.3).contains("ns"));
        assert!(fmt_ns(12_300.0).contains("µs"));
        assert!(fmt_ns(12_300_000.0).contains("ms"));
        assert!(fmt_ns(2.3e9).contains(" s"));
    }
}
