//! Timeline tracing: a per-thread, lock-free ring-buffer event recorder
//! with a Chrome Trace Event Format exporter.
//!
//! Where [`obs`](crate::obs) aggregates (counters, histograms), `trace`
//! records *when*: begin/end span events, instant markers and counter-track
//! samples, each stamped with a monotonic nanosecond timestamp and the
//! recording thread's track id. The contract matches `obs`:
//!
//! * **off by default, free when off** — every emit site is one relaxed
//!   load and an untaken branch;
//! * **zero allocation on the hot path** — events go into a fixed-capacity
//!   per-thread ring of atomic slots (overwrite-oldest), names are interned
//!   `&'static str`s cached per call site;
//! * **write-only** — recording can never perturb simulation results
//!   (`tests/determinism.rs` pins this).
//!
//! A [`snapshot`] drains the rings into a [`Trace`], which exports to
//! Chrome Trace Event Format JSON ([`Trace::to_chrome_json`]) loadable in
//! `chrome://tracing` or Perfetto, via the in-tree [`json`](crate::json)
//! module. [`Trace::from_chrome_json`] parses the same format back, so the
//! `trace_report` analyzer round-trips without external crates.
//!
//! Worker threads from [`par`](crate::par) are ephemeral (fresh threads per
//! `thread::scope`), so rings live in a global pool: a thread leases a
//! track for its lifetime and returns it to a free list on exit. Track ids
//! therefore map to *worker slots*, not OS threads — exactly the lanes you
//! want to see in a timeline view.

use crate::json::{Json, JsonError};
use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Global enable flag and epoch.
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns timeline recording on or off globally.
///
/// The first enable pins the trace epoch (timestamp zero). Flip only at
/// quiescent points (no concurrent recording) for clean traces; flipping
/// mid-span merely drops that span's end event at export.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Release);
}

/// Whether timeline recording is on — one relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

// ---------------------------------------------------------------------
// Name interning.
// ---------------------------------------------------------------------

/// An interned event-name id, cheap to copy into ring slots.
///
/// Obtain one from [`intern`]; macros cache it per call site in a
/// `OnceLock` so steady-state emission never touches the intern table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token(u32);

fn names() -> MutexGuard<'static, Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Interns `name`, returning its [`Token`]. Idempotent; takes a global
/// lock, so cache the result (the `trace_*!` macros do).
pub fn intern(name: &'static str) -> Token {
    let mut table = names();
    if let Some(i) = table.iter().position(|n| *n == name) {
        return Token(i as u32);
    }
    table.push(name);
    Token((table.len() - 1) as u32)
}

fn name_of(id: u32) -> &'static str {
    names().get(id as usize).copied().unwrap_or("<unknown>")
}

// ---------------------------------------------------------------------
// Tracks: per-thread rings of seqlock-stamped atomic slots.
// ---------------------------------------------------------------------

const KIND_BEGIN: u32 = 0;
const KIND_END: u32 = 1;
const KIND_INSTANT: u32 = 2;
const KIND_COUNTER: u32 = 3;

const DEFAULT_TRACK_CAPACITY: usize = 8192;

/// Events retained per track (newest win once a ring wraps). Fixed for the
/// process; override with `IVN_TRACE_CAP` before the first event.
pub fn track_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("IVN_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_TRACK_CAPACITY)
    })
}

/// One ring slot. `seq` is a seqlock stamp: 0 while a write is in flight,
/// `event_index + 1` once the fields are published. Everything is a plain
/// atomic — the recorder needs no `unsafe` (the workspace denies it).
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    name: AtomicU32,
    kind: AtomicU32,
    ts_ns: AtomicU64,
    bits: AtomicU64,
}

struct Track {
    id: u32,
    /// Monotonic count of events ever emitted on this track; the live
    /// window is the last `min(head, capacity)` of them.
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl Track {
    #[inline]
    fn emit(&self, kind: u32, tok: Token, bits: u64) {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        slot.seq.store(0, Ordering::Release);
        slot.name.store(tok.0, Ordering::Relaxed);
        slot.kind.store(kind, Ordering::Relaxed);
        slot.ts_ns.store(now_ns(), Ordering::Relaxed);
        slot.bits.store(bits, Ordering::Relaxed);
        slot.seq.store(i + 1, Ordering::Release);
    }
}

struct TrackRegistry {
    all: Mutex<Vec<&'static Track>>,
    free: Mutex<Vec<&'static Track>>,
}

fn registry() -> &'static TrackRegistry {
    static REGISTRY: OnceLock<TrackRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| TrackRegistry {
        all: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
    })
}

/// Returns a leased track to the free pool when its thread exits, so the
/// ephemeral `par` worker threads reuse a bounded set of rings.
struct TrackLease(&'static Track);

impl Drop for TrackLease {
    fn drop(&mut self) {
        let reg = registry();
        reg.free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(self.0);
    }
}

thread_local! {
    static MY_TRACK: OnceCell<TrackLease> = const { OnceCell::new() };
}

fn acquire_track() -> &'static Track {
    let reg = registry();
    if let Some(t) = reg.free.lock().unwrap_or_else(|e| e.into_inner()).pop() {
        return t;
    }
    let mut all = reg.all.lock().unwrap_or_else(|e| e.into_inner());
    let track: &'static Track = Box::leak(Box::new(Track {
        id: all.len() as u32,
        head: AtomicU64::new(0),
        slots: (0..track_capacity()).map(|_| Slot::default()).collect(),
    }));
    all.push(track);
    track
}

#[inline]
fn emit(kind: u32, tok: Token, bits: u64) {
    MY_TRACK.with(|cell| {
        cell.get_or_init(|| TrackLease(acquire_track()))
            .0
            .emit(kind, tok, bits)
    });
}

// ---------------------------------------------------------------------
// Emission API.
// ---------------------------------------------------------------------

/// Records a span-begin event (no-op when tracing is off).
#[inline]
pub fn begin(tok: Token) {
    if enabled() {
        emit(KIND_BEGIN, tok, 0);
    }
}

/// Records a span-end event (no-op when tracing is off).
#[inline]
pub fn end(tok: Token) {
    if enabled() {
        emit(KIND_END, tok, 0);
    }
}

/// Records an instant marker (no-op when tracing is off).
#[inline]
pub fn instant(tok: Token) {
    if enabled() {
        emit(KIND_INSTANT, tok, 0);
    }
}

/// Records a counter-track sample — one point of a named time series,
/// e.g. a physics probe (no-op when tracing is off).
#[inline]
pub fn counter(tok: Token, value: f64) {
    if enabled() {
        emit(KIND_COUNTER, tok, value.to_bits());
    }
}

/// RAII guard emitting a begin event now and the matching end on drop.
///
/// Built by [`trace_span!`](crate::trace_span) (and by
/// [`span!`](crate::span), which pairs it with an `obs` histogram timer).
#[must_use = "a trace span emits its end event on drop; bind it with `let _t = ...`"]
#[derive(Debug)]
pub struct TraceSpan {
    tok: Option<Token>,
}

impl TraceSpan {
    /// Emits the begin event and arms the end event (no-op when off).
    #[inline]
    pub fn enter(tok: Token) -> TraceSpan {
        if enabled() {
            emit(KIND_BEGIN, tok, 0);
            TraceSpan { tok: Some(tok) }
        } else {
            TraceSpan::noop()
        }
    }

    /// A guard that emits nothing.
    #[inline]
    pub fn noop() -> TraceSpan {
        TraceSpan { tok: None }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(tok) = self.tok.take() {
            // Unconditional: if tracing was disabled mid-span the orphan
            // end is dropped by the balancing pass at export.
            emit(KIND_END, tok, 0);
        }
    }
}

/// Opens a timeline-only span over the enclosing scope (token cached per
/// call site). Use [`span!`](crate::span) instead where an `obs` duration
/// histogram is also wanted.
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {{
        if $crate::trace::enabled() {
            static TOK: std::sync::OnceLock<$crate::trace::Token> = std::sync::OnceLock::new();
            $crate::trace::TraceSpan::enter(*TOK.get_or_init(|| $crate::trace::intern($name)))
        } else {
            $crate::trace::TraceSpan::noop()
        }
    }};
}

/// Samples a named counter track (token cached per call site). One relaxed
/// load and an untaken branch when tracing is off — and `$value` is not
/// evaluated, so probe math costs nothing while disabled.
#[macro_export]
macro_rules! trace_counter {
    ($name:expr, $value:expr) => {
        if $crate::trace::enabled() {
            static TOK: std::sync::OnceLock<$crate::trace::Token> = std::sync::OnceLock::new();
            $crate::trace::counter(*TOK.get_or_init(|| $crate::trace::intern($name)), $value);
        }
    };
}

/// Drops a named instant marker on the current track (token cached per
/// call site).
#[macro_export]
macro_rules! trace_instant {
    ($name:expr) => {
        if $crate::trace::enabled() {
            static TOK: std::sync::OnceLock<$crate::trace::Token> = std::sync::OnceLock::new();
            $crate::trace::instant(*TOK.get_or_init(|| $crate::trace::intern($name)));
        }
    };
}

// ---------------------------------------------------------------------
// Snapshot.
// ---------------------------------------------------------------------

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened (`ph: "B"`).
    Begin,
    /// Span closed (`ph: "E"`).
    End,
    /// Instant marker (`ph: "i"`).
    Instant,
    /// Counter-track sample (`ph: "C"`).
    Counter,
}

/// One decoded timeline event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Interned event name, resolved.
    pub name: String,
    /// What happened.
    pub kind: EventKind,
    /// Recording track (worker-slot lane; Chrome `tid`).
    pub track: u32,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Sample value for [`EventKind::Counter`] events, `0.0` otherwise.
    pub value: f64,
}

/// A decoded snapshot of every track, globally ordered by timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events sorted by `ts_ns` (ties keep per-track emission order).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wraparound or torn mid-snapshot writes.
    pub dropped: u64,
}

/// Decodes the live window of every track into a [`Trace`].
///
/// Intended at quiescent points (end of run, between phases); events being
/// overwritten concurrently are detected via their seqlock stamp and
/// counted in [`Trace::dropped`] rather than decoded torn.
pub fn snapshot() -> Trace {
    let all = registry().all.lock().unwrap_or_else(|e| e.into_inner());
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for track in all.iter() {
        let head = track.head.load(Ordering::Acquire);
        let cap = track.slots.len() as u64;
        let start = head.saturating_sub(cap);
        dropped += start;
        for i in start..head {
            let slot = &track.slots[(i % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != i + 1 {
                dropped += 1;
                continue;
            }
            let name_id = slot.name.load(Ordering::Acquire);
            let kind = slot.kind.load(Ordering::Acquire);
            let ts_ns = slot.ts_ns.load(Ordering::Acquire);
            let bits = slot.bits.load(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) != i + 1 {
                dropped += 1;
                continue;
            }
            let kind = match kind {
                KIND_BEGIN => EventKind::Begin,
                KIND_END => EventKind::End,
                KIND_INSTANT => EventKind::Instant,
                _ => EventKind::Counter,
            };
            events.push(TraceEvent {
                name: name_of(name_id).to_string(),
                kind,
                track: track.id,
                ts_ns,
                value: if kind == EventKind::Counter {
                    f64::from_bits(bits)
                } else {
                    0.0
                },
            });
        }
    }
    // Stable sort: equal timestamps keep per-track emission order.
    events.sort_by_key(|e| e.ts_ns);
    Trace { events, dropped }
}

/// Clears every track (and its wraparound accounting). Call only at
/// quiescent points — concurrent emits during a reset may be lost.
pub fn reset() {
    let all = registry().all.lock().unwrap_or_else(|e| e.into_inner());
    for track in all.iter() {
        track.head.store(0, Ordering::SeqCst);
        for slot in &track.slots {
            slot.seq.store(0, Ordering::SeqCst);
        }
    }
}

// ---------------------------------------------------------------------
// Chrome Trace Event Format export / import.
// ---------------------------------------------------------------------

const PID: f64 = 1.0;

impl Trace {
    /// Exports to Chrome Trace Event Format (the `traceEvents` JSON shape
    /// that `chrome://tracing` and Perfetto load).
    ///
    /// The export is *balanced by construction*: per track, an `E` with no
    /// matching open `B` (its begin was overwritten in the ring) and a `B`
    /// never closed before the snapshot are both omitted, so every emitted
    /// `B` has exactly one matching `E`.
    pub fn to_chrome_json(&self) -> Json {
        let keep = self.balanced_mask();
        let mut records = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let ts_us = e.ts_ns as f64 / 1000.0;
            let mut fields = vec![
                ("name".to_string(), Json::Str(e.name.clone())),
                ("ph".to_string(), Json::Str(ph_of(e.kind).to_string())),
                ("pid".to_string(), Json::Num(PID)),
                ("tid".to_string(), Json::Num(e.track as f64)),
                ("ts".to_string(), Json::Num(ts_us)),
            ];
            match e.kind {
                EventKind::Counter => fields.push((
                    "args".to_string(),
                    Json::obj([("value", Json::Num(e.value))]),
                )),
                EventKind::Instant => {
                    // Thread-scoped instant marker.
                    fields.push(("s".to_string(), Json::Str("t".to_string())));
                }
                _ => {}
            }
            records.push(Json::Obj(fields));
        }
        Json::obj([
            ("traceEvents", Json::Arr(records)),
            ("displayTimeUnit", Json::Str("ns".to_string())),
            (
                "metadata",
                Json::obj([("dropped_events", Json::Num(self.dropped as f64))]),
            ),
        ])
    }

    /// Parses a Chrome Trace Event Format document produced by
    /// [`Trace::to_chrome_json`] (unknown phase letters are skipped, so
    /// externally-edited traces with `X`/`M` records still load).
    pub fn from_chrome_json(doc: &Json) -> Result<Trace, JsonError> {
        let records = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or_else(|| jerr("missing traceEvents array"))?;
        let mut events = Vec::new();
        for r in records {
            let kind = match r.get("ph").and_then(Json::as_str) {
                Some("B") => EventKind::Begin,
                Some("E") => EventKind::End,
                Some("i") => EventKind::Instant,
                Some("C") => EventKind::Counter,
                _ => continue,
            };
            let name = r
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| jerr("trace event missing name"))?
                .to_string();
            let ts_us = r
                .get("ts")
                .and_then(Json::as_f64)
                .ok_or_else(|| jerr("trace event missing ts"))?;
            let track = r.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u32;
            let value = match kind {
                EventKind::Counter => r
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                _ => 0.0,
            };
            events.push(TraceEvent {
                name,
                kind,
                track,
                // Exact inverse of ns→µs as long as the rounding error of
                // the division stays under half a nanosecond (it does for
                // any run shorter than ~2^52 ns ≈ 52 days).
                ts_ns: (ts_us * 1000.0).round().max(0.0) as u64,
                value,
            });
        }
        let dropped = doc
            .get("metadata")
            .and_then(|m| m.get("dropped_events"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64;
        Ok(Trace { events, dropped })
    }

    /// Verifies every `B` has a matching, properly nested `E` on its
    /// track. Returns the matched span count, or a description of the
    /// first violation.
    pub fn check_balanced(&self) -> Result<usize, String> {
        let mut stacks: Vec<(u32, Vec<&str>)> = Vec::new();
        let mut matched = 0usize;
        for e in &self.events {
            let idx = match stacks.iter().position(|(t, _)| *t == e.track) {
                Some(i) => i,
                None => {
                    stacks.push((e.track, Vec::new()));
                    stacks.len() - 1
                }
            };
            let stack = &mut stacks[idx].1;
            match e.kind {
                EventKind::Begin => stack.push(&e.name),
                EventKind::End => match stack.pop() {
                    Some(open) if open == e.name => matched += 1,
                    Some(open) => {
                        return Err(format!(
                            "track {}: end '{}' closes open span '{}'",
                            e.track, e.name, open
                        ))
                    }
                    None => {
                        return Err(format!(
                            "track {}: end '{}' with no open span",
                            e.track, e.name
                        ))
                    }
                },
                _ => {}
            }
        }
        for (track, stack) in &stacks {
            if let Some(open) = stack.last() {
                return Err(format!("track {track}: span '{open}' never closed"));
            }
        }
        Ok(matched)
    }

    /// Per-event keep mask making span events balanced per track (see
    /// [`Trace::to_chrome_json`]).
    fn balanced_mask(&self) -> Vec<bool> {
        let mut keep = vec![true; self.events.len()];
        let mut tracks: Vec<u32> = self.events.iter().map(|e| e.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for track in tracks {
            let mut open: Vec<usize> = Vec::new();
            for (i, e) in self.events.iter().enumerate() {
                if e.track != track {
                    continue;
                }
                match e.kind {
                    EventKind::Begin => open.push(i),
                    EventKind::End => match open.last() {
                        Some(&b) if self.events[b].name == e.name => {
                            open.pop();
                        }
                        // Orphan or mismatched end: begin was lost to the
                        // ring or tracing toggled mid-span.
                        _ => keep[i] = false,
                    },
                    _ => {}
                }
            }
            for b in open {
                keep[b] = false;
            }
        }
        keep
    }
}

fn jerr(reason: &str) -> JsonError {
    JsonError {
        offset: 0,
        reason: reason.to_string(),
    }
}

fn ph_of(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
        EventKind::Counter => "C",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace state (enable flag, rings) is process-global; serialize the
    /// tests that mutate it and filter snapshots by test-unique names.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn mine<'a>(trace: &'a Trace, prefix: &str) -> Vec<&'a TraceEvent> {
        trace
            .events
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .collect()
    }

    #[test]
    fn disabled_emits_nothing() {
        let _guard = serial();
        set_enabled(false);
        let tok = intern("ut.disabled");
        begin(tok);
        end(tok);
        counter(tok, 1.0);
        instant(tok);
        assert!(mine(&snapshot(), "ut.disabled").is_empty());
    }

    #[test]
    fn span_counter_instant_round_trip() {
        let _guard = serial();
        set_enabled(true);
        {
            let _s = crate::trace_span!("ut.rt.span");
            crate::trace_counter!("ut.rt.counter", 2.5);
            crate::trace_instant!("ut.rt.mark");
        }
        set_enabled(false);
        let snap = snapshot();
        let ours = mine(&snap, "ut.rt.");
        assert_eq!(ours.len(), 4, "B, C, i, E expected: {ours:?}");
        assert_eq!(ours[0].kind, EventKind::Begin);
        assert_eq!(ours[3].kind, EventKind::End);
        let c = ours.iter().find(|e| e.kind == EventKind::Counter).unwrap();
        assert_eq!(c.value, 2.5);
        // Timestamps are monotone within the span.
        assert!(ours[0].ts_ns <= ours[3].ts_ns);

        // Chrome JSON → text → parse → Trace matches the filtered view.
        let doc = snap.to_chrome_json();
        let parsed = Trace::from_chrome_json(&Json::parse(&doc.dump()).unwrap()).unwrap();
        let back = mine(&parsed, "ut.rt.");
        assert_eq!(back.len(), 4);
        for (a, b) in ours.iter().zip(&back) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.ts_ns, b.ts_ns, "µs round trip must be ns-exact");
            assert_eq!(a.value, b.value);
        }
        parsed.check_balanced().expect("exported trace balances");
    }

    #[test]
    fn export_drops_orphan_ends_and_unclosed_begins() {
        let _guard = serial();
        set_enabled(true);
        let orphan = intern("ut.orphan");
        let unclosed = intern("ut.unclosed");
        end(orphan); // no begin: must not survive export
        begin(unclosed); // never ended: must not survive export
        set_enabled(false);
        let doc = snapshot().to_chrome_json();
        let exported = Trace::from_chrome_json(&doc).unwrap();
        assert!(mine(&exported, "ut.orphan").is_empty());
        assert!(mine(&exported, "ut.unclosed").is_empty());
        exported.check_balanced().expect("still balanced");
    }

    #[test]
    fn check_balanced_rejects_bad_nesting() {
        let ev = |name: &str, kind| TraceEvent {
            name: name.to_string(),
            kind,
            track: 0,
            ts_ns: 0,
            value: 0.0,
        };
        let bad = Trace {
            events: vec![
                ev("a", EventKind::Begin),
                ev("b", EventKind::Begin),
                ev("a", EventKind::End),
            ],
            dropped: 0,
        };
        assert!(bad.check_balanced().is_err());
        let good = Trace {
            events: vec![
                ev("a", EventKind::Begin),
                ev("b", EventKind::Begin),
                ev("b", EventKind::End),
                ev("a", EventKind::End),
            ],
            dropped: 0,
        };
        assert_eq!(good.check_balanced(), Ok(2));
    }

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(intern("ut.intern.same"), intern("ut.intern.same"));
        assert_ne!(intern("ut.intern.a"), intern("ut.intern.b"));
    }
}
