//! Minimal JSON: a value type, an emitter and a parser.
//!
//! Replaces the `serde` derives the result structs used to carry: types
//! that need machine-readable output implement [`ToJson`] (and
//! [`FromJson`] where round-tripping matters) and the bench harness emits
//! with [`Json::dump`]. Objects preserve insertion order so emitted files
//! are deterministic.
//!
//! The emitter prints `f64` with Rust's shortest-round-trip formatting, so
//! `parse(dump(v))` reproduces every finite number exactly. Non-finite
//! numbers have no JSON representation and emit as `null` (standard
//! practice); the parser never produces them.

use std::fmt::Write as _;

/// A JSON document or fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion error with a byte offset (parse only) and reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input, when parsing.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(offset: usize, reason: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        offset,
        reason: reason.into(),
    })
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a `usize`, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        (x >= 0.0 && x.fract() == 0.0 && x <= usize::MAX as f64).then_some(x as usize)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 is shortest-round-trip and always
                    // includes enough digits to reparse exactly.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(p.pos, "trailing characters after document");
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            err(self.pos, format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return err(self.pos, "nesting too deep");
        }
        match self.bytes.get(self.pos) {
            None => err(self.pos, "unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => err(self.pos, format!("unexpected byte 0x{b:02x}")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(self.pos, format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => err(start, format!("invalid number '{text}'")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return err(self.pos, "unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied().ok_or_else(|| JsonError {
                        offset: self.pos,
                        reason: "unterminated escape".into(),
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a trailing \uXXXX.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return err(self.pos, "invalid low surrogate");
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return err(self.pos, "invalid \\u escape"),
                            }
                        }
                        _ => return err(self.pos - 1, "unknown escape"),
                    }
                }
                Some(&b) if b < 0x20 => return err(self.pos, "raw control character in string"),
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            offset: self.pos,
                            reason: "invalid utf-8".into(),
                        })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return err(self.pos, "truncated \\u escape");
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| JsonError {
            offset: self.pos,
            reason: "invalid \\u escape".into(),
        })?;
        let v = u32::from_str_radix(text, 16).map_err(|_| JsonError {
            offset: self.pos,
            reason: "invalid \\u escape".into(),
        })?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(self.pos, "expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return err(self.pos, "expected ',' or '}'"),
            }
        }
    }
}

/// Conversion into a [`Json`] value for machine-readable output.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Reconstruction from a [`Json`] value (the inverse of [`ToJson`]).
pub trait FromJson: Sized {
    /// Rebuilds `Self`; errors carry a reason with `offset == 0`.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}
impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<f64, JsonError> {
        value.as_f64().map_or_else(|| err(0, "expected number"), Ok)
    }
}
impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}
impl FromJson for usize {
    fn from_json(value: &Json) -> Result<usize, JsonError> {
        value
            .as_usize()
            .map_or_else(|| err(0, "expected non-negative integer"), Ok)
    }
}
impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(value: &Json) -> Result<String, JsonError> {
        value
            .as_str()
            .map_or_else(|| err(0, "expected string"), |s| Ok(s.to_string()))
    }
}
impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Vec<T>, JsonError> {
        value
            .as_array()
            .map_or_else(|| err(0, "expected array"), Ok)?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

/// Fetches and converts a required object field.
pub fn field<T: FromJson>(value: &Json, key: &str) -> Result<T, JsonError> {
    match value.get(key) {
        Some(v) => T::from_json(v),
        None => err(0, format!("missing field '{key}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_scalars() {
        assert_eq!(Json::Null.dump(), "null");
        assert_eq!(Json::Bool(true).dump(), "true");
        assert_eq!(Json::Num(1.0).dump(), "1");
        assert_eq!(Json::Num(0.5).dump(), "0.5");
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).dump(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn dump_and_parse_nested() {
        let v = Json::obj([
            ("name", "peak_gain_cdf".into()),
            ("trials", 400usize.into()),
            ("samples", vec![1.0, 2.5, -3.125e-7].into()),
            ("ok", true.into()),
            ("sub", Json::obj([("x", Json::Null)])),
        ]);
        let text = v.dump();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            123456789.123456789,
        ] {
            let text = Json::Num(x).dump();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "value {x}");
        }
    }

    #[test]
    fn parse_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\u00e9\" , null ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_array().unwrap()[1].as_str(),
            Some("Aé")
        );
    }

    #[test]
    fn parse_surrogate_pair() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "tru",
            "[1,",
            "{\"a\"}",
            "{\"a\":1,}",
            "01abc",
            "\"unterminated",
            "[1] trailing",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_depth_limited() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn object_access_helpers() {
        let v = Json::obj([("n", 3usize.into()), ("s", "hi".into())]);
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(field::<String>(&v, "s").unwrap(), "hi");
        assert!(field::<f64>(&v, "missing").is_err());
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
    }

    #[test]
    fn vec_round_trip_via_traits() {
        let xs = vec![1.0, 2.0, 3.5];
        let back: Vec<f64> =
            FromJson::from_json(&Json::parse(&xs.to_json().dump()).unwrap()).unwrap();
        assert_eq!(back, xs);
    }
}
