//! # ivn-runtime — the self-contained runtime layer
//!
//! Everything the rest of the workspace needs that would otherwise come
//! from external crates, implemented in-tree so a clean checkout builds
//! with `cargo build --offline` against an empty registry:
//!
//! * [`rng`] — deterministic pseudo-randomness: a SplitMix64-seeded
//!   Xoshiro256++ generator ([`rng::StdRng`]) behind the small [`rng::Rng`]
//!   trait surface the simulator actually uses (`random::<f64>()`, ranges,
//!   fork-by-stream for per-trial seeding).
//! * [`par`] — a scoped worker-pool `par_map` built on
//!   `std::thread::scope`, plus [`par::ensemble`] which runs Monte-Carlo
//!   trials in parallel with per-trial forked RNG streams so results are
//!   bit-identical at any thread count.
//! * [`pool`] — a persistent work-stealing [`pool::WorkerPool`] (parked
//!   workers, per-worker deques, deterministic chunking) that amortizes
//!   thread spawn for the short dispatches issued by the streaming
//!   sample path, the campaign driver, and the Monte-Carlo sweeps.
//! * [`json`] — a minimal JSON value, emitter and parser for
//!   machine-readable figure output from the bench harness.
//! * [`prop`] — a seeded, shrink-free property-test harness (the
//!   [`props!`] macro) replacing `proptest`.
//! * [`bench`] — a tiny timing harness replacing `criterion` for the
//!   `cargo bench` targets.
//! * [`obs`] — pipeline observability: [`span!`] tracing, counters,
//!   gauges and power-of-two histograms behind one global enable flag,
//!   snapshotted into an [`obs::Report`] that serializes through
//!   [`json`]. Off by default and free when off.
//! * [`trace`] — timeline tracing: per-thread lock-free ring buffers of
//!   begin/end/instant/counter events ([`trace_span!`],
//!   [`trace_counter!`], [`trace_instant!`]), exported to Chrome Trace
//!   Event Format JSON for `chrome://tracing` / Perfetto. Same
//!   off-by-default, free-when-off contract as [`obs`]; [`span!`] feeds
//!   both layers from one call site.
//! * [`telemetry`] — the flight recorder: a heartbeat sampler thread
//!   that diffs successive [`obs::Report`] snapshots
//!   ([`obs::Report::delta`]) and streams newline-delimited JSON
//!   heartbeats (seq, counter deltas, derived per-second rates, gauges)
//!   to any `Write` sink while a long run is still in flight.
//!
//! Design notes live in DESIGN.md §"Runtime layer".

pub mod bench;
pub mod json;
pub mod obs;
pub mod par;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod telemetry;
pub mod trace;
