//! Deterministic pseudo-randomness for every experiment in the workspace.
//!
//! The generator is Xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 so that any `u64` seed — including 0 — expands to a
//! well-mixed 256-bit state. On top of the raw generator sits the small
//! [`Rng`] trait surface the simulator actually uses:
//!
//! * `random::<T>()` for `f64` in `[0, 1)`, the unsigned integers and
//!   `bool`;
//! * `random_range(range)` for half-open and inclusive integer ranges
//!   (bias-free via Lemire rejection) and `f64` ranges;
//! * [`StdRng::seed_from_stream`] / [`StdRng::fork`] — independent
//!   *streams* from one seed, used to give every Monte-Carlo trial its own
//!   generator so ensembles are reproducible at any worker-thread count.
//!
//! All of `dsp`, `em`, `core`, `rfid`, `sdr` and the test suites draw
//! their randomness exclusively through this module (DESIGN.md §5).

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 state-mixing step: advances `state` and returns the next
/// well-mixed output word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic Xoshiro256++ generator.
///
/// `StdRng` is the workspace-wide generator type: everything that needs
/// randomness takes `&mut R where R: Rng + ?Sized` and callers construct a
/// `StdRng` from an explicit seed, so every experiment is reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
    seed: u64,
    stream: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed (stream 0).
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::seed_from_stream(seed, 0)
    }

    /// Creates the generator for `(seed, stream)`.
    ///
    /// Distinct streams of the same seed are statistically independent:
    /// the pair is folded through SplitMix64 before state expansion. This
    /// is the basis of per-trial seeding — trial `i` of an ensemble uses
    /// stream `i`, so results do not depend on which thread ran the trial.
    pub fn seed_from_stream(seed: u64, stream: u64) -> Self {
        let mut sm = seed ^ stream.wrapping_mul(GOLDEN | 1).rotate_left(17);
        // Decorrelate (seed, stream) pairs that collide in the xor above.
        let _ = splitmix64(&mut sm);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s, seed, stream }
    }

    /// A generator for sub-stream `stream` of this generator's seed,
    /// without consuming any of this generator's output.
    ///
    /// Forking composes: `fork(a).fork(b)` differs from `fork(b).fork(a)`
    /// because the parent stream is folded into the child's.
    pub fn fork(&self, stream: u64) -> StdRng {
        StdRng::seed_from_stream(
            self.seed,
            self.stream
                .wrapping_mul(0x100_0000_01B3) // FNV prime: spread parent stream
                .wrapping_add(stream)
                .wrapping_add(1),
        )
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // Xoshiro256++ reference update (Blackman & Vigna, 2019).
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// The uniform-randomness surface used across the workspace.
///
/// Implementors only provide [`Rng::next_u64`]; everything else derives
/// from it deterministically, so two implementations with the same word
/// stream produce identical values of every type.
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of `T`: `f64` in `[0, 1)`, integers over their full
    /// range, `bool` fair.
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive; integer ranges
    /// are bias-free).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly from an RNG via [`Rng::random`].
pub trait Sample {
    /// Draws one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                // Truncate from the top bits, which Xoshiro mixes best.
                (rng.next_u64() >> (64 - <$t>::BITS)) as $t
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

impl Sample for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

/// Uniform `u128` in `[0, span)` by Lemire multiply-shift with rejection
/// (no modulo bias). `span` must be nonzero.
fn bounded_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Fast path: spans fitting in 64 bits use one word per attempt.
    if let Ok(span64) = u64::try_from(span) {
        let zone = span64.wrapping_neg() % span64; // 2^64 mod span
        loop {
            let m = rng.next_u64() as u128 * span64 as u128;
            if m as u64 >= zone {
                return m >> 64;
            }
        }
    }
    // Wide path: rejection-sample a raw u128 against the largest multiple
    // of `span` below 2^128.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let v: u128 = u128::sample(rng);
        if v <= zone {
            return v % span;
        }
    }
}

/// Ranges drawable via [`Rng::random_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                let v = bounded_u128(rng, span) as $u;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128 + 1;
                // Full-range inclusive ranges wrap span to 0: draw raw.
                if span == 0 {
                    return <$u as Sample>::sample(rng) as $t;
                }
                let v = bounded_u128(rng, span) as $u;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange for core::ops::Range<u128> {
    type Output = u128;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + bounded_u128(rng, self.end - self.start)
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        let u: f64 = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = StdRng::seed_from_u64(0);
        let words: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
        assert!(words.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn streams_are_distinct_and_deterministic() {
        let a = StdRng::seed_from_stream(3, 0);
        let b = StdRng::seed_from_stream(3, 1);
        assert_ne!(a, b);
        assert_eq!(a, StdRng::seed_from_u64(3));
        let mut fork1 = StdRng::seed_from_u64(3).fork(5);
        let mut fork2 = StdRng::seed_from_u64(3).fork(5);
        assert_eq!(fork1.next_u64(), fork2.next_u64());
        assert_ne!(
            StdRng::seed_from_u64(3).fork(5),
            StdRng::seed_from_u64(3).fork(6)
        );
    }

    #[test]
    fn fork_composes_order_sensitively() {
        let r = StdRng::seed_from_u64(11);
        assert_ne!(r.fork(1).fork(2), r.fork(2).fork(1));
        assert_ne!(r.fork(1).fork(2), r.fork(1).fork(3));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.random_range(1..=5u32);
            assert!((1..=5).contains(&v));
            let w = r.random_range(-3i64..3);
            assert!((-3..3).contains(&w));
        }
    }

    #[test]
    fn u128_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = r.random_range(1u128..(u128::MAX >> 32));
            assert!(v >= 1 && v < u128::MAX >> 32);
        }
    }

    #[test]
    fn full_inclusive_range_does_not_panic() {
        let mut r = StdRng::seed_from_u64(4);
        let _: u8 = r.random_range(0..=u8::MAX);
        let _: u64 = r.random_range(0..=u64::MAX);
    }

    #[test]
    fn f64_range_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
            let w = r.random_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(6);
        let trues = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut r = StdRng::seed_from_u64(9);
        let via_generic = draw(&mut r);
        assert!((0.0..1.0).contains(&via_generic));
    }
}
