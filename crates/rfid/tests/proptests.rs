//! Property-based tests for the Gen2 protocol substrate.

use ivn_dsp::block::BlockSource;
use ivn_rfid::commands::{Command, DivideRatio, Session, TagEncoding};
use ivn_rfid::crc::{append_crc16, append_crc5, check_crc16, check_crc5};
use ivn_rfid::epc::Sgtin96;
use ivn_rfid::fm0::Fm0;
use ivn_rfid::miller::Miller;
use ivn_rfid::pie::{decode_frame, encode_frame, rasterize, PieParams};
use ivn_rfid::stream::{Fm0Decoder, PieStreamDecoder, RunRasterizer};
use ivn_rfid::tag::{Tag, TagReply};
use ivn_runtime::prop::{any, vec as pvec, Just, Strategy};
use ivn_runtime::{prop_assert, prop_assert_eq, prop_oneof, props};

fn session() -> impl Strategy<Value = Session> {
    prop_oneof![
        Just(Session::S0),
        Just(Session::S1),
        Just(Session::S2),
        Just(Session::S3)
    ]
}

fn encoding() -> impl Strategy<Value = TagEncoding> {
    prop_oneof![
        Just(TagEncoding::Fm0),
        Just(TagEncoding::Miller2),
        Just(TagEncoding::Miller4),
        Just(TagEncoding::Miller8)
    ]
}

fn any_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        (
            any::<bool>(),
            encoding(),
            any::<bool>(),
            session(),
            0u8..=15
        )
            .prop_map(|(dr, m, trext, session, q)| Command::Query {
                dr: if dr {
                    DivideRatio::Dr64Over3
                } else {
                    DivideRatio::Dr8
                },
                m,
                trext,
                session,
                q,
            }),
        session().prop_map(|session| Command::QueryRep { session }),
        (session(), -1i8..=1).prop_map(|(session, updn)| Command::QueryAdjust { session, updn }),
        any::<u16>().prop_map(|rn16| Command::Ack { rn16 }),
        any::<u16>().prop_map(|rn16| Command::ReqRn { rn16 }),
        pvec(any::<bool>(), 0..64).prop_map(|mask| Command::Select { mask }),
    ]
}

props! {
    cases = 128;

    fn crc5_roundtrip(body in pvec(any::<bool>(), 0..64)) {
        let mut framed = body;
        append_crc5(&mut framed);
        prop_assert!(check_crc5(&framed));
    }

    fn crc5_catches_single_flips(body in pvec(any::<bool>(), 1..40),
                                 flip_seed in any::<u32>()) {
        let mut framed = body;
        append_crc5(&mut framed);
        let idx = flip_seed as usize % framed.len();
        framed[idx] = !framed[idx];
        prop_assert!(!check_crc5(&framed));
    }

    fn crc16_roundtrip_and_flip(body in pvec(any::<bool>(), 0..120),
                                flip_seed in any::<u32>()) {
        let mut framed = body;
        append_crc16(&mut framed);
        prop_assert!(check_crc16(&framed));
        let idx = flip_seed as usize % framed.len();
        framed[idx] = !framed[idx];
        prop_assert!(!check_crc16(&framed));
    }

    fn command_codec_roundtrip(cmd in any_command()) {
        let bits = cmd.encode();
        prop_assert_eq!(Command::decode(&bits).expect("decode"), cmd);
    }

    fn fm0_roundtrip(bits in pvec(any::<bool>(), 1..128),
                     sph in 1usize..8) {
        let fm0 = Fm0::new(sph);
        prop_assert_eq!(fm0.decode(&fm0.encode(&bits)), bits);
    }

    fn miller_roundtrip(bits in pvec(any::<bool>(), 1..64),
                        m_idx in 0usize..3, spq in 1usize..4) {
        let m = [2, 4, 8][m_idx];
        let codec = Miller::new(m, spq);
        prop_assert_eq!(codec.decode(&codec.encode(&bits)), bits);
    }

    fn pie_roundtrip(bits in pvec(any::<bool>(), 0..48),
                     with_trcal in any::<bool>(), depth in 0.6f64..1.0) {
        let p = PieParams::paper_defaults();
        let runs = encode_frame(&bits, &p, with_trcal);
        let env = rasterize(&runs, 2e6, 1.0 - depth);
        prop_assert_eq!(decode_frame(&env, 2e6).expect("pie decode"), bits);
    }

    fn sgtin_roundtrip(filter in 0u8..8, partition in 0u8..7,
                       company in 0u64..1u64 << 20, item in 0u32..16,
                       serial in 0u64..1u64 << 38) {
        // company/item kept within the tightest partition widths.
        let epc = Sgtin96::new(filter, partition, company, item, serial).expect("valid");
        prop_assert_eq!(Sgtin96::decode(epc.encode()).expect("decode"), epc);
    }

    fn tag_never_replies_unpowered(cmds in pvec(any_command(), 1..20),
                                   epc in 1u128..u128::MAX >> 32, seed in any::<u64>()) {
        let mut tag = Tag::with_epc96(epc, seed);
        for cmd in &cmds {
            prop_assert_eq!(tag.process(cmd), TagReply::Silent);
        }
    }

    fn tag_epc_reply_always_crc_valid(epc in 1u128..u128::MAX >> 32, seed in any::<u64>()) {
        let mut tag = Tag::with_epc96(epc, seed);
        tag.set_powered(true);
        let query = Command::Query {
            dr: DivideRatio::Dr8,
            m: TagEncoding::Fm0,
            trext: false,
            session: Session::S0,
            q: 0,
        };
        if let TagReply::Rn16(rn) = tag.process(&query) {
            if let TagReply::Epc(bits) = tag.process(&Command::Ack { rn16: rn }) {
                prop_assert!(check_crc16(&bits));
            } else {
                prop_assert!(false, "no EPC reply");
            }
        } else {
            prop_assert!(false, "no RN16 at Q=0");
        }
    }

    fn run_rasterizer_matches_batch(bits in pvec(any::<bool>(), 0..32),
                                    with_trcal in any::<bool>(), block in 1usize..64) {
        let p = PieParams::paper_defaults();
        let runs = encode_frame(&bits, &p, with_trcal);
        let batch = rasterize(&runs, 2e6, 0.1);
        let mut src = RunRasterizer::new(runs, 2e6, 0.1);
        let mut out = Vec::new();
        while BlockSource::fill(&mut src, &mut out, block) > 0 {}
        prop_assert_eq!(out, batch);
    }

    fn pie_stream_decode_matches_batch(bits in pvec(any::<bool>(), 0..48),
                                       with_trcal in any::<bool>(), depth in 0.6f64..1.0,
                                       block in 1usize..96) {
        // Rasterized PIE frames peak at exactly 1.0 (the carrier-on runs),
        // so a fixed 0.5 threshold makes the streaming decoder's comparisons
        // identical to decode_frame's peak-relative ones.
        let p = PieParams::paper_defaults();
        let runs = encode_frame(&bits, &p, with_trcal);
        let env = rasterize(&runs, 2e6, 1.0 - depth);
        let batch = decode_frame(&env, 2e6);
        let mut dec = PieStreamDecoder::new(0.5, 2e6);
        for chunk in env.chunks(block) {
            dec.push(chunk);
        }
        prop_assert_eq!(dec.finish(), batch);
    }

    fn fm0_stream_decode_matches_batch(bits in pvec(any::<bool>(), 1..48),
                                       spb in 1usize..6, extra in 0usize..8,
                                       block in 1usize..64) {
        let fm0 = Fm0::new(spb);
        let mut wave = fm0.encode(&bits);
        // A trailing partial symbol must be discarded by both paths.
        wave.extend(std::iter::repeat(1.0).take(extra % fm0.samples_per_symbol()));
        let batch = fm0.decode(&wave);
        let mut dec = Fm0Decoder::new(fm0);
        for chunk in wave.chunks(block) {
            dec.push(chunk);
        }
        prop_assert_eq!(dec.finish(), batch);
    }
}
