//! Property-based tests for the anti-collision seam: every policy must
//! converge with slot spend proportional to the tag count, the capture
//! model must be bit-deterministic under fork-per-trial RNG at any
//! thread count, and collision pressure must grow with the population.

use ivn_rfid::anticollision::{AdaptiveQ, AntiCollision, CaptureModel, FixedQ, SchouteQ};
use ivn_rfid::population::inventory_population;
use ivn_rfid::reader::QAlgorithm;
use ivn_rfid::tag::Tag;
use ivn_runtime::par;
use ivn_runtime::rng::{Rng, StdRng};
use ivn_runtime::{prop_assert, prop_assert_eq, props};

/// A powered single-read population of `n` tags seeded from `rng`.
fn population(n: usize, rng: &mut StdRng) -> Vec<Tag> {
    (0..n)
        .map(|i| {
            let mut t = Tag::with_epc96(0x7000_0000 + i as u128, rng.random());
            t.set_powered(true);
            t.set_single_read(true);
            t
        })
        .collect()
}

/// The three policy arms, with the fixed arm sized to the population.
fn arms(n: usize) -> Vec<Box<dyn AntiCollision>> {
    let q_fit = (n.max(2) as f64).log2().ceil() as u8;
    vec![
        Box::new(QAlgorithm::default().policy()),
        Box::new(FixedQ::new(q_fit)),
        Box::new(SchouteQ::new(4)),
    ]
}

props! {
    cases = 16;

    // Q convergence: whatever the arm, an inventory of n tags finishes
    // within the round budget and spends slots proportional to n — the
    // frame size tracks the backlog instead of wandering off.
    fn every_policy_converges_with_linear_slot_spend(
        n in 4usize..64, seed in 0u64..1 << 48) {
        let root = StdRng::seed_from_u64(seed);
        for mut policy in arms(n) {
            let mut rng = root.fork(0);
            let mut tags = population(n, &mut rng);
            let out = inventory_population(policy.as_mut(), None, &mut tags, 256);
            prop_assert!(out.terminated, "{} left {} of {} tags unread",
                         policy.name(), n - out.epcs.len(), n);
            prop_assert_eq!(out.epcs.len(), n);
            let slots = out.total_slots();
            prop_assert!(slots >= n, "{}: {} slots for {} tags", policy.name(), slots, n);
            prop_assert!(slots <= 32 * n + 64,
                         "{}: {} slots for {} tags", policy.name(), slots, n);
        }
    }

    // Capture determinism: a trial consumes only forks of its stream,
    // so an ensemble is bit-identical at 1, 2, and 8 threads.
    fn capture_trials_thread_invariant(
        n in 2usize..24, seed in 0u64..1 << 48,
        threshold_db in 1.0f64..9.0, fade_db in 0.0f64..6.0) {
        let run = |threads: usize| {
            par::ensemble_threads(threads, 6, seed, |rng, _| {
                let mut tags = population(n, rng);
                let powers: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
                let mut capture =
                    CaptureModel::new(powers, threshold_db, fade_db, rng.fork(n as u64));
                let mut policy = AdaptiveQ::new(QAlgorithm::default());
                let out =
                    inventory_population(&mut policy, Some(&mut capture), &mut tags, 64);
                (out.total_slots(), out.total_captures(), out.epcs)
            })
        };
        let serial = run(1);
        prop_assert_eq!(&run(2), &serial);
        prop_assert_eq!(&run(8), &serial);
    }

    // Collision pressure is monotone in population size: at a fixed
    // frame size, four times the tags never produce fewer collisions
    // (summed over an ensemble to wash out per-trial noise).
    fn collisions_grow_with_population(
        n in 2usize..16, q in 3u8..6, seed in 0u64..1 << 48) {
        let collisions = |count: usize| -> usize {
            par::ensemble_threads(1, 12, seed, |rng, _| {
                let mut tags = population(count, rng);
                let mut policy = FixedQ::new(q);
                inventory_population(&mut policy, None, &mut tags, 128)
                    .total_collisions()
            })
            .into_iter()
            .sum()
        };
        let small = collisions(n);
        let large = collisions(4 * n + 8);
        prop_assert!(large >= small,
                     "collisions fell from {small} to {large} when {n} tags became {}",
                     4 * n + 8);
    }
}
