//! Pulse-interval encoding (PIE) — the reader→tag downlink waveform.
//!
//! Gen2 readers keep their carrier high and cut short low-power notches
//! ("PW pulses"). A symbol is the interval between notches: `Tari` for a
//! data-0, 1.5–2×`Tari` for a data-1. Frames start with a preamble
//! (delimiter, data-0, RTcal calibration symbol, and — for Query — a TRcal
//! symbol that sets the tag's backscatter link frequency).
//!
//! Waveforms are represented as *level runs* `(level, duration)` so they
//! can be rasterized at any sample rate, and decoded back from envelope
//! samples by notch-interval measurement — exactly how a tag's envelope
//! detector does it.

/// PIE timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PieParams {
    /// Reference interval Tari (duration of data-0), seconds. Gen2 allows
    /// 6.25–25 µs.
    pub tari_s: f64,
    /// Data-1 length as a multiple of Tari (1.5–2.0).
    pub data1_ratio: f64,
    /// Low-pulse (notch) width, seconds (≤ 0.525·Tari).
    pub pw_s: f64,
    /// Delimiter width, seconds (12.5 µs ± 5 %).
    pub delimiter_s: f64,
    /// TRcal duration, seconds (sets the tag's BLF together with DR).
    pub trcal_s: f64,
}

impl PieParams {
    /// The paper's prototype settings: Tari 25 µs (the Gen2 maximum, used
    /// by long-range readers), data-1 = 2 Tari — yielding a Query frame of
    /// ≈ 800–950 µs, matching the paper's Δt ≈ 800 µs working figure
    /// (§3.6).
    pub fn paper_defaults() -> Self {
        PieParams {
            tari_s: 25e-6,
            data1_ratio: 2.0,
            pw_s: 12.5e-6,
            delimiter_s: 12.5e-6,
            trcal_s: 133.3e-6,
        }
    }

    /// Duration of a data-0 symbol.
    pub fn data0_s(&self) -> f64 {
        self.tari_s
    }

    /// Duration of a data-1 symbol.
    pub fn data1_s(&self) -> f64 {
        self.tari_s * self.data1_ratio
    }

    /// RTcal (reader→tag calibration) = data-0 + data-1 duration.
    pub fn rtcal_s(&self) -> f64 {
        self.data0_s() + self.data1_s()
    }

    /// The pivot interval separating 0s from 1s at the decoder: RTcal/2.
    pub fn pivot_s(&self) -> f64 {
        self.rtcal_s() / 2.0
    }

    /// Total on-air duration of a payload of `zeros` data-0s and `ones`
    /// data-1s behind a preamble (`with_trcal` for Query frames).
    pub fn frame_duration_s(&self, zeros: usize, ones: usize, with_trcal: bool) -> f64 {
        let preamble = self.delimiter_s
            + self.data0_s()
            + self.rtcal_s()
            + if with_trcal { self.trcal_s } else { 0.0 };
        preamble + zeros as f64 * self.data0_s() + ones as f64 * self.data1_s()
    }
}

/// A run-length encoded binary waveform: `(high?, seconds)` segments.
pub type LevelRuns = Vec<(bool, f64)>;

/// Encodes a command's bits into level runs, including the preamble.
///
/// `with_trcal` must be true for Query (full preamble) and false for all
/// other commands (frame-sync only).
pub fn encode_frame(bits: &[bool], p: &PieParams, with_trcal: bool) -> LevelRuns {
    let _span = ivn_runtime::span!("rfid.pie_encode_ns");
    ivn_runtime::obs_count!("rfid.pie_symbols_encoded", bits.len());
    let mut runs: LevelRuns = Vec::with_capacity(2 * bits.len() + 10);
    // Symbols are "high for (duration − PW), then low for PW".
    let push_symbol = |runs: &mut LevelRuns, duration: f64| {
        runs.push((true, duration - p.pw_s));
        runs.push((false, p.pw_s));
    };
    // Leading carrier so the delimiter's falling edge is observable, then
    // the preamble: delimiter (low), data-0, RTcal[, TRcal].
    runs.push((true, p.data1_s()));
    runs.push((false, p.delimiter_s));
    push_symbol(&mut runs, p.data0_s());
    push_symbol(&mut runs, p.rtcal_s());
    if with_trcal {
        push_symbol(&mut runs, p.trcal_s);
    }
    for &b in bits {
        push_symbol(&mut runs, if b { p.data1_s() } else { p.data0_s() });
    }
    // Trailing carrier so the final notch is measurable.
    runs.push((true, p.data1_s()));
    runs
}

/// Rasterizes level runs to an amplitude profile (1.0 high / `low_level`
/// low) at `sample_rate`.
///
/// Thin wrapper over the streaming [`crate::stream::RunRasterizer`]
/// (one maximal block), so the batch and block paths agree bit for bit.
pub fn rasterize(runs: &LevelRuns, sample_rate: f64, low_level: f64) -> Vec<f64> {
    let mut src = crate::stream::RunRasterizer::new(runs.clone(), sample_rate, low_level);
    let mut out = Vec::new();
    while ivn_dsp::block::BlockSource::fill(&mut src, &mut out, usize::MAX) > 0 {}
    out
}

/// Errors from PIE decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PieError {
    /// No delimiter/notch structure found.
    NoPreamble,
    /// A notch interval matched neither data-0 nor data-1 plausibly.
    BadSymbol,
    /// Fewer than the minimum symbols for a frame.
    TooShort,
}

/// Decodes an envelope (amplitude samples) back into command bits.
///
/// Recovers notch positions by thresholding at half amplitude, measures
/// the first intervals as data-0 and RTcal to self-calibrate, optionally
/// skips TRcal (any interval > RTcal), then classifies each remaining
/// interval against the RTcal/2 pivot. This mirrors a real tag's decoder,
/// so it inherits the paper's amplitude-flatness requirement: if the CIB
/// envelope droops too much during the frame, notches are missed.
pub fn decode_frame(envelope: &[f64], sample_rate: f64) -> Result<Vec<bool>, PieError> {
    let _span = ivn_runtime::span!("rfid.pie_decode_ns");
    let result = decode_frame_inner(envelope, sample_rate);
    match &result {
        Ok(bits) => ivn_runtime::obs_count!("rfid.pie_symbols_decoded", bits.len()),
        Err(_) => ivn_runtime::obs_count!("rfid.pie_decode_errors", 1),
    }
    result
}

/// Whole-buffer decode delegating to the streaming edge detector
/// ([`crate::stream::PieStreamDecoder`]) as one maximal block — the two
/// paths share every comparison, so they agree bit for bit. The peak
/// (for the half-amplitude threshold) is folded over the full envelope
/// first, exactly as before; a streaming caller supplies the threshold
/// from its own running peak instead.
fn decode_frame_inner(envelope: &[f64], sample_rate: f64) -> Result<Vec<bool>, PieError> {
    if envelope.len() < 8 {
        return Err(PieError::TooShort);
    }
    let peak = envelope.iter().cloned().fold(0.0f64, f64::max);
    if peak <= 0.0 {
        return Err(PieError::NoPreamble);
    }
    let mut dec = crate::stream::PieStreamDecoder::new(peak * 0.5, sample_rate);
    dec.push(envelope);
    dec.classify()
}

/// Classifies notch intervals into bits — the self-calibrating back end
/// shared by [`decode_frame`] and the streaming
/// [`crate::stream::PieStreamDecoder`].
pub(crate) fn classify_intervals(intervals: &[f64]) -> Result<Vec<bool>, PieError> {
    // intervals[0] = delimiter + data-0 − PW (composite), intervals[1] = RTcal.
    let composite = intervals[0];
    let rtcal = intervals[1];
    // Sanity: the composite preamble interval must be shorter than RTcal
    // (delimiter ≈ data-0 ≈ Tari, so composite ≈ 2·Tari − PW < 3·Tari).
    if composite >= rtcal || rtcal <= 0.0 {
        return Err(PieError::NoPreamble);
    }
    let pivot = rtcal / 2.0;
    let mut rest = &intervals[2..];
    // Skip TRcal when present (longer than RTcal).
    if let Some(&first) = rest.first() {
        if first > rtcal * 1.05 {
            rest = &rest[1..];
        }
    }
    let mut bits = Vec::with_capacity(rest.len());
    for &iv in rest {
        if iv > rtcal * 1.05 {
            return Err(PieError::BadSymbol);
        }
        bits.push(iv > pivot);
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 4e6;

    #[test]
    fn paper_query_duration_near_800us() {
        // A Query is 22 bits; with typical bit mix the frame lasts ~0.5-1 ms.
        let p = PieParams::paper_defaults();
        let d = p.frame_duration_s(11, 11, true);
        assert!(d > 4e-4 && d < 1.2e-3, "duration {d}");
    }

    #[test]
    fn rtcal_and_pivot() {
        let p = PieParams::paper_defaults();
        assert!((p.rtcal_s() - 75e-6).abs() < 1e-12);
        assert!((p.pivot_s() - 37.5e-6).abs() < 1e-12);
    }

    #[test]
    fn encode_rasterize_decode_roundtrip() {
        let p = PieParams::paper_defaults();
        let bits = vec![
            true, false, false, true, true, true, false, true, false, false,
        ];
        for with_trcal in [false, true] {
            let runs = encode_frame(&bits, &p, with_trcal);
            let env = rasterize(&runs, FS, 0.0);
            let decoded = decode_frame(&env, FS).expect("decode");
            assert_eq!(decoded, bits, "trcal={with_trcal}");
        }
    }

    #[test]
    fn roundtrip_with_partial_modulation_depth() {
        // 80 % depth: notches go to 0.2, decoder thresholds at half.
        let p = PieParams::paper_defaults();
        let bits = vec![false, true, true, false, true];
        let runs = encode_frame(&bits, &p, true);
        let env = rasterize(&runs, FS, 0.2);
        assert_eq!(decode_frame(&env, FS).unwrap(), bits);
    }

    #[test]
    fn decode_rejects_flat_envelope() {
        assert_eq!(
            decode_frame(&vec![1.0; 1000], FS),
            Err(PieError::NoPreamble)
        );
        assert_eq!(
            decode_frame(&vec![0.0; 1000], FS),
            Err(PieError::NoPreamble)
        );
        assert_eq!(decode_frame(&[1.0; 4], FS), Err(PieError::TooShort));
    }

    #[test]
    fn decode_survives_scaling() {
        // Channel gain must not matter (tag sees absolute scale-free env).
        let p = PieParams::paper_defaults();
        let bits = vec![true, false, true];
        let runs = encode_frame(&bits, &p, false);
        let mut env = rasterize(&runs, FS, 0.1);
        for v in &mut env {
            *v *= 3.7e-4;
        }
        assert_eq!(decode_frame(&env, FS).unwrap(), bits);
    }

    #[test]
    fn empty_payload_decodes_empty() {
        let p = PieParams::paper_defaults();
        let runs = encode_frame(&[], &p, false);
        let env = rasterize(&runs, FS, 0.0);
        assert_eq!(decode_frame(&env, FS).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn frame_duration_matches_rasterized_length() {
        let p = PieParams::paper_defaults();
        let bits = vec![true, true, false, false, true];
        let runs = encode_frame(&bits, &p, true);
        let env = rasterize(&runs, FS, 0.0);
        // + leading carrier + trailing carrier
        let expected = p.frame_duration_s(2, 3, true) + 2.0 * p.data1_s();
        assert!(((env.len() as f64 / FS) - expected).abs() < 2.0 / FS);
    }
}
