//! Reader-side inventory logic driven through the anti-collision seam.
//!
//! Drives rounds of Query/QueryRep against a population of tags,
//! resolving slots into empty / single / collision outcomes. Frame
//! sizing is delegated to an [`AntiCollision`] policy — the default
//! [`Reader::new`] wraps the classic Gen2 [`QAlgorithm`] (floating-point
//! Qfp, ±C steps) in [`crate::anticollision::AdaptiveQ`], bit-identical
//! to the pre-seam behaviour; [`Reader::with_policy`] accepts any other
//! impl. An optional [`CaptureModel`] adds capture-effect arbitration to
//! multi-reply slots. The physical decoding happens elsewhere
//! (ivn-core's out-of-band reader); here the protocol logic is
//! exercised against [`crate::tag::Tag`] objects directly, which is how
//! the protocol-level tests and the multi-sensor experiments run.

use crate::anticollision::{AdaptiveQ, AntiCollision, CaptureModel};
use crate::commands::{Command, DivideRatio, Session, TagEncoding};
use crate::tag::{Tag, TagReply};

/// Outcome of one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No tag replied.
    Empty,
    /// Exactly one tag replied and was inventoried: its EPC bits.
    Inventoried(Vec<bool>),
    /// Multiple tags collided.
    Collision,
}

/// Q-algorithm parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QAlgorithm {
    /// Initial Q.
    pub q0: u8,
    /// Step constant C (0.1–0.5 typical).
    pub c: f64,
}

impl Default for QAlgorithm {
    fn default() -> Self {
        QAlgorithm { q0: 4, c: 0.3 }
    }
}

impl QAlgorithm {
    /// These parameters as an [`AntiCollision`] policy.
    pub fn policy(self) -> AdaptiveQ {
        AdaptiveQ::new(self)
    }
}

/// Inventory statistics for one round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundStats {
    /// Slots with no reply.
    pub empty: usize,
    /// Slots with a clean single reply.
    pub singles: usize,
    /// Slots with collisions.
    pub collisions: usize,
    /// Multi-reply slots resolved by capture (also counted in `singles`).
    pub captures: usize,
}

impl RoundStats {
    /// Total slots in the round.
    pub fn slots(&self) -> usize {
        self.empty + self.singles + self.collisions
    }
}

/// Result of [`Reader::inventory_all`] (and the population fast path in
/// [`crate::population`]): the EPCs read, per-round diagnostics, and
/// whether the inventory actually finished or just ran out of rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct InventoryOutcome {
    /// Unique EPCs read, in first-read order.
    pub epcs: Vec<Vec<bool>>,
    /// Per-round slot tallies, one entry per executed round.
    pub rounds: Vec<RoundStats>,
    /// `true` when every target tag was read; `false` means the round
    /// budget ran out first.
    pub terminated: bool,
}

impl InventoryOutcome {
    /// Rounds needed to complete the inventory (`None` if it never did).
    pub fn rounds_to_full(&self) -> Option<usize> {
        self.terminated.then_some(self.rounds.len())
    }

    /// Total protocol slots across all rounds.
    pub fn total_slots(&self) -> usize {
        self.rounds.iter().map(RoundStats::slots).sum()
    }

    /// Total collision slots across all rounds.
    pub fn total_collisions(&self) -> usize {
        self.rounds.iter().map(|r| r.collisions).sum()
    }

    /// Total capture-resolved slots across all rounds.
    pub fn total_captures(&self) -> usize {
        self.rounds.iter().map(|r| r.captures).sum()
    }
}

/// A Gen2 reader running inventory rounds.
#[derive(Debug)]
pub struct Reader {
    session: Session,
    policy: Box<dyn AntiCollision>,
    capture: Option<CaptureModel>,
}

impl Reader {
    /// Creates a reader with the classic Gen2 adaptive Q-algorithm.
    pub fn new(session: Session, q_alg: QAlgorithm) -> Self {
        Self::with_policy(session, Box::new(q_alg.policy()))
    }

    /// Creates a reader driving rounds through an arbitrary
    /// anti-collision policy.
    pub fn with_policy(session: Session, policy: Box<dyn AntiCollision>) -> Self {
        Reader {
            session,
            policy,
            capture: None,
        }
    }

    /// Arms capture-effect arbitration for multi-reply slots.
    pub fn set_capture(&mut self, capture: CaptureModel) {
        self.capture = Some(capture);
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Current integer Q.
    pub fn q(&self) -> u8 {
        self.policy.choose_q()
    }

    /// Builds the Query command for the next round.
    pub fn query(&self) -> Command {
        Command::Query {
            dr: DivideRatio::Dr8,
            m: TagEncoding::Fm0,
            trext: false,
            session: self.session,
            q: self.q(),
        }
    }

    /// Feeds a slot outcome to the anti-collision policy.
    pub fn update_q(&mut self, outcome: &SlotOutcome) {
        self.policy.on_slot_outcome(outcome);
    }

    /// Runs one full inventory round against a tag population. Returns the
    /// slot outcomes in order.
    ///
    /// All tags receive every command (they share the channel); the reader
    /// observes the superposition: zero replies = empty, one = decodable,
    /// more = collision — unless an armed [`CaptureModel`] lets the
    /// strongest reply through.
    pub fn run_round(&mut self, tags: &mut [Tag]) -> (Vec<SlotOutcome>, RoundStats) {
        let query = self.query();
        let n_slots = 1usize << self.q();
        let mut outcomes = Vec::with_capacity(n_slots);
        let mut stats = RoundStats::default();

        // Slot 0: the Query itself.
        let mut replies: Vec<(usize, u16)> = Vec::new();
        for (i, tag) in tags.iter_mut().enumerate() {
            if let TagReply::Rn16(rn) = tag.process(&query) {
                replies.push((i, rn));
            }
        }
        let outcome = self.resolve_slot(&replies, tags, &mut stats);
        self.update_q(&outcome);
        stats.tally(&outcome);
        outcomes.push(outcome);

        // Remaining slots via QueryRep.
        for _ in 1..n_slots {
            let rep = Command::QueryRep {
                session: self.session,
            };
            let mut replies: Vec<(usize, u16)> = Vec::new();
            for (i, tag) in tags.iter_mut().enumerate() {
                if let TagReply::Rn16(rn) = tag.process(&rep) {
                    replies.push((i, rn));
                }
            }
            let outcome = self.resolve_slot(&replies, tags, &mut stats);
            self.update_q(&outcome);
            stats.tally(&outcome);
            outcomes.push(outcome);
        }
        self.policy.on_round_end(&stats);
        (outcomes, stats)
    }

    /// Inventories a population to completion (bounded rounds), returning
    /// the unique EPCs read plus per-round diagnostics and whether the
    /// population was fully read before the round budget expired.
    pub fn inventory_all(&mut self, tags: &mut [Tag], max_rounds: usize) -> InventoryOutcome {
        let mut out = InventoryOutcome {
            epcs: Vec::new(),
            rounds: Vec::new(),
            terminated: false,
        };
        for _ in 0..max_rounds {
            let (outcomes, stats) = self.run_round(tags);
            out.rounds.push(stats);
            for o in outcomes {
                if let SlotOutcome::Inventoried(epc) = o {
                    if !out.epcs.contains(&epc) {
                        out.epcs.push(epc);
                    }
                }
            }
            if out.epcs.len() == tags.len() {
                out.terminated = true;
                break;
            }
        }
        out
    }

    /// ACKs a single replier and checks the EPC reply's CRC.
    fn ack_one(idx: usize, rn: u16, tags: &mut [Tag]) -> SlotOutcome {
        match tags[idx].process(&Command::Ack { rn16: rn }) {
            TagReply::Epc(bits) => {
                if crate::crc::check_crc16(&bits) {
                    SlotOutcome::Inventoried(bits[16..bits.len() - 16].to_vec())
                } else {
                    SlotOutcome::Empty
                }
            }
            _ => SlotOutcome::Empty,
        }
    }

    fn resolve_slot(
        &mut self,
        replies: &[(usize, u16)],
        tags: &mut [Tag],
        stats: &mut RoundStats,
    ) -> SlotOutcome {
        match replies {
            [] => SlotOutcome::Empty,
            [(idx, rn)] => Self::ack_one(*idx, *rn, tags),
            _ => {
                if let Some(cap) = self.capture.as_mut() {
                    let repliers: Vec<usize> = replies.iter().map(|&(i, _)| i).collect();
                    if let Some(k) = cap.arbitrate(&repliers) {
                        let (idx, rn) = replies[k];
                        let outcome = Self::ack_one(idx, rn, tags);
                        if matches!(outcome, SlotOutcome::Inventoried(_)) {
                            stats.captures += 1;
                        }
                        return outcome;
                    }
                }
                SlotOutcome::Collision
            }
        }
    }
}

impl RoundStats {
    pub(crate) fn tally(&mut self, o: &SlotOutcome) {
        match o {
            SlotOutcome::Empty => self.empty += 1,
            SlotOutcome::Inventoried(_) => self.singles += 1,
            SlotOutcome::Collision => self.collisions += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anticollision::FixedQ;
    use ivn_runtime::rng::StdRng;

    fn make_tags(n: usize) -> Vec<Tag> {
        (0..n)
            .map(|i| {
                let mut t = Tag::with_epc96(0x1000 + i as u128, 100 + i as u64);
                t.set_powered(true);
                t
            })
            .collect()
    }

    #[test]
    fn single_tag_inventoried_in_q0_round() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 0, c: 0.3 });
        let mut tags = make_tags(1);
        let (outcomes, stats) = reader.run_round(&mut tags);
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(outcomes[0], SlotOutcome::Inventoried(_)));
        assert_eq!(stats.singles, 1);
        assert_eq!(stats.captures, 0);
    }

    #[test]
    fn inventoried_epc_matches_tag() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 0, c: 0.3 });
        let mut tags = make_tags(1);
        let expected = tags[0].epc().to_vec();
        let (outcomes, _) = reader.run_round(&mut tags);
        match &outcomes[0] {
            SlotOutcome::Inventoried(epc) => assert_eq!(*epc, expected),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn two_tags_collide_at_q0() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 0, c: 0.3 });
        let mut tags = make_tags(2);
        let (outcomes, stats) = reader.run_round(&mut tags);
        assert_eq!(outcomes[0], SlotOutcome::Collision);
        assert_eq!(stats.collisions, 1);
    }

    #[test]
    fn capture_breaks_q0_collision_when_one_tag_dominates() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 0, c: 0.3 });
        reader.set_capture(CaptureModel::new(
            vec![1000.0, 1.0],
            6.0,
            0.0,
            StdRng::seed_from_u64(1),
        ));
        let mut tags = make_tags(2);
        let expected = tags[0].epc().to_vec();
        let (outcomes, stats) = reader.run_round(&mut tags);
        assert_eq!(outcomes[0], SlotOutcome::Inventoried(expected));
        assert_eq!(stats.captures, 1);
        assert_eq!(stats.singles, 1);
        assert_eq!(stats.collisions, 0);
    }

    #[test]
    fn balanced_powers_still_collide_under_capture() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 0, c: 0.3 });
        reader.set_capture(CaptureModel::new(
            vec![1.0, 1.0],
            6.0,
            0.0,
            StdRng::seed_from_u64(1),
        ));
        let mut tags = make_tags(2);
        let (outcomes, stats) = reader.run_round(&mut tags);
        assert_eq!(outcomes[0], SlotOutcome::Collision);
        assert_eq!(stats.captures, 0);
    }

    #[test]
    fn population_inventoried_with_slotting() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 4, c: 0.3 });
        let mut tags = make_tags(8);
        let out = reader.inventory_all(&mut tags, 50);
        assert_eq!(out.epcs.len(), 8, "inventoried {} of 8", out.epcs.len());
        assert!(out.terminated);
        assert_eq!(out.rounds_to_full(), Some(out.rounds.len()));
        assert!(out.total_slots() >= 8);
    }

    #[test]
    fn round_budget_exhaustion_reported_not_terminated() {
        // A 1-slot frame against 8 tags collides every round: the
        // diagnostics must say "budget ran out", not "all read".
        let mut reader = Reader::with_policy(Session::S0, Box::new(FixedQ::new(0)));
        let mut tags = make_tags(8);
        let out = reader.inventory_all(&mut tags, 5);
        assert!(!out.terminated);
        assert_eq!(out.rounds_to_full(), None);
        assert_eq!(out.rounds.len(), 5);
        assert_eq!(out.total_collisions(), 5);
    }

    #[test]
    fn q_adapts_up_on_collisions_down_on_empties() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 4, c: 0.5 });
        let q_before = reader.q();
        reader.update_q(&SlotOutcome::Collision);
        reader.update_q(&SlotOutcome::Collision);
        assert!(reader.q() > q_before);
        let mut reader2 = Reader::new(Session::S0, QAlgorithm { q0: 4, c: 0.5 });
        for _ in 0..4 {
            reader2.update_q(&SlotOutcome::Empty);
        }
        assert_eq!(reader2.q(), 2);
    }

    #[test]
    fn q_clamps_at_bounds() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 0, c: 0.5 });
        reader.update_q(&SlotOutcome::Empty);
        assert_eq!(reader.q(), 0);
        let mut reader2 = Reader::new(Session::S0, QAlgorithm { q0: 15, c: 0.5 });
        reader2.update_q(&SlotOutcome::Collision);
        assert_eq!(reader2.q(), 15);
    }

    #[test]
    fn unpowered_population_reads_nothing() {
        let mut reader = Reader::new(Session::S0, QAlgorithm::default());
        let mut tags: Vec<Tag> = (0..3).map(|i| Tag::with_epc96(i, i as u64)).collect();
        let out = reader.inventory_all(&mut tags, 5);
        assert!(out.epcs.is_empty());
        assert!(!out.terminated);
    }

    #[test]
    fn select_filters_population() {
        // Park one of two tags via Select, then only the other is read.
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 2, c: 0.3 });
        let mut tags = make_tags(2);
        let keep_epc = tags[0].epc().to_vec();
        let mask = keep_epc[..16].to_vec();
        // EPCs 0x1000 and 0x1001 share a 16-bit prefix? They differ only in
        // low bits, so the 16-bit prefix (all zeros) matches both — use a
        // full-length mask instead.
        let mask = if tags[1].epc()[..mask.len()] == mask[..] {
            keep_epc.clone()
        } else {
            mask
        };
        let sel = Command::Select { mask };
        for t in tags.iter_mut() {
            t.process(&sel);
        }
        let out = reader.inventory_all(&mut tags, 30);
        assert_eq!(out.epcs.len(), 1);
        assert_eq!(out.epcs[0], keep_epc);
    }
}
