//! Reader-side inventory logic with the adaptive Q algorithm.
//!
//! Drives rounds of Query/QueryRep against a population of tags, resolving
//! slots into empty / single / collision outcomes and adapting Q with the
//! standard Gen2 Q-algorithm (floating-point Qfp, ±C steps). The physical
//! decoding happens elsewhere (ivn-core's out-of-band reader); here the
//! protocol logic is exercised against [`crate::tag::Tag`] objects
//! directly, which is how the protocol-level tests and the multi-sensor
//! experiments run.

use crate::commands::{Command, DivideRatio, Session, TagEncoding};
use crate::tag::{Tag, TagReply};

/// Outcome of one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No tag replied.
    Empty,
    /// Exactly one tag replied and was inventoried: its EPC bits.
    Inventoried(Vec<bool>),
    /// Multiple tags collided.
    Collision,
}

/// Q-algorithm parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QAlgorithm {
    /// Initial Q.
    pub q0: u8,
    /// Step constant C (0.1–0.5 typical).
    pub c: f64,
}

impl Default for QAlgorithm {
    fn default() -> Self {
        QAlgorithm { q0: 4, c: 0.3 }
    }
}

/// Inventory statistics for one round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundStats {
    /// Slots with no reply.
    pub empty: usize,
    /// Slots with a clean single reply.
    pub singles: usize,
    /// Slots with collisions.
    pub collisions: usize,
}

/// A Gen2 reader running inventory rounds.
#[derive(Debug, Clone)]
pub struct Reader {
    session: Session,
    q_alg: QAlgorithm,
    qfp: f64,
}

impl Reader {
    /// Creates a reader.
    pub fn new(session: Session, q_alg: QAlgorithm) -> Self {
        Reader {
            session,
            q_alg,
            qfp: q_alg.q0 as f64,
        }
    }

    /// Current integer Q.
    pub fn q(&self) -> u8 {
        (self.qfp.round().clamp(0.0, 15.0)) as u8
    }

    /// Builds the Query command for the next round.
    pub fn query(&self) -> Command {
        Command::Query {
            dr: DivideRatio::Dr8,
            m: TagEncoding::Fm0,
            trext: false,
            session: self.session,
            q: self.q(),
        }
    }

    /// Updates Qfp from a slot outcome per the Gen2 Q-algorithm.
    pub fn update_q(&mut self, outcome: &SlotOutcome) {
        match outcome {
            SlotOutcome::Empty => self.qfp = (self.qfp - self.q_alg.c).max(0.0),
            SlotOutcome::Collision => self.qfp = (self.qfp + self.q_alg.c).min(15.0),
            SlotOutcome::Inventoried(_) => {}
        }
    }

    /// Runs one full inventory round against a tag population. Returns the
    /// slot outcomes in order.
    ///
    /// All tags receive every command (they share the channel); the reader
    /// observes the superposition: zero replies = empty, one = decodable,
    /// more = collision.
    pub fn run_round(&mut self, tags: &mut [Tag]) -> (Vec<SlotOutcome>, RoundStats) {
        let query = self.query();
        let n_slots = 1usize << self.q();
        let mut outcomes = Vec::with_capacity(n_slots);
        let mut stats = RoundStats::default();

        // Slot 0: the Query itself.
        let mut replies: Vec<(usize, u16)> = Vec::new();
        for (i, tag) in tags.iter_mut().enumerate() {
            if let TagReply::Rn16(rn) = tag.process(&query) {
                replies.push((i, rn));
            }
        }
        let outcome = self.resolve_slot(&replies, tags);
        self.update_q(&outcome);
        stats.tally(&outcome);
        outcomes.push(outcome);

        // Remaining slots via QueryRep.
        for _ in 1..n_slots {
            let rep = Command::QueryRep {
                session: self.session,
            };
            let mut replies: Vec<(usize, u16)> = Vec::new();
            for (i, tag) in tags.iter_mut().enumerate() {
                if let TagReply::Rn16(rn) = tag.process(&rep) {
                    replies.push((i, rn));
                }
            }
            let outcome = self.resolve_slot(&replies, tags);
            self.update_q(&outcome);
            stats.tally(&outcome);
            outcomes.push(outcome);
        }
        (outcomes, stats)
    }

    /// Inventories a population to completion (bounded rounds), returning
    /// the set of unique EPCs read.
    pub fn inventory_all(&mut self, tags: &mut [Tag], max_rounds: usize) -> Vec<Vec<bool>> {
        let mut seen: Vec<Vec<bool>> = Vec::new();
        for _ in 0..max_rounds {
            let (outcomes, _) = self.run_round(tags);
            for o in outcomes {
                if let SlotOutcome::Inventoried(epc) = o {
                    if !seen.contains(&epc) {
                        seen.push(epc);
                    }
                }
            }
            if seen.len() == tags.len() {
                break;
            }
        }
        seen
    }

    fn resolve_slot(&self, replies: &[(usize, u16)], tags: &mut [Tag]) -> SlotOutcome {
        match replies {
            [] => SlotOutcome::Empty,
            [(idx, rn)] => {
                // ACK the single responder; it answers with its EPC.
                match tags[*idx].process(&Command::Ack { rn16: *rn }) {
                    TagReply::Epc(bits) => {
                        if crate::crc::check_crc16(&bits) {
                            SlotOutcome::Inventoried(bits[16..bits.len() - 16].to_vec())
                        } else {
                            SlotOutcome::Empty
                        }
                    }
                    _ => SlotOutcome::Empty,
                }
            }
            _ => SlotOutcome::Collision,
        }
    }
}

impl RoundStats {
    fn tally(&mut self, o: &SlotOutcome) {
        match o {
            SlotOutcome::Empty => self.empty += 1,
            SlotOutcome::Inventoried(_) => self.singles += 1,
            SlotOutcome::Collision => self.collisions += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_tags(n: usize) -> Vec<Tag> {
        (0..n)
            .map(|i| {
                let mut t = Tag::with_epc96(0x1000 + i as u128, 100 + i as u64);
                t.set_powered(true);
                t
            })
            .collect()
    }

    #[test]
    fn single_tag_inventoried_in_q0_round() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 0, c: 0.3 });
        let mut tags = make_tags(1);
        let (outcomes, stats) = reader.run_round(&mut tags);
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(outcomes[0], SlotOutcome::Inventoried(_)));
        assert_eq!(stats.singles, 1);
    }

    #[test]
    fn inventoried_epc_matches_tag() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 0, c: 0.3 });
        let mut tags = make_tags(1);
        let expected = tags[0].epc().to_vec();
        let (outcomes, _) = reader.run_round(&mut tags);
        match &outcomes[0] {
            SlotOutcome::Inventoried(epc) => assert_eq!(*epc, expected),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn two_tags_collide_at_q0() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 0, c: 0.3 });
        let mut tags = make_tags(2);
        let (outcomes, stats) = reader.run_round(&mut tags);
        assert_eq!(outcomes[0], SlotOutcome::Collision);
        assert_eq!(stats.collisions, 1);
    }

    #[test]
    fn population_inventoried_with_slotting() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 4, c: 0.3 });
        let mut tags = make_tags(8);
        let seen = reader.inventory_all(&mut tags, 50);
        assert_eq!(seen.len(), 8, "inventoried {} of 8", seen.len());
    }

    #[test]
    fn q_adapts_up_on_collisions_down_on_empties() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 4, c: 0.5 });
        let q_before = reader.q();
        reader.update_q(&SlotOutcome::Collision);
        reader.update_q(&SlotOutcome::Collision);
        assert!(reader.qfp > q_before as f64);
        let mut reader2 = Reader::new(Session::S0, QAlgorithm { q0: 4, c: 0.5 });
        for _ in 0..4 {
            reader2.update_q(&SlotOutcome::Empty);
        }
        assert!(reader2.qfp < 4.0);
        assert_eq!(reader2.q(), 2);
    }

    #[test]
    fn q_clamps_at_bounds() {
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 0, c: 0.5 });
        reader.update_q(&SlotOutcome::Empty);
        assert_eq!(reader.q(), 0);
        let mut reader2 = Reader::new(Session::S0, QAlgorithm { q0: 15, c: 0.5 });
        reader2.update_q(&SlotOutcome::Collision);
        assert_eq!(reader2.q(), 15);
    }

    #[test]
    fn unpowered_population_reads_nothing() {
        let mut reader = Reader::new(Session::S0, QAlgorithm::default());
        let mut tags: Vec<Tag> = (0..3).map(|i| Tag::with_epc96(i, i as u64)).collect();
        let seen = reader.inventory_all(&mut tags, 5);
        assert!(seen.is_empty());
    }

    #[test]
    fn select_filters_population() {
        // Park one of two tags via Select, then only the other is read.
        let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 2, c: 0.3 });
        let mut tags = make_tags(2);
        let keep_epc = tags[0].epc().to_vec();
        let mask = keep_epc[..16].to_vec();
        // EPCs 0x1000 and 0x1001 share a 16-bit prefix? They differ only in
        // low bits, so the 16-bit prefix (all zeros) matches both — use a
        // full-length mask instead.
        let mask = if tags[1].epc()[..mask.len()] == mask[..] {
            keep_epc.clone()
        } else {
            mask
        };
        let sel = Command::Select { mask };
        for t in tags.iter_mut() {
            t.process(&sel);
        }
        let seen = reader.inventory_all(&mut tags, 30);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0], keep_epc);
    }
}
