//! Gen2 reader command codecs.
//!
//! Bit-level serialization of the command subset IVN needs: Query (opens
//! an inventory round), QueryRep / QueryAdjust (advance it), ACK
//! (acknowledge an RN16), ReqRN (handle request), and a simplified Select
//! (the multi-sensor addressing mechanism §3.7 suggests).

use crate::crc::{append_crc16, append_crc5, bits_to_u64, check_crc16, check_crc5};

/// Divide-ratio field of Query (sets BLF together with TRcal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivideRatio {
    /// DR = 8.
    Dr8,
    /// DR = 64/3.
    Dr64Over3,
}

impl DivideRatio {
    /// Numeric ratio.
    pub fn value(self) -> f64 {
        match self {
            DivideRatio::Dr8 => 8.0,
            DivideRatio::Dr64Over3 => 64.0 / 3.0,
        }
    }
}

/// Tag→reader modulation format requested by Query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagEncoding {
    /// FM0 baseband (the paper's configuration).
    Fm0,
    /// Miller subcarrier, 2 cycles per symbol.
    Miller2,
    /// Miller subcarrier, 4 cycles per symbol.
    Miller4,
    /// Miller subcarrier, 8 cycles per symbol.
    Miller8,
}

impl TagEncoding {
    fn to_bits(self) -> [bool; 2] {
        match self {
            TagEncoding::Fm0 => [false, false],
            TagEncoding::Miller2 => [false, true],
            TagEncoding::Miller4 => [true, false],
            TagEncoding::Miller8 => [true, true],
        }
    }

    fn from_bits(b: [bool; 2]) -> Self {
        match b {
            [false, false] => TagEncoding::Fm0,
            [false, true] => TagEncoding::Miller2,
            [true, false] => TagEncoding::Miller4,
            [true, true] => TagEncoding::Miller8,
        }
    }
}

/// Inventory session flag (S0–S3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Session {
    /// Session 0.
    S0,
    /// Session 1.
    S1,
    /// Session 2.
    S2,
    /// Session 3.
    S3,
}

impl Session {
    fn to_bits(self) -> [bool; 2] {
        match self {
            Session::S0 => [false, false],
            Session::S1 => [false, true],
            Session::S2 => [true, false],
            Session::S3 => [true, true],
        }
    }

    fn from_bits(b: [bool; 2]) -> Self {
        match b {
            [false, false] => Session::S0,
            [false, true] => Session::S1,
            [true, false] => Session::S2,
            [true, true] => Session::S3,
        }
    }
}

/// A reader command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Opens an inventory round with 2^q slots.
    Query {
        /// Divide ratio (BLF = DR / TRcal).
        dr: DivideRatio,
        /// Requested tag encoding.
        m: TagEncoding,
        /// Pilot-tone request (TRext).
        trext: bool,
        /// Inventory session.
        session: Session,
        /// Slot-count exponent, 0–15.
        q: u8,
    },
    /// Advances to the next slot in the round.
    QueryRep {
        /// Session of the round being advanced.
        session: Session,
    },
    /// Adjusts Q mid-round: -1, 0, or +1.
    QueryAdjust {
        /// Session of the round being adjusted.
        session: Session,
        /// Change to Q (must be −1, 0, or 1).
        updn: i8,
    },
    /// Acknowledges a tag's RN16.
    Ack {
        /// The RN16 echoed back to the tag.
        rn16: u16,
    },
    /// Requests a new handle from an acknowledged tag.
    ReqRn {
        /// The RN16 of the acknowledged tag.
        rn16: u16,
    },
    /// Simplified Select: addresses tags whose EPC matches `mask` (the
    /// paper's §3.7 multi-sensor mechanism). Non-matching tags deassert.
    Select {
        /// EPC prefix mask to match.
        mask: Vec<bool>,
    },
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandError {
    /// Not enough bits for any command.
    TooShort,
    /// Unknown opcode prefix.
    UnknownOpcode,
    /// A CRC failed.
    BadCrc,
    /// Field out of range.
    BadField,
}

impl Command {
    /// Serializes to on-air bits (MSB first), including CRCs where the
    /// spec requires them.
    pub fn encode(&self) -> Vec<bool> {
        match self {
            Command::Query {
                dr,
                m,
                trext,
                session,
                q,
            } => {
                assert!(*q <= 15, "Q must be 0..=15");
                let mut bits = vec![true, false, false, false]; // opcode 1000
                bits.push(matches!(dr, DivideRatio::Dr64Over3));
                bits.extend_from_slice(&m.to_bits());
                bits.push(*trext);
                // Sel field: all tags (00).
                bits.extend_from_slice(&[false, false]);
                bits.extend_from_slice(&session.to_bits());
                // Target A (0).
                bits.push(false);
                for i in (0..4).rev() {
                    bits.push((q >> i) & 1 == 1);
                }
                append_crc5(&mut bits);
                bits
            }
            Command::QueryRep { session } => {
                let mut bits = vec![false, false]; // opcode 00
                bits.extend_from_slice(&session.to_bits());
                bits
            }
            Command::QueryAdjust { session, updn } => {
                assert!((-1..=1).contains(updn), "updn must be -1, 0 or 1");
                let mut bits = vec![true, false, false, true]; // opcode 1001
                bits.extend_from_slice(&session.to_bits());
                let code: [bool; 3] = match updn {
                    1 => [true, true, false],
                    0 => [false, false, false],
                    _ => [false, true, true],
                };
                bits.extend_from_slice(&code);
                bits
            }
            Command::Ack { rn16 } => {
                let mut bits = vec![false, true]; // opcode 01
                for i in (0..16).rev() {
                    bits.push((rn16 >> i) & 1 == 1);
                }
                bits
            }
            Command::ReqRn { rn16 } => {
                let mut bits = vec![true, true, false, false, false, false, false, true];
                for i in (0..16).rev() {
                    bits.push((rn16 >> i) & 1 == 1);
                }
                append_crc16(&mut bits);
                bits
            }
            Command::Select { mask } => {
                let mut bits = vec![true, false, true, false]; // opcode 1010
                                                               // 8-bit mask length then the mask itself.
                assert!(mask.len() <= 255, "mask too long");
                for i in (0..8).rev() {
                    bits.push((mask.len() as u8 >> i) & 1 == 1);
                }
                bits.extend_from_slice(mask);
                append_crc16(&mut bits);
                bits
            }
        }
    }

    /// Parses on-air bits back into a command, verifying CRCs.
    pub fn decode(bits: &[bool]) -> Result<Command, CommandError> {
        if bits.len() < 4 {
            return Err(CommandError::TooShort);
        }
        // Two-bit opcodes first.
        match (bits[0], bits[1]) {
            (false, false) => {
                if bits.len() != 4 {
                    return Err(CommandError::BadField);
                }
                return Ok(Command::QueryRep {
                    session: Session::from_bits([bits[2], bits[3]]),
                });
            }
            (false, true) => {
                if bits.len() != 18 {
                    return Err(CommandError::BadField);
                }
                return Ok(Command::Ack {
                    rn16: bits_to_u64(&bits[2..18]) as u16,
                });
            }
            _ => {}
        }
        let op4 = (bits[0], bits[1], bits[2], bits[3]);
        match op4 {
            (true, false, false, false) => {
                // Query: 4+1+2+1+2+2+1+4+5 = 22 bits.
                if bits.len() != 22 {
                    return Err(CommandError::BadField);
                }
                if !check_crc5(bits) {
                    return Err(CommandError::BadCrc);
                }
                let dr = if bits[4] {
                    DivideRatio::Dr64Over3
                } else {
                    DivideRatio::Dr8
                };
                let m = TagEncoding::from_bits([bits[5], bits[6]]);
                let trext = bits[7];
                let session = Session::from_bits([bits[10], bits[11]]);
                let q = bits_to_u64(&bits[13..17]) as u8;
                Ok(Command::Query {
                    dr,
                    m,
                    trext,
                    session,
                    q,
                })
            }
            (true, false, false, true) => {
                if bits.len() != 9 {
                    return Err(CommandError::BadField);
                }
                let session = Session::from_bits([bits[4], bits[5]]);
                let updn = match (bits[6], bits[7], bits[8]) {
                    (true, true, false) => 1,
                    (false, false, false) => 0,
                    (false, true, true) => -1,
                    _ => return Err(CommandError::BadField),
                };
                Ok(Command::QueryAdjust { session, updn })
            }
            (true, false, true, false) => {
                if bits.len() < 28 || !check_crc16(bits) {
                    return Err(CommandError::BadCrc);
                }
                let len = bits_to_u64(&bits[4..12]) as usize;
                if bits.len() != 12 + len + 16 {
                    return Err(CommandError::BadField);
                }
                Ok(Command::Select {
                    mask: bits[12..12 + len].to_vec(),
                })
            }
            (true, true, false, false) => {
                // ReqRN: 8 + 16 + 16 = 40 bits.
                if bits.len() != 40 {
                    return Err(CommandError::BadField);
                }
                if !check_crc16(bits) {
                    return Err(CommandError::BadCrc);
                }
                Ok(Command::ReqRn {
                    rn16: bits_to_u64(&bits[8..24]) as u16,
                })
            }
            _ => Err(CommandError::UnknownOpcode),
        }
    }

    /// Counts `(zeros, ones)` in the encoded form — used for on-air
    /// duration budgeting.
    pub fn bit_census(&self) -> (usize, usize) {
        let bits = self.encode();
        let ones = bits.iter().filter(|&&b| b).count();
        (bits.len() - ones, ones)
    }

    /// Whether this command opens a frame with the full preamble (TRcal).
    pub fn needs_trcal(&self) -> bool {
        matches!(self, Command::Query { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_query(q: u8) -> Command {
        Command::Query {
            dr: DivideRatio::Dr8,
            m: TagEncoding::Fm0,
            trext: false,
            session: Session::S0,
            q,
        }
    }

    #[test]
    fn query_roundtrip_all_q() {
        for q in 0..=15 {
            let cmd = default_query(q);
            let bits = cmd.encode();
            assert_eq!(bits.len(), 22);
            assert_eq!(Command::decode(&bits).unwrap(), cmd);
        }
    }

    #[test]
    fn query_roundtrip_field_combinations() {
        for dr in [DivideRatio::Dr8, DivideRatio::Dr64Over3] {
            for m in [
                TagEncoding::Fm0,
                TagEncoding::Miller2,
                TagEncoding::Miller4,
                TagEncoding::Miller8,
            ] {
                for trext in [false, true] {
                    for session in [Session::S0, Session::S1, Session::S2, Session::S3] {
                        let cmd = Command::Query {
                            dr,
                            m,
                            trext,
                            session,
                            q: 4,
                        };
                        assert_eq!(Command::decode(&cmd.encode()).unwrap(), cmd);
                    }
                }
            }
        }
    }

    #[test]
    fn query_crc_protects() {
        let mut bits = default_query(3).encode();
        bits[10] = !bits[10];
        assert_eq!(Command::decode(&bits), Err(CommandError::BadCrc));
    }

    #[test]
    fn queryrep_and_ack_roundtrip() {
        for session in [Session::S0, Session::S3] {
            let cmd = Command::QueryRep { session };
            assert_eq!(Command::decode(&cmd.encode()).unwrap(), cmd);
        }
        for rn in [0u16, 0xFFFF, 0x1234, 0xA5A5] {
            let cmd = Command::Ack { rn16: rn };
            let bits = cmd.encode();
            assert_eq!(bits.len(), 18);
            assert_eq!(Command::decode(&bits).unwrap(), cmd);
        }
    }

    #[test]
    fn query_adjust_roundtrip() {
        for updn in [-1i8, 0, 1] {
            let cmd = Command::QueryAdjust {
                session: Session::S1,
                updn,
            };
            assert_eq!(Command::decode(&cmd.encode()).unwrap(), cmd);
        }
    }

    #[test]
    fn reqrn_roundtrip_and_crc() {
        let cmd = Command::ReqRn { rn16: 0xBEEF };
        let bits = cmd.encode();
        assert_eq!(bits.len(), 40);
        assert_eq!(Command::decode(&bits).unwrap(), cmd);
        let mut bad = bits.clone();
        bad[12] = !bad[12];
        assert_eq!(Command::decode(&bad), Err(CommandError::BadCrc));
    }

    #[test]
    fn select_roundtrip() {
        let mask = vec![true, false, true, true, false, false, true, false];
        let cmd = Command::Select { mask: mask.clone() };
        match Command::decode(&cmd.encode()).unwrap() {
            Command::Select { mask: m } => assert_eq!(m, mask),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn reject_garbage() {
        assert_eq!(Command::decode(&[]), Err(CommandError::TooShort));
        assert_eq!(
            Command::decode(&[true, true, true, true, false]),
            Err(CommandError::UnknownOpcode)
        );
        // Wrong-length query.
        assert_eq!(
            Command::decode(&default_query(1).encode()[..20]),
            Err(CommandError::BadField)
        );
    }

    #[test]
    fn census_and_trcal() {
        let cmd = default_query(0);
        let (z, o) = cmd.bit_census();
        assert_eq!(z + o, 22);
        assert!(cmd.needs_trcal());
        assert!(!Command::Ack { rn16: 1 }.needs_trcal());
    }
}
