//! Gen2 CRC-5 and CRC-16.
//!
//! * CRC-5: polynomial x⁵+x³+1 (0x09), preset `0b01001`, protects Query.
//! * CRC-16: CCITT polynomial x¹⁶+x¹²+x⁵+1 (0x1021), preset `0xFFFF`,
//!   final complement, protects EPC/PC words and ReqRN.
//!
//! Both operate MSB-first on bit slices, matching the over-the-air order.

/// Computes the Gen2 CRC-5 of a bit sequence (MSB first).
pub fn crc5(bits: &[bool]) -> u8 {
    let mut reg: u8 = 0b01001;
    for &bit in bits {
        let msb = (reg >> 4) & 1 == 1;
        reg = (reg << 1) & 0x1F;
        if msb != bit {
            // XOR with poly 0x09 after shifting out the MSB: taps at x³, x⁰.
            reg ^= 0x09;
        }
    }
    reg & 0x1F
}

/// Appends the 5 CRC bits (MSB first) to a command body.
pub fn append_crc5(bits: &mut Vec<bool>) {
    let c = crc5(bits);
    for i in (0..5).rev() {
        bits.push((c >> i) & 1 == 1);
    }
}

/// Verifies a sequence whose last 5 bits are its CRC-5.
pub fn check_crc5(bits: &[bool]) -> bool {
    if bits.len() < 5 {
        ivn_runtime::obs_count!("rfid.crc_failures", 1);
        return false;
    }
    let (body, tail) = bits.split_at(bits.len() - 5);
    let c = crc5(body);
    let ok = tail
        .iter()
        .enumerate()
        .all(|(i, &b)| ((c >> (4 - i)) & 1 == 1) == b);
    if !ok {
        ivn_runtime::obs_count!("rfid.crc_failures", 1);
    }
    ok
}

/// Computes the Gen2 CRC-16 (CCITT, preset 0xFFFF, complemented output)
/// of a bit sequence (MSB first).
pub fn crc16(bits: &[bool]) -> u16 {
    let mut reg: u16 = 0xFFFF;
    for &bit in bits {
        let msb = (reg >> 15) & 1 == 1;
        reg <<= 1;
        if msb != bit {
            reg ^= 0x1021;
        }
    }
    !reg
}

/// Appends the 16 CRC bits (MSB first).
pub fn append_crc16(bits: &mut Vec<bool>) {
    let c = crc16(bits);
    for i in (0..16).rev() {
        bits.push((c >> i) & 1 == 1);
    }
}

/// Verifies a sequence whose last 16 bits are its CRC-16.
pub fn check_crc16(bits: &[bool]) -> bool {
    if bits.len() < 16 {
        ivn_runtime::obs_count!("rfid.crc_failures", 1);
        return false;
    }
    let (body, tail) = bits.split_at(bits.len() - 16);
    let c = crc16(body);
    let ok = tail
        .iter()
        .enumerate()
        .all(|(i, &b)| ((c >> (15 - i)) & 1 == 1) == b);
    if !ok {
        ivn_runtime::obs_count!("rfid.crc_failures", 1);
    }
    ok
}

/// Converts a `u16` into 16 bits, MSB first. Convenience for EPC words.
pub fn u16_to_bits(v: u16) -> Vec<bool> {
    (0..16).rev().map(|i| (v >> i) & 1 == 1).collect()
}

/// Converts up to 64 bits (MSB first) into a `u64`.
///
/// # Panics
/// Panics if more than 64 bits are given.
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "too many bits for u64");
    bits.iter().fold(0u64, |acc, &b| (acc << 1) | b as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_of(v: u64, n: usize) -> Vec<bool> {
        (0..n).rev().map(|i| (v >> i) & 1 == 1).collect()
    }

    #[test]
    fn crc5_roundtrip_random_bodies() {
        for seed in 0..50u64 {
            let body = bits_of(seed.wrapping_mul(0x9E3779B97F4A7C15), 17);
            let mut framed = body.clone();
            append_crc5(&mut framed);
            assert_eq!(framed.len(), 22);
            assert!(check_crc5(&framed), "seed {seed}");
        }
    }

    #[test]
    fn crc5_detects_single_bit_errors() {
        let body = bits_of(0b10110100111010010, 17);
        let mut framed = body;
        append_crc5(&mut framed);
        for i in 0..framed.len() {
            let mut corrupted = framed.clone();
            corrupted[i] = !corrupted[i];
            assert!(!check_crc5(&corrupted), "missed flip at {i}");
        }
    }

    #[test]
    fn crc5_short_input_rejected() {
        assert!(!check_crc5(&[true, false]));
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE of ASCII "123456789" is 0x29B1; Gen2 inverts.
        let bytes = b"123456789";
        let bits: Vec<bool> = bytes
            .iter()
            .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
            .collect();
        assert_eq!(crc16(&bits), !0x29B1);
    }

    #[test]
    fn crc16_roundtrip_and_error_detection() {
        let body = bits_of(0xDEADBEEFCAFE, 48);
        let mut framed = body;
        append_crc16(&mut framed);
        assert!(check_crc16(&framed));
        for i in (0..framed.len()).step_by(7) {
            let mut corrupted = framed.clone();
            corrupted[i] = !corrupted[i];
            assert!(!check_crc16(&corrupted), "missed flip at {i}");
        }
        // Double-bit errors too (CCITT catches all 2-bit errors).
        let mut c2 = framed.clone();
        c2[3] = !c2[3];
        c2[40] = !c2[40];
        assert!(!check_crc16(&c2));
    }

    #[test]
    fn bit_conversions() {
        let bits = u16_to_bits(0xA5C3);
        assert_eq!(bits.len(), 16);
        assert_eq!(bits_to_u64(&bits), 0xA5C3);
        assert_eq!(bits_to_u64(&[]), 0);
        assert_eq!(bits_to_u64(&[true, false, true]), 5);
    }
}
