//! # ivn-rfid — EPC Gen2 backscatter protocol substrate
//!
//! A bit-accurate subset of the EPC UHF Gen2 air interface, enough to run
//! the paper's full communication loop:
//!
//! * [`crc`] — CRC-5 and CRC-16 exactly as Gen2 specifies them,
//! * [`pie`] — reader→tag pulse-interval encoding with delimiter /
//!   RTcal / TRcal preambles,
//! * [`commands`] — Query, QueryRep, QueryAdjust, ACK, Select, ReqRN
//!   codecs,
//! * [`fm0`] — tag→reader FM0 baseband coding, including the 12-bit
//!   extended preamble `110100100011` the paper correlates against (§6.2),
//! * [`miller`] — Miller subcarrier coding (M = 2/4/8),
//! * [`tag`] — the tag-side state machine with power-loss semantics,
//! * [`reader`] — inventory-round logic driven through the
//!   anti-collision seam,
//! * [`anticollision`] — the pluggable frame-sizing policies (adaptive
//!   Q, fixed Q, Schoute backlog estimation) and the capture-effect
//!   arbitration model,
//! * [`population`] — an O(tags + slots) inventory driver for
//!   population-scale experiments, bit-identical to the broadcast reader,
//! * [`backscatter`] — the physical reflection-coefficient model whose
//!   frequency-agnosticism makes the paper's out-of-band reader possible,
//! * [`link`] — link-timing budget (Tari, BLF, T1…T4) used to derive the
//!   ~800 µs query duration that constrains CIB's frequency plan.

pub mod anticollision;
pub mod backscatter;
pub mod commands;
pub mod crc;
pub mod epc;
pub mod fm0;
pub mod link;
pub mod miller;
pub mod pie;
pub mod population;
pub mod reader;
pub mod stream;
pub mod tag;

pub use commands::Command;
pub use tag::{Tag, TagState};

/// The paper's 12-bit FM0 preamble bit pattern, `110100100011` (§6.2).
pub const PAPER_PREAMBLE_BITS: [bool; 12] = [
    true, true, false, true, false, false, true, false, false, false, true, true,
];
