//! Streaming PIE rasterization and PIE/FM0 decode.
//!
//! The reader→tag command in the block pipeline is produced and
//! consumed block by block: [`RunRasterizer`] is a [`BlockSource`]
//! emitting the PIE amplitude profile without materializing it,
//! [`PieStreamDecoder`] measures notch intervals incrementally from
//! envelope blocks, and [`Fm0Decoder`] folds uplink baseband blocks
//! into bits, carrying partial symbols across block boundaries. The
//! whole-buffer APIs in [`crate::pie`] and [`crate::fm0`] are thin
//! wrappers over these cores (one maximal block), so batch and
//! streaming output are bit-identical by construction.

use crate::fm0::Fm0;
use crate::pie::{classify_intervals, LevelRuns, PieError};
use ivn_dsp::block::BlockSource;

/// Streams a run-length encoded PIE waveform as amplitude blocks.
///
/// Reproduces the exact sequential `t_edge` accumulation and
/// nearest-sample rounding of [`crate::pie::rasterize`], so the emitted
/// stream is identical at any block size.
#[derive(Debug, Clone)]
pub struct RunRasterizer {
    runs: LevelRuns,
    sample_rate: f64,
    low_level: f64,
    /// Next run to enter.
    run_idx: usize,
    /// Accumulated edge time of the current run, seconds.
    t_edge: f64,
    /// Absolute sample index the current run extends to.
    target: usize,
    level: f64,
    emitted: usize,
}

impl RunRasterizer {
    /// A source rasterizing `runs` (1.0 high / `low_level` low) at
    /// `sample_rate`.
    ///
    /// # Panics
    /// Panics on a non-positive sample rate.
    pub fn new(runs: LevelRuns, sample_rate: f64, low_level: f64) -> Self {
        assert!(sample_rate > 0.0);
        RunRasterizer {
            runs,
            sample_rate,
            low_level,
            run_idx: 0,
            t_edge: 0.0,
            target: 0,
            level: 0.0,
            emitted: 0,
        }
    }

    /// Samples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

impl BlockSource for RunRasterizer {
    type Item = f64;

    fn fill(&mut self, out: &mut Vec<f64>, max: usize) -> usize {
        let mut produced = 0usize;
        while produced < max {
            if self.emitted < self.target {
                let n = (self.target - self.emitted).min(max - produced);
                out.extend(std::iter::repeat(self.level).take(n));
                self.emitted += n;
                produced += n;
            } else if self.run_idx < self.runs.len() {
                let (high, dur) = self.runs[self.run_idx];
                self.run_idx += 1;
                self.t_edge += dur;
                self.target = (self.t_edge * self.sample_rate).round() as usize;
                self.level = if high { 1.0 } else { self.low_level };
            } else {
                break;
            }
        }
        produced
    }
}

/// Incremental PIE notch-interval decoder.
///
/// Unlike the whole-buffer [`crate::pie::decode_frame`], which folds
/// the envelope for its peak first, a streaming caller supplies the
/// threshold explicitly (e.g. half of a calibration pass's running
/// peak). Edge positions are the only retained state, so memory is
/// O(symbols in the frame), independent of the sample rate.
#[derive(Debug, Clone)]
pub struct PieStreamDecoder {
    thr: f64,
    dt: f64,
    /// Level state carried across blocks; `None` until the first sample
    /// (the first sample can never register an edge, matching batch).
    high: Option<bool>,
    edges: Vec<usize>,
    n: usize,
    peak: f64,
}

impl PieStreamDecoder {
    /// A decoder thresholding at `threshold` over samples at
    /// `sample_rate`.
    pub fn new(threshold: f64, sample_rate: f64) -> Self {
        PieStreamDecoder {
            thr: threshold,
            dt: 1.0 / sample_rate,
            high: None,
            edges: Vec::new(),
            n: 0,
            peak: 0.0,
        }
    }

    /// Scans one envelope block for falling edges (notch starts).
    ///
    /// Runs as two block passes instead of a per-sample state machine:
    /// a branch-free peak fold, then a level-run scan that hops from
    /// threshold crossing to threshold crossing (`position` over the
    /// remaining slice). The crossings found are exactly the per-sample
    /// `high → !now_high` transitions — a sample is `high` iff
    /// `v > thr`, so runs of equal level are skipped wholesale — and
    /// the first sample of a stream still never registers an edge (the
    /// carried state initializes to that sample's own level, as in the
    /// whole-buffer decoder).
    pub fn push(&mut self, block: &[f64]) {
        if block.is_empty() {
            return;
        }
        let thr = self.thr;
        let mut peak = self.peak;
        for &v in block {
            peak = peak.max(v);
        }
        self.peak = peak;
        let mut high = match self.high {
            Some(h) => h,
            None => block[0] > thr,
        };
        let mut i = 0usize;
        while i < block.len() {
            if high {
                // Falling edge: first sample at or below threshold.
                match block[i..].iter().position(|&v| !(v > thr)) {
                    Some(off) => {
                        self.edges.push(self.n + i + off);
                        high = false;
                        i += off + 1;
                    }
                    None => break,
                }
            } else {
                // Rising transition: no edge is recorded, but the level
                // state flips so the next fall registers.
                match block[i..].iter().position(|&v| v > thr) {
                    Some(off) => {
                        high = true;
                        i += off + 1;
                    }
                    None => break,
                }
            }
        }
        self.high = Some(high);
        self.n += block.len();
    }

    /// Classifies the accumulated notch intervals into bits — the back
    /// end shared with the whole-buffer decoder (no validation of the
    /// stream length; see [`Self::finish`]).
    pub fn classify(&self) -> Result<Vec<bool>, PieError> {
        // Falling edges mark notch starts. With the leading carrier,
        // edge 0 is the delimiter itself; the interval edge1→edge2 spans
        // the RTcal symbol, which self-calibrates the decoder.
        if self.edges.len() < 3 {
            return Err(PieError::NoPreamble);
        }
        let intervals: Vec<f64> = self
            .edges
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64 * self.dt)
            .collect();
        classify_intervals(&intervals)
    }

    /// Ends the stream: validates it the way [`crate::pie::decode_frame`]
    /// does (too-short / all-zero envelopes), classifies, and books the
    /// decode observability counters.
    pub fn finish(&self) -> Result<Vec<bool>, PieError> {
        let _span = ivn_runtime::span!("rfid.pie_decode_ns");
        let result = if self.n < 8 {
            Err(PieError::TooShort)
        } else if self.peak <= 0.0 {
            Err(PieError::NoPreamble)
        } else {
            self.classify()
        };
        match &result {
            Ok(bits) => ivn_runtime::obs_count!("rfid.pie_symbols_decoded", bits.len()),
            Err(_) => ivn_runtime::obs_count!("rfid.pie_decode_errors", 1),
        }
        result
    }

    /// Samples scanned so far.
    pub fn samples_seen(&self) -> usize {
        self.n
    }

    /// Running peak of the scanned envelope.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

/// Streaming FM0 decoder: carries the partial symbol across block
/// boundaries, discarding any trailing partial symbol at the end —
/// exactly the `chunks_exact` semantics of [`Fm0::decode`].
#[derive(Debug, Clone)]
pub struct Fm0Decoder {
    fm0: Fm0,
    /// The in-progress symbol (< 2·samples_per_half samples).
    partial: Vec<f64>,
    bits: Vec<bool>,
}

impl Fm0Decoder {
    /// A streaming decoder for the given codec.
    pub fn new(fm0: Fm0) -> Self {
        Fm0Decoder {
            partial: Vec::with_capacity(fm0.samples_per_symbol()),
            fm0,
            bits: Vec::new(),
        }
    }

    /// Folds one baseband block into bits.
    ///
    /// Whole symbols are decoded straight off the input slice
    /// (`chunks_exact`, no per-sample buffering); only a boundary
    /// symbol straddling the block edge goes through the carry buffer.
    /// The half-symbol sums run in the same sequential order either
    /// way, so the decoded bits are byte-identical at any block size.
    pub fn push(&mut self, block: &[f64]) {
        let _span = ivn_runtime::span!("rfid.fm0_decode_ns");
        let spb = self.fm0.samples_per_symbol();
        let half = self.fm0.samples_per_half;
        let mut decoded = 0usize;
        let mut rest = block;
        if !self.partial.is_empty() {
            let need = spb - self.partial.len();
            let take = need.min(rest.len());
            self.partial.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.partial.len() == spb {
                let first: f64 = self.partial[..half].iter().sum();
                let second: f64 = self.partial[half..].iter().sum();
                // Same sign across halves → data-1; flip → data-0.
                self.bits.push(first.signum() == second.signum());
                self.partial.clear();
                decoded += 1;
            }
        }
        let mut symbols = rest.chunks_exact(spb);
        for sym in &mut symbols {
            let first: f64 = sym[..half].iter().sum();
            let second: f64 = sym[half..].iter().sum();
            self.bits.push(first.signum() == second.signum());
            decoded += 1;
        }
        self.partial.extend_from_slice(symbols.remainder());
        ivn_runtime::obs_count!("rfid.fm0_symbols_decoded", decoded);
    }

    /// Bits decoded so far.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Ends the stream, discarding any trailing partial symbol.
    pub fn finish(self) -> Vec<bool> {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pie::{decode_frame, encode_frame, rasterize, PieParams};

    const FS: f64 = 4e6;

    #[test]
    fn rasterizer_matches_batch_any_block_size() {
        let p = PieParams::paper_defaults();
        let bits = vec![true, false, false, true, true, false, true];
        let runs = encode_frame(&bits, &p, true);
        let batch = rasterize(&runs, FS, 0.2);
        for block in [1usize, 7, 256, 4096] {
            let mut src = RunRasterizer::new(runs.clone(), FS, 0.2);
            let mut streamed = Vec::new();
            while src.fill(&mut streamed, block) > 0 {}
            assert_eq!(streamed.len(), batch.len(), "block {block}");
            let same = streamed
                .iter()
                .zip(&batch)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "block {block}");
            assert_eq!(src.emitted(), batch.len());
        }
    }

    #[test]
    fn pie_stream_decoder_matches_batch() {
        let p = PieParams::paper_defaults();
        let bits = vec![false, true, true, false, true, false, false, true];
        let runs = encode_frame(&bits, &p, true);
        let env = rasterize(&runs, FS, 0.1);
        let batch = decode_frame(&env, FS).expect("batch decode");
        for block in [1usize, 7, 256, 4096] {
            let mut dec = PieStreamDecoder::new(0.5, FS);
            for chunk in env.chunks(block) {
                dec.push(chunk);
            }
            assert_eq!(dec.finish().expect("stream decode"), batch, "block {block}");
            assert_eq!(dec.samples_seen(), env.len());
            assert_eq!(dec.peak(), 1.0);
        }
    }

    #[test]
    fn pie_stream_decoder_error_paths() {
        let short = PieStreamDecoder::new(0.5, FS);
        assert_eq!(short.finish(), Err(PieError::TooShort));
        let mut dark = PieStreamDecoder::new(0.5, FS);
        dark.push(&[0.0; 100]);
        assert_eq!(dark.finish(), Err(PieError::NoPreamble));
    }

    #[test]
    fn fm0_decoder_matches_batch_across_blocks() {
        let fm0 = Fm0::new(8);
        let bits = vec![true, false, false, true, true, false, true, true, false];
        let mut wave = fm0.encode(&bits);
        // Trailing partial symbol must be discarded, as in batch.
        wave.extend_from_slice(&[1.0; 5]);
        let batch = fm0.decode(&wave);
        for block in [1usize, 7, 256, 4096] {
            let mut dec = Fm0Decoder::new(fm0);
            for chunk in wave.chunks(block) {
                dec.push(chunk);
            }
            assert_eq!(dec.bits(), batch.as_slice(), "block {block}");
            assert_eq!(dec.finish(), batch, "block {block}");
        }
    }
}
