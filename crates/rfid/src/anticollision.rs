//! Pluggable anti-collision policies and capture-effect arbitration.
//!
//! The Gen2 reader has to pick a frame size (Q) for each inventory
//! round and adapt it from what the slots reveal: empties mean the
//! frame is too big, collisions mean it is too small. The [`AntiCollision`]
//! trait is that seam — [`crate::reader::Reader`] drives rounds through
//! it, so a new policy is one impl in one file:
//!
//! * [`AdaptiveQ`] — the standard Gen2 Q-algorithm (floating Qfp ± C per
//!   slot), exactly the behaviour the reader had before the seam existed;
//! * [`FixedQ`] — a constant-frame baseline, the control arm every
//!   adaptive policy is measured against;
//! * [`SchouteQ`] — a frame-by-frame backlog estimator: Schoute's
//!   result that under the Poisson/chi-squared occupancy model the
//!   expected backlog is ≈ 2.39 tags per observed collision slot, so the
//!   next frame is sized `Q = round(log2(2.39 · collisions))`.
//!
//! [`CaptureModel`] adds RN16 capture-effect arbitration on top of slot
//! resolution: when several tags reply in one slot, the strongest can
//! still be decoded if its received power exceeds the sum of the others
//! by a threshold. Per-tag mean powers come from the link budget; a
//! per-slot uniform fade (seeded from the `ivn-runtime` RNG, so rounds
//! stay fork-deterministic) decides each contest.

use crate::reader::{QAlgorithm, RoundStats, SlotOutcome};
use ivn_runtime::rng::{Rng, StdRng};

/// A frame-sizing policy for Gen2 inventory rounds.
///
/// The reader calls [`choose_q`](Self::choose_q) once at the start of a
/// round (the Query's Q field), [`on_slot_outcome`](Self::on_slot_outcome)
/// after every resolved slot, and [`on_round_end`](Self::on_round_end)
/// when the frame is exhausted — slot-reactive policies adapt in the
/// second hook, frame-by-frame estimators in the third.
pub trait AntiCollision: std::fmt::Debug + Send {
    /// Q for the next Query (frame size `2^Q` slots).
    fn choose_q(&self) -> u8;

    /// Per-slot feedback during a round.
    fn on_slot_outcome(&mut self, outcome: &SlotOutcome);

    /// End-of-round feedback with the frame's tallies.
    fn on_round_end(&mut self, stats: &RoundStats);

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// The Gen2 adaptive Q-algorithm behind the [`AntiCollision`] seam:
/// floating-point Qfp moves ±C per slot, clamped to [0, 15].
///
/// This is byte-for-byte the policy [`crate::reader::Reader`] applied
/// before the seam existed; `Reader::new` still wraps a [`QAlgorithm`]
/// in it, which is what keeps the pre-refactor goldens bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveQ {
    params: QAlgorithm,
    qfp: f64,
}

impl AdaptiveQ {
    /// Starts the policy at the parameter block's initial Q.
    pub fn new(params: QAlgorithm) -> Self {
        AdaptiveQ {
            params,
            qfp: params.q0 as f64,
        }
    }

    /// The floating-point Q (test introspection).
    pub fn qfp(&self) -> f64 {
        self.qfp
    }
}

impl AntiCollision for AdaptiveQ {
    fn choose_q(&self) -> u8 {
        (self.qfp.round().clamp(0.0, 15.0)) as u8
    }

    fn on_slot_outcome(&mut self, outcome: &SlotOutcome) {
        match outcome {
            SlotOutcome::Empty => self.qfp = (self.qfp - self.params.c).max(0.0),
            SlotOutcome::Collision => self.qfp = (self.qfp + self.params.c).min(15.0),
            SlotOutcome::Inventoried(_) => {}
        }
    }

    fn on_round_end(&mut self, _stats: &RoundStats) {}

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// A constant frame size: Q never moves. The baseline arm of every
/// policy comparison — optimal only when the population happens to match
/// `2^Q`, pathological everywhere else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedQ {
    q: u8,
}

impl FixedQ {
    /// A fixed frame of `2^q` slots (q clamped to 15).
    pub fn new(q: u8) -> Self {
        FixedQ { q: q.min(15) }
    }
}

impl AntiCollision for FixedQ {
    fn choose_q(&self) -> u8 {
        self.q
    }

    fn on_slot_outcome(&mut self, _outcome: &SlotOutcome) {}

    fn on_round_end(&mut self, _stats: &RoundStats) {}

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Schoute's expected backlog per observed collision slot under the
/// Poisson occupancy model (the chi-squared frame-occupancy estimate):
/// each collision slot hides ≈ 2.39 unresolved tags.
pub const SCHOUTE_BACKLOG_PER_COLLISION: f64 = 2.39;

/// Frame-by-frame backlog estimation: after each round the remaining
/// population is estimated as `2.39 × collisions` and the next frame is
/// sized to match (`Q = round(log2(backlog))`). Collision-free frames
/// shrink Q one step at a time toward the terminal Q=0 round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchouteQ {
    q: u8,
}

impl SchouteQ {
    /// Starts with a `2^q0` frame (q0 clamped to 15).
    pub fn new(q0: u8) -> Self {
        SchouteQ { q: q0.min(15) }
    }
}

impl AntiCollision for SchouteQ {
    fn choose_q(&self) -> u8 {
        self.q
    }

    fn on_slot_outcome(&mut self, _outcome: &SlotOutcome) {}

    fn on_round_end(&mut self, stats: &RoundStats) {
        let backlog = SCHOUTE_BACKLOG_PER_COLLISION * stats.collisions as f64;
        self.q = if backlog < 1.0 {
            self.q.saturating_sub(1)
        } else {
            backlog.log2().round().clamp(0.0, 15.0) as u8
        };
    }

    fn name(&self) -> &'static str {
        "schoute"
    }
}

/// Capture-effect arbitration for multi-reply slots.
///
/// Physically, colliding backscatter replies are not symmetric: the
/// reader can often still decode the strongest RN16 when its received
/// power beats the *sum* of the other repliers by a threshold (FM
/// capture). Per-tag mean powers are fed from the link budget
/// (relative units suffice — only ratios matter); each contest draws
/// one uniform fade per replier from the model's own forked RNG, so a
/// round's outcomes depend only on the seeds, never on thread count.
#[derive(Debug, Clone)]
pub struct CaptureModel {
    /// Mean received power per tag index, linear relative units.
    powers: Vec<f64>,
    /// Linear power ratio the winner must hold over the rest.
    ratio_lin: f64,
    /// Half-range of the per-reply uniform fade, dB.
    fade_db: f64,
    rng: StdRng,
}

impl CaptureModel {
    /// Builds the model from per-tag link-budget powers, a capture
    /// threshold in dB, a per-reply fade half-range in dB, and the
    /// (forked) RNG that decides each contest.
    pub fn new(powers: Vec<f64>, threshold_db: f64, fade_db: f64, rng: StdRng) -> Self {
        CaptureModel {
            powers,
            ratio_lin: 10f64.powf(threshold_db / 10.0),
            fade_db,
            rng,
        }
    }

    /// Arbitrates one multi-reply slot: returns the index *within
    /// `replier_tags`* of the captured reply, or `None` for a true
    /// collision. Draws exactly one fade per replier, in order.
    pub fn arbitrate(&mut self, replier_tags: &[usize]) -> Option<usize> {
        let mut best = 0usize;
        let mut best_p = f64::NEG_INFINITY;
        let mut total = 0.0;
        for (k, &tag_idx) in replier_tags.iter().enumerate() {
            let u: f64 = self.rng.random();
            let fade = 10f64.powf(self.fade_db * (2.0 * u - 1.0) / 10.0);
            let p = self.powers.get(tag_idx).copied().unwrap_or(1.0) * fade;
            total += p;
            if p > best_p {
                best_p = p;
                best = k;
            }
        }
        let rest = total - best_p;
        (rest <= 0.0 || best_p >= self.ratio_lin * rest).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_matches_legacy_q_algorithm_steps() {
        let mut p = AdaptiveQ::new(QAlgorithm { q0: 4, c: 0.5 });
        assert_eq!(p.choose_q(), 4);
        p.on_slot_outcome(&SlotOutcome::Collision);
        p.on_slot_outcome(&SlotOutcome::Collision);
        assert!(p.qfp() > 4.0);
        let mut down = AdaptiveQ::new(QAlgorithm { q0: 4, c: 0.5 });
        for _ in 0..4 {
            down.on_slot_outcome(&SlotOutcome::Empty);
        }
        assert_eq!(down.choose_q(), 2);
        // Clamps at both ends.
        let mut lo = AdaptiveQ::new(QAlgorithm { q0: 0, c: 0.5 });
        lo.on_slot_outcome(&SlotOutcome::Empty);
        assert_eq!(lo.choose_q(), 0);
        let mut hi = AdaptiveQ::new(QAlgorithm { q0: 15, c: 0.5 });
        hi.on_slot_outcome(&SlotOutcome::Collision);
        assert_eq!(hi.choose_q(), 15);
    }

    #[test]
    fn fixed_q_never_moves() {
        let mut p = FixedQ::new(6);
        p.on_slot_outcome(&SlotOutcome::Collision);
        p.on_round_end(&RoundStats {
            collisions: 40,
            ..Default::default()
        });
        assert_eq!(p.choose_q(), 6);
        assert_eq!(FixedQ::new(99).choose_q(), 15);
    }

    #[test]
    fn schoute_sizes_frame_to_estimated_backlog() {
        let mut p = SchouteQ::new(4);
        // 27 collision slots ⇒ backlog ≈ 64.5 ⇒ Q = 6.
        p.on_round_end(&RoundStats {
            collisions: 27,
            ..Default::default()
        });
        assert_eq!(p.choose_q(), 6);
        // Collision-free frames walk Q down one step per round.
        p.on_round_end(&RoundStats::default());
        assert_eq!(p.choose_q(), 5);
        let mut zero = SchouteQ::new(0);
        zero.on_round_end(&RoundStats::default());
        assert_eq!(zero.choose_q(), 0);
    }

    #[test]
    fn capture_resolves_dominant_reply_only() {
        // Tag 0 is 20 dB above tag 1: captured regardless of a ±1 dB fade.
        let rng = StdRng::seed_from_u64(5);
        let mut cap = CaptureModel::new(vec![100.0, 1.0], 6.0, 1.0, rng);
        assert_eq!(cap.arbitrate(&[0, 1]), Some(0));
        // Equal powers with no fade: neither can hold a 6 dB margin.
        let rng = StdRng::seed_from_u64(5);
        let mut tie = CaptureModel::new(vec![1.0, 1.0], 6.0, 0.0, rng);
        assert_eq!(tie.arbitrate(&[0, 1]), None);
    }

    #[test]
    fn capture_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut cap =
                CaptureModel::new(vec![4.0, 1.0, 2.0], 3.0, 6.0, StdRng::seed_from_u64(seed));
            (0..32)
                .map(|_| cap.arbitrate(&[0, 1, 2]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "fades ignored the seed");
    }
}
