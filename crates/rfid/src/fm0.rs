//! FM0 (bi-phase space) baseband coding — the tag→reader uplink.
//!
//! FM0 inverts the baseband level at *every* symbol boundary; a data-0
//! additionally inverts mid-symbol, a data-1 does not. Decoding therefore
//! needs only to detect the presence/absence of a mid-symbol transition.
//!
//! The paper's in-vivo decoder (§6.2) correlates the received waveform
//! against the tag's known 12-bit preamble `110100100011` in FM0 form and
//! declares success above a correlation of 0.8; [`preamble_waveform`] and
//! [`ivn_dsp::correlate::best_match_real`] reproduce that exact pipeline.

/// FM0 encoder state and parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fm0 {
    /// Samples per half-symbol when rasterizing.
    pub samples_per_half: usize,
}

impl Fm0 {
    /// Creates an FM0 codec with the given time resolution.
    ///
    /// # Panics
    /// Panics if `samples_per_half == 0`.
    pub fn new(samples_per_half: usize) -> Self {
        assert!(samples_per_half > 0, "need at least one sample per half");
        Fm0 { samples_per_half }
    }

    /// Encodes bits into half-symbol levels (`±1.0`), starting from level
    /// `+1`. Each bit yields two half-symbols.
    pub fn encode_halves(&self, bits: &[bool]) -> Vec<f64> {
        let _span = ivn_runtime::span!("rfid.fm0_encode_ns");
        ivn_runtime::obs_count!("rfid.fm0_symbols_encoded", bits.len());
        let mut out = Vec::with_capacity(bits.len() * 2);
        let mut level = 1.0;
        for &bit in bits {
            // Boundary inversion happens *entering* each symbol.
            level = -level;
            out.push(level);
            if !bit {
                // data-0: mid-symbol inversion.
                level = -level;
            }
            out.push(level);
        }
        out
    }

    /// Rasterizes bits to baseband samples (±1.0).
    pub fn encode(&self, bits: &[bool]) -> Vec<f64> {
        self.encode_halves(bits)
            .into_iter()
            .flat_map(|l| std::iter::repeat(l).take(self.samples_per_half))
            .collect()
    }

    /// Decodes baseband samples back into bits. Accepts any amplitude
    /// scale and either polarity; requires sample alignment (the reader's
    /// correlator provides the offset).
    ///
    /// Thin wrapper over the streaming [`crate::stream::Fm0Decoder`]
    /// (one maximal block), so batch and block-wise decode agree bit
    /// for bit — including discarding a trailing partial symbol.
    pub fn decode(&self, samples: &[f64]) -> Vec<bool> {
        let mut dec = crate::stream::Fm0Decoder::new(*self);
        dec.push(samples);
        dec.finish()
    }

    /// Samples per full symbol.
    pub fn samples_per_symbol(&self) -> usize {
        self.samples_per_half * 2
    }
}

/// FM0 coding violation: a symbol ending *without* the mandatory boundary
/// inversion, used by Gen2 to terminate frames ("dummy 1" + violation).
/// Appends the violation half-symbols to an encoded half-level stream.
pub fn append_terminator(halves: &mut Vec<f64>) {
    let last = *halves.last().unwrap_or(&1.0);
    // Repeat the last level (violating the boundary-inversion rule), then
    // return to idle.
    halves.push(last);
    halves.push(last);
}

/// The paper's 12-bit preamble rendered as an FM0 baseband template
/// (`samples_per_half` resolution), ready for correlation detection.
pub fn preamble_waveform(samples_per_half: usize) -> Vec<f64> {
    Fm0::new(samples_per_half).encode(&crate::PAPER_PREAMBLE_BITS)
}

/// Verifies an FM0 half-level stream obeys the boundary-inversion rule
/// (every symbol starts with a level flip). Used by property tests and by
/// the reader to reject corrupted frames early.
pub fn check_coding_rule(halves: &[f64]) -> bool {
    // halves[2k] must differ in sign from halves[2k-1].
    halves
        .chunks_exact(2)
        .zip(std::iter::once(1.0).chain(halves.chunks_exact(2).map(|c| c[1])))
        .all(|(sym, prev_end)| sym[0].signum() != prev_end.signum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_lengths() {
        let fm0 = Fm0::new(4);
        let bits = [true, false, true];
        assert_eq!(fm0.encode_halves(&bits).len(), 6);
        assert_eq!(fm0.encode(&bits).len(), 24);
        assert_eq!(fm0.samples_per_symbol(), 8);
    }

    #[test]
    fn boundary_inversion_always_happens() {
        let fm0 = Fm0::new(1);
        for pattern in 0..64u32 {
            let bits: Vec<bool> = (0..6).map(|i| (pattern >> i) & 1 == 1).collect();
            let halves = fm0.encode_halves(&bits);
            assert!(check_coding_rule(&halves), "pattern {pattern:06b}");
        }
    }

    #[test]
    fn data0_has_mid_transition_data1_does_not() {
        let fm0 = Fm0::new(1);
        let h0 = fm0.encode_halves(&[false]);
        assert_ne!(h0[0].signum(), h0[1].signum());
        let h1 = fm0.encode_halves(&[true]);
        assert_eq!(h1[0].signum(), h1[1].signum());
    }

    #[test]
    fn roundtrip_exhaustive_bytes() {
        let fm0 = Fm0::new(3);
        for pattern in 0..256u32 {
            let bits: Vec<bool> = (0..8).map(|i| (pattern >> i) & 1 == 1).collect();
            let wave = fm0.encode(&bits);
            assert_eq!(fm0.decode(&wave), bits, "pattern {pattern:08b}");
        }
    }

    #[test]
    fn decode_is_scale_and_polarity_invariant() {
        let fm0 = Fm0::new(4);
        let bits = vec![true, false, false, true, true, false];
        let mut wave = fm0.encode(&bits);
        for v in &mut wave {
            *v *= -0.003; // inverted, tiny amplitude
        }
        assert_eq!(fm0.decode(&wave), bits);
    }

    #[test]
    fn paper_preamble_template() {
        let w = preamble_waveform(5);
        assert_eq!(w.len(), 12 * 2 * 5);
        // Must be a ±1 waveform.
        assert!(w.iter().all(|&v| v == 1.0 || v == -1.0));
        // It must decode back to the preamble bits.
        let fm0 = Fm0::new(5);
        assert_eq!(fm0.decode(&w), crate::PAPER_PREAMBLE_BITS.to_vec());
    }

    #[test]
    fn terminator_violates_rule() {
        let fm0 = Fm0::new(1);
        let mut halves = fm0.encode_halves(&[true, false, true]);
        assert!(check_coding_rule(&halves));
        append_terminator(&mut halves);
        assert!(!check_coding_rule(&halves));
    }

    #[test]
    fn preamble_autocorrelation_is_peaky() {
        // The preamble must correlate strongly with itself and weakly with
        // shifted versions — that is what makes the 0.8 threshold robust.
        let w = preamble_waveform(4);
        let self_corr = ivn_dsp::correlate::best_match_real(&w, &w).unwrap();
        assert_eq!(self_corr.0, 0);
        assert!((self_corr.1 - 1.0).abs() < 1e-9);
        // Misaligned by half a symbol: correlation must drop well below 0.8.
        let shifted: Vec<f64> = w.iter().skip(4).cloned().collect();
        let c = ivn_dsp::correlate::normalized_xcorr_real(&w, &shifted[..w.len() - 4]);
        assert!(c[0] < 0.8, "shifted corr {}", c[0]);
    }
}
