//! Miller-modulated subcarrier coding (M = 2, 4, 8).
//!
//! Gen2's alternative uplink format: the Miller baseband (invert mid-symbol
//! on data-1; invert at the boundary between consecutive data-0s) is
//! multiplied by a square subcarrier of M cycles per symbol. Higher M
//! trades data rate for SNR — useful at the marginal link budgets IVN
//! operates at, so the codec is included even though the paper's trials
//! used FM0.

/// Miller codec with M subcarrier cycles per symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Miller {
    /// Subcarrier cycles per symbol: 2, 4, or 8.
    pub m: usize,
    /// Samples per quarter subcarrier cycle.
    pub samples_per_quarter: usize,
}

impl Miller {
    /// Creates a codec.
    ///
    /// # Panics
    /// Panics unless `m ∈ {2, 4, 8}` and the resolution is nonzero.
    pub fn new(m: usize, samples_per_quarter: usize) -> Self {
        assert!(matches!(m, 2 | 4 | 8), "M must be 2, 4 or 8");
        assert!(samples_per_quarter > 0, "resolution must be nonzero");
        Miller {
            m,
            samples_per_quarter,
        }
    }

    /// Samples per full symbol.
    pub fn samples_per_symbol(&self) -> usize {
        // One subcarrier cycle = 4 quarters... a square cycle is high half,
        // low half: 2 half-periods = 4 quarter-period samples blocks? Use
        // 2 halves per cycle, each `2·samples_per_quarter` long.
        self.m * 4 * self.samples_per_quarter
    }

    /// Encodes bits: returns ±1 samples of baseband × subcarrier.
    pub fn encode(&self, bits: &[bool]) -> Vec<f64> {
        ivn_runtime::obs_count!("rfid.miller_symbols_encoded", bits.len());
        let half_cycle = 2 * self.samples_per_quarter;
        let sps = self.samples_per_symbol();
        let mut out = Vec::with_capacity(bits.len() * sps);
        let mut phase = 1.0; // Miller baseband level
        let mut prev_bit: Option<bool> = None;
        for &bit in bits {
            // Boundary inversion between consecutive zeros.
            if prev_bit == Some(false) && !bit {
                phase = -phase;
            }
            // First half of the symbol at `phase`.
            let mid = sps / 2;
            // data-1 inverts mid-symbol.
            let second_phase = if bit { -phase } else { phase };
            for k in 0..sps {
                let base = if k < mid { phase } else { second_phase };
                // Square subcarrier: toggles every half cycle.
                let sub = if (k / half_cycle) % 2 == 0 { 1.0 } else { -1.0 };
                out.push(base * sub);
            }
            phase = second_phase;
            prev_bit = Some(bit);
        }
        out
    }

    /// Decodes samples by first demodulating the subcarrier (multiply and
    /// integrate) and then detecting mid-symbol inversions.
    pub fn decode(&self, samples: &[f64]) -> Vec<bool> {
        let half_cycle = 2 * self.samples_per_quarter;
        let sps = self.samples_per_symbol();
        ivn_runtime::obs_count!("rfid.miller_symbols_decoded", samples.len() / sps);
        let mut bits = Vec::with_capacity(samples.len() / sps);
        let mut prev_end: Option<f64> = None;
        for sym in samples.chunks_exact(sps) {
            // Demodulate: multiply by the square subcarrier.
            let demod: Vec<f64> = sym
                .iter()
                .enumerate()
                .map(|(k, &v)| {
                    let sub = if (k / half_cycle) % 2 == 0 { 1.0 } else { -1.0 };
                    v * sub
                })
                .collect();
            let mid = sps / 2;
            let first: f64 = demod[..mid].iter().sum();
            let second: f64 = demod[mid..].iter().sum();
            bits.push(first.signum() != second.signum());
            let _ = prev_end.replace(second);
        }
        bits
    }

    /// Backscatter-link data rate in bits/s for a subcarrier (BLF) in Hz.
    pub fn data_rate(&self, blf_hz: f64) -> f64 {
        blf_hz / self.m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_m() {
        for m in [2, 4, 8] {
            let codec = Miller::new(m, 2);
            for pattern in 0..64u32 {
                let bits: Vec<bool> = (0..6).map(|i| (pattern >> i) & 1 == 1).collect();
                let wave = codec.encode(&bits);
                assert_eq!(wave.len(), bits.len() * codec.samples_per_symbol());
                assert_eq!(codec.decode(&wave), bits, "M={m} pattern={pattern:06b}");
            }
        }
    }

    #[test]
    fn subcarrier_present() {
        // A run of data-0s must still toggle at the subcarrier rate (that
        // is the whole point: energy away from DC).
        let codec = Miller::new(4, 2);
        let wave = codec.encode(&[false, false, false]);
        let transitions = wave.windows(2).filter(|w| w[0] != w[1]).count();
        // Each symbol contains M·2 half-cycles → M·2 − 1 internal toggles.
        assert!(transitions >= 3 * (4 * 2 - 1), "transitions {transitions}");
    }

    #[test]
    fn amplitude_is_unit() {
        let codec = Miller::new(2, 3);
        let wave = codec.encode(&[true, false, true]);
        assert!(wave.iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn decode_scale_invariant() {
        let codec = Miller::new(8, 1);
        let bits = vec![true, true, false, true, false, false];
        let mut wave = codec.encode(&bits);
        for v in &mut wave {
            *v *= 0.02;
        }
        assert_eq!(codec.decode(&wave), bits);
    }

    #[test]
    fn higher_m_is_slower() {
        let blf = 160e3;
        assert_eq!(Miller::new(2, 1).data_rate(blf), 80e3);
        assert_eq!(Miller::new(8, 1).data_rate(blf), 20e3);
    }

    #[test]
    #[should_panic(expected = "M must be")]
    fn rejects_bad_m() {
        Miller::new(3, 1);
    }
}
