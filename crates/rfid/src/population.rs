//! Population-scale inventory driver: O(tags + slots) per round.
//!
//! [`crate::reader::Reader::run_round`] broadcasts every command to every
//! tag, which is O(tags × slots) per round — faithful, but hopeless for
//! populations of thousands. This module exploits a structural fact of
//! the protocol: each eligible tag's observable behaviour in a round is
//! fully determined by two private RNG draws — the slot it picks at the
//! Query (no draw when q = 0) and the RN16 it generates when that slot
//! arrives. Tag RNGs are private, so any schedule that preserves each
//! tag's own draw order is bit-identical to the broadcast loop.
//!
//! [`inventory_population`] therefore draws every active tag's slot up
//! front, buckets tags by slot with a stable counting sort (repliers
//! stay in ascending tag order, which is the order the broadcast loop
//! would have them reply in — this is what keeps the *reader-side*
//! capture RNG byte-identical too), and then walks the frame slot by
//! slot: empty, single (ACK + EPC), or collision (optionally arbitrated
//! by the [`CaptureModel`]). The anti-collision policy sees exactly the
//! same outcome sequence as it would from the broadcast reader.
//!
//! The driver requires single-read tags
//! ([`Tag::set_single_read`](crate::tag::Tag::set_single_read)): without
//! the inventoried flag a dense population never converges, and the
//! O(reads²) EPC dedup the naive reader performs would dominate the
//! round cost. Termination is reported against the *readable* population
//! (powered, not parked), so fleets with unpowered tags still finish.

use crate::anticollision::{AntiCollision, CaptureModel};
use crate::reader::{InventoryOutcome, RoundStats, SlotOutcome};
use crate::tag::Tag;

/// Runs inventory rounds over a tag population until every readable tag
/// is inventoried or `max_rounds` expires.
///
/// Bit-identical to driving [`crate::reader::Reader`] (with the same
/// policy and capture state) over the same tags, provided the tags are
/// in single-read mode — see the module docs for why.
pub fn inventory_population(
    policy: &mut dyn AntiCollision,
    mut capture: Option<&mut CaptureModel>,
    tags: &mut [Tag],
    max_rounds: usize,
) -> InventoryOutcome {
    let target = tags.iter().filter(|t| t.fast_active()).count();
    let mut out = InventoryOutcome {
        epcs: Vec::new(),
        rounds: Vec::new(),
        terminated: target == 0,
    };

    // Scratch reused across rounds: active tag indices, their drawn
    // slots, counting-sort boundaries, and the slot-ordered permutation.
    let mut active: Vec<u32> = Vec::new();
    let mut slots: Vec<u32> = Vec::new();
    let mut starts: Vec<u32> = Vec::new();
    let mut cursor: Vec<u32> = Vec::new();
    let mut order: Vec<u32> = Vec::new();
    let mut repliers: Vec<usize> = Vec::new();

    for _ in 0..max_rounds {
        if out.terminated {
            break;
        }
        let q = policy.choose_q();
        let n_slots = 1usize << q;

        active.clear();
        for (i, t) in tags.iter().enumerate() {
            if t.fast_active() {
                active.push(i as u32);
            }
        }
        slots.clear();
        for &i in &active {
            slots.push(tags[i as usize].fast_draw_slot(q));
        }

        // Stable counting sort of active tags by slot.
        starts.clear();
        starts.resize(n_slots + 1, 0);
        for &s in &slots {
            starts[s as usize + 1] += 1;
        }
        for s in 0..n_slots {
            starts[s + 1] += starts[s];
        }
        cursor.clear();
        cursor.extend_from_slice(&starts[..n_slots]);
        order.clear();
        order.resize(active.len(), 0);
        for (k, &s) in slots.iter().enumerate() {
            order[cursor[s as usize] as usize] = active[k];
            cursor[s as usize] += 1;
        }

        let mut stats = RoundStats::default();
        for s in 0..n_slots {
            let (lo, hi) = (starts[s] as usize, starts[s + 1] as usize);
            let outcome = match hi - lo {
                0 => SlotOutcome::Empty,
                1 => {
                    let idx = order[lo] as usize;
                    let _rn = tags[idx].fast_draw_rn16();
                    read_tag(tags, idx)
                }
                _ => {
                    // Every replier in the slot draws its RN16 (index
                    // order — their RNGs are private, but this mirrors
                    // the broadcast schedule exactly).
                    for &ti in &order[lo..hi] {
                        tags[ti as usize].fast_draw_rn16();
                    }
                    match capture.as_deref_mut() {
                        Some(cap) => {
                            repliers.clear();
                            repliers.extend(order[lo..hi].iter().map(|&i| i as usize));
                            match cap.arbitrate(&repliers) {
                                Some(k) => {
                                    stats.captures += 1;
                                    read_tag(tags, repliers[k])
                                }
                                None => SlotOutcome::Collision,
                            }
                        }
                        None => SlotOutcome::Collision,
                    }
                }
            };
            policy.on_slot_outcome(&outcome);
            stats.tally(&outcome);
            if let SlotOutcome::Inventoried(epc) = outcome {
                out.epcs.push(epc);
            }
        }
        policy.on_round_end(&stats);
        out.rounds.push(stats);
        if out.epcs.len() == target {
            out.terminated = true;
        }
    }
    out
}

/// ACKs a replier: the EPC reply is CRC-valid by construction, so this
/// is the Inventoried arm of the broadcast reader's `resolve_slot`.
fn read_tag(tags: &mut [Tag], idx: usize) -> SlotOutcome {
    let bits = tags[idx].epc_reply_bits();
    tags[idx].fast_mark_inventoried();
    SlotOutcome::Inventoried(bits[16..bits.len() - 16].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anticollision::{AdaptiveQ, FixedQ, SchouteQ};
    use crate::commands::Session;
    use crate::reader::{QAlgorithm, Reader};
    use ivn_runtime::rng::StdRng;

    fn pop(n: usize) -> Vec<Tag> {
        (0..n)
            .map(|i| {
                let mut t = Tag::with_epc96(0x2000 + i as u128, 500 + i as u64);
                t.set_powered(true);
                t.set_single_read(true);
                t
            })
            .collect()
    }

    #[test]
    fn fast_path_matches_broadcast_reader() {
        for &n in &[1usize, 2, 5, 8, 17, 33] {
            let mut naive_tags = pop(n);
            let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 4, c: 0.3 });
            let naive = reader.inventory_all(&mut naive_tags, 64);

            let mut fast_tags = pop(n);
            let mut policy = AdaptiveQ::new(QAlgorithm { q0: 4, c: 0.3 });
            let fast = inventory_population(&mut policy, None, &mut fast_tags, 64);
            assert_eq!(naive, fast, "population {n} diverged");
        }
    }

    #[test]
    fn fast_path_matches_broadcast_reader_with_capture() {
        for &n in &[2usize, 8, 17] {
            let powers: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
            let cap =
                |seed| CaptureModel::new(powers.clone(), 3.0, 6.0, StdRng::seed_from_u64(seed));

            let mut naive_tags = pop(n);
            let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 3, c: 0.3 });
            reader.set_capture(cap(42));
            let naive = reader.inventory_all(&mut naive_tags, 64);

            let mut fast_tags = pop(n);
            let mut policy = AdaptiveQ::new(QAlgorithm { q0: 3, c: 0.3 });
            let mut capture = cap(42);
            let fast = inventory_population(&mut policy, Some(&mut capture), &mut fast_tags, 64);
            assert_eq!(naive, fast, "capture population {n} diverged");
            assert!(naive.terminated);
        }
    }

    #[test]
    fn all_policies_complete_a_small_inventory() {
        let policies: Vec<Box<dyn AntiCollision>> = vec![
            Box::new(AdaptiveQ::new(QAlgorithm { q0: 4, c: 0.3 })),
            Box::new(FixedQ::new(5)),
            Box::new(SchouteQ::new(4)),
        ];
        for mut p in policies {
            let mut tags = pop(20);
            let out = inventory_population(p.as_mut(), None, &mut tags, 256);
            assert!(out.terminated, "{} never finished", p.name());
            assert_eq!(out.epcs.len(), 20);
        }
    }

    #[test]
    fn unpowered_tags_excluded_from_target() {
        let mut tags = pop(6);
        tags[1].set_powered(false);
        tags[4].set_powered(false);
        let mut policy = AdaptiveQ::new(QAlgorithm::default());
        let out = inventory_population(&mut policy, None, &mut tags, 128);
        assert!(out.terminated);
        assert_eq!(out.epcs.len(), 4);
    }

    #[test]
    fn empty_population_terminates_immediately() {
        let mut tags: Vec<Tag> = Vec::new();
        let mut policy = AdaptiveQ::new(QAlgorithm::default());
        let out = inventory_population(&mut policy, None, &mut tags, 16);
        assert!(out.terminated);
        assert!(out.rounds.is_empty());
    }
}
