//! Link-timing budget (Gen2 Annex-style).
//!
//! Derives backscatter link frequency (BLF) from TRcal and the divide
//! ratio, the T1–T4 turnaround windows, and on-air durations. The headline
//! number for IVN: a full Query frame at the paper's settings lasts about
//! **800 µs**, which through Eq. 9 caps the RMS frequency offset of the
//! CIB plan at ≈199 Hz.

use crate::commands::{Command, DivideRatio};
use crate::pie::PieParams;

/// Complete link parameter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Downlink PIE timing.
    pub pie: PieParams,
    /// Divide ratio from Query.
    pub dr: DivideRatio,
    /// Miller M (1 for FM0) — scales uplink symbol duration.
    pub miller_m: usize,
}

impl LinkParams {
    /// The paper's configuration: Tari 12.5 µs, DR 8, FM0.
    pub fn paper_defaults() -> Self {
        LinkParams {
            pie: PieParams::paper_defaults(),
            dr: DivideRatio::Dr8,
            miller_m: 1,
        }
    }

    /// Backscatter link frequency `BLF = DR / TRcal`, Hz.
    pub fn blf_hz(&self) -> f64 {
        self.dr.value() / self.pie.trcal_s
    }

    /// Uplink symbol duration (FM0 symbol or Miller symbol), seconds.
    pub fn uplink_symbol_s(&self) -> f64 {
        self.miller_m as f64 / self.blf_hz()
    }

    /// T1: reader-transmission end → tag-response start,
    /// nominally `max(RTcal, 10/BLF)`.
    pub fn t1_s(&self) -> f64 {
        (self.pie.rtcal_s()).max(10.0 / self.blf_hz())
    }

    /// T2: tag-response end → next reader command, 3–20 uplink symbols;
    /// we use the midpoint 10.
    pub fn t2_s(&self) -> f64 {
        10.0 / self.blf_hz()
    }

    /// On-air duration of a command frame, preamble included.
    pub fn command_duration_s(&self, cmd: &Command) -> f64 {
        let (zeros, ones) = cmd.bit_census();
        self.pie.frame_duration_s(zeros, ones, cmd.needs_trcal())
    }

    /// Duration of an uplink message of `n_bits` (preamble included when
    /// `preamble_bits > 0`), seconds.
    pub fn uplink_duration_s(&self, n_bits: usize, preamble_bits: usize) -> f64 {
        (n_bits + preamble_bits) as f64 * self.uplink_symbol_s()
    }

    /// Duration of one complete single-tag inventory exchange:
    /// Query + T1 + RN16 + T2 + ACK + T1 + EPC + T2.
    pub fn inventory_exchange_s(&self, query: &Command, epc_bits: usize) -> f64 {
        let preamble = 12; // the paper's extended preamble length
        self.command_duration_s(query)
            + self.t1_s()
            + self.uplink_duration_s(16, preamble)
            + self.t2_s()
            + self.command_duration_s(&Command::Ack { rn16: 0 })
            + self.t1_s()
            + self.uplink_duration_s(epc_bits + 16 + 16, preamble) // PC+EPC+CRC
            + self.t2_s()
    }

    /// The paper's Eq. 9 bound: given a command duration Δt and a
    /// permitted envelope fluctuation α, the RMS of the CIB frequency
    /// offsets must satisfy `rms(Δf) ≤ √(α / (2π²Δt²))`, Hz.
    pub fn max_rms_offset_hz(&self, alpha: f64, cmd: &Command) -> f64 {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        let dt = self.command_duration_s(cmd);
        (alpha / (2.0 * std::f64::consts::PI.powi(2) * dt * dt)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{Session, TagEncoding};

    fn query() -> Command {
        Command::Query {
            dr: DivideRatio::Dr8,
            m: TagEncoding::Fm0,
            trext: false,
            session: Session::S0,
            q: 0,
        }
    }

    #[test]
    fn blf_from_trcal() {
        let lp = LinkParams::paper_defaults();
        // DR 8 / 133.3 µs ≈ 60 kHz.
        assert!((lp.blf_hz() - 60e3).abs() < 1e3);
    }

    #[test]
    fn query_duration_near_800us() {
        // The paper uses Δt ≈ 800 µs for a typical reader query (§3.6).
        let lp = LinkParams::paper_defaults();
        let d = lp.command_duration_s(&query());
        assert!(d > 6.5e-4 && d < 1.1e-3, "query duration {d}");
    }

    #[test]
    fn eq9_bound_near_199hz() {
        // §3.6: with Δt ≈ 800 µs and α = 0.5, rms(Δf) ≤ 199 Hz. Our Query
        // duration differs slightly from exactly 800 µs, so check the
        // bound at exactly Δt = 800 µs via a synthetic check, then confirm
        // the API value is in the same regime.
        let alpha = 0.5f64;
        let dt = 800e-6f64;
        let bound = (alpha / (2.0 * std::f64::consts::PI.powi(2) * dt * dt)).sqrt();
        assert!((bound - 199.0).abs() < 1.5, "analytic bound {bound}");

        let lp = LinkParams::paper_defaults();
        let api = lp.max_rms_offset_hz(0.5, &query());
        assert!(api > 120.0 && api < 260.0, "api bound {api}");
        // The paper's actual frequency plan must satisfy the API bound:
        // RMS of {0,7,20,49,68,73,90,113,121,137} over N = 10 ≈ 82 Hz.
        let paper: [f64; 10] = [0., 7., 20., 49., 68., 73., 90., 113., 121., 137.];
        let rms = (paper.iter().map(|f| f * f).sum::<f64>() / 10.0).sqrt();
        assert!(rms < api, "paper plan rms {rms} vs bound {api}");
    }

    #[test]
    fn t1_covers_rtcal() {
        let lp = LinkParams::paper_defaults();
        assert!(lp.t1_s() >= lp.pie.rtcal_s());
        assert!(lp.t2_s() > 0.0);
    }

    #[test]
    fn uplink_durations() {
        let lp = LinkParams::paper_defaults();
        let rn16 = lp.uplink_duration_s(16, 12);
        // 28 symbols at ~120 kHz ≈ 233 µs.
        assert!((rn16 - 28.0 / lp.blf_hz()).abs() < 1e-12);
        // Miller-4 quadruples symbol time.
        let m4 = LinkParams { miller_m: 4, ..lp };
        assert!((m4.uplink_duration_s(16, 12) / rn16 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn full_exchange_under_cib_period() {
        // The whole single-tag exchange must fit well inside the 1 s CIB
        // cycle (it needs to complete near the envelope peak).
        let lp = LinkParams::paper_defaults();
        let total = lp.inventory_exchange_s(&query(), 96);
        assert!(total < 5e-3, "exchange {total}");
    }

    #[test]
    fn tighter_alpha_means_tighter_rms() {
        let lp = LinkParams::paper_defaults();
        let loose = lp.max_rms_offset_hz(0.5, &query());
        let tight = lp.max_rms_offset_hz(0.1, &query());
        assert!(tight < loose);
        assert!((loose / tight - 5f64.sqrt()).abs() < 1e-9);
    }
}
