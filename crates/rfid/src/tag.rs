//! Tag-side Gen2 state machine with power-loss semantics.
//!
//! The machine follows the Gen2 inventory flow: `Ready → Arbitrate →
//! Reply → Acknowledged`, driven by decoded reader commands. Two
//! IVN-specific behaviours are modelled faithfully:
//!
//! * **Power gating** — the machine only advances while the harvester
//!   keeps the chip supplied; a brownout at any point resets all volatile
//!   state (slot counter, RN16, session flags). The paper's in-vivo
//!   failures ("the tag may have moved … or been misoriented") manifest
//!   exactly as mid-round brownouts.
//! * **Selection masks** — the §3.7 multi-sensor mechanism: a Select
//!   command with a non-matching EPC prefix parks the tag for the round.

use crate::commands::{Command, Session};
use ivn_runtime::rng::{Rng, StdRng};

/// Inventory state of a powered tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagState {
    /// Powered, waiting for a Query.
    Ready,
    /// In a round with a nonzero slot counter.
    Arbitrate,
    /// Slot counter hit zero; RN16 transmitted, awaiting ACK.
    Reply,
    /// ACK matched; EPC transmitted.
    Acknowledged,
    /// Deselected by a non-matching Select for the current round.
    Parked,
}

/// What a tag transmits in response to a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagReply {
    /// Nothing.
    Silent,
    /// 16-bit random number (Reply state entry).
    Rn16(u16),
    /// PC + EPC + CRC16 bits (Acknowledged state entry).
    Epc(Vec<bool>),
    /// New handle (ReqRN response).
    Handle(u16),
}

/// A simulated Gen2 tag.
#[derive(Debug, Clone)]
pub struct Tag {
    /// 96-bit EPC identity (stored MSB-first).
    epc: Vec<bool>,
    state: TagState,
    powered: bool,
    slot: u32,
    rn16: u16,
    session: Session,
    rng: StdRng,
    /// Gen2 inventoried flag: set on a successful ACK, wiped by brownout.
    inventoried: bool,
    /// Honour the inventoried flag (stay silent once read). Off by
    /// default — the legacy experiments re-read tags every round.
    single_read: bool,
}

impl Tag {
    /// Creates an unpowered tag with the given EPC bits and RNG seed.
    ///
    /// # Panics
    /// Panics if the EPC is empty or longer than 496 bits.
    pub fn new(epc: Vec<bool>, seed: u64) -> Self {
        assert!(!epc.is_empty() && epc.len() <= 496, "EPC length invalid");
        Tag {
            epc,
            state: TagState::Ready,
            powered: false,
            slot: 0,
            rn16: 0,
            session: Session::S0,
            rng: StdRng::seed_from_u64(seed),
            inventoried: false,
            single_read: false,
        }
    }

    /// Creates a tag from a 96-bit EPC expressed as a u128 (top 32 bits
    /// ignored).
    pub fn with_epc96(epc: u128, seed: u64) -> Self {
        let bits = (0..96).rev().map(|i| (epc >> i) & 1 == 1).collect();
        Self::new(bits, seed)
    }

    /// The tag's EPC bits.
    pub fn epc(&self) -> &[bool] {
        &self.epc
    }

    /// Current state (meaningful only while powered).
    pub fn state(&self) -> TagState {
        self.state
    }

    /// Whether the chip currently has power.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Current RN16 (test introspection).
    pub fn rn16(&self) -> u16 {
        self.rn16
    }

    /// Current slot counter (test introspection).
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// Whether the tag has been inventoried this power cycle.
    pub fn is_inventoried(&self) -> bool {
        self.inventoried
    }

    /// Enables Gen2 single-read semantics: once ACKed, the tag stays
    /// silent at subsequent Queries until a brownout wipes the flag.
    /// Population-scale inventory needs this to converge; the default
    /// (off) preserves the legacy re-read-every-round behaviour.
    pub fn set_single_read(&mut self, single_read: bool) {
        self.single_read = single_read;
    }

    /// Supplies or removes chip power. Losing power wipes volatile state.
    pub fn set_powered(&mut self, powered: bool) {
        if self.powered && !powered {
            // Brownout: all volatile inventory state evaporates.
            self.state = TagState::Ready;
            self.slot = 0;
            self.rn16 = 0;
            self.inventoried = false;
        }
        self.powered = powered;
    }

    /// Processes a decoded reader command, returning the tag's reply.
    /// Unpowered tags never respond.
    pub fn process(&mut self, cmd: &Command) -> TagReply {
        if !self.powered {
            return TagReply::Silent;
        }
        match cmd {
            Command::Select { mask } => {
                // Non-matching prefix parks the tag; matching (or empty)
                // un-parks it.
                let matches = mask.len() <= self.epc.len() && self.epc[..mask.len()] == mask[..];
                self.state = if matches {
                    TagState::Ready
                } else {
                    TagState::Parked
                };
                TagReply::Silent
            }
            Command::Query { session, q, .. } => {
                if self.state == TagState::Parked || (self.single_read && self.inventoried) {
                    return TagReply::Silent;
                }
                self.session = *session;
                self.slot = if *q == 0 {
                    0
                } else {
                    self.rng.random_range(0..(1u32 << q))
                };
                if self.slot == 0 {
                    self.rn16 = self.rng.random();
                    self.state = TagState::Reply;
                    TagReply::Rn16(self.rn16)
                } else {
                    self.state = TagState::Arbitrate;
                    TagReply::Silent
                }
            }
            Command::QueryRep { session } | Command::QueryAdjust { session, .. } => {
                if *session != self.session || self.state == TagState::Parked {
                    return TagReply::Silent;
                }
                if let Command::QueryAdjust { updn, .. } = cmd {
                    // Q changes re-randomize the slot around the new size;
                    // we model it as a fresh draw scaled by 2^updn.
                    let _ = updn;
                }
                match self.state {
                    TagState::Arbitrate => {
                        self.slot = self.slot.saturating_sub(1);
                        if self.slot == 0 {
                            self.rn16 = self.rng.random();
                            self.state = TagState::Reply;
                            TagReply::Rn16(self.rn16)
                        } else {
                            TagReply::Silent
                        }
                    }
                    // A QueryRep while in Reply/Acknowledged means the
                    // reader moved on: return to arbitration limbo.
                    TagState::Reply | TagState::Acknowledged => {
                        self.state = TagState::Ready;
                        TagReply::Silent
                    }
                    _ => TagReply::Silent,
                }
            }
            Command::Ack { rn16 } => {
                if self.state == TagState::Reply && *rn16 == self.rn16 {
                    self.state = TagState::Acknowledged;
                    self.inventoried = true;
                    TagReply::Epc(self.epc_reply_bits())
                } else {
                    // Wrong RN16: fall back to arbitration.
                    if self.state == TagState::Reply {
                        self.state = TagState::Ready;
                    }
                    TagReply::Silent
                }
            }
            Command::ReqRn { rn16 } => {
                if self.state == TagState::Acknowledged && *rn16 == self.rn16 {
                    self.rn16 = self.rng.random();
                    TagReply::Handle(self.rn16)
                } else {
                    TagReply::Silent
                }
            }
        }
    }

    /// The Acknowledged-state reply: PC word (EPC length), EPC, CRC-16.
    pub fn epc_reply_bits(&self) -> Vec<bool> {
        // PC word: 5-bit length (in 16-bit words) + 11 reserved zeros.
        let words = self.epc.len().div_ceil(16) as u16;
        let pc: u16 = words << 11;
        let mut bits = crate::crc::u16_to_bits(pc);
        bits.extend_from_slice(&self.epc);
        crate::crc::append_crc16(&mut bits);
        bits
    }

    // ---- population fast-path hooks ---------------------------------
    //
    // `crate::population` runs rounds in O(tags + slots) by bucketing
    // drawn slots instead of broadcasting every command to every tag.
    // These helpers replay *exactly* the RNG draw sequence `process`
    // would perform for an eligible tag in a collision-free protocol
    // exchange — slot draw at Query (skipped when q == 0), then one RN16
    // draw when its slot arrives — which is what keeps the fast path
    // bit-identical to the naive loop.

    /// Whether the tag would participate in the next Query.
    pub(crate) fn fast_active(&self) -> bool {
        self.powered && self.state != TagState::Parked && !(self.single_read && self.inventoried)
    }

    /// Mirrors the Query slot draw (no draw at q == 0).
    pub(crate) fn fast_draw_slot(&mut self, q: u8) -> u32 {
        if q == 0 {
            0
        } else {
            self.rng.random_range(0..(1u32 << q))
        }
    }

    /// Mirrors the RN16 draw a tag performs when its slot counter hits 0.
    pub(crate) fn fast_draw_rn16(&mut self) -> u16 {
        self.rn16 = self.rng.random();
        self.rn16
    }

    /// Marks a successful ACK (single-read bookkeeping).
    pub(crate) fn fast_mark_inventoried(&mut self) {
        self.inventoried = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{DivideRatio, TagEncoding};

    fn query(q: u8) -> Command {
        Command::Query {
            dr: DivideRatio::Dr8,
            m: TagEncoding::Fm0,
            trext: false,
            session: Session::S0,
            q,
        }
    }

    fn powered_tag() -> Tag {
        let mut t = Tag::with_epc96(0x0123_4567_89AB_CDEF_0011_2233, 7);
        t.set_powered(true);
        t
    }

    #[test]
    fn unpowered_tag_is_silent() {
        let mut t = Tag::with_epc96(1, 1);
        assert_eq!(t.process(&query(0)), TagReply::Silent);
        assert!(!t.is_powered());
    }

    #[test]
    fn q0_query_replies_immediately() {
        let mut t = powered_tag();
        match t.process(&query(0)) {
            TagReply::Rn16(_) => {}
            other => panic!("expected RN16, got {other:?}"),
        }
        assert_eq!(t.state(), TagState::Reply);
    }

    #[test]
    fn full_inventory_handshake() {
        let mut t = powered_tag();
        let rn = match t.process(&query(0)) {
            TagReply::Rn16(rn) => rn,
            other => panic!("{other:?}"),
        };
        let epc_bits = match t.process(&Command::Ack { rn16: rn }) {
            TagReply::Epc(bits) => bits,
            other => panic!("{other:?}"),
        };
        assert_eq!(t.state(), TagState::Acknowledged);
        // Reply = PC(16) + EPC(96) + CRC(16).
        assert_eq!(epc_bits.len(), 128);
        assert!(crate::crc::check_crc16(&epc_bits));
        assert_eq!(&epc_bits[16..112], t.epc());
        // Handle request.
        match t.process(&Command::ReqRn { rn16: rn }) {
            TagReply::Handle(h) => assert_ne!(h, rn),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_ack_is_rejected() {
        let mut t = powered_tag();
        let rn = match t.process(&query(0)) {
            TagReply::Rn16(rn) => rn,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            t.process(&Command::Ack {
                rn16: rn.wrapping_add(1)
            }),
            TagReply::Silent
        );
        assert_ne!(t.state(), TagState::Acknowledged);
    }

    #[test]
    fn slotted_arbitration_counts_down() {
        // With Q=4 a seeded tag picks some slot; QueryReps count it down to
        // a reply.
        let mut t = powered_tag();
        let first = t.process(&query(4));
        let mut replies = 0;
        if matches!(first, TagReply::Rn16(_)) {
            replies += 1;
        }
        let mut reps = 0;
        while replies == 0 && reps < 16 {
            if let TagReply::Rn16(_) = t.process(&Command::QueryRep {
                session: Session::S0,
            }) {
                replies += 1;
            }
            reps += 1;
        }
        assert_eq!(replies, 1, "tag never replied within the round");
        assert!(reps as u32 >= t.slot()); // slot hit zero
    }

    #[test]
    fn brownout_wipes_state() {
        let mut t = powered_tag();
        let _ = t.process(&query(0));
        assert_eq!(t.state(), TagState::Reply);
        t.set_powered(false);
        assert_eq!(t.state(), TagState::Ready);
        assert_eq!(t.rn16(), 0);
        // Needs power again before responding.
        assert_eq!(t.process(&query(0)), TagReply::Silent);
    }

    #[test]
    fn select_parks_non_matching_tags() {
        let mut t = powered_tag();
        // A mask that cannot match (EPC starts with 0 bits for this value).
        let bad_mask = vec![true; 8];
        t.process(&Command::Select { mask: bad_mask });
        assert_eq!(t.state(), TagState::Parked);
        assert_eq!(t.process(&query(0)), TagReply::Silent);
        // Matching (empty) mask un-parks.
        t.process(&Command::Select { mask: vec![] });
        assert!(matches!(t.process(&query(0)), TagReply::Rn16(_)));
    }

    #[test]
    fn select_matching_prefix_keeps_tag() {
        let mut t = powered_tag();
        let mask = t.epc()[..8].to_vec();
        t.process(&Command::Select { mask });
        assert_eq!(t.state(), TagState::Ready);
        assert!(matches!(t.process(&query(0)), TagReply::Rn16(_)));
    }

    #[test]
    fn session_mismatch_ignored() {
        let mut t = powered_tag();
        let _ = t.process(&query(4));
        // QueryRep on a different session does nothing.
        let before = t.slot();
        t.process(&Command::QueryRep {
            session: Session::S2,
        });
        assert_eq!(t.slot(), before);
    }

    #[test]
    fn single_read_silences_inventoried_tag_until_brownout() {
        let mut t = powered_tag();
        t.set_single_read(true);
        let rn = match t.process(&query(0)) {
            TagReply::Rn16(rn) => rn,
            other => panic!("{other:?}"),
        };
        assert!(matches!(
            t.process(&Command::Ack { rn16: rn }),
            TagReply::Epc(_)
        ));
        assert!(t.is_inventoried());
        // Read once: silent at the next Query.
        assert_eq!(t.process(&query(0)), TagReply::Silent);
        // Brownout wipes the flag; the tag replies again.
        t.set_powered(false);
        t.set_powered(true);
        assert!(!t.is_inventoried());
        assert!(matches!(t.process(&query(0)), TagReply::Rn16(_)));
    }

    #[test]
    fn default_tags_reread_every_round() {
        let mut t = powered_tag();
        let rn = match t.process(&query(0)) {
            TagReply::Rn16(rn) => rn,
            other => panic!("{other:?}"),
        };
        let _ = t.process(&Command::Ack { rn16: rn });
        assert!(t.is_inventoried());
        // Without single-read the flag is advisory only.
        assert!(matches!(t.process(&query(0)), TagReply::Rn16(_)));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = powered_tag();
        let mut b = powered_tag();
        let ra = a.process(&query(4));
        let rb = b.process(&query(4));
        assert_eq!(ra, rb);
        assert_eq!(a.slot(), b.slot());
    }
}
