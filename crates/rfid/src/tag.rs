//! Tag-side Gen2 state machine with power-loss semantics.
//!
//! The machine follows the Gen2 inventory flow: `Ready → Arbitrate →
//! Reply → Acknowledged`, driven by decoded reader commands. Two
//! IVN-specific behaviours are modelled faithfully:
//!
//! * **Power gating** — the machine only advances while the harvester
//!   keeps the chip supplied; a brownout at any point resets all volatile
//!   state (slot counter, RN16, session flags). The paper's in-vivo
//!   failures ("the tag may have moved … or been misoriented") manifest
//!   exactly as mid-round brownouts.
//! * **Selection masks** — the §3.7 multi-sensor mechanism: a Select
//!   command with a non-matching EPC prefix parks the tag for the round.

use crate::commands::{Command, Session};
use ivn_runtime::rng::{Rng, StdRng};

/// Inventory state of a powered tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagState {
    /// Powered, waiting for a Query.
    Ready,
    /// In a round with a nonzero slot counter.
    Arbitrate,
    /// Slot counter hit zero; RN16 transmitted, awaiting ACK.
    Reply,
    /// ACK matched; EPC transmitted.
    Acknowledged,
    /// Deselected by a non-matching Select for the current round.
    Parked,
}

/// What a tag transmits in response to a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagReply {
    /// Nothing.
    Silent,
    /// 16-bit random number (Reply state entry).
    Rn16(u16),
    /// PC + EPC + CRC16 bits (Acknowledged state entry).
    Epc(Vec<bool>),
    /// New handle (ReqRN response).
    Handle(u16),
}

/// A simulated Gen2 tag.
#[derive(Debug, Clone)]
pub struct Tag {
    /// 96-bit EPC identity (stored MSB-first).
    epc: Vec<bool>,
    state: TagState,
    powered: bool,
    slot: u32,
    rn16: u16,
    session: Session,
    rng: StdRng,
}

impl Tag {
    /// Creates an unpowered tag with the given EPC bits and RNG seed.
    ///
    /// # Panics
    /// Panics if the EPC is empty or longer than 496 bits.
    pub fn new(epc: Vec<bool>, seed: u64) -> Self {
        assert!(!epc.is_empty() && epc.len() <= 496, "EPC length invalid");
        Tag {
            epc,
            state: TagState::Ready,
            powered: false,
            slot: 0,
            rn16: 0,
            session: Session::S0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a tag from a 96-bit EPC expressed as a u128 (top 32 bits
    /// ignored).
    pub fn with_epc96(epc: u128, seed: u64) -> Self {
        let bits = (0..96).rev().map(|i| (epc >> i) & 1 == 1).collect();
        Self::new(bits, seed)
    }

    /// The tag's EPC bits.
    pub fn epc(&self) -> &[bool] {
        &self.epc
    }

    /// Current state (meaningful only while powered).
    pub fn state(&self) -> TagState {
        self.state
    }

    /// Whether the chip currently has power.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Current RN16 (test introspection).
    pub fn rn16(&self) -> u16 {
        self.rn16
    }

    /// Current slot counter (test introspection).
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// Supplies or removes chip power. Losing power wipes volatile state.
    pub fn set_powered(&mut self, powered: bool) {
        if self.powered && !powered {
            // Brownout: all volatile inventory state evaporates.
            self.state = TagState::Ready;
            self.slot = 0;
            self.rn16 = 0;
        }
        self.powered = powered;
    }

    /// Processes a decoded reader command, returning the tag's reply.
    /// Unpowered tags never respond.
    pub fn process(&mut self, cmd: &Command) -> TagReply {
        if !self.powered {
            return TagReply::Silent;
        }
        match cmd {
            Command::Select { mask } => {
                // Non-matching prefix parks the tag; matching (or empty)
                // un-parks it.
                let matches = mask.len() <= self.epc.len() && self.epc[..mask.len()] == mask[..];
                self.state = if matches {
                    TagState::Ready
                } else {
                    TagState::Parked
                };
                TagReply::Silent
            }
            Command::Query { session, q, .. } => {
                if self.state == TagState::Parked {
                    return TagReply::Silent;
                }
                self.session = *session;
                self.slot = if *q == 0 {
                    0
                } else {
                    self.rng.random_range(0..(1u32 << q))
                };
                if self.slot == 0 {
                    self.rn16 = self.rng.random();
                    self.state = TagState::Reply;
                    TagReply::Rn16(self.rn16)
                } else {
                    self.state = TagState::Arbitrate;
                    TagReply::Silent
                }
            }
            Command::QueryRep { session } | Command::QueryAdjust { session, .. } => {
                if *session != self.session || self.state == TagState::Parked {
                    return TagReply::Silent;
                }
                if let Command::QueryAdjust { updn, .. } = cmd {
                    // Q changes re-randomize the slot around the new size;
                    // we model it as a fresh draw scaled by 2^updn.
                    let _ = updn;
                }
                match self.state {
                    TagState::Arbitrate => {
                        self.slot = self.slot.saturating_sub(1);
                        if self.slot == 0 {
                            self.rn16 = self.rng.random();
                            self.state = TagState::Reply;
                            TagReply::Rn16(self.rn16)
                        } else {
                            TagReply::Silent
                        }
                    }
                    // A QueryRep while in Reply/Acknowledged means the
                    // reader moved on: return to arbitration limbo.
                    TagState::Reply | TagState::Acknowledged => {
                        self.state = TagState::Ready;
                        TagReply::Silent
                    }
                    _ => TagReply::Silent,
                }
            }
            Command::Ack { rn16 } => {
                if self.state == TagState::Reply && *rn16 == self.rn16 {
                    self.state = TagState::Acknowledged;
                    TagReply::Epc(self.epc_reply_bits())
                } else {
                    // Wrong RN16: fall back to arbitration.
                    if self.state == TagState::Reply {
                        self.state = TagState::Ready;
                    }
                    TagReply::Silent
                }
            }
            Command::ReqRn { rn16 } => {
                if self.state == TagState::Acknowledged && *rn16 == self.rn16 {
                    self.rn16 = self.rng.random();
                    TagReply::Handle(self.rn16)
                } else {
                    TagReply::Silent
                }
            }
        }
    }

    /// The Acknowledged-state reply: PC word (EPC length), EPC, CRC-16.
    pub fn epc_reply_bits(&self) -> Vec<bool> {
        // PC word: 5-bit length (in 16-bit words) + 11 reserved zeros.
        let words = self.epc.len().div_ceil(16) as u16;
        let pc: u16 = words << 11;
        let mut bits = crate::crc::u16_to_bits(pc);
        bits.extend_from_slice(&self.epc);
        crate::crc::append_crc16(&mut bits);
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{DivideRatio, TagEncoding};

    fn query(q: u8) -> Command {
        Command::Query {
            dr: DivideRatio::Dr8,
            m: TagEncoding::Fm0,
            trext: false,
            session: Session::S0,
            q,
        }
    }

    fn powered_tag() -> Tag {
        let mut t = Tag::with_epc96(0x0123_4567_89AB_CDEF_0011_2233, 7);
        t.set_powered(true);
        t
    }

    #[test]
    fn unpowered_tag_is_silent() {
        let mut t = Tag::with_epc96(1, 1);
        assert_eq!(t.process(&query(0)), TagReply::Silent);
        assert!(!t.is_powered());
    }

    #[test]
    fn q0_query_replies_immediately() {
        let mut t = powered_tag();
        match t.process(&query(0)) {
            TagReply::Rn16(_) => {}
            other => panic!("expected RN16, got {other:?}"),
        }
        assert_eq!(t.state(), TagState::Reply);
    }

    #[test]
    fn full_inventory_handshake() {
        let mut t = powered_tag();
        let rn = match t.process(&query(0)) {
            TagReply::Rn16(rn) => rn,
            other => panic!("{other:?}"),
        };
        let epc_bits = match t.process(&Command::Ack { rn16: rn }) {
            TagReply::Epc(bits) => bits,
            other => panic!("{other:?}"),
        };
        assert_eq!(t.state(), TagState::Acknowledged);
        // Reply = PC(16) + EPC(96) + CRC(16).
        assert_eq!(epc_bits.len(), 128);
        assert!(crate::crc::check_crc16(&epc_bits));
        assert_eq!(&epc_bits[16..112], t.epc());
        // Handle request.
        match t.process(&Command::ReqRn { rn16: rn }) {
            TagReply::Handle(h) => assert_ne!(h, rn),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_ack_is_rejected() {
        let mut t = powered_tag();
        let rn = match t.process(&query(0)) {
            TagReply::Rn16(rn) => rn,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            t.process(&Command::Ack {
                rn16: rn.wrapping_add(1)
            }),
            TagReply::Silent
        );
        assert_ne!(t.state(), TagState::Acknowledged);
    }

    #[test]
    fn slotted_arbitration_counts_down() {
        // With Q=4 a seeded tag picks some slot; QueryReps count it down to
        // a reply.
        let mut t = powered_tag();
        let first = t.process(&query(4));
        let mut replies = 0;
        if matches!(first, TagReply::Rn16(_)) {
            replies += 1;
        }
        let mut reps = 0;
        while replies == 0 && reps < 16 {
            if let TagReply::Rn16(_) = t.process(&Command::QueryRep {
                session: Session::S0,
            }) {
                replies += 1;
            }
            reps += 1;
        }
        assert_eq!(replies, 1, "tag never replied within the round");
        assert!(reps as u32 >= t.slot()); // slot hit zero
    }

    #[test]
    fn brownout_wipes_state() {
        let mut t = powered_tag();
        let _ = t.process(&query(0));
        assert_eq!(t.state(), TagState::Reply);
        t.set_powered(false);
        assert_eq!(t.state(), TagState::Ready);
        assert_eq!(t.rn16(), 0);
        // Needs power again before responding.
        assert_eq!(t.process(&query(0)), TagReply::Silent);
    }

    #[test]
    fn select_parks_non_matching_tags() {
        let mut t = powered_tag();
        // A mask that cannot match (EPC starts with 0 bits for this value).
        let bad_mask = vec![true; 8];
        t.process(&Command::Select { mask: bad_mask });
        assert_eq!(t.state(), TagState::Parked);
        assert_eq!(t.process(&query(0)), TagReply::Silent);
        // Matching (empty) mask un-parks.
        t.process(&Command::Select { mask: vec![] });
        assert!(matches!(t.process(&query(0)), TagReply::Rn16(_)));
    }

    #[test]
    fn select_matching_prefix_keeps_tag() {
        let mut t = powered_tag();
        let mask = t.epc()[..8].to_vec();
        t.process(&Command::Select { mask });
        assert_eq!(t.state(), TagState::Ready);
        assert!(matches!(t.process(&query(0)), TagReply::Rn16(_)));
    }

    #[test]
    fn session_mismatch_ignored() {
        let mut t = powered_tag();
        let _ = t.process(&query(4));
        // QueryRep on a different session does nothing.
        let before = t.slot();
        t.process(&Command::QueryRep {
            session: Session::S2,
        });
        assert_eq!(t.slot(), before);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = powered_tag();
        let mut b = powered_tag();
        let ra = a.process(&query(4));
        let rb = b.process(&query(4));
        assert_eq!(ra, rb);
        assert_eq!(a.slot(), b.slot());
    }
}
