//! EPC (Electronic Product Code) structure: the SGTIN-96 scheme.
//!
//! The inventory machinery treats EPCs as opaque bit strings; this module
//! gives them structure so examples and multi-sensor deployments can
//! allocate meaningful, collision-free identities (header / filter /
//! partition / company / item / serial) and round-trip them through the
//! air interface.

/// The SGTIN-96 header byte.
pub const SGTIN96_HEADER: u8 = 0x30;

/// A parsed SGTIN-96 EPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sgtin96 {
    /// Filter value (0–7): packaging level.
    pub filter: u8,
    /// Partition (0–6): split between company prefix and item reference.
    pub partition: u8,
    /// Company prefix (up to 40 bits).
    pub company: u64,
    /// Item reference (up to 24 bits).
    pub item: u32,
    /// Serial number (38 bits).
    pub serial: u64,
}

/// Bit widths of (company, item) for each partition value.
const PARTITION_WIDTHS: [(u32, u32); 7] = [
    (40, 4),
    (37, 7),
    (34, 10),
    (30, 14),
    (27, 17),
    (24, 20),
    (20, 24),
];

/// Errors from EPC parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpcError {
    /// Header is not SGTIN-96.
    WrongHeader,
    /// Partition value out of range.
    BadPartition,
    /// A field exceeded its width.
    FieldOverflow,
}

impl Sgtin96 {
    /// Creates an SGTIN-96, validating field widths.
    pub fn new(
        filter: u8,
        partition: u8,
        company: u64,
        item: u32,
        serial: u64,
    ) -> Result<Self, EpcError> {
        if partition > 6 {
            return Err(EpcError::BadPartition);
        }
        let (cw, iw) = PARTITION_WIDTHS[partition as usize];
        if filter > 7
            || (cw < 64 && company >= 1u64 << cw)
            || (iw < 32 && item >= 1u32 << iw)
            || serial >= 1u64 << 38
        {
            return Err(EpcError::FieldOverflow);
        }
        Ok(Sgtin96 {
            filter,
            partition,
            company,
            item,
            serial,
        })
    }

    /// Packs into the 96-bit EPC value.
    pub fn encode(&self) -> u128 {
        let (cw, iw) = PARTITION_WIDTHS[self.partition as usize];
        let mut v: u128 = (SGTIN96_HEADER as u128) << 88;
        v |= (self.filter as u128) << 85;
        v |= (self.partition as u128) << 82;
        let item_shift = 82 - cw;
        v |= (self.company as u128) << item_shift;
        // cw + iw = 44 for every partition, so this is always 38.
        let serial_shift = item_shift - iw;
        v |= (self.item as u128) << serial_shift;
        v |= self.serial as u128;
        v
    }

    /// Parses a 96-bit EPC value.
    pub fn decode(epc: u128) -> Result<Self, EpcError> {
        let header = (epc >> 88) as u8;
        if header != SGTIN96_HEADER {
            return Err(EpcError::WrongHeader);
        }
        let filter = ((epc >> 85) & 0x7) as u8;
        let partition = ((epc >> 82) & 0x7) as u8;
        if partition > 6 {
            return Err(EpcError::BadPartition);
        }
        let (cw, iw) = PARTITION_WIDTHS[partition as usize];
        let item_shift = 82 - cw;
        let company = ((epc >> item_shift) & ((1u128 << cw) - 1)) as u64;
        let serial_shift = item_shift - iw;
        let item = ((epc >> serial_shift) & ((1u128 << iw) - 1)) as u32;
        let serial = (epc & ((1u128 << 38) - 1)) as u64;
        Ok(Sgtin96 {
            filter,
            partition,
            company,
            item,
            serial,
        })
    }

    /// The 96 bits as an MSB-first bool vector (tag-memory order).
    pub fn to_bits(&self) -> Vec<bool> {
        let v = self.encode();
        (0..96).rev().map(|i| (v >> i) & 1 == 1).collect()
    }

    /// Parses from the MSB-first bit form.
    ///
    /// # Panics
    /// Panics unless exactly 96 bits are given.
    pub fn from_bits(bits: &[bool]) -> Result<Self, EpcError> {
        assert_eq!(bits.len(), 96, "SGTIN-96 needs 96 bits");
        let v = bits.iter().fold(0u128, |acc, &b| (acc << 1) | b as u128);
        Self::decode(v)
    }
}

/// Allocates a family of sensor EPCs sharing a company/item prefix with
/// sequential serials — convenient for multi-sensor deployments where a
/// Select mask on the shared prefix addresses the whole family.
pub fn allocate_family(company: u64, item: u32, count: usize) -> Vec<Sgtin96> {
    (0..count)
        .map(|k| Sgtin96::new(1, 5, company, item, k as u64).expect("family parameters valid"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_partitions() {
        for partition in 0..=6u8 {
            let (cw, iw) = PARTITION_WIDTHS[partition as usize];
            let company = (1u64 << (cw - 1)) | 5;
            let item = if iw >= 2 { (1u32 << (iw - 1)) | 1 } else { 1 };
            let epc = Sgtin96::new(3, partition, company, item, 123_456).unwrap();
            let packed = epc.encode();
            assert_eq!(
                Sgtin96::decode(packed).unwrap(),
                epc,
                "partition {partition}"
            );
        }
    }

    #[test]
    fn bit_roundtrip() {
        let epc = Sgtin96::new(1, 5, 0xABCDEF, 0x1234, 42).unwrap();
        let bits = epc.to_bits();
        assert_eq!(bits.len(), 96);
        assert_eq!(Sgtin96::from_bits(&bits).unwrap(), epc);
    }

    #[test]
    fn header_preserved() {
        let epc = Sgtin96::new(0, 0, 1, 1, 1).unwrap();
        assert_eq!((epc.encode() >> 88) as u8, SGTIN96_HEADER);
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(Sgtin96::new(0, 7, 1, 1, 1), Err(EpcError::BadPartition));
        assert_eq!(Sgtin96::new(9, 0, 1, 1, 1), Err(EpcError::FieldOverflow));
        // Serial too wide.
        assert_eq!(
            Sgtin96::new(0, 0, 1, 1, 1u64 << 38),
            Err(EpcError::FieldOverflow)
        );
        // Item too wide for partition 0 (4 bits).
        assert_eq!(Sgtin96::new(0, 0, 1, 16, 1), Err(EpcError::FieldOverflow));
        // Wrong header.
        assert_eq!(Sgtin96::decode(0), Err(EpcError::WrongHeader));
    }

    #[test]
    fn family_shares_prefix_differs_in_serial() {
        let family = allocate_family(0xC0FFEE, 7, 8);
        assert_eq!(family.len(), 8);
        let prefix_of = |e: &Sgtin96| {
            let bits = e.to_bits();
            bits[..58].to_vec() // header+filter+partition+company+item
        };
        let p0 = prefix_of(&family[0]);
        for (k, e) in family.iter().enumerate() {
            assert_eq!(prefix_of(e), p0);
            assert_eq!(e.serial, k as u64);
        }
        // All encodings distinct.
        let mut vals: Vec<u128> = family.iter().map(|e| e.encode()).collect();
        vals.dedup();
        assert_eq!(vals.len(), 8);
    }

    #[test]
    fn select_mask_on_family_prefix_matches_tag() {
        // The family prefix works as a Gen2 Select mask.
        use crate::commands::Command;
        use crate::tag::{Tag, TagState};
        let family = allocate_family(0xC0FFEE, 7, 2);
        let mut tag = Tag::new(family[0].to_bits(), 1);
        tag.set_powered(true);
        let mask = family[1].to_bits()[..58].to_vec(); // shared prefix
        tag.process(&Command::Select { mask });
        assert_eq!(tag.state(), TagState::Ready); // matched, not parked
    }
}
