//! Physical backscatter model.
//!
//! A tag "transmits" by switching its antenna load between two impedance
//! states, toggling its reflection coefficient between `gamma_a` and
//! `gamma_b`. The reflected field is `incident × Γ(t) × √G_backscatter`.
//!
//! Two properties matter to IVN (paper §4):
//!
//! 1. **Frequency agnosticism** — Γ switching reflects *whatever*
//!    illuminates the tag. Once CIB powers the chip, the tag also
//!    backscatters the out-of-band reader's 880 MHz carrier, which is how
//!    the reader escapes the 915 MHz self-jam.
//! 2. **Modulation depth** — the difference |Γa − Γb| sets the uplink
//!    signal amplitude; a powered-but-weakly-modulating tag can still be
//!    undecodable.

use ivn_dsp::complex::Complex64;

/// A tag's two-state reflection modulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackscatterModulator {
    /// Reflection coefficient in state A ("absorb").
    pub gamma_a: Complex64,
    /// Reflection coefficient in state B ("reflect").
    pub gamma_b: Complex64,
}

impl BackscatterModulator {
    /// Creates a modulator.
    ///
    /// # Panics
    /// Panics if either |Γ| exceeds 1 (passive devices cannot amplify).
    pub fn new(gamma_a: Complex64, gamma_b: Complex64) -> Self {
        assert!(
            gamma_a.norm() <= 1.0 + 1e-12 && gamma_b.norm() <= 1.0 + 1e-12,
            "reflection coefficients must have |Γ| ≤ 1"
        );
        BackscatterModulator { gamma_a, gamma_b }
    }

    /// A typical RFID ASK modulator: matched (Γ≈0.1) vs shorted (Γ≈0.8).
    pub fn typical_rfid() -> Self {
        BackscatterModulator::new(Complex64::from_real(0.1), Complex64::from_real(0.8))
    }

    /// Γ for a given baseband level (`false` = state A, `true` = state B).
    pub fn gamma(&self, state: bool) -> Complex64 {
        if state {
            self.gamma_b
        } else {
            self.gamma_a
        }
    }

    /// Differential reflection |Γb − Γa| — the uplink modulation strength.
    pub fn differential(&self) -> f64 {
        (self.gamma_b - self.gamma_a).norm()
    }

    /// Reflects an incident sample stream given per-sample baseband states.
    /// States shorter than the input hold their last value (idle in A when
    /// empty).
    pub fn reflect(&self, incident: &[Complex64], states: &[bool]) -> Vec<Complex64> {
        incident
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let s = states
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| states.last().copied().unwrap_or(false));
                x * self.gamma(s)
            })
            .collect()
    }

    /// Reflects a *constant* incident carrier with ±1 baseband samples
    /// (e.g. FM0 output): maps +1 → state B, −1/0 → state A.
    pub fn reflect_baseband(&self, carrier: Complex64, baseband: &[f64]) -> Vec<Complex64> {
        baseband
            .iter()
            .map(|&b| carrier * self.gamma(b > 0.0))
            .collect()
    }
}

/// Round-trip backscatter link amplitude: forward channel × Γ-differential
/// × reverse channel. The uplink signal the reader must detect scales with
/// the *product* of both channel amplitudes — the classic backscatter
/// r⁻⁴ power law in free space.
pub fn uplink_amplitude(
    forward: Complex64,
    modulator: &BackscatterModulator,
    reverse: Complex64,
) -> f64 {
    forward.norm() * modulator.differential() * reverse.norm()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_constraint() {
        let m = BackscatterModulator::typical_rfid();
        assert!(m.gamma(false).norm() <= 1.0);
        assert!(m.gamma(true).norm() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "|Γ| ≤ 1")]
    fn rejects_active_reflection() {
        BackscatterModulator::new(Complex64::from_real(1.5), Complex64::ZERO);
    }

    #[test]
    fn differential_depth() {
        let m = BackscatterModulator::typical_rfid();
        assert!((m.differential() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn reflect_switches_states() {
        let m = BackscatterModulator::typical_rfid();
        let incident = vec![Complex64::ONE; 4];
        let states = vec![false, true, true, false];
        let out = m.reflect(&incident, &states);
        assert!((out[0].norm() - 0.1).abs() < 1e-12);
        assert!((out[1].norm() - 0.8).abs() < 1e-12);
        assert!((out[3].norm() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reflect_holds_last_state() {
        let m = BackscatterModulator::typical_rfid();
        let incident = vec![Complex64::ONE; 3];
        let out = m.reflect(&incident, &[true]);
        assert!((out[2].norm() - 0.8).abs() < 1e-12);
        // Empty states → idle in A.
        let idle = m.reflect(&incident, &[]);
        assert!((idle[0].norm() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn frequency_agnostic() {
        // The same modulator reflects carriers of any phase/frequency
        // representation identically in magnitude — the §4 property.
        let m = BackscatterModulator::typical_rfid();
        let carriers = [
            Complex64::from_polar(1.0, 0.0),
            Complex64::from_polar(1.0, 1.7),
            Complex64::from_polar(1.0, -2.9),
        ];
        for c in carriers {
            let out = m.reflect_baseband(c, &[1.0, -1.0]);
            assert!((out[0].norm() - 0.8).abs() < 1e-12);
            assert!((out[1].norm() - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn uplink_product_law() {
        let m = BackscatterModulator::typical_rfid();
        let f = Complex64::from_real(0.01);
        let r = Complex64::from_real(0.02);
        let a = uplink_amplitude(f, &m, r);
        assert!((a - 0.01 * 0.7 * 0.02).abs() < 1e-15);
        // Doubling either leg doubles the uplink.
        assert!((uplink_amplitude(f * 2.0, &m, r) / a - 2.0).abs() < 1e-12);
    }
}
