//! # ivn-harvester — energy-harvesting circuit simulator
//!
//! Models the battery-free sensor's RF→DC chain from the paper's §2:
//!
//! * diode I-V behaviour, ideal vs. threshold-limited ([`diode`]),
//! * the conduction angle ω — the slice of each RF cycle where the diode
//!   conducts ([`conduction`], paper Fig. 4),
//! * the N-stage Dickson voltage multiplier with its output law
//!   `V_DC = N(V_s − V_th)` ([`rectifier`], paper Eq. 1),
//! * storage-capacitor charge/discharge dynamics and duty cycling
//!   ([`storage`]),
//! * RF→DC conversion efficiency curves ([`efficiency`]),
//! * and the end-to-end power-up decision for a tag exposed to a received
//!   envelope ([`powerup`]).
//!
//! The key nonlinearity that CIB exploits lives here: harvested energy is
//! *not* proportional to received energy — nothing at all is harvested
//! until the envelope beats the diode threshold, after which efficiency
//! climbs steeply. Focusing the same average power into short peaks (CIB)
//! therefore harvests where steady illumination harvests zero.

pub mod conduction;
pub mod diode;
pub mod efficiency;
pub mod powerup;
pub mod rectifier;
pub mod storage;

pub use diode::DiodeModel;
pub use powerup::{PowerUpOutcome, TagPowerProfile};
