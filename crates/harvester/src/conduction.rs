//! Conduction angle analysis (paper Fig. 4).
//!
//! For a carrier of envelope amplitude `Vs` driving a diode with threshold
//! `Vth`, the diode conducts during the part of each RF cycle where
//! `Vs·cos(θ) > Vth`, i.e. over a **conduction angle**
//!
//! ```text
//! ω = 2·arccos(Vth / Vs)        (0 when Vs ≤ Vth)
//! ```
//!
//! Because the envelope varies slowly compared to the 915 MHz carrier, the
//! conduction angle is an *analytic* function of the envelope — this is
//! what lets the whole simulator run at envelope rate instead of RF rate
//! without losing the threshold physics (DESIGN.md §5).

use crate::diode::DiodeModel;

/// Conduction angle ω in radians for carrier amplitude `vs` against
/// threshold `vth`. Zero when the peak never beats the threshold; 2π for a
/// zero threshold (ideal diode, positive half... full cycle of the doubler
/// pair).
pub fn conduction_angle(vs: f64, vth: f64) -> f64 {
    assert!(vth >= 0.0, "threshold must be non-negative");
    if vs <= vth || vs <= 0.0 {
        return 0.0;
    }
    2.0 * (vth / vs).clamp(-1.0, 1.0).acos()
}

/// Conduction duty: fraction of the RF cycle spent conducting, ω/2π.
pub fn conduction_duty(vs: f64, vth: f64) -> f64 {
    conduction_angle(vs, vth) / std::f64::consts::TAU
}

/// Mean conduction duty over a time-varying envelope.
pub fn mean_duty(envelope: &[f64], vth: f64) -> f64 {
    if envelope.is_empty() {
        return 0.0;
    }
    envelope
        .iter()
        .map(|&v| conduction_duty(v, vth))
        .sum::<f64>()
        / envelope.len() as f64
}

/// Average rectified current (relative units) delivered by a diode over
/// one RF cycle at envelope amplitude `vs`: the cycle integral of the
/// diode current for a cosine drive, computed by numerical quadrature.
///
/// This is the quantity that actually charges the storage capacitor; it is
/// zero below threshold and grows super-linearly just above it.
pub fn cycle_average_current(diode: &DiodeModel, vs: f64) -> f64 {
    const STEPS: usize = 256;
    let mut acc = 0.0;
    for k in 0..STEPS {
        let theta = std::f64::consts::TAU * k as f64 / STEPS as f64;
        acc += diode.current(vs * theta.cos());
    }
    acc / STEPS as f64
}

/// Classification of an operating point, mirroring the paper's Fig. 4
/// panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatingRegime {
    /// Large conduction angle: most of the RF cycle harvests (Fig. 4a,
    /// sensor in air near the source).
    Strong,
    /// Small but nonzero conduction angle: harvesting is inefficient but
    /// possible with duty cycling (Fig. 4b, shallow tissue).
    Marginal,
    /// Zero conduction angle: no energy can be harvested at all (Fig. 4c,
    /// deep tissue).
    Dead,
}

/// Classifies an envelope amplitude against a threshold. `Strong` means a
/// conduction duty above 20 % (ω > 0.4π).
pub fn classify(vs: f64, vth: f64) -> OperatingRegime {
    let duty = conduction_duty(vs, vth);
    if duty == 0.0 {
        OperatingRegime::Dead
    } else if duty < 0.2 {
        OperatingRegime::Marginal
    } else {
        OperatingRegime::Strong
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angle_zero_below_threshold() {
        assert_eq!(conduction_angle(0.2, 0.25), 0.0);
        assert_eq!(conduction_angle(0.25, 0.25), 0.0);
        assert_eq!(conduction_angle(0.0, 0.0), 0.0);
    }

    #[test]
    fn angle_full_for_zero_threshold() {
        // Vth = 0 → conducts the whole positive half: ω = 2·acos(0) = π.
        assert!((conduction_angle(1.0, 0.0) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn angle_grows_with_amplitude() {
        let vth = 0.25;
        let a1 = conduction_angle(0.3, vth);
        let a2 = conduction_angle(0.5, vth);
        let a3 = conduction_angle(5.0, vth);
        assert!(0.0 < a1 && a1 < a2 && a2 < a3);
        assert!(a3 < std::f64::consts::PI);
    }

    #[test]
    fn duty_at_double_threshold() {
        // Vs = 2·Vth → ω = 2·acos(0.5) = 2π/3 → duty = 1/3.
        let d = conduction_duty(0.5, 0.25);
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_duty_over_envelope() {
        let env = [0.0, 0.5, 0.0, 0.5];
        let d = mean_duty(&env, 0.25);
        // Two samples at duty 1/3, two at 0 → mean 1/6.
        assert!((d - 1.0 / 6.0).abs() < 1e-9);
        assert_eq!(mean_duty(&[], 0.25), 0.0);
    }

    #[test]
    fn cycle_current_threshold_effect() {
        let d = DiodeModel::typical_rfid();
        assert_eq!(cycle_average_current(&d, 0.2), 0.0);
        let i_low = cycle_average_current(&d, 0.3);
        let i_high = cycle_average_current(&d, 0.6);
        assert!(i_low > 0.0);
        // Super-linear growth near threshold: doubling amplitude from 0.3
        // to 0.6 multiplies current by far more than 2.
        assert!(i_high / i_low > 4.0, "ratio {}", i_high / i_low);
    }

    #[test]
    fn cycle_current_ideal_is_linear_in_amplitude() {
        let d = DiodeModel::Ideal;
        let i1 = cycle_average_current(&d, 1.0);
        let i2 = cycle_average_current(&d, 2.0);
        assert!((i2 / i1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn regimes_match_figure4() {
        let vth = 0.25;
        assert_eq!(classify(5.0, vth), OperatingRegime::Strong); // air, close
        assert_eq!(classify(0.27, vth), OperatingRegime::Marginal); // shallow
        assert_eq!(classify(0.1, vth), OperatingRegime::Dead); // deep
    }

    #[test]
    fn peak_focusing_beats_steady_power_below_threshold() {
        // The CIB argument in harvester terms: the same average power,
        // delivered as short peaks, harvests energy where a steady
        // envelope harvests none.
        let d = DiodeModel::typical_rfid();
        // Steady: amplitude 0.2 V forever → below threshold → nothing.
        let steady: f64 = cycle_average_current(&d, 0.2);
        assert_eq!(steady, 0.0);
        // Peaky: amplitude 0.2·√10 ≈ 0.632 V one tenth of the time (same
        // mean-square envelope) → real current flows.
        let peaky = cycle_average_current(&d, 0.2 * 10f64.sqrt()) * 0.1;
        assert!(peaky > 0.0);
    }
}
