//! Diode I-V models.
//!
//! The paper's Fig. 2 contrasts an ideal diode (conducts for any positive
//! voltage) with a practical one that needs to beat a threshold voltage
//! V_th — "usually between 200 mV and 400 mV" for standard IC processes.
//! A smooth Shockley model is also provided for the efficiency curves.

/// Thermal voltage kT/q at room temperature, volts.
pub const THERMAL_VOLTAGE: f64 = 0.02585;

/// A diode's current-voltage model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiodeModel {
    /// Ideal rectifier: any positive voltage conducts losslessly.
    Ideal,
    /// Piecewise-linear threshold model: conducts only above `vth` volts,
    /// then passes `(v - vth)/r_on` amps.
    Threshold {
        /// Turn-on threshold, volts.
        vth: f64,
        /// On-resistance, ohms.
        r_on: f64,
    },
    /// Shockley exponential model `I = I_s (e^{V/(n·V_T)} − 1)`.
    Shockley {
        /// Saturation current, amps.
        i_sat: f64,
        /// Ideality factor (1–2).
        ideality: f64,
    },
}

impl DiodeModel {
    /// A typical RFID-chip rectifier diode (paper §2.1.1: 200–400 mV).
    pub fn typical_rfid() -> Self {
        DiodeModel::Threshold {
            vth: 0.25,
            r_on: 50.0,
        }
    }

    /// Current through the diode at forward voltage `v` (amps; 0 when
    /// blocking).
    pub fn current(&self, v: f64) -> f64 {
        match *self {
            DiodeModel::Ideal => {
                if v > 0.0 {
                    // Ideal switch: model as very low resistance.
                    v / 1e-3
                } else {
                    0.0
                }
            }
            DiodeModel::Threshold { vth, r_on } => {
                if v > vth {
                    (v - vth) / r_on
                } else {
                    0.0
                }
            }
            DiodeModel::Shockley { i_sat, ideality } => {
                // Clamp the exponent to avoid overflow for large drives.
                let x = (v / (ideality * THERMAL_VOLTAGE)).min(80.0);
                i_sat * (x.exp() - 1.0)
            }
        }
    }

    /// Whether the diode conducts meaningfully at voltage `v`.
    ///
    /// For the Shockley model "conducting" means current above 1 µA, the
    /// conventional turn-on definition.
    pub fn conducts(&self, v: f64) -> bool {
        match *self {
            DiodeModel::Ideal => v > 0.0,
            DiodeModel::Threshold { vth, .. } => v > vth,
            DiodeModel::Shockley { .. } => self.current(v) > 1e-6,
        }
    }

    /// Effective threshold voltage: the smallest forward voltage at which
    /// the diode conducts (per [`Self::conducts`]).
    pub fn threshold(&self) -> f64 {
        match *self {
            DiodeModel::Ideal => 0.0,
            DiodeModel::Threshold { vth, .. } => vth,
            DiodeModel::Shockley { i_sat, ideality } => {
                // Solve I(v) = 1 µA.
                ideality * THERMAL_VOLTAGE * (1e-6 / i_sat + 1.0).ln()
            }
        }
    }

    /// Voltage drop across the diode when conducting current `i` (the loss
    /// a rectifier stage pays), volts.
    pub fn forward_drop(&self, i: f64) -> f64 {
        assert!(i >= 0.0, "current must be non-negative");
        match *self {
            DiodeModel::Ideal => 0.0,
            DiodeModel::Threshold { vth, r_on } => {
                if i == 0.0 {
                    0.0
                } else {
                    vth + i * r_on
                }
            }
            DiodeModel::Shockley { i_sat, ideality } => {
                ideality * THERMAL_VOLTAGE * (i / i_sat + 1.0).ln()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_diode_conducts_any_positive() {
        let d = DiodeModel::Ideal;
        assert!(d.conducts(1e-9));
        assert!(!d.conducts(0.0));
        assert!(!d.conducts(-1.0));
        assert_eq!(d.threshold(), 0.0);
        assert_eq!(d.forward_drop(0.1), 0.0);
    }

    #[test]
    fn threshold_diode_blocks_below_vth() {
        let d = DiodeModel::typical_rfid();
        assert!(!d.conducts(0.2));
        assert!(d.conducts(0.3));
        assert_eq!(d.current(0.2), 0.0);
        assert!((d.current(0.35) - 0.002).abs() < 1e-12); // (0.35-0.25)/50
        assert_eq!(d.threshold(), 0.25);
    }

    #[test]
    fn threshold_forward_drop() {
        let d = DiodeModel::Threshold {
            vth: 0.3,
            r_on: 100.0,
        };
        assert_eq!(d.forward_drop(0.0), 0.0);
        assert!((d.forward_drop(0.001) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn shockley_exponential_behaviour() {
        let d = DiodeModel::Shockley {
            i_sat: 1e-9,
            ideality: 1.2,
        };
        // Every 60·n mV multiplies current by 10.
        let i1 = d.current(0.3);
        let i2 = d.current(0.3 + 1.2 * THERMAL_VOLTAGE * std::f64::consts::LN_10);
        assert!((i2 / i1 - 10.0).abs() < 0.01);
        // Blocks in reverse.
        assert!(d.current(-0.5) < 0.0 + 1e-12);
    }

    #[test]
    fn shockley_threshold_consistent_with_conduction() {
        let d = DiodeModel::Shockley {
            i_sat: 1e-9,
            ideality: 1.2,
        };
        let vth = d.threshold();
        assert!(vth > 0.1 && vth < 0.4, "vth {vth}");
        assert!(!d.conducts(vth * 0.95));
        assert!(d.conducts(vth * 1.05));
    }

    #[test]
    fn shockley_forward_drop_inverts_current() {
        let d = DiodeModel::Shockley {
            i_sat: 1e-9,
            ideality: 1.0,
        };
        let i = d.current(0.35);
        assert!((d.forward_drop(i) - 0.35).abs() < 1e-9);
    }

    #[test]
    fn no_overflow_at_large_drive() {
        let d = DiodeModel::Shockley {
            i_sat: 1e-9,
            ideality: 1.0,
        };
        assert!(d.current(100.0).is_finite());
    }
}
