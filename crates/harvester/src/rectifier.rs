//! N-stage Dickson voltage multiplier (paper §2.1, Fig. 1 and Eq. 1).
//!
//! Each stage is the two-diode/two-capacitor doubler of the paper's Fig. 1:
//! the negative half-cycle charges C₁ to `Vs − Vth`, the positive half
//! pushes `2(Vs − Vth)` onto C₂. Cascading N stages yields the steady-state
//! law of Eq. 1:
//!
//! ```text
//! V_DC = N · (V_s − V_th)
//! ```
//!
//! Besides the closed form, a transient simulation tracks the output
//! capacitor charging toward that asymptote through a source resistance,
//! with an optional load — which is what the power-up decision integrates.

use crate::diode::DiodeModel;

/// A multi-stage charge-pump rectifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Rectifier {
    /// Number of voltage-doubler stages.
    pub stages: usize,
    /// Diode model used in every stage.
    pub diode: DiodeModel,
    /// Effective charging resistance seen by the storage capacitor, ohms.
    /// Captures diode on-resistance and source impedance.
    pub r_charge: f64,
}

impl Rectifier {
    /// Creates a rectifier.
    ///
    /// # Panics
    /// Panics if `stages == 0` or `r_charge <= 0`.
    pub fn new(stages: usize, diode: DiodeModel, r_charge: f64) -> Self {
        assert!(stages > 0, "need at least one stage");
        assert!(r_charge > 0.0, "charge resistance must be positive");
        Rectifier {
            stages,
            diode,
            r_charge,
        }
    }

    /// A typical RFID front end: 3 stages of threshold diodes.
    pub fn typical_rfid() -> Self {
        Rectifier::new(3, DiodeModel::typical_rfid(), 2000.0)
    }

    /// Steady-state (open-circuit) DC output for carrier amplitude `vs`:
    /// the paper's Eq. 1, clamped at zero below threshold.
    pub fn steady_state_vdc(&self, vs: f64) -> f64 {
        let vth = self.diode.threshold();
        (self.stages as f64 * (vs - vth)).max(0.0)
    }

    /// Smallest carrier amplitude producing any output.
    pub fn input_threshold(&self) -> f64 {
        self.diode.threshold()
    }

    /// One transient step: advances the output capacitor voltage `v_out`
    /// by `dt` seconds, driven by carrier amplitude `vs`, supplying
    /// `i_load` amps to the chip. Returns the new output voltage (≥ 0).
    ///
    /// The pump charges toward [`Self::steady_state_vdc`] through
    /// `r_charge` (only when the target exceeds the present voltage — the
    /// diodes block backwards flow), while the load discharges `c_out`.
    /// The RC charging uses the exact exponential solution, so the step is
    /// unconditionally stable for any `dt` (the envelope-rate simulations
    /// take steps far longer than the circuit's time constant).
    pub fn step(&self, v_out: f64, vs: f64, dt: f64, c_out: f64, i_load: f64) -> f64 {
        assert!(c_out > 0.0 && dt > 0.0);
        let target = self.steady_state_vdc(vs);
        let v_charged = if target > v_out {
            target + (v_out - target) * self.charge_alpha(dt, c_out)
        } else {
            v_out // diodes block; the cap holds (peak-hold behaviour)
        };
        (v_charged - i_load * dt / c_out).max(0.0)
    }

    /// The per-step RC charging factor `α = exp(−dt/(R·C))` of
    /// [`Self::step`]. It depends only on the step size and the
    /// capacitor, so a fixed-rate integrator can hoist it out of the
    /// per-sample loop: `v' = target + (v − target)·α` with this α is
    /// bit-identical to calling [`Self::step`] every sample.
    pub fn charge_alpha(&self, dt: f64, c_out: f64) -> f64 {
        (-dt / (self.r_charge * c_out)).exp()
    }

    /// Runs the transient over an envelope sequence sampled at
    /// `sample_rate`, starting from `v0`, with constant load `i_load` into
    /// capacitor `c_out`. Returns the output-voltage trace.
    pub fn simulate(
        &self,
        envelope: &[f64],
        sample_rate: f64,
        v0: f64,
        c_out: f64,
        i_load: f64,
    ) -> Vec<f64> {
        let dt = 1.0 / sample_rate;
        let mut v = v0;
        envelope
            .iter()
            .map(|&vs| {
                v = self.step(v, vs, dt, c_out, i_load);
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_steady_state() {
        let r = Rectifier::new(4, DiodeModel::typical_rfid(), 1000.0);
        // V_DC = N (Vs − Vth) = 4 × (0.5 − 0.25) = 1.0 V.
        assert!((r.steady_state_vdc(0.5) - 1.0).abs() < 1e-12);
        // Below threshold: nothing.
        assert_eq!(r.steady_state_vdc(0.2), 0.0);
        assert_eq!(r.steady_state_vdc(0.25), 0.0);
    }

    #[test]
    fn more_stages_more_voltage() {
        let d = DiodeModel::typical_rfid();
        let v3 = Rectifier::new(3, d, 1000.0).steady_state_vdc(0.6);
        let v6 = Rectifier::new(6, d, 1000.0).steady_state_vdc(0.6);
        assert!((v6 / v3 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_diode_has_no_threshold_penalty() {
        let r = Rectifier::new(2, DiodeModel::Ideal, 1000.0);
        assert!((r.steady_state_vdc(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(r.input_threshold(), 0.0);
    }

    #[test]
    fn transient_charges_toward_steady_state() {
        let r = Rectifier::new(2, DiodeModel::typical_rfid(), 1000.0);
        let env = vec![0.75; 20_000]; // steady 0.75 V drive → target 1.0 V
        let trace = r.simulate(&env, 1e6, 0.0, 1e-9, 0.0);
        let last = *trace.last().unwrap();
        assert!((last - 1.0).abs() < 0.01, "final {last}");
        // Monotone non-decreasing with no load.
        assert!(trace.windows(2).all(|w| w[1] >= w[0] - 1e-15));
    }

    #[test]
    fn rc_time_constant() {
        let r = Rectifier::new(1, DiodeModel::Ideal, 1000.0);
        let c = 1e-6;
        // τ = RC = 1 ms; after 1 τ the cap reaches 63 % of target 1.0 V.
        let env = vec![1.0; 1000];
        let trace = r.simulate(&env, 1e6, 0.0, c, 0.0);
        let v_tau = trace[999];
        assert!((v_tau - 0.632).abs() < 0.01, "v(τ) = {v_tau}");
    }

    #[test]
    fn peak_hold_between_cib_peaks() {
        // Envelope: a short peak then silence. With no load the cap must
        // hold its voltage (diodes block) — the duty-cycled harvesting of
        // paper §2.3.
        let r = Rectifier::new(2, DiodeModel::typical_rfid(), 100.0);
        let mut env = vec![1.0; 1000];
        env.extend(vec![0.0; 5000]);
        let trace = r.simulate(&env, 1e6, 0.0, 1e-8, 0.0);
        let at_peak_end = trace[999];
        let much_later = trace[5999];
        assert!(at_peak_end > 1.0);
        assert!((much_later - at_peak_end).abs() < 1e-12, "cap leaked");
    }

    #[test]
    fn load_discharges_cap() {
        let r = Rectifier::new(2, DiodeModel::typical_rfid(), 100.0);
        let env = vec![0.0; 1000]; // no input
        let trace = r.simulate(&env, 1e6, 1.0, 1e-6, 10e-6);
        // dV = I·t/C = 10 µA × 1 ms / 1 µF = 10 mV.
        let last = *trace.last().unwrap();
        assert!((1.0 - last - 0.01).abs() < 1e-6, "final {last}");
    }

    #[test]
    fn voltage_never_negative() {
        let r = Rectifier::typical_rfid();
        let env = vec![0.0; 100];
        let trace = r.simulate(&env, 1e6, 0.001, 1e-9, 1e-3);
        assert!(trace.iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn rejects_zero_stages() {
        Rectifier::new(0, DiodeModel::Ideal, 100.0);
    }
}
