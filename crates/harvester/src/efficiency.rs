//! RF→DC conversion efficiency.
//!
//! §2.3 of the paper: "the energy harvesting efficiency is highly
//! sensitive to the signal amplitude". This module derives the efficiency
//! curve from the threshold model: with carrier amplitude `Vs` and diode
//! threshold `Vth`, the usable voltage is `Vs − Vth`, so the voltage-domain
//! efficiency is `(Vs − Vth)/Vs` and the power-domain efficiency scales as
//! its square (capped by a circuit ceiling). Zero below threshold — the
//! fundamental cliff CIB exists to overcome.

/// A threshold-limited efficiency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyModel {
    /// Diode threshold voltage, volts.
    pub vth: f64,
    /// Peak achievable conversion efficiency (0–1) at very large drive.
    pub eta_max: f64,
}

impl EfficiencyModel {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics unless `vth ≥ 0` and `eta_max ∈ (0, 1]`.
    pub fn new(vth: f64, eta_max: f64) -> Self {
        assert!(vth >= 0.0, "threshold must be non-negative");
        assert!(eta_max > 0.0 && eta_max <= 1.0, "eta_max must be in (0,1]");
        EfficiencyModel { vth, eta_max }
    }

    /// A typical CMOS harvester: 250 mV threshold, 35 % ceiling.
    pub fn typical_rfid() -> Self {
        EfficiencyModel::new(0.25, 0.35)
    }

    /// Power conversion efficiency (0–1) at carrier amplitude `vs` volts:
    /// `η = η_max · ((vs − vth)/vs)²` above threshold, 0 at or below.
    pub fn efficiency(&self, vs: f64) -> f64 {
        if vs <= self.vth || vs <= 0.0 {
            return 0.0;
        }
        self.eta_max * ((vs - self.vth) / vs).powi(2)
    }

    /// Harvested DC power given instantaneous available RF power `p_in`
    /// (watts) and the corresponding carrier amplitude `vs` (volts).
    pub fn harvested_power(&self, p_in: f64, vs: f64) -> f64 {
        assert!(p_in >= 0.0, "input power must be non-negative");
        p_in * self.efficiency(vs)
    }

    /// Average harvested power over an envelope trace, where `vs_of[n]` is
    /// the carrier amplitude and `p_of[n]` the available power at sample n.
    pub fn mean_harvested(&self, vs_of: &[f64], p_of: &[f64]) -> f64 {
        assert_eq!(vs_of.len(), p_of.len(), "trace length mismatch");
        if vs_of.is_empty() {
            return 0.0;
        }
        vs_of
            .iter()
            .zip(p_of)
            .map(|(&vs, &p)| self.harvested_power(p, vs))
            .sum::<f64>()
            / vs_of.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_below_threshold() {
        let m = EfficiencyModel::typical_rfid();
        assert_eq!(m.efficiency(0.0), 0.0);
        assert_eq!(m.efficiency(0.25), 0.0);
        assert_eq!(m.efficiency(0.1), 0.0);
    }

    #[test]
    fn rises_with_amplitude_toward_ceiling() {
        let m = EfficiencyModel::typical_rfid();
        let e1 = m.efficiency(0.3);
        let e2 = m.efficiency(0.6);
        let e3 = m.efficiency(10.0);
        assert!(0.0 < e1 && e1 < e2 && e2 < e3);
        assert!(e3 < 0.35 && e3 > 0.33);
    }

    #[test]
    fn efficiency_cliff_is_steep() {
        // 10 % above threshold vs 3× threshold: enormous efficiency gap —
        // the quantitative version of the paper's Fig. 4 story.
        let m = EfficiencyModel::typical_rfid();
        let just_above = m.efficiency(0.275);
        let well_above = m.efficiency(0.75);
        assert!(well_above / just_above > 30.0);
    }

    #[test]
    fn harvested_power_composes() {
        let m = EfficiencyModel::new(0.25, 0.4);
        let p = m.harvested_power(1e-3, 0.5);
        assert!((p - 1e-3 * 0.4 * 0.25).abs() < 1e-12);
        assert_eq!(m.harvested_power(1e-3, 0.1), 0.0);
    }

    #[test]
    fn mean_harvested_over_trace() {
        let m = EfficiencyModel::new(0.25, 1.0);
        // Half the time below threshold, half at 0.5 V (η = 0.25).
        let vs = [0.1, 0.5, 0.1, 0.5];
        let p = [1.0, 1.0, 1.0, 1.0];
        let mean = m.mean_harvested(&vs, &p);
        assert!((mean - 0.125).abs() < 1e-12);
        assert_eq!(m.mean_harvested(&[], &[]), 0.0);
    }

    #[test]
    fn ideal_harvester_has_no_cliff() {
        let m = EfficiencyModel::new(0.0, 1.0);
        assert!((m.efficiency(0.001) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "eta_max")]
    fn rejects_bad_ceiling() {
        EfficiencyModel::new(0.25, 1.5);
    }
}
