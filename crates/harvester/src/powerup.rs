//! End-to-end power-up decision for a battery-free tag.
//!
//! Given the received RF power envelope at the tag's antenna terminals,
//! decides whether the chip powers up — the gate every experiment in the
//! paper ultimately tests. The chain is:
//!
//! ```text
//! P(t) ──(input resistance)──▶ Vs(t) ──(Dickson pump)──▶ V_DC(t) ──▶ chip
//! ```
//!
//! with `Vs = √(2·P·R_in)` the carrier amplitude across the rectifier
//! input, and the chip alive once `V_DC` reaches its operating voltage.
//!
//! ## Calibration (DESIGN.md §5)
//!
//! The standard-tag profile is anchored so that a single 37 dBm-EIRP
//! antenna powers it at ≈ 5.2 m in free space, the paper's measured
//! single-antenna range: with a 4-stage pump, a 250 mV diode, an 0.8 V
//! operating point and `R_in ≈ 1012 Ω`, the *peak* power needed to wake
//! the chip is `(vth + v_op/N)²/(2R_in) = 1.0e−4 W = −10 dBm`. The
//! miniature tag couples far less power (mm-scale antenna, poor
//! matching): `R_in ≈ 101 Ω` puts its wake-up requirement at 0 dBm,
//! reproducing the ~10× shorter range of the paper's Fig. 13b.

use crate::diode::DiodeModel;
use crate::rectifier::Rectifier;

/// Electrical power-up profile of a battery-free tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TagPowerProfile {
    /// Descriptive name.
    pub name: String,
    /// Rectifier input resistance, ohms (sets power→voltage coupling).
    pub r_in: f64,
    /// The charge pump.
    pub rectifier: Rectifier,
    /// DC supply voltage at which the chip wakes, volts.
    pub v_operate: f64,
    /// On-chip storage capacitance, farads.
    pub c_storage: f64,
    /// Chip current draw once awake, amps.
    pub i_chip: f64,
}

impl TagPowerProfile {
    /// The standard UHF tag (Avery AD-238u8 class).
    pub fn standard_tag() -> Self {
        TagPowerProfile {
            name: "standard tag".into(),
            r_in: 1012.5,
            rectifier: Rectifier::new(4, DiodeModel::typical_rfid(), 2000.0),
            v_operate: 0.8,
            c_storage: 1e-9,
            i_chip: 5e-6,
        }
    }

    /// The miniature implantable tag (Xerafy Dash-On XS class): same chip
    /// family, far poorer antenna coupling.
    pub fn miniature_tag() -> Self {
        TagPowerProfile {
            name: "miniature tag".into(),
            r_in: 101.25,
            rectifier: Rectifier::new(4, DiodeModel::typical_rfid(), 2000.0),
            v_operate: 0.8,
            c_storage: 1e-9,
            i_chip: 5e-6,
        }
    }

    /// Carrier amplitude at the rectifier input for received power `p`
    /// watts: `√(2·P·R_in)`.
    pub fn input_amplitude(&self, p_watts: f64) -> f64 {
        assert!(p_watts >= 0.0, "power must be non-negative");
        (2.0 * p_watts * self.r_in).sqrt()
    }

    /// Static sensitivity: the continuous-wave received power below which
    /// the tag can never power up (input amplitude at the diode threshold),
    /// watts.
    pub fn static_sensitivity_watts(&self) -> f64 {
        let vth = self.rectifier.input_threshold();
        vth * vth / (2.0 * self.r_in)
    }

    /// Static sensitivity in dBm.
    pub fn static_sensitivity_dbm(&self) -> f64 {
        ivn_dsp::units::watts_to_dbm(self.static_sensitivity_watts())
    }

    /// Runs the power-up simulation over a received-power envelope
    /// (watts per sample at `sample_rate`). Returns the outcome.
    ///
    /// Thin wrapper over the resumable streaming core
    /// ([`Self::begin_power_up`]): the whole envelope is one block, so
    /// batch and streaming integration are identical by construction.
    pub fn power_up(&self, power_envelope: &[f64], sample_rate: f64) -> PowerUpOutcome {
        let mut state = self
            .begin_power_up(sample_rate)
            .with_trace_stride((power_envelope.len() / 32).max(1));
        state.step_block(power_envelope);
        state.finish()
    }

    /// Starts a resumable power-up integration at `sample_rate`: feed
    /// received-power blocks through [`PowerUpState::step_block`], then
    /// read [`PowerUpState::finish`]. Pump voltage, peak tracking and
    /// the wake timestamp all carry across block boundaries, so any
    /// block split produces the same outcome as [`Self::power_up`].
    pub fn begin_power_up(&self, sample_rate: f64) -> PowerUpState<'_> {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        PowerUpState {
            profile: self,
            sample_rate,
            dt: 1.0 / sample_rate,
            v: 0.0,
            v_peak: 0.0,
            awake_at: None,
            n: 0,
            trace_stride: 1,
            crossing_counted: false,
        }
    }

    /// Fast analytic check used by range sweeps: can a *peak* received
    /// power `p_peak` ever wake the chip, i.e. does the steady-state pump
    /// output at that drive clear `v_operate`?
    pub fn can_power_at_peak(&self, p_peak_watts: f64) -> bool {
        let vs = self.input_amplitude(p_peak_watts);
        self.rectifier.steady_state_vdc(vs) >= self.v_operate
    }

    /// The peak received power (watts) needed to satisfy
    /// [`Self::can_power_at_peak`]: inverts `N(√(2PR) − vth) = v_op`.
    pub fn required_peak_power_watts(&self) -> f64 {
        let vth = self.rectifier.input_threshold();
        let n = self.rectifier.stages as f64;
        let vs_needed = vth + self.v_operate / n;
        vs_needed * vs_needed / (2.0 * self.r_in)
    }
}

/// Resumable Dickson-pump charge integration — the streaming core
/// behind [`TagPowerProfile::power_up`].
///
/// The integrator is a first-order recurrence (each step depends only
/// on the previous pump voltage and the current input amplitude), so
/// carrying `v`, the running peak and the wake index across block
/// boundaries reproduces the whole-buffer loop exactly: pushing the
/// same envelope in blocks of 1 or 4096 yields bit-identical outcomes.
#[derive(Debug, Clone)]
pub struct PowerUpState<'a> {
    profile: &'a TagPowerProfile,
    sample_rate: f64,
    dt: f64,
    v: f64,
    v_peak: f64,
    awake_at: Option<usize>,
    /// Global sample index (drives the trace stride and wake timestamp).
    n: usize,
    trace_stride: usize,
    crossing_counted: bool,
}

impl PowerUpState<'_> {
    /// Sets the physics-probe stride: the banked energy (½·C·V²) is
    /// emitted as a `physics.harvested_charge_j` trace counter every
    /// `stride` samples. The whole-buffer wrapper uses ~32 points across
    /// the transient; a streaming driver should derive the stride from
    /// its expected total sample count.
    ///
    /// # Panics
    /// Panics if `stride` is zero.
    pub fn with_trace_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "trace stride must be positive");
        self.trace_stride = stride;
        self
    }

    /// Integrates one block of received power (watts per sample).
    pub fn step_block(&mut self, power_block: &[f64]) {
        let _span = ivn_runtime::span!("harvester.power_up_ns");
        ivn_runtime::obs_count!("harvester.charge_steps", power_block.len());
        for &p in power_block {
            let amp = self.profile.input_amplitude(p);
            // While below `v_operate` the chip is off and draws (almost)
            // nothing; once awake it draws i_chip.
            let i_load = if self.awake_at.is_some() {
                self.profile.i_chip
            } else {
                0.0
            };
            self.v =
                self.profile
                    .rectifier
                    .step(self.v, amp, self.dt, self.profile.c_storage, i_load);
            self.v_peak = self.v_peak.max(self.v);
            if self.awake_at.is_none() && self.v >= self.profile.v_operate {
                self.awake_at = Some(self.n);
            }
            // The stride check stays behind the enabled() load so the
            // charge loop pays one relaxed load per step when tracing
            // is off.
            if ivn_runtime::trace::enabled() && self.n % self.trace_stride == 0 {
                ivn_runtime::trace_counter!(
                    "physics.harvested_charge_j",
                    0.5 * self.profile.c_storage * self.v * self.v
                );
            }
            self.n += 1;
        }
    }

    /// Ends the stream (books the threshold-crossing observation once)
    /// and returns the outcome. Idempotent; the state can keep
    /// integrating afterwards if more samples arrive.
    pub fn finish(&mut self) -> PowerUpOutcome {
        if self.awake_at.is_some() && !self.crossing_counted {
            ivn_runtime::obs_count!("harvester.threshold_crossings", 1);
            self.crossing_counted = true;
        }
        self.outcome()
    }

    /// The outcome as of the samples integrated so far.
    pub fn outcome(&self) -> PowerUpOutcome {
        PowerUpOutcome {
            powered: self.awake_at.is_some(),
            time_to_power_s: self.awake_at.map(|n| n as f64 / self.sample_rate),
            peak_vdc: self.v_peak,
            final_vdc: self.v,
        }
    }

    /// Samples integrated so far.
    pub fn samples_seen(&self) -> usize {
        self.n
    }
}

impl ivn_dsp::block::BlockSink for PowerUpState<'_> {
    type In = f64;

    fn consume(&mut self, input: &[f64]) {
        self.step_block(input);
    }

    fn finish(&mut self) {
        PowerUpState::finish(self);
    }
}

/// Result of a power-up attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerUpOutcome {
    /// Whether the chip reached its operating voltage.
    pub powered: bool,
    /// When it did, seconds from the start of the window.
    pub time_to_power_s: Option<f64>,
    /// Highest DC voltage reached.
    pub peak_vdc: f64,
    /// DC voltage at the end of the window.
    pub final_vdc: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_dsp::units::dbm_to_watts;

    #[test]
    fn calibrated_sensitivities() {
        let std_tag = TagPowerProfile::standard_tag();
        let mini = TagPowerProfile::miniature_tag();
        // Wake-up anchors: standard −10 dBm peak, miniature 0 dBm peak
        // (DESIGN.md §5). Static (diode-threshold) floors sit ~5 dB lower.
        let std_req = ivn_dsp::units::watts_to_dbm(std_tag.required_peak_power_watts());
        let mini_req = ivn_dsp::units::watts_to_dbm(mini.required_peak_power_watts());
        assert!((std_req + 10.0).abs() < 0.3, "std {std_req}");
        assert!(mini_req.abs() < 0.3, "mini {mini_req}");
        assert!(std_tag.static_sensitivity_dbm() < std_req);
        assert!(mini.static_sensitivity_dbm() < mini_req);
    }

    #[test]
    fn input_amplitude_square_root_law() {
        let tag = TagPowerProfile::standard_tag();
        let v1 = tag.input_amplitude(1e-4);
        let v4 = tag.input_amplitude(4e-4);
        assert!((v4 / v1 - 2.0).abs() < 1e-12);
        assert_eq!(tag.input_amplitude(0.0), 0.0);
    }

    #[test]
    fn strong_signal_powers_quickly() {
        let tag = TagPowerProfile::standard_tag();
        // 10 dBm received — 20 dB above sensitivity.
        let env = vec![dbm_to_watts(10.0); 50_000];
        let out = tag.power_up(&env, 1e6);
        assert!(out.powered);
        assert!(out.time_to_power_s.unwrap() < 0.05);
        assert!(out.peak_vdc >= 1.0);
    }

    #[test]
    fn weak_signal_never_powers() {
        let tag = TagPowerProfile::standard_tag();
        // −20 dBm: below the diode threshold entirely.
        let env = vec![dbm_to_watts(-20.0); 100_000];
        let out = tag.power_up(&env, 1e6);
        assert!(!out.powered);
        assert_eq!(out.peak_vdc, 0.0);
        assert!(out.time_to_power_s.is_none());
    }

    #[test]
    fn above_threshold_but_below_operate_stalls() {
        let tag = TagPowerProfile::standard_tag();
        // Slightly above diode threshold: pump output saturates below the
        // 1 V operating point.
        let p = tag.static_sensitivity_watts() * 1.2;
        let env = vec![p; 200_000];
        let out = tag.power_up(&env, 1e6);
        assert!(!out.powered);
        assert!(out.peak_vdc > 0.0 && out.peak_vdc < 1.0);
    }

    #[test]
    fn peaky_envelope_powers_where_steady_fails() {
        // The CIB effect at the harvester: same average power, delivered
        // as N× amplitude peaks, wakes the chip.
        let tag = TagPowerProfile::standard_tag();
        let p_avg = tag.static_sensitivity_watts() * 0.8; // steady: dead
        let steady = vec![p_avg; 100_000];
        assert!(!tag.power_up(&steady, 1e6).powered);

        // Peaks of 100× power (10 antennas) for 1 % of the time.
        let mut peaky = vec![0.0; 100_000];
        for chunk in peaky.chunks_mut(10_000) {
            for v in chunk.iter_mut().take(100) {
                *v = p_avg * 100.0;
            }
        }
        let out = tag.power_up(&peaky, 1e6);
        assert!(out.powered, "peak_vdc {}", out.peak_vdc);
    }

    #[test]
    fn required_peak_power_consistent() {
        let tag = TagPowerProfile::standard_tag();
        let p_req = tag.required_peak_power_watts();
        assert!(!tag.can_power_at_peak(p_req * 0.99));
        assert!(tag.can_power_at_peak(p_req * 1.01));
        // Requirement sits above the static sensitivity (needs V_op too).
        assert!(p_req > tag.static_sensitivity_watts());
    }

    #[test]
    fn mini_tag_needs_more_power() {
        let std_req = TagPowerProfile::standard_tag().required_peak_power_watts();
        let mini_req = TagPowerProfile::miniature_tag().required_peak_power_watts();
        assert!(
            (mini_req / std_req - 10.0).abs() < 0.5,
            "ratio {}",
            mini_req / std_req
        );
    }

    #[test]
    fn streaming_integration_matches_batch_any_block_size() {
        let tag = TagPowerProfile::standard_tag();
        // A ramp that crosses the wake threshold partway through, then
        // drops — exercises wake timing and post-wake drain across
        // block boundaries.
        let env: Vec<f64> = (0..40_000)
            .map(|k| {
                if k < 30_000 {
                    dbm_to_watts(10.0) * (k as f64 / 30_000.0)
                } else {
                    0.0
                }
            })
            .collect();
        let batch = tag.power_up(&env, 1e6);
        assert!(batch.powered);
        for block in [1usize, 7, 256, 4096] {
            let mut st = tag
                .begin_power_up(1e6)
                .with_trace_stride((env.len() / 32).max(1));
            for chunk in env.chunks(block) {
                st.step_block(chunk);
            }
            let out = st.finish();
            assert_eq!(out.powered, batch.powered, "block {block}");
            assert_eq!(
                out.time_to_power_s.map(f64::to_bits),
                batch.time_to_power_s.map(f64::to_bits),
                "block {block}"
            );
            assert_eq!(out.peak_vdc.to_bits(), batch.peak_vdc.to_bits());
            assert_eq!(out.final_vdc.to_bits(), batch.final_vdc.to_bits());
            assert_eq!(st.samples_seen(), env.len());
        }
    }

    #[test]
    fn chip_drain_after_wake() {
        let tag = TagPowerProfile::standard_tag();
        // Power strongly, then cut the signal: voltage must decay due to
        // chip draw.
        let mut env = vec![dbm_to_watts(10.0); 20_000];
        env.extend(vec![0.0; 500_000]);
        let out = tag.power_up(&env, 1e6);
        assert!(out.powered);
        assert!(out.final_vdc < out.peak_vdc);
    }
}
