//! End-to-end power-up decision for a battery-free tag.
//!
//! Given the received RF power envelope at the tag's antenna terminals,
//! decides whether the chip powers up — the gate every experiment in the
//! paper ultimately tests. The chain is:
//!
//! ```text
//! P(t) ──(input resistance)──▶ Vs(t) ──(Dickson pump)──▶ V_DC(t) ──▶ chip
//! ```
//!
//! with `Vs = √(2·P·R_in)` the carrier amplitude across the rectifier
//! input, and the chip alive once `V_DC` reaches its operating voltage.
//!
//! ## Calibration (DESIGN.md §5)
//!
//! The standard-tag profile is anchored so that a single 37 dBm-EIRP
//! antenna powers it at ≈ 5.2 m in free space, the paper's measured
//! single-antenna range: with a 4-stage pump, a 250 mV diode, an 0.8 V
//! operating point and `R_in ≈ 1012 Ω`, the *peak* power needed to wake
//! the chip is `(vth + v_op/N)²/(2R_in) = 1.0e−4 W = −10 dBm`. The
//! miniature tag couples far less power (mm-scale antenna, poor
//! matching): `R_in ≈ 101 Ω` puts its wake-up requirement at 0 dBm,
//! reproducing the ~10× shorter range of the paper's Fig. 13b.

use crate::diode::DiodeModel;
use crate::rectifier::Rectifier;

/// Electrical power-up profile of a battery-free tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TagPowerProfile {
    /// Descriptive name.
    pub name: String,
    /// Rectifier input resistance, ohms (sets power→voltage coupling).
    pub r_in: f64,
    /// The charge pump.
    pub rectifier: Rectifier,
    /// DC supply voltage at which the chip wakes, volts.
    pub v_operate: f64,
    /// On-chip storage capacitance, farads.
    pub c_storage: f64,
    /// Chip current draw once awake, amps.
    pub i_chip: f64,
}

impl TagPowerProfile {
    /// The standard UHF tag (Avery AD-238u8 class).
    pub fn standard_tag() -> Self {
        TagPowerProfile {
            name: "standard tag".into(),
            r_in: 1012.5,
            rectifier: Rectifier::new(4, DiodeModel::typical_rfid(), 2000.0),
            v_operate: 0.8,
            c_storage: 1e-9,
            i_chip: 5e-6,
        }
    }

    /// The miniature implantable tag (Xerafy Dash-On XS class): same chip
    /// family, far poorer antenna coupling.
    pub fn miniature_tag() -> Self {
        TagPowerProfile {
            name: "miniature tag".into(),
            r_in: 101.25,
            rectifier: Rectifier::new(4, DiodeModel::typical_rfid(), 2000.0),
            v_operate: 0.8,
            c_storage: 1e-9,
            i_chip: 5e-6,
        }
    }

    /// Carrier amplitude at the rectifier input for received power `p`
    /// watts: `√(2·P·R_in)`.
    pub fn input_amplitude(&self, p_watts: f64) -> f64 {
        assert!(p_watts >= 0.0, "power must be non-negative");
        (2.0 * p_watts * self.r_in).sqrt()
    }

    /// Static sensitivity: the continuous-wave received power below which
    /// the tag can never power up (input amplitude at the diode threshold),
    /// watts.
    pub fn static_sensitivity_watts(&self) -> f64 {
        let vth = self.rectifier.input_threshold();
        vth * vth / (2.0 * self.r_in)
    }

    /// Static sensitivity in dBm.
    pub fn static_sensitivity_dbm(&self) -> f64 {
        ivn_dsp::units::watts_to_dbm(self.static_sensitivity_watts())
    }

    /// Runs the power-up simulation over a received-power envelope
    /// (watts per sample at `sample_rate`). Returns the outcome.
    pub fn power_up(&self, power_envelope: &[f64], sample_rate: f64) -> PowerUpOutcome {
        let _span = ivn_runtime::span!("harvester.power_up_ns");
        ivn_runtime::obs_count!("harvester.charge_steps", power_envelope.len());
        let vs: Vec<f64> = power_envelope
            .iter()
            .map(|&p| self.input_amplitude(p))
            .collect();
        // While below `v_operate` the chip is off and draws (almost)
        // nothing; once awake it draws i_chip. Track both phases.
        let dt = 1.0 / sample_rate;
        let mut v = 0.0;
        let mut awake_at = None;
        let mut v_peak: f64 = 0.0;
        // Physics probe: sample the energy banked in the storage cap
        // (½·C·V², joules) at ~32 points across the transient. The stride
        // check stays behind the enabled() load so the charge loop pays
        // one relaxed load per step when tracing is off.
        let charge_stride = (vs.len() / 32).max(1);
        for (n, &amp) in vs.iter().enumerate() {
            let i_load = if awake_at.is_some() { self.i_chip } else { 0.0 };
            v = self.rectifier.step(v, amp, dt, self.c_storage, i_load);
            v_peak = v_peak.max(v);
            if awake_at.is_none() && v >= self.v_operate {
                awake_at = Some(n);
            }
            if ivn_runtime::trace::enabled() && n % charge_stride == 0 {
                ivn_runtime::trace_counter!(
                    "physics.harvested_charge_j",
                    0.5 * self.c_storage * v * v
                );
            }
        }
        if awake_at.is_some() {
            ivn_runtime::obs_count!("harvester.threshold_crossings", 1);
        }
        PowerUpOutcome {
            powered: awake_at.is_some(),
            time_to_power_s: awake_at.map(|n| n as f64 / sample_rate),
            peak_vdc: v_peak,
            final_vdc: v,
        }
    }

    /// Fast analytic check used by range sweeps: can a *peak* received
    /// power `p_peak` ever wake the chip, i.e. does the steady-state pump
    /// output at that drive clear `v_operate`?
    pub fn can_power_at_peak(&self, p_peak_watts: f64) -> bool {
        let vs = self.input_amplitude(p_peak_watts);
        self.rectifier.steady_state_vdc(vs) >= self.v_operate
    }

    /// The peak received power (watts) needed to satisfy
    /// [`Self::can_power_at_peak`]: inverts `N(√(2PR) − vth) = v_op`.
    pub fn required_peak_power_watts(&self) -> f64 {
        let vth = self.rectifier.input_threshold();
        let n = self.rectifier.stages as f64;
        let vs_needed = vth + self.v_operate / n;
        vs_needed * vs_needed / (2.0 * self.r_in)
    }
}

/// Result of a power-up attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerUpOutcome {
    /// Whether the chip reached its operating voltage.
    pub powered: bool,
    /// When it did, seconds from the start of the window.
    pub time_to_power_s: Option<f64>,
    /// Highest DC voltage reached.
    pub peak_vdc: f64,
    /// DC voltage at the end of the window.
    pub final_vdc: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_dsp::units::dbm_to_watts;

    #[test]
    fn calibrated_sensitivities() {
        let std_tag = TagPowerProfile::standard_tag();
        let mini = TagPowerProfile::miniature_tag();
        // Wake-up anchors: standard −10 dBm peak, miniature 0 dBm peak
        // (DESIGN.md §5). Static (diode-threshold) floors sit ~5 dB lower.
        let std_req = ivn_dsp::units::watts_to_dbm(std_tag.required_peak_power_watts());
        let mini_req = ivn_dsp::units::watts_to_dbm(mini.required_peak_power_watts());
        assert!((std_req + 10.0).abs() < 0.3, "std {std_req}");
        assert!(mini_req.abs() < 0.3, "mini {mini_req}");
        assert!(std_tag.static_sensitivity_dbm() < std_req);
        assert!(mini.static_sensitivity_dbm() < mini_req);
    }

    #[test]
    fn input_amplitude_square_root_law() {
        let tag = TagPowerProfile::standard_tag();
        let v1 = tag.input_amplitude(1e-4);
        let v4 = tag.input_amplitude(4e-4);
        assert!((v4 / v1 - 2.0).abs() < 1e-12);
        assert_eq!(tag.input_amplitude(0.0), 0.0);
    }

    #[test]
    fn strong_signal_powers_quickly() {
        let tag = TagPowerProfile::standard_tag();
        // 10 dBm received — 20 dB above sensitivity.
        let env = vec![dbm_to_watts(10.0); 50_000];
        let out = tag.power_up(&env, 1e6);
        assert!(out.powered);
        assert!(out.time_to_power_s.unwrap() < 0.05);
        assert!(out.peak_vdc >= 1.0);
    }

    #[test]
    fn weak_signal_never_powers() {
        let tag = TagPowerProfile::standard_tag();
        // −20 dBm: below the diode threshold entirely.
        let env = vec![dbm_to_watts(-20.0); 100_000];
        let out = tag.power_up(&env, 1e6);
        assert!(!out.powered);
        assert_eq!(out.peak_vdc, 0.0);
        assert!(out.time_to_power_s.is_none());
    }

    #[test]
    fn above_threshold_but_below_operate_stalls() {
        let tag = TagPowerProfile::standard_tag();
        // Slightly above diode threshold: pump output saturates below the
        // 1 V operating point.
        let p = tag.static_sensitivity_watts() * 1.2;
        let env = vec![p; 200_000];
        let out = tag.power_up(&env, 1e6);
        assert!(!out.powered);
        assert!(out.peak_vdc > 0.0 && out.peak_vdc < 1.0);
    }

    #[test]
    fn peaky_envelope_powers_where_steady_fails() {
        // The CIB effect at the harvester: same average power, delivered
        // as N× amplitude peaks, wakes the chip.
        let tag = TagPowerProfile::standard_tag();
        let p_avg = tag.static_sensitivity_watts() * 0.8; // steady: dead
        let steady = vec![p_avg; 100_000];
        assert!(!tag.power_up(&steady, 1e6).powered);

        // Peaks of 100× power (10 antennas) for 1 % of the time.
        let mut peaky = vec![0.0; 100_000];
        for chunk in peaky.chunks_mut(10_000) {
            for v in chunk.iter_mut().take(100) {
                *v = p_avg * 100.0;
            }
        }
        let out = tag.power_up(&peaky, 1e6);
        assert!(out.powered, "peak_vdc {}", out.peak_vdc);
    }

    #[test]
    fn required_peak_power_consistent() {
        let tag = TagPowerProfile::standard_tag();
        let p_req = tag.required_peak_power_watts();
        assert!(!tag.can_power_at_peak(p_req * 0.99));
        assert!(tag.can_power_at_peak(p_req * 1.01));
        // Requirement sits above the static sensitivity (needs V_op too).
        assert!(p_req > tag.static_sensitivity_watts());
    }

    #[test]
    fn mini_tag_needs_more_power() {
        let std_req = TagPowerProfile::standard_tag().required_peak_power_watts();
        let mini_req = TagPowerProfile::miniature_tag().required_peak_power_watts();
        assert!(
            (mini_req / std_req - 10.0).abs() < 0.5,
            "ratio {}",
            mini_req / std_req
        );
    }

    #[test]
    fn chip_drain_after_wake() {
        let tag = TagPowerProfile::standard_tag();
        // Power strongly, then cut the signal: voltage must decay due to
        // chip draw.
        let mut env = vec![dbm_to_watts(10.0); 20_000];
        env.extend(vec![0.0; 500_000]);
        let out = tag.power_up(&env, 1e6);
        assert!(out.powered);
        assert!(out.final_vdc < out.peak_vdc);
    }
}
