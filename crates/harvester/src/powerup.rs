//! End-to-end power-up decision for a battery-free tag.
//!
//! Given the received RF power envelope at the tag's antenna terminals,
//! decides whether the chip powers up — the gate every experiment in the
//! paper ultimately tests. The chain is:
//!
//! ```text
//! P(t) ──(input resistance)──▶ Vs(t) ──(Dickson pump)──▶ V_DC(t) ──▶ chip
//! ```
//!
//! with `Vs = √(2·P·R_in)` the carrier amplitude across the rectifier
//! input, and the chip alive once `V_DC` reaches its operating voltage.
//!
//! ## Calibration (DESIGN.md §5)
//!
//! The standard-tag profile is anchored so that a single 37 dBm-EIRP
//! antenna powers it at ≈ 5.2 m in free space, the paper's measured
//! single-antenna range: with a 4-stage pump, a 250 mV diode, an 0.8 V
//! operating point and `R_in ≈ 1012 Ω`, the *peak* power needed to wake
//! the chip is `(vth + v_op/N)²/(2R_in) = 1.0e−4 W = −10 dBm`. The
//! miniature tag couples far less power (mm-scale antenna, poor
//! matching): `R_in ≈ 101 Ω` puts its wake-up requirement at 0 dBm,
//! reproducing the ~10× shorter range of the paper's Fig. 13b.
//!
//! ## Integration speed (DESIGN.md §8)
//!
//! The pump step is an exact first-order recurrence
//! `v' = target + (v − target)·α` with `α = exp(−dt/RC)` *constant per
//! stream*, so [`PowerUpState::step_block`] hoists the exponential out
//! of the per-sample loop — bit-identical to stepping
//! [`Rectifier::step`] every sample (the preserved
//! [`TagPowerProfile::power_up_oracle`]). On top of that,
//! [`PowerUpState::step_run`] fast-forwards a *run* of `m` equal-power
//! samples in closed form, `v_{k+m} = target + (v_k − target)·α^m`
//! (wake index recovered with one log), so piecewise-constant PIE/CW
//! envelopes integrate in O(runs) instead of O(samples). The
//! fast-forward is bit-identical under any split of a run into sub-runs
//! (segments are anchored at data-determined absolute indices, never at
//! call boundaries) and stays within ≤1e-9 of the oracle; a length-1
//! run degenerates to exactly the scalar ops.

use crate::diode::DiodeModel;
use crate::rectifier::Rectifier;

/// Electrical power-up profile of a battery-free tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TagPowerProfile {
    /// Descriptive name.
    pub name: String,
    /// Rectifier input resistance, ohms (sets power→voltage coupling).
    pub r_in: f64,
    /// The charge pump.
    pub rectifier: Rectifier,
    /// DC supply voltage at which the chip wakes, volts.
    pub v_operate: f64,
    /// On-chip storage capacitance, farads.
    pub c_storage: f64,
    /// Chip current draw once awake, amps.
    pub i_chip: f64,
}

impl TagPowerProfile {
    /// The standard UHF tag (Avery AD-238u8 class).
    pub fn standard_tag() -> Self {
        TagPowerProfile {
            name: "standard tag".into(),
            r_in: 1012.5,
            rectifier: Rectifier::new(4, DiodeModel::typical_rfid(), 2000.0),
            v_operate: 0.8,
            c_storage: 1e-9,
            i_chip: 5e-6,
        }
    }

    /// The miniature implantable tag (Xerafy Dash-On XS class): same chip
    /// family, far poorer antenna coupling.
    pub fn miniature_tag() -> Self {
        TagPowerProfile {
            name: "miniature tag".into(),
            r_in: 101.25,
            rectifier: Rectifier::new(4, DiodeModel::typical_rfid(), 2000.0),
            v_operate: 0.8,
            c_storage: 1e-9,
            i_chip: 5e-6,
        }
    }

    /// Carrier amplitude at the rectifier input for received power `p`
    /// watts: `√(2·P·R_in)`.
    pub fn input_amplitude(&self, p_watts: f64) -> f64 {
        assert!(p_watts >= 0.0, "power must be non-negative");
        (2.0 * p_watts * self.r_in).sqrt()
    }

    /// Static sensitivity: the continuous-wave received power below which
    /// the tag can never power up (input amplitude at the diode threshold),
    /// watts.
    pub fn static_sensitivity_watts(&self) -> f64 {
        let vth = self.rectifier.input_threshold();
        vth * vth / (2.0 * self.r_in)
    }

    /// Static sensitivity in dBm.
    pub fn static_sensitivity_dbm(&self) -> f64 {
        ivn_dsp::units::watts_to_dbm(self.static_sensitivity_watts())
    }

    /// Runs the power-up simulation over a received-power envelope
    /// (watts per sample at `sample_rate`). Returns the outcome.
    ///
    /// Thin wrapper over the resumable streaming core
    /// ([`Self::begin_power_up`]): the whole envelope is one block, so
    /// batch and streaming integration are identical by construction.
    pub fn power_up(&self, power_envelope: &[f64], sample_rate: f64) -> PowerUpOutcome {
        let mut state = self
            .begin_power_up(sample_rate)
            .with_trace_stride((power_envelope.len() / 32).max(1));
        state.step_block(power_envelope);
        state.finish()
    }

    /// Runs the power-up simulation over a run-length encoded envelope:
    /// `(power_watts, samples)` pairs at `sample_rate`. Each run is
    /// integrated in closed form ([`PowerUpState::step_run`]), so the
    /// cost is O(runs) regardless of the sample count — the fast path
    /// for the piecewise-constant PIE/CW envelopes a
    /// [`RunRasterizer`](../../ivn_rfid/stream/struct.RunRasterizer.html)
    /// produces.
    pub fn power_up_runs(&self, runs: &[(f64, usize)], sample_rate: f64) -> PowerUpOutcome {
        let total: usize = runs.iter().map(|&(_, m)| m).sum();
        let mut state = self
            .begin_power_up(sample_rate)
            .with_trace_stride((total / 32).max(1));
        for &(p, m) in runs {
            state.step_run(p, m);
        }
        state.finish()
    }

    /// The pre-fast-forward reference integrator: steps
    /// [`Rectifier::step`] (with its per-sample exponential) for every
    /// sample. [`Self::power_up`] is bit-identical to this; the O(runs)
    /// fast-forward ([`Self::power_up_runs`]) is pinned to ≤1e-9 of it
    /// by the property suite.
    pub fn power_up_oracle(&self, power_envelope: &[f64], sample_rate: f64) -> PowerUpOutcome {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        let dt = 1.0 / sample_rate;
        let mut v = 0.0f64;
        let mut v_peak = 0.0f64;
        let mut awake_at: Option<usize> = None;
        for (n, &p) in power_envelope.iter().enumerate() {
            let amp = self.input_amplitude(p);
            let i_load = if awake_at.is_some() { self.i_chip } else { 0.0 };
            v = self.rectifier.step(v, amp, dt, self.c_storage, i_load);
            v_peak = v_peak.max(v);
            if awake_at.is_none() && v >= self.v_operate {
                awake_at = Some(n);
            }
        }
        PowerUpOutcome {
            powered: awake_at.is_some(),
            time_to_power_s: awake_at.map(|n| n as f64 / sample_rate),
            peak_vdc: v_peak,
            final_vdc: v,
        }
    }

    /// Starts a resumable power-up integration at `sample_rate`: feed
    /// received-power blocks through [`PowerUpState::step_block`] (or
    /// equal-power runs through [`PowerUpState::step_run`]), then read
    /// [`PowerUpState::finish`]. Pump voltage, peak tracking and the
    /// wake timestamp all carry across block boundaries, so any block
    /// split produces the same outcome as [`Self::power_up`].
    pub fn begin_power_up(&self, sample_rate: f64) -> PowerUpState<'_> {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        let dt = 1.0 / sample_rate;
        let alpha = self.rectifier.charge_alpha(dt, self.c_storage);
        PowerUpState {
            profile: self,
            sample_rate,
            alpha,
            drain: self.i_chip * dt / self.c_storage,
            stages_f: self.rectifier.stages as f64,
            vth: self.rectifier.input_threshold(),
            v: 0.0,
            v_peak: 0.0,
            awake_at: None,
            n: 0,
            trace_stride: 1,
            crossing_counted: false,
            run: None,
        }
    }

    /// Fast analytic check used by range sweeps: can a *peak* received
    /// power `p_peak` ever wake the chip, i.e. does the steady-state pump
    /// output at that drive clear `v_operate`?
    pub fn can_power_at_peak(&self, p_peak_watts: f64) -> bool {
        let vs = self.input_amplitude(p_peak_watts);
        self.rectifier.steady_state_vdc(vs) >= self.v_operate
    }

    /// The peak received power (watts) needed to satisfy
    /// [`Self::can_power_at_peak`]: inverts `N(√(2PR) − vth) = v_op`.
    pub fn required_peak_power_watts(&self) -> f64 {
        let vth = self.rectifier.input_threshold();
        let n = self.rectifier.stages as f64;
        let vs_needed = vth + self.v_operate / n;
        vs_needed * vs_needed / (2.0 * self.r_in)
    }
}

/// `base^e` by binary exponentiation — a deterministic function of
/// `(base, e)`, which is what makes the run fast-forward split-invariant
/// (any sub-run split re-evaluates the same `α^k` at the same anchored
/// `k`). `pow_int(α, 1) == α` exactly, so a length-1 run reproduces the
/// scalar step bit for bit.
fn pow_int(base: f64, mut e: u64) -> f64 {
    let mut acc = 1.0f64;
    let mut b = base;
    while e > 0 {
        if e & 1 == 1 {
            acc *= b;
        }
        b *= b;
        e >>= 1;
    }
    acc
}

/// Dynamics of the open run segment. With constant drive the oracle's
/// per-sample branches are constant until a data-determined event (wake,
/// or the drain trajectory falling below the charge target), so a run
/// decomposes into at most a handful of closed-form segments.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Regime {
    /// Diodes block, chip asleep: `v` constant.
    Hold,
    /// Asleep, charging toward `target`: `v(k) = t + (v₀−t)·α^k`.
    Charge,
    /// Awake, charging against the chip draw:
    /// `v(k) = t + (v₀−t)·α^k − drain·(1−α^k)/(1−α)`, clamped at 0.
    AwakeCharge,
    /// Awake, diodes blocked: `v(k) = v₀ − k·drain`, clamped at 0.
    AwakeDrain,
    /// Degenerate parameters (non-positive fixed point): integrate this
    /// run sample by sample with the exact oracle ops.
    Scalar,
}

/// The open constant-power run segment of a [`PowerUpState`]. Anchored
/// at the absolute sample index where its regime began — never at a
/// `step_run` call boundary — so any split of a run into sub-runs
/// evaluates the identical closed forms.
#[derive(Debug, Clone, Copy)]
struct RunSeg {
    /// Bit pattern of the run's power value (runs are exact-equality).
    p_bits: u64,
    /// Steady-state pump target for this drive.
    target: f64,
    /// Pump voltage entering the segment (before its first sample).
    v0: f64,
    /// Absolute index of the segment's first sample.
    start_n: usize,
    /// Samples consumed so far.
    k: u64,
    /// Sample count at which a regime transition fires (`u64::MAX`: none).
    event_k: u64,
    regime: Regime,
}

/// Resumable Dickson-pump charge integration — the streaming core
/// behind [`TagPowerProfile::power_up`].
///
/// The integrator is a first-order recurrence (each step depends only
/// on the previous pump voltage and the current input amplitude), so
/// carrying `v`, the running peak and the wake index across block
/// boundaries reproduces the whole-buffer loop exactly: pushing the
/// same envelope in blocks of 1 or 4096 yields bit-identical outcomes.
/// Equal-power runs can additionally be fast-forwarded in closed form
/// via [`Self::step_run`].
#[derive(Debug, Clone)]
pub struct PowerUpState<'a> {
    profile: &'a TagPowerProfile,
    sample_rate: f64,
    /// `exp(−dt/RC)`, hoisted: the same float [`Rectifier::step`] would
    /// recompute every sample.
    alpha: f64,
    /// Awake load subtraction per step, `i_chip·dt/C`.
    drain: f64,
    stages_f: f64,
    vth: f64,
    v: f64,
    v_peak: f64,
    awake_at: Option<usize>,
    /// Global sample index (drives the trace stride and wake timestamp).
    n: usize,
    trace_stride: usize,
    crossing_counted: bool,
    /// Open equal-power run, if the last call was a `step_run`.
    run: Option<RunSeg>,
}

impl PowerUpState<'_> {
    /// Sets the physics-probe stride: the banked energy (½·C·V²) is
    /// emitted as a `physics.harvested_charge_j` trace counter every
    /// `stride` samples. The whole-buffer wrapper uses ~32 points across
    /// the transient; a streaming driver should derive the stride from
    /// its expected total sample count.
    ///
    /// # Panics
    /// Panics if `stride` is zero.
    pub fn with_trace_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "trace stride must be positive");
        self.trace_stride = stride;
        self
    }

    /// Integrates one block of received power (watts per sample).
    ///
    /// Bit-identical to [`TagPowerProfile::power_up_oracle`] over the
    /// same samples: the loop performs the oracle's exact op sequence
    /// with `α` (and the load term) hoisted out of the exponential.
    pub fn step_block(&mut self, power_block: &[f64]) {
        let _span = ivn_runtime::span!("harvester.power_up_ns");
        ivn_runtime::obs_count!("harvester.charge_steps", power_block.len());
        self.close_run();
        self.step_samples(power_block.iter().copied());
    }

    /// Integrates one block of complex rx samples, converting each to
    /// received power as `|v|²·scale` inline.
    ///
    /// Bit-identical to materializing the power vector and calling
    /// [`Self::step_block`] — the per-sample op order is the same, each
    /// sample's power is computed independently — with one less memory
    /// pass, which is what keeps streaming integration above the
    /// 100 MS/s gate.
    pub fn step_rx_block(&mut self, rx: &[ivn_dsp::Complex64], scale: f64) {
        let _span = ivn_runtime::span!("harvester.power_up_ns");
        ivn_runtime::obs_count!("harvester.charge_steps", rx.len());
        self.close_run();
        self.step_samples(rx.iter().map(|&v| v.norm_sqr() * scale));
    }

    /// The shared per-sample integration loop: the oracle's exact op
    /// sequence with `α` (and the load term) hoisted. Monomorphized per
    /// sample source so the fused complex path pays no indirection.
    #[inline]
    fn step_samples(&mut self, samples: impl Iterator<Item = f64>) {
        let r_in = self.profile.r_in;
        let (stages_f, vth) = (self.stages_f, self.vth);
        let (alpha, drain, v_op) = (self.alpha, self.drain, self.profile.v_operate);
        let tracing = ivn_runtime::trace::enabled();
        let (mut v, mut v_peak, mut awake_at, mut n) = (self.v, self.v_peak, self.awake_at, self.n);
        for p in samples {
            assert!(p >= 0.0, "power must be non-negative");
            let amp = (2.0 * p * r_in).sqrt();
            let target = (stages_f * (amp - vth)).max(0.0);
            // Branchless select: in CIB steady state `target > v`
            // flips almost every sample (the beat envelope oscillates
            // around the settled voltage), so a branch here mispredicts
            // constantly. Computing the charged value unconditionally
            // and selecting costs two always-run flops but no pipeline
            // flushes — and picks the identical bits either way.
            let charged = target + (v - target) * alpha;
            v = if target > v { charged } else { v };
            // The load current is decided *before* the step (the oracle
            // passes `i_load` into `Rectifier::step`), so the wake
            // sample itself draws nothing; subtracting a zero load and
            // re-clamping is a bitwise no-op on v ≥ 0, so the asleep
            // branch skips it entirely.
            if awake_at.is_some() {
                v = (v - drain).max(0.0);
            } else if v >= v_op {
                awake_at = Some(n);
            }
            v_peak = v_peak.max(v);
            // The stride check stays behind the enabled() load so the
            // charge loop pays one relaxed load per step when tracing
            // is off.
            if tracing && n % self.trace_stride == 0 {
                ivn_runtime::trace_counter!(
                    "physics.harvested_charge_j",
                    0.5 * self.profile.c_storage * v * v
                );
            }
            n += 1;
        }
        self.v = v;
        self.v_peak = v_peak;
        self.awake_at = awake_at;
        self.n = n;
    }

    /// Fast-forwards `m` samples of constant received power `p` in
    /// closed form: O(regime transitions) per call instead of O(m).
    ///
    /// Consecutive calls with the same `p` continue the same anchored
    /// run, so any split of a run into sub-runs is bit-identical; a
    /// length-1 run performs exactly the scalar ops. Relative to the
    /// per-sample path the closed form drifts only by accumulated
    /// rounding (pinned ≤1e-9 by `tests/powerup_props.rs`).
    pub fn step_run(&mut self, p: f64, m: usize) {
        let _span = ivn_runtime::span!("harvester.power_up_ns");
        ivn_runtime::obs_count!("harvester.charge_steps", m);
        assert!(p >= 0.0, "power must be non-negative");
        if self.alpha >= 1.0 {
            // Degenerate RC (dt ≪ τ underflows the exponent): the charge
            // step is a near-no-op and the geometric-series form divides
            // by 1−α = 0. Integrate sample-wise.
            self.close_run();
            for _ in 0..m {
                self.scalar_sample(p);
            }
            return;
        }
        let tracing = ivn_runtime::trace::enabled();
        let mut m = m as u64;
        while m > 0 {
            let cont = matches!(&self.run, Some(seg) if seg.p_bits == p.to_bits());
            if !cont {
                self.close_run();
                let seg = self.open_seg(p, self.v, self.n);
                self.run = Some(seg);
            }
            let seg = *self.run.as_ref().expect("open run segment");
            if seg.regime == Regime::Scalar {
                // Degenerate fixed point: finish the run sample by
                // sample (still split-invariant — sequential stepping
                // never depends on call boundaries).
                self.run = None;
                for _ in 0..m {
                    self.scalar_sample(p);
                }
                return;
            }
            let take = m.min(seg.event_k - seg.k);
            if tracing {
                self.emit_trace_runs(&seg, take);
            }
            {
                let open = self.run.as_mut().expect("open run segment");
                open.k += take;
            }
            self.n += take as usize;
            m -= take;
            let fire = {
                let open = self.run.as_ref().expect("open run segment");
                open.k == open.event_k
            };
            if fire {
                self.fire_event();
            }
        }
    }

    /// One sample of the exact oracle ops (cold path: degenerate
    /// parameters inside `step_run`).
    fn scalar_sample(&mut self, p: f64) {
        let amp = (2.0 * p * self.profile.r_in).sqrt();
        let target = (self.stages_f * (amp - self.vth)).max(0.0);
        if target > self.v {
            self.v = target + (self.v - target) * self.alpha;
        }
        if self.awake_at.is_some() {
            self.v = (self.v - self.drain).max(0.0);
        }
        self.v_peak = self.v_peak.max(self.v);
        if self.awake_at.is_none() && self.v >= self.profile.v_operate {
            self.awake_at = Some(self.n);
        }
        if ivn_runtime::trace::enabled() && self.n % self.trace_stride == 0 {
            ivn_runtime::trace_counter!(
                "physics.harvested_charge_j",
                0.5 * self.profile.c_storage * self.v * self.v
            );
        }
        self.n += 1;
    }

    /// Opens a regime segment for drive `p` entering at voltage `v0`,
    /// first sample at absolute index `start_n`, and precomputes its
    /// transition event. Decisions depend only on `(p, v0, awake)` —
    /// data-determined, never on call boundaries.
    fn open_seg(&self, p: f64, v0: f64, start_n: usize) -> RunSeg {
        let amp = (2.0 * p * self.profile.r_in).sqrt();
        let target = (self.stages_f * (amp - self.vth)).max(0.0);
        let awake = self.awake_at.is_some();
        let mut seg = RunSeg {
            p_bits: p.to_bits(),
            target,
            v0,
            start_n,
            k: 0,
            event_k: u64::MAX,
            regime: Regime::Hold,
        };
        if !awake {
            if target > v0 {
                seg.regime = Regime::Charge;
                seg.event_k = self.wake_event(&seg);
            }
            // else Hold: v constant, and v < v_operate (otherwise the
            // previous sample's check would have woken the chip).
        } else if target > v0 {
            // Fixed point of v' = t + (v−t)α − drain.
            let v_inf = target - self.drain / (1.0 - self.alpha);
            if v_inf > 0.0 {
                seg.regime = Regime::AwakeCharge;
            } else {
                seg.regime = Regime::Scalar;
            }
        } else {
            seg.regime = Regime::AwakeDrain;
            seg.event_k = self.drain_event(&seg);
        }
        seg
    }

    /// Voltage after `k` samples of the segment (k = 0 → entry voltage).
    fn seg_v(&self, seg: &RunSeg, k: u64) -> f64 {
        if k == 0 {
            return seg.v0;
        }
        match seg.regime {
            Regime::Hold | Regime::Scalar => seg.v0,
            Regime::Charge => seg.target + (seg.v0 - seg.target) * pow_int(self.alpha, k),
            Regime::AwakeCharge => {
                let pk = pow_int(self.alpha, k);
                (seg.target + (seg.v0 - seg.target) * pk
                    - self.drain * ((1.0 - pk) / (1.0 - self.alpha)))
                    .max(0.0)
            }
            Regime::AwakeDrain => (seg.v0 - (k as f64) * self.drain).max(0.0),
        }
    }

    /// First `k ≥ 1` with `v(k) ≥ v_operate` in a [`Regime::Charge`]
    /// segment, or `u64::MAX` if the run can never wake. One logarithm
    /// seeds the index; a short walk absorbs rounding (with a binary
    /// search fallback for the asymptotic `target == v_op` edge).
    fn wake_event(&self, seg: &RunSeg) -> u64 {
        let v_op = self.profile.v_operate;
        if seg.target < v_op {
            return u64::MAX; // v(k) < target < v_op for all k
        }
        // α^k underflows to 0 past k_cap, where v(k) evaluates exactly
        // to target — the search horizon.
        let x = -self.alpha.ln(); // dt/RC
        let k_cap = if x > 0.0 {
            ((745.0 / x).ceil() as u64).saturating_add(2)
        } else {
            return u64::MAX;
        };
        let crossed = |k: u64| self.seg_v(seg, k) >= v_op;
        if !crossed(k_cap) {
            return u64::MAX;
        }
        let ratio = (v_op - seg.target) / (seg.v0 - seg.target);
        let guess = if ratio > 0.0 {
            (ratio.ln() / self.alpha.ln()).ceil()
        } else {
            1.0
        };
        let mut g = if guess.is_finite() && guess >= 1.0 {
            (guess as u64).min(k_cap)
        } else {
            k_cap
        };
        // Local fixup: rounding moves the crossing by at most a step or
        // two in practice. Cap the walk and fall back to bisection so a
        // pathological seed still terminates in O(log k).
        let mut walked = 0;
        if crossed(g) {
            while g > 1 && crossed(g - 1) && walked < 32 {
                g -= 1;
                walked += 1;
            }
            if g > 1 && crossed(g - 1) {
                return first_true(1, g, crossed);
            }
        } else {
            while !crossed(g) && walked < 32 {
                g += 1;
                walked += 1;
            }
            if !crossed(g) {
                return first_true(g, k_cap, crossed);
            }
        }
        g
    }

    /// First `k ≥ 1` where the [`Regime::AwakeDrain`] trajectory falls
    /// below the charge target (flipping the diode branch back on), or
    /// `u64::MAX` if it never does (`target == 0` or no draw).
    fn drain_event(&self, seg: &RunSeg) -> u64 {
        if seg.target <= 0.0 || self.drain <= 0.0 {
            return u64::MAX;
        }
        let below = |k: u64| self.seg_v(seg, k) < seg.target;
        // v0 − k·drain < target  ⇔  k > (v0 − target)/drain.
        let mut g = (((seg.v0 - seg.target) / self.drain).floor() as u64).saturating_add(1);
        let mut walked = 0;
        if below(g) {
            while g > 1 && below(g - 1) && walked < 32 {
                g -= 1;
                walked += 1;
            }
        } else {
            while !below(g) && walked < 32 {
                g += 1;
                walked += 1;
            }
            if !below(g) {
                // Linear trajectory: the crossing is bounded; bisect.
                let hi = g + ((seg.v0 / self.drain).ceil() as u64).saturating_add(2);
                return first_true(g, hi, below);
            }
        }
        g
    }

    /// Closes the segment at its event index and opens the follow-up
    /// regime at the same data-determined anchor.
    fn fire_event(&mut self) {
        let seg = self.run.take().expect("segment with pending event");
        let v_e = self.seg_v(&seg, seg.event_k);
        self.v_peak = self.v_peak.max(v_e);
        let next_start = seg.start_n + seg.event_k as usize;
        match seg.regime {
            Regime::Charge => {
                // The event is the wake crossing at sample event_k − 1.
                self.awake_at = Some(next_start - 1);
            }
            Regime::AwakeDrain => {} // fell below target: charging resumes
            r => unreachable!("regime {r:?} has no events"),
        }
        let p = f64::from_bits(seg.p_bits);
        let next = self.open_seg(p, v_e, next_start);
        self.run = Some(next);
    }

    /// Flushes the open run segment: collapses it to its end voltage so
    /// per-sample integration (or a different run value) can continue.
    fn close_run(&mut self) {
        if let Some(seg) = self.run.take() {
            let v_end = self.seg_v(&seg, seg.k);
            self.v = v_end;
            self.v_peak = self.v_peak.max(v_end);
        }
    }

    /// Emits the stride-aligned `physics.harvested_charge_j` probes a
    /// scalar integration of the next `take` segment samples would have
    /// emitted (tracing-only path; evaluates the closed form at each
    /// stride point without touching integration state).
    fn emit_trace_runs(&self, seg: &RunSeg, take: u64) {
        let stride = self.trace_stride;
        let lo = seg.start_n + seg.k as usize; // absolute index of next sample
        let hi = lo + take as usize;
        let mut idx = lo.div_ceil(stride) * stride;
        while idx < hi {
            let v = self.seg_v(seg, (idx - seg.start_n) as u64 + 1);
            ivn_runtime::trace_counter!(
                "physics.harvested_charge_j",
                0.5 * self.profile.c_storage * v * v
            );
            idx += stride;
        }
    }

    /// Ends the stream (books the threshold-crossing observation once)
    /// and returns the outcome. Idempotent; the state can keep
    /// integrating afterwards if more samples arrive.
    pub fn finish(&mut self) -> PowerUpOutcome {
        if self.awake_at.is_some() && !self.crossing_counted {
            ivn_runtime::obs_count!("harvester.threshold_crossings", 1);
            self.crossing_counted = true;
        }
        self.outcome()
    }

    /// The outcome as of the samples integrated so far.
    pub fn outcome(&self) -> PowerUpOutcome {
        // An open run segment is evaluated in place (every regime is
        // monotone, so the running max over segment endpoints is the
        // true peak).
        let (v_now, peak_now) = match &self.run {
            Some(seg) => {
                let v = self.seg_v(seg, seg.k);
                (v, self.v_peak.max(v))
            }
            None => (self.v, self.v_peak),
        };
        PowerUpOutcome {
            powered: self.awake_at.is_some(),
            time_to_power_s: self.awake_at.map(|n| n as f64 / self.sample_rate),
            peak_vdc: peak_now,
            final_vdc: v_now,
        }
    }

    /// Samples integrated so far.
    pub fn samples_seen(&self) -> usize {
        self.n
    }
}

impl ivn_dsp::block::BlockSink for PowerUpState<'_> {
    type In = f64;

    fn consume(&mut self, input: &[f64]) {
        self.step_block(input);
    }

    fn finish(&mut self) {
        PowerUpState::finish(self);
    }
}

/// First `k` in `[lo, hi]` where `pred(k)` holds, assuming `pred` is
/// monotone (false…false true…true); returns `hi` if only `hi` holds.
fn first_true(lo: u64, hi: u64, pred: impl Fn(u64) -> bool) -> u64 {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Result of a power-up attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerUpOutcome {
    /// Whether the chip reached its operating voltage.
    pub powered: bool,
    /// When it did, seconds from the start of the window.
    pub time_to_power_s: Option<f64>,
    /// Highest DC voltage reached.
    pub peak_vdc: f64,
    /// DC voltage at the end of the window.
    pub final_vdc: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_dsp::units::dbm_to_watts;

    #[test]
    fn calibrated_sensitivities() {
        let std_tag = TagPowerProfile::standard_tag();
        let mini = TagPowerProfile::miniature_tag();
        // Wake-up anchors: standard −10 dBm peak, miniature 0 dBm peak
        // (DESIGN.md §5). Static (diode-threshold) floors sit ~5 dB lower.
        let std_req = ivn_dsp::units::watts_to_dbm(std_tag.required_peak_power_watts());
        let mini_req = ivn_dsp::units::watts_to_dbm(mini.required_peak_power_watts());
        assert!((std_req + 10.0).abs() < 0.3, "std {std_req}");
        assert!(mini_req.abs() < 0.3, "mini {mini_req}");
        assert!(std_tag.static_sensitivity_dbm() < std_req);
        assert!(mini.static_sensitivity_dbm() < mini_req);
    }

    #[test]
    fn input_amplitude_square_root_law() {
        let tag = TagPowerProfile::standard_tag();
        let v1 = tag.input_amplitude(1e-4);
        let v4 = tag.input_amplitude(4e-4);
        assert!((v4 / v1 - 2.0).abs() < 1e-12);
        assert_eq!(tag.input_amplitude(0.0), 0.0);
    }

    #[test]
    fn strong_signal_powers_quickly() {
        let tag = TagPowerProfile::standard_tag();
        // 10 dBm received — 20 dB above sensitivity.
        let env = vec![dbm_to_watts(10.0); 50_000];
        let out = tag.power_up(&env, 1e6);
        assert!(out.powered);
        assert!(out.time_to_power_s.unwrap() < 0.05);
        assert!(out.peak_vdc >= 1.0);
    }

    #[test]
    fn weak_signal_never_powers() {
        let tag = TagPowerProfile::standard_tag();
        // −20 dBm: below the diode threshold entirely.
        let env = vec![dbm_to_watts(-20.0); 100_000];
        let out = tag.power_up(&env, 1e6);
        assert!(!out.powered);
        assert_eq!(out.peak_vdc, 0.0);
        assert!(out.time_to_power_s.is_none());
    }

    #[test]
    fn above_threshold_but_below_operate_stalls() {
        let tag = TagPowerProfile::standard_tag();
        // Slightly above diode threshold: pump output saturates below the
        // 1 V operating point.
        let p = tag.static_sensitivity_watts() * 1.2;
        let env = vec![p; 200_000];
        let out = tag.power_up(&env, 1e6);
        assert!(!out.powered);
        assert!(out.peak_vdc > 0.0 && out.peak_vdc < 1.0);
    }

    #[test]
    fn peaky_envelope_powers_where_steady_fails() {
        // The CIB effect at the harvester: same average power, delivered
        // as N× amplitude peaks, wakes the chip.
        let tag = TagPowerProfile::standard_tag();
        let p_avg = tag.static_sensitivity_watts() * 0.8; // steady: dead
        let steady = vec![p_avg; 100_000];
        assert!(!tag.power_up(&steady, 1e6).powered);

        // Peaks of 100× power (10 antennas) for 1 % of the time.
        let mut peaky = vec![0.0; 100_000];
        for chunk in peaky.chunks_mut(10_000) {
            for v in chunk.iter_mut().take(100) {
                *v = p_avg * 100.0;
            }
        }
        let out = tag.power_up(&peaky, 1e6);
        assert!(out.powered, "peak_vdc {}", out.peak_vdc);
    }

    #[test]
    fn required_peak_power_consistent() {
        let tag = TagPowerProfile::standard_tag();
        let p_req = tag.required_peak_power_watts();
        assert!(!tag.can_power_at_peak(p_req * 0.99));
        assert!(tag.can_power_at_peak(p_req * 1.01));
        // Requirement sits above the static sensitivity (needs V_op too).
        assert!(p_req > tag.static_sensitivity_watts());
    }

    #[test]
    fn mini_tag_needs_more_power() {
        let std_req = TagPowerProfile::standard_tag().required_peak_power_watts();
        let mini_req = TagPowerProfile::miniature_tag().required_peak_power_watts();
        assert!(
            (mini_req / std_req - 10.0).abs() < 0.5,
            "ratio {}",
            mini_req / std_req
        );
    }

    #[test]
    fn streaming_integration_matches_batch_any_block_size() {
        let tag = TagPowerProfile::standard_tag();
        // A ramp that crosses the wake threshold partway through, then
        // drops — exercises wake timing and post-wake drain across
        // block boundaries.
        let env: Vec<f64> = (0..40_000)
            .map(|k| {
                if k < 30_000 {
                    dbm_to_watts(10.0) * (k as f64 / 30_000.0)
                } else {
                    0.0
                }
            })
            .collect();
        let batch = tag.power_up(&env, 1e6);
        assert!(batch.powered);
        for block in [1usize, 7, 256, 4096] {
            let mut st = tag
                .begin_power_up(1e6)
                .with_trace_stride((env.len() / 32).max(1));
            for chunk in env.chunks(block) {
                st.step_block(chunk);
            }
            let out = st.finish();
            assert_eq!(out.powered, batch.powered, "block {block}");
            assert_eq!(
                out.time_to_power_s.map(f64::to_bits),
                batch.time_to_power_s.map(f64::to_bits),
                "block {block}"
            );
            assert_eq!(out.peak_vdc.to_bits(), batch.peak_vdc.to_bits());
            assert_eq!(out.final_vdc.to_bits(), batch.final_vdc.to_bits());
            assert_eq!(st.samples_seen(), env.len());
        }
    }

    #[test]
    fn step_block_matches_oracle_bitwise() {
        // The α-hoist must not change a single bit: the streaming loop
        // is the oracle's op sequence with the exponential precomputed.
        let tag = TagPowerProfile::standard_tag();
        let env: Vec<f64> = (0..50_000)
            .map(|k| {
                let x = k as f64 / 50_000.0;
                dbm_to_watts(10.0) * x * (0.5 + 0.5 * (40.0 * x).sin().abs())
            })
            .collect();
        let fast = tag.power_up(&env, 1e6);
        let oracle = tag.power_up_oracle(&env, 1e6);
        assert_eq!(fast.powered, oracle.powered);
        assert_eq!(
            fast.time_to_power_s.map(f64::to_bits),
            oracle.time_to_power_s.map(f64::to_bits)
        );
        assert_eq!(fast.peak_vdc.to_bits(), oracle.peak_vdc.to_bits());
        assert_eq!(fast.final_vdc.to_bits(), oracle.final_vdc.to_bits());
    }

    #[test]
    fn run_fast_forward_tracks_oracle() {
        // PIE-like duty-cycled envelope: strong bursts with gaps, then a
        // long dark tail draining the awake chip.
        let tag = TagPowerProfile::standard_tag();
        let runs: &[(f64, usize)] = &[
            (1e-3, 400),
            (0.0, 1_500),
            (2e-3, 2_000),
            (0.0, 5_000),
            (5e-4, 30_000),
            (0.0, 200_000),
        ];
        let mut env = Vec::new();
        for &(p, m) in runs {
            env.extend(std::iter::repeat(p).take(m));
        }
        let oracle = tag.power_up_oracle(&env, 1e6);
        let ff = tag.power_up_runs(runs, 1e6);
        assert!(oracle.powered, "fixture should power");
        assert_eq!(ff.powered, oracle.powered);
        assert_eq!(
            ff.time_to_power_s.map(f64::to_bits),
            oracle.time_to_power_s.map(f64::to_bits),
            "wake index"
        );
        assert!((ff.peak_vdc - oracle.peak_vdc).abs() <= 1e-9, "peak drift");
        assert!(
            (ff.final_vdc - oracle.final_vdc).abs() <= 1e-9,
            "final drift {} vs {}",
            ff.final_vdc,
            oracle.final_vdc
        );
    }

    #[test]
    fn run_split_bit_identity() {
        // Splitting a run into sub-runs must not change a bit: segments
        // anchor at data-determined indices, not call boundaries.
        let tag = TagPowerProfile::standard_tag();
        let runs: &[(f64, usize)] = &[(1.5e-3, 7_000), (0.0, 9_000), (6e-4, 50_000)];
        let whole = tag.power_up_runs(runs, 1e6);
        let mut st = tag.begin_power_up(1e6);
        for &(p, m) in runs {
            // Feed each run as many ragged sub-runs.
            let mut left = m;
            let mut piece = 1usize;
            while left > 0 {
                let take = piece.min(left);
                st.step_run(p, take);
                left -= take;
                piece = piece * 3 + 1;
            }
        }
        let split = st.finish();
        assert_eq!(split.powered, whole.powered);
        assert_eq!(
            split.time_to_power_s.map(f64::to_bits),
            whole.time_to_power_s.map(f64::to_bits)
        );
        assert_eq!(split.peak_vdc.to_bits(), whole.peak_vdc.to_bits());
        assert_eq!(split.final_vdc.to_bits(), whole.final_vdc.to_bits());
    }

    #[test]
    fn length_one_runs_with_distinct_powers_match_step_block_bitwise() {
        // A fresh segment of length 1 performs exactly the scalar ops
        // (`pow_int(α, 1) == α`, the geometric series collapses to
        // `drain`), so an all-distinct stream fed through `step_run`
        // one sample at a time is bit-identical to `step_block`.
        let tag = TagPowerProfile::standard_tag();
        let env: Vec<f64> = (0..20_000)
            .map(|k| dbm_to_watts(8.0) * (k as f64 / 20_000.0))
            .collect();
        let batch = tag.power_up(&env, 1e6);
        assert!(batch.powered);
        let mut st = tag
            .begin_power_up(1e6)
            .with_trace_stride((env.len() / 32).max(1));
        for &p in &env {
            st.step_run(p, 1);
        }
        let out = st.finish();
        assert_eq!(out.powered, batch.powered);
        assert_eq!(
            out.time_to_power_s.map(f64::to_bits),
            batch.time_to_power_s.map(f64::to_bits)
        );
        assert_eq!(out.peak_vdc.to_bits(), batch.peak_vdc.to_bits());
        assert_eq!(out.final_vdc.to_bits(), batch.final_vdc.to_bits());
    }

    #[test]
    fn rx_block_integration_matches_power_block_bitwise() {
        let tag = TagPowerProfile::standard_tag();
        let mut rng = ivn_runtime::rng::StdRng::seed_from_u64(9);
        use ivn_runtime::rng::Rng;
        let rx: Vec<ivn_dsp::Complex64> = (0..50_000)
            .map(|_| ivn_dsp::Complex64 {
                re: rng.random::<f64>() - 0.5,
                im: rng.random::<f64>() - 0.5,
            })
            .collect();
        let scale = 3.7e-3;
        let power: Vec<f64> = rx.iter().map(|&v| v.norm_sqr() * scale).collect();
        let mut a = tag.begin_power_up(1e6);
        let mut b = tag.begin_power_up(1e6);
        for (rxc, pc) in rx.chunks(777).zip(power.chunks(777)) {
            a.step_rx_block(rxc, scale);
            b.step_block(pc);
        }
        let (oa, ob) = (a.finish(), b.finish());
        assert_eq!(oa.final_vdc.to_bits(), ob.final_vdc.to_bits());
        assert_eq!(oa.peak_vdc.to_bits(), ob.peak_vdc.to_bits());
        assert_eq!(
            oa.time_to_power_s.map(f64::to_bits),
            ob.time_to_power_s.map(f64::to_bits)
        );
    }

    #[test]
    fn chip_drain_after_wake() {
        let tag = TagPowerProfile::standard_tag();
        // Power strongly, then cut the signal: voltage must decay due to
        // chip draw.
        let mut env = vec![dbm_to_watts(10.0); 20_000];
        env.extend(vec![0.0; 500_000]);
        let out = tag.power_up(&env, 1e6);
        assert!(out.powered);
        assert!(out.final_vdc < out.peak_vdc);
    }
}
