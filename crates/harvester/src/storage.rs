//! Storage capacitor and duty-cycled operation.
//!
//! Marginal links harvest by *accumulating*: charge the storage capacitor
//! during the CIB envelope peaks, then spend the energy on a short burst
//! of sensing/backscatter (paper §2.3 and §3.7). This module tracks that
//! energy ledger.

/// A storage capacitor with leakage and a chip load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageCap {
    /// Capacitance, farads.
    pub capacitance: f64,
    /// Parallel leakage resistance, ohms (`f64::INFINITY` for none).
    pub r_leak: f64,
}

impl StorageCap {
    /// Creates a storage capacitor.
    ///
    /// # Panics
    /// Panics unless capacitance and leakage resistance are positive.
    pub fn new(capacitance: f64, r_leak: f64) -> Self {
        assert!(capacitance > 0.0, "capacitance must be positive");
        assert!(r_leak > 0.0, "leakage resistance must be positive");
        StorageCap {
            capacitance,
            r_leak,
        }
    }

    /// Energy stored at voltage `v`: `½CV²`, joules.
    pub fn energy(&self, v: f64) -> f64 {
        0.5 * self.capacitance * v * v
    }

    /// Voltage for a stored energy, volts.
    pub fn voltage(&self, energy: f64) -> f64 {
        assert!(energy >= 0.0);
        (2.0 * energy / self.capacitance).sqrt()
    }

    /// Advances the capacitor one step of `dt` seconds from voltage `v`,
    /// receiving `p_in` watts of harvested power and supplying `i_load`
    /// amps, including self-leakage. Returns the new voltage (≥ 0).
    pub fn step(&self, v: f64, p_in: f64, i_load: f64, dt: f64) -> f64 {
        assert!(dt > 0.0 && p_in >= 0.0 && i_load >= 0.0);
        // Energy bookkeeping: in = p_in·dt; out = (v·i_load + v²/R)·dt.
        let e = self.energy(v) + (p_in - v * i_load - v * v / self.r_leak) * dt;
        self.voltage(e.max(0.0))
    }
}

/// A duty-cycle plan: harvest for `harvest_s`, then operate drawing
/// `active_power_w` for `active_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycle {
    /// Harvesting window, seconds.
    pub harvest_s: f64,
    /// Active (sensing/transmitting) window, seconds.
    pub active_s: f64,
    /// Power drawn while active, watts.
    pub active_power_w: f64,
}

impl DutyCycle {
    /// Energy needed for one active burst, joules.
    pub fn burst_energy(&self) -> f64 {
        self.active_s * self.active_power_w
    }

    /// Minimum average harvested power (during the harvest window) that
    /// sustains the cycle, watts.
    pub fn required_harvest_power(&self) -> f64 {
        self.burst_energy() / self.harvest_s
    }

    /// Whether an average harvested power sustains indefinite operation.
    pub fn sustainable(&self, mean_harvest_w: f64) -> bool {
        mean_harvest_w >= self.required_harvest_power()
    }

    /// How many harvest windows must pass before the first burst can fire,
    /// assuming the capacitor starts empty. `None` if never (zero income).
    pub fn windows_to_first_burst(&self, mean_harvest_w: f64) -> Option<u64> {
        if mean_harvest_w <= 0.0 {
            return None;
        }
        let per_window = mean_harvest_w * self.harvest_s;
        // Small tolerance so exact integer ratios do not round up on
        // floating-point dust.
        let ratio = self.burst_energy() / per_window;
        Some((ratio - 1e-9).ceil().max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_voltage_roundtrip() {
        let c = StorageCap::new(1e-6, f64::INFINITY);
        let e = c.energy(3.0);
        assert!((e - 4.5e-6).abs() < 1e-18);
        assert!((c.voltage(e) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn charging_raises_voltage() {
        let c = StorageCap::new(1e-6, f64::INFINITY);
        // 1 µW for 1 ms = 1 nJ into empty 1 µF → v = √(2e-9/1e-6) ≈ 45 mV.
        let v = c.step(0.0, 1e-6, 0.0, 1e-3);
        assert!((v - (2e-9f64 / 1e-6).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn leakage_decays_voltage() {
        let c = StorageCap::new(1e-6, 1e6); // τ = RC = 1 s
        let mut v = 1.0;
        for _ in 0..1000 {
            v = c.step(v, 0.0, 0.0, 1e-3); // 1 s total
        }
        // Energy obeys dE/dt = −V²/R = −2E/(RC), so E decays with RC/2 and
        // voltage as e^{−t/RC}: after t = RC = 1 s, v = e⁻¹ ≈ 0.368.
        assert!((v - (-1.0f64).exp()).abs() < 0.01, "v after τ: {v}");
    }

    #[test]
    fn load_drains() {
        let c = StorageCap::new(1e-6, f64::INFINITY);
        let v = c.step(1.0, 0.0, 1e-6, 0.1);
        // ΔE = v·i·t = 1·1e-6·0.1 = 1e-7 J from E₀ = 5e-7 → E = 4e-7 →
        // v = √(0.8) ≈ 0.894.
        assert!((v - 0.8f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn voltage_floors_at_zero() {
        let c = StorageCap::new(1e-9, f64::INFINITY);
        let v = c.step(0.01, 0.0, 1.0, 1.0);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn duty_cycle_budget() {
        let d = DutyCycle {
            harvest_s: 0.99,
            active_s: 0.01,
            active_power_w: 10e-6,
        };
        assert!((d.burst_energy() - 1e-7).abs() < 1e-18);
        let req = d.required_harvest_power();
        assert!((req - 1.0101e-7).abs() < 1e-10);
        assert!(d.sustainable(2e-7));
        assert!(!d.sustainable(0.5e-7));
    }

    #[test]
    fn windows_to_first_burst() {
        let d = DutyCycle {
            harvest_s: 1.0,
            active_s: 0.01,
            active_power_w: 1e-3, // burst needs 10 µJ
        };
        assert_eq!(d.windows_to_first_burst(2e-6), Some(5)); // 2 µJ/window
        assert_eq!(d.windows_to_first_burst(20e-6), Some(1));
        assert_eq!(d.windows_to_first_burst(0.0), None);
    }
}
