//! Property-based tests for the energy-harvesting circuit models.

use ivn_harvester::conduction::{conduction_angle, conduction_duty, cycle_average_current};
use ivn_harvester::diode::DiodeModel;
use ivn_harvester::efficiency::EfficiencyModel;
use ivn_harvester::powerup::TagPowerProfile;
use ivn_harvester::rectifier::Rectifier;
use ivn_harvester::storage::StorageCap;
use ivn_runtime::prop::{any, Just, Strategy};
use ivn_runtime::rng::{Rng, StdRng};
use ivn_runtime::{prop_assert, prop_assert_eq, prop_oneof, props};

fn diode() -> impl Strategy<Value = DiodeModel> {
    prop_oneof![
        Just(DiodeModel::Ideal),
        (0.05f64..0.5, 1.0f64..200.0).prop_map(|(vth, r_on)| DiodeModel::Threshold { vth, r_on }),
        (1e-12f64..1e-6, 1.0f64..2.0)
            .prop_map(|(i_sat, ideality)| DiodeModel::Shockley { i_sat, ideality }),
    ]
}

props! {
    cases = 96;

    fn diode_current_monotone(d in diode(), v1 in -1.0f64..2.0, dv in 0.0f64..2.0) {
        prop_assert!(d.current(v1 + dv) >= d.current(v1) - 1e-15);
    }

    fn diode_blocks_reverse(d in diode(), v in 0.0f64..2.0) {
        prop_assert!(d.current(-v) <= 1e-12);
    }

    fn conduction_angle_bounds(vs in 0.0f64..10.0, vth in 0.0f64..0.5) {
        let w = conduction_angle(vs, vth);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&w));
        let duty = conduction_duty(vs, vth);
        prop_assert!((0.0..=0.5 + 1e-12).contains(&duty));
        if vs <= vth {
            prop_assert_eq!(w, 0.0);
        }
    }

    fn conduction_angle_monotone_in_drive(vth in 0.01f64..0.5,
                                          vs in 0.0f64..5.0, dv in 0.0f64..5.0) {
        prop_assert!(conduction_angle(vs + dv, vth) >= conduction_angle(vs, vth));
    }

    fn cycle_current_nonnegative_monotone(d in diode(), vs in 0.0f64..3.0, dv in 0.0f64..3.0) {
        let i1 = cycle_average_current(&d, vs);
        let i2 = cycle_average_current(&d, vs + dv);
        prop_assert!(i1 >= 0.0);
        prop_assert!(i2 >= i1 - 1e-12);
    }

    fn rectifier_output_nonnegative_and_linear_above_threshold(
        stages in 1usize..8, vs in 0.0f64..3.0,
    ) {
        let r = Rectifier::new(stages, DiodeModel::typical_rfid(), 1000.0);
        let v = r.steady_state_vdc(vs);
        prop_assert!(v >= 0.0);
        if vs > 0.25 {
            prop_assert!((v - stages as f64 * (vs - 0.25)).abs() < 1e-12);
        }
    }

    fn rectifier_transient_never_exceeds_target(vs in 0.3f64..2.0, steps in 1usize..2000) {
        let r = Rectifier::new(3, DiodeModel::typical_rfid(), 1000.0);
        let env = vec![vs; steps];
        let trace = r.simulate(&env, 1e6, 0.0, 1e-9, 0.0);
        let target = r.steady_state_vdc(vs);
        for v in trace {
            prop_assert!(v <= target + 1e-9);
        }
    }

    fn efficiency_in_unit_range_monotone(vth in 0.05f64..0.4, eta in 0.05f64..1.0,
                                         vs in 0.0f64..5.0, dv in 0.0f64..5.0) {
        let m = EfficiencyModel::new(vth, eta);
        let e1 = m.efficiency(vs);
        let e2 = m.efficiency(vs + dv);
        prop_assert!((0.0..=eta + 1e-12).contains(&e1));
        prop_assert!(e2 >= e1 - 1e-12);
    }

    fn storage_energy_conserved_without_flows(c in 1e-9f64..1e-5, v in 0.0f64..5.0,
                                              dt in 1e-6f64..1.0) {
        let cap = StorageCap::new(c, f64::INFINITY);
        let v2 = cap.step(v, 0.0, 0.0, dt);
        prop_assert!((v2 - v).abs() < 1e-9);
    }

    fn storage_charging_monotone(c in 1e-9f64..1e-6, p in 0.0f64..1e-3,
                                 extra in 0.0f64..1e-3, dt in 1e-6f64..0.01) {
        let cap = StorageCap::new(c, f64::INFINITY);
        let v1 = cap.step(0.1, p, 0.0, dt);
        let v2 = cap.step(0.1, p + extra, 0.0, dt);
        prop_assert!(v2 >= v1 - 1e-12);
    }

    fn powerup_requires_threshold(p_dbm in -40.0f64..20.0) {
        // The analytic gate is consistent: below static sensitivity the
        // chip can never wake regardless of exposure duration.
        let tag = TagPowerProfile::standard_tag();
        let p = ivn_dsp::units::dbm_to_watts(p_dbm);
        if p < tag.static_sensitivity_watts() {
            prop_assert!(!tag.can_power_at_peak(p));
            let env = vec![p; 10_000];
            prop_assert!(!tag.power_up(&env, 1e5).powered);
        }
    }

    fn time_to_power_decreases_with_power(p1_dbm in -8.0f64..10.0, extra_db in 0.1f64..20.0) {
        let tag = TagPowerProfile::standard_tag();
        let p1 = ivn_dsp::units::dbm_to_watts(p1_dbm);
        let p2 = ivn_dsp::units::dbm_to_watts(p1_dbm + extra_db);
        let out1 = tag.power_up(&vec![p1; 50_000], 1e6);
        let out2 = tag.power_up(&vec![p2; 50_000], 1e6);
        if let (Some(t1), Some(t2)) = (out1.time_to_power_s, out2.time_to_power_s) {
            prop_assert!(t2 <= t1 + 1e-9);
        }
    }

    fn streaming_power_up_matches_batch(seed in any::<u64>(), block in 1usize..64) {
        // A noisy ramp whose peak straddles the power-up threshold, fed to
        // the incremental integrator in arbitrary block sizes, must land on
        // the exact same outcome as the whole-buffer oracle.
        let mut rng = StdRng::seed_from_u64(seed);
        let tag = TagPowerProfile::standard_tag();
        let n = 300usize;
        let peak = tag.required_peak_power_watts() * (0.5 + 2.0 * rng.random::<f64>());
        let env: Vec<f64> = (0..n)
            .map(|i| peak * (i as f64 / (n - 1) as f64) * (0.8 + 0.4 * rng.random::<f64>()))
            .collect();
        let batch = tag.power_up(&env, 1e5);
        let mut state = tag.begin_power_up(1e5);
        for chunk in env.chunks(block) {
            state.step_block(chunk);
        }
        let streamed = state.finish();
        prop_assert_eq!(streamed.powered, batch.powered);
        prop_assert_eq!(streamed.time_to_power_s, batch.time_to_power_s);
        prop_assert_eq!(streamed.peak_vdc.to_bits(), batch.peak_vdc.to_bits());
        prop_assert_eq!(streamed.final_vdc.to_bits(), batch.final_vdc.to_bits());
    }
}
