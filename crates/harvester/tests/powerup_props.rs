//! Property pins for the power-up integrator's fast paths.
//!
//! Three contracts, PR-7 style:
//!
//! 1. `step_block` (the α-hoisted scalar loop) is **bit-identical** to
//!    `power_up_oracle` (the per-sample `Rectifier::step` loop) on any
//!    envelope, at any block split.
//! 2. `step_run` (the closed-form O(runs) fast-forward) tracks the
//!    oracle within ≤1e-9 on voltages and reproduces the wake index
//!    exactly.
//! 3. `step_run` is **bit-identical** under any split of a run into
//!    sub-runs (segments anchor at data-determined indices).

use ivn_harvester::powerup::{PowerUpOutcome, TagPowerProfile};
use ivn_runtime::prop::any;
use ivn_runtime::rng::{Rng, StdRng};
use ivn_runtime::{prop_assert, prop_assert_eq, props};

const FS: f64 = 1e6;

fn profile(mini: bool) -> TagPowerProfile {
    if mini {
        TagPowerProfile::miniature_tag()
    } else {
        TagPowerProfile::standard_tag()
    }
}

/// A run-length envelope: power levels spanning dead air to strong
/// drive, with run lengths from single samples to long CW stretches.
fn runs_from_seed(seed: u64) -> Vec<(f64, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_runs = 2 + (rng.next_u64() % 12) as usize;
    (0..n_runs)
        .map(|_| {
            let p = match rng.next_u64() % 4 {
                0 => 0.0,
                1 => 1e-6 * rng.random::<f64>(),
                2 => 2e-4 * rng.random::<f64>(),
                _ => 5e-3 * rng.random::<f64>(),
            };
            let m = match rng.next_u64() % 3 {
                0 => 1 + (rng.next_u64() % 9) as usize,
                1 => 100 + (rng.next_u64() % 2_000) as usize,
                _ => 10_000 + (rng.next_u64() % 80_000) as usize,
            };
            (p, m)
        })
        .collect()
}

fn expand(runs: &[(f64, usize)]) -> Vec<f64> {
    let mut env = Vec::new();
    for &(p, m) in runs {
        env.extend(std::iter::repeat(p).take(m));
    }
    env
}

fn assert_bitwise(a: &PowerUpOutcome, b: &PowerUpOutcome, what: &str) {
    assert_eq!(a.powered, b.powered, "{what}: powered");
    assert_eq!(
        a.time_to_power_s.map(f64::to_bits),
        b.time_to_power_s.map(f64::to_bits),
        "{what}: wake time"
    );
    assert_eq!(a.peak_vdc.to_bits(), b.peak_vdc.to_bits(), "{what}: peak");
    assert_eq!(
        a.final_vdc.to_bits(),
        b.final_vdc.to_bits(),
        "{what}: final"
    );
}

props! {
    cases = 48;

    /// Contract 1: the hoisted scalar loop IS the oracle, bit for bit,
    /// under any block split.
    fn step_block_bitwise_equals_oracle(seed in any::<u64>(), mini in any::<bool>()) {
        let tag = profile(mini);
        let env = expand(&runs_from_seed(seed));
        let oracle = tag.power_up_oracle(&env, FS);
        let batch = tag.power_up(&env, FS);
        assert_bitwise(&batch, &oracle, "batch vs oracle");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut st = tag
            .begin_power_up(FS)
            .with_trace_stride((env.len() / 32).max(1));
        let mut i = 0usize;
        while i < env.len() {
            let block = 1 + (rng.next_u64() % 5000) as usize;
            let end = (i + block).min(env.len());
            st.step_block(&env[i..end]);
            i = end;
        }
        assert_bitwise(&st.finish(), &oracle, "split blocks vs oracle");
        prop_assert_eq!(st.samples_seen(), env.len());
    }

    /// Contract 2: the closed-form fast-forward drifts ≤1e-9 from the
    /// oracle and wakes at exactly the same sample.
    fn fast_forward_tracks_oracle(seed in any::<u64>(), mini in any::<bool>()) {
        let tag = profile(mini);
        let runs = runs_from_seed(seed);
        let env = expand(&runs);
        let oracle = tag.power_up_oracle(&env, FS);
        let ff = tag.power_up_runs(&runs, FS);
        prop_assert_eq!(ff.powered, oracle.powered);
        prop_assert_eq!(
            ff.time_to_power_s.map(f64::to_bits),
            oracle.time_to_power_s.map(f64::to_bits)
        );
        prop_assert!(
            (ff.peak_vdc - oracle.peak_vdc).abs() <= 1e-9,
            "peak drift {} vs {}", ff.peak_vdc, oracle.peak_vdc
        );
        prop_assert!(
            (ff.final_vdc - oracle.final_vdc).abs() <= 1e-9,
            "final drift {} vs {}", ff.final_vdc, oracle.final_vdc
        );
    }

    /// Contract 3: splitting runs into arbitrary sub-runs changes no
    /// bit of the fast-forward result.
    fn fast_forward_split_invariant(seed in any::<u64>(), mini in any::<bool>()) {
        let tag = profile(mini);
        let runs = runs_from_seed(seed);
        let whole = tag.power_up_runs(&runs, FS);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xab1e);
        let mut st = tag.begin_power_up(FS);
        for &(p, m) in &runs {
            let mut left = m;
            while left > 0 {
                let take = (1 + (rng.next_u64() % 1_000) as usize).min(left);
                st.step_run(p, take);
                left -= take;
            }
        }
        // Trace stride differs from power_up_runs' choice, but tracing
        // is off here and must not affect numerics anyway.
        let split = st.finish();
        assert_bitwise(&split, &whole, "split runs vs whole runs");
    }

    /// Mixed feeding: runs interleaved with per-sample blocks still
    /// tracks the oracle (the state machine flushes segments cleanly).
    fn mixed_run_and_block_feeding(seed in any::<u64>()) {
        let tag = profile(false);
        let runs = runs_from_seed(seed);
        let env = expand(&runs);
        let oracle = tag.power_up_oracle(&env, FS);
        let mut st = tag.begin_power_up(FS);
        for (i, &(p, m)) in runs.iter().enumerate() {
            if i % 2 == 0 {
                st.step_run(p, m);
            } else {
                let block = vec![p; m];
                st.step_block(&block);
            }
        }
        let out = st.finish();
        prop_assert_eq!(out.powered, oracle.powered);
        prop_assert_eq!(
            out.time_to_power_s.map(f64::to_bits),
            oracle.time_to_power_s.map(f64::to_bits)
        );
        prop_assert!((out.final_vdc - oracle.final_vdc).abs() <= 1e-9);
        prop_assert!((out.peak_vdc - oracle.peak_vdc).abs() <= 1e-9);
    }
}
