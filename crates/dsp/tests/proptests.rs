//! Property-based tests for the DSP substrate.

use ivn_dsp::complex::Complex64;
use ivn_dsp::correlate::{best_match, coherent_average};
use ivn_dsp::envelope::fluctuation;
use ivn_dsp::fft::{fft, ifft};
use ivn_dsp::filter::{design_lowpass, fir_response, FirFilter};
use ivn_dsp::modulation::{ook_demod, ook_waveform};
use ivn_dsp::osc::MultiTone;
use ivn_dsp::resample::interp_at;
use ivn_dsp::stats::{percentile, Ecdf};
use ivn_dsp::units::{db_to_linear, dbm_to_watts, linear_to_db, watts_to_dbm};
use ivn_dsp::window::Window;
use ivn_runtime::prop::{any, vec as pvec, Strategy};
use ivn_runtime::{prop_assert, prop_assert_eq, prop_assume, props};

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    range
}

fn complex_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Complex64>> {
    pvec(
        (finite_f64(-10.0..10.0), finite_f64(-10.0..10.0)).prop_map(|(r, i)| Complex64::new(r, i)),
        len,
    )
}

props! {
    fn complex_mul_commutes(a in finite_f64(-5.0..5.0), b in finite_f64(-5.0..5.0),
                            c in finite_f64(-5.0..5.0), d in finite_f64(-5.0..5.0)) {
        let x = Complex64::new(a, b);
        let y = Complex64::new(c, d);
        prop_assert!(((x * y) - (y * x)).norm() < 1e-9);
    }

    fn complex_norm_triangle_inequality(a in complex_vec(2..3)) {
        let (x, y) = (a[0], a[1]);
        prop_assert!((x + y).norm() <= x.norm() + y.norm() + 1e-9);
    }

    fn complex_polar_roundtrip(r in finite_f64(0.001..100.0), theta in finite_f64(-3.0..3.0)) {
        let z = Complex64::from_polar(r, theta);
        let (r2, t2) = z.to_polar();
        prop_assert!((r - r2).abs() < 1e-9 * r.max(1.0));
        prop_assert!((theta - t2).abs() < 1e-9);
    }

    fn db_conversions_invert(db in finite_f64(-120.0..120.0)) {
        prop_assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        prop_assert!((watts_to_dbm(dbm_to_watts(db)) - db).abs() < 1e-9);
    }

    fn fft_roundtrip(data in complex_vec(1..65)) {
        let n = data.len().next_power_of_two();
        let mut padded = data.clone();
        padded.resize(n, Complex64::ZERO);
        let orig = padded.clone();
        fft(&mut padded);
        ifft(&mut padded);
        for (a, b) in padded.iter().zip(&orig) {
            prop_assert!((*a - *b).norm() < 1e-7);
        }
    }

    fn fft_linearity(a in complex_vec(16..17), b in complex_vec(16..17)) {
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fsum);
        for i in 0..16 {
            prop_assert!(((fa[i] + fb[i]) - fsum[i]).norm() < 1e-6);
        }
    }

    fn fir_is_linear(x in complex_vec(64..65), k in finite_f64(0.1..5.0)) {
        let taps = design_lowpass(100.0, 1000.0, 31, Window::Hamming);
        let mut f1 = FirFilter::new(taps.clone());
        let mut f2 = FirFilter::new(taps);
        let y1: Vec<Complex64> = f1.process_block(&x).iter().map(|s| *s * k).collect();
        let scaled: Vec<Complex64> = x.iter().map(|s| *s * k).collect();
        let y2 = f2.process_block(&scaled);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((*a - *b).norm() < 1e-7 * k.max(1.0));
        }
    }

    fn fir_lowpass_response_bounded(cutoff in finite_f64(10.0..400.0)) {
        let taps = design_lowpass(cutoff, 1000.0, 63, Window::Hamming);
        // Passband/stopband gains never exceed 1 + small ripple.
        for k in 0..50 {
            let f = k as f64 * 10.0;
            prop_assert!(fir_response(&taps, f, 1000.0).norm() < 1.05);
        }
    }

    fn multitone_envelope_never_exceeds_amplitude_sum(
        freqs in pvec(0i64..200, 1..8),
        phases in pvec(finite_f64(0.0..6.28), 8),
        t in finite_f64(0.0..1.0),
    ) {
        let f: Vec<f64> = freqs.iter().map(|&x| x as f64).collect();
        let mt = MultiTone::from_freqs_phases(&f, &phases[..f.len()]);
        prop_assert!(mt.envelope(t) <= mt.amplitude_sum() + 1e-9);
    }

    fn multitone_fluctuation_in_unit_range(
        freqs in pvec(1i64..100, 2..6),
    ) {
        let mut f: Vec<f64> = freqs.iter().map(|&x| x as f64).collect();
        f[0] = 0.0;
        let phases = vec![0.0; f.len()];
        let mt = MultiTone::from_freqs_phases(&f, &phases);
        let env: Vec<f64> = (0..2048).map(|k| mt.envelope(k as f64 / 2048.0)).collect();
        let fl = fluctuation(&env);
        prop_assert!((0.0..=1.0).contains(&fl));
    }

    fn ook_roundtrip_any_bits(bits in pvec(any::<bool>(), 4..64)) {
        // Roundtrip only well-defined when both symbols appear.
        prop_assume!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
        let buf = ook_waveform(&bits, 8, 1.0, 1000.0);
        let out = ook_demod(&buf.envelope(), 8);
        prop_assert_eq!(out, bits);
    }

    fn best_match_self_is_perfect(x in complex_vec(8..32)) {
        prop_assume!(x.iter().map(|s| s.norm_sqr()).sum::<f64>() > 1e-9);
        let (lag, coeff) = best_match(&x, &x).unwrap();
        prop_assert_eq!(lag, 0);
        prop_assert!((coeff - 1.0).abs() < 1e-9);
    }

    fn coherent_average_of_identical_reps_is_identity(
        template in complex_vec(4..16), reps in 1usize..6,
    ) {
        let mut x = Vec::new();
        for _ in 0..reps {
            x.extend_from_slice(&template);
        }
        let avg = coherent_average(&x, template.len(), reps).unwrap();
        for (a, b) in avg.iter().zip(&template) {
            prop_assert!((*a - *b).norm() < 1e-9);
        }
    }

    fn percentile_within_minmax(data in pvec(finite_f64(-100.0..100.0), 1..50),
                                p in finite_f64(0.0..100.0)) {
        let v = percentile(&data, p).unwrap();
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    fn percentile_monotone_in_p(data in pvec(finite_f64(-10.0..10.0), 2..40)) {
        let p25 = percentile(&data, 25.0).unwrap();
        let p50 = percentile(&data, 50.0).unwrap();
        let p75 = percentile(&data, 75.0).unwrap();
        prop_assert!(p25 <= p50 + 1e-12 && p50 <= p75 + 1e-12);
    }

    fn ecdf_is_monotone_cdf(data in pvec(finite_f64(-10.0..10.0), 1..50)) {
        let e = Ecdf::new(data);
        let mut prev = 0.0;
        for x in [-20.0, -5.0, 0.0, 5.0, 20.0] {
            let v = e.eval(x);
            prop_assert!(v >= prev);
            prop_assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
        prop_assert_eq!(e.eval(1e12), 1.0);
    }

    fn interp_between_neighbors(data in pvec(finite_f64(-5.0..5.0), 2..20),
                                x in finite_f64(0.0..1.0)) {
        let idx = x * (data.len() - 1) as f64;
        let v = interp_at(&data, idx);
        let i = (idx.floor() as usize).min(data.len() - 2);
        let lo = data[i].min(data[i + 1]);
        let hi = data[i].max(data[i + 1]);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }
}
