//! Property suite for the trig-free phasor rotator.
//!
//! The contract under test: across 10^7 consecutive samples, for
//! randomized frequencies and resync intervals, the rotator's output
//! stays within 1e-9 of the closed-form trig oracle
//! `e^{j((φ₀ + kΔ) mod 2π)}` in both amplitude and phase — including
//! right at resync boundaries, where the recurrence is replaced by a
//! fresh exact evaluation and any discontinuity would show up as a
//! phase step.

use ivn_dsp::complex::Complex64;
use ivn_dsp::osc::Oscillator;
use ivn_dsp::rotor::{PhasorRotor, LANES};
use ivn_runtime::prop::any;
use ivn_runtime::{prop_assert, props};

/// Runs `rotor` for `n` samples in bounded chunks, returning the max
/// distance from the closed-form oracle and the max |amplitude − 1|.
fn worst_case_vs_oracle(rotor: &mut PhasorRotor, n: usize) -> (f64, f64) {
    const CHUNK: usize = 1 << 15;
    let probe = rotor.clone();
    let mut buf = vec![Complex64::ZERO; CHUNK];
    let mut k = 0u64;
    let (mut max_err, mut max_amp) = (0.0f64, 0.0f64);
    while (k as usize) < n {
        let take = CHUNK.min(n - k as usize);
        rotor.fill(&mut buf[..take]);
        for (j, s) in buf[..take].iter().enumerate() {
            let want = Complex64::cis(probe.ideal_phase(k + j as u64));
            max_err = max_err.max((*s - want).norm());
            max_amp = max_amp.max((s.norm() - 1.0).abs());
        }
        k += take as u64;
    }
    (max_err, max_amp)
}

/// The headline bound: 10^7 samples of the paper's hottest case (137 Hz
/// soft offset at 1 MS/s) never drift past 1e-9 of the trig oracle.
/// Stream length doesn't accumulate error — only the position inside a
/// resync window does — so the margin here is ~3 orders of magnitude.
#[test]
fn ten_million_samples_stay_within_1e9_of_oracle() {
    let mut r = PhasorRotor::new(137.0, 1e6, 1.234);
    let (max_err, max_amp) = worst_case_vs_oracle(&mut r, 10_000_000);
    assert!(max_err < 1e-9, "max oracle distance {max_err:e}");
    assert!(max_amp < 1e-9, "max amplitude drift {max_amp:e}");
}

props! {
    cases = 24;

    fn randomized_freq_and_resync_bounded(freq in -4.9e5f64..4.9e5, phase0 in 0.0f64..6.28,
                                          resync in 1usize..5000, seed in any::<u64>()) {
        // Resync interval anywhere from one lane row to ~5k samples;
        // sample count offset by the seed so window/buffer alignment
        // varies too.
        let n = 30_000 + (seed % 977) as usize;
        let mut r = PhasorRotor::with_resync(freq, 1e6, phase0, resync);
        let (max_err, max_amp) = worst_case_vs_oracle(&mut r, n);
        prop_assert!(max_err < 1e-9, "max oracle distance {max_err:e} (resync {resync})");
        prop_assert!(max_amp < 1e-9, "max amplitude drift {max_amp:e} (resync {resync})");
    }

    fn continuous_across_resync_boundaries(freq in -1e4f64..1e4, resync in 1usize..96,
                                           phase0 in 0.0f64..6.28) {
        // Small resync windows so the stream crosses many boundaries;
        // every adjacent pair of samples must advance by Δ — a resync
        // that re-seeded the lanes inconsistently would show up as a
        // phase step at the window edge.
        let mut r = PhasorRotor::with_resync(freq, 1e5, phase0, resync);
        let inc = r.increment();
        let mut out = vec![Complex64::ZERO; 40 * LANES.max(resync)];
        r.fill(&mut out);
        for (k, pair) in out.windows(2).enumerate() {
            let step = (pair[1] * pair[0].conj()).arg();
            prop_assert!(
                (step - inc).abs() < 1e-9,
                "phase step {step} vs increment {inc} at sample {k}"
            );
        }
    }

    fn matches_accumulating_oscillator(freq in -500.0f64..500.0, seed in any::<u64>()) {
        // Cross-check against the *other* trig formulation: the
        // phase-accumulating Oscillator the emission path used before.
        let n = 20_000 + (seed % 311) as usize;
        let mut r = PhasorRotor::new(freq, 1e5, 0.0);
        let mut osc = Oscillator::new(freq, 1e5);
        let mut buf = vec![Complex64::ZERO; n];
        r.fill(&mut buf);
        for (k, s) in buf.iter().enumerate() {
            let want = osc.next_sample();
            prop_assert!(
                (*s - want).norm() < 1e-9,
                "sample {k} off the oscillator path"
            );
        }
    }

    fn split_points_never_change_output(freq in -1e4f64..1e4, resync in 8usize..512,
                                        seed in any::<u64>()) {
        // Bit-identity across arbitrary block splits, including splits
        // landing exactly on resync boundaries and mid-lane-row.
        let n = 4096;
        let mut whole_rotor = PhasorRotor::with_resync(freq, 1e5, 0.5, resync);
        let mut split_rotor = whole_rotor.clone();
        let mut whole = vec![Complex64::ZERO; n];
        whole_rotor.fill(&mut whole);
        let mut rng = seed;
        let mut split = Vec::with_capacity(n);
        let mut buf = Vec::new();
        while split.len() < n {
            // Cheap deterministic block-size sequence from the seed.
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let block = 1 + (rng >> 33) as usize % (2 * resync);
            let take = block.min(n - split.len());
            buf.clear();
            buf.resize(take, Complex64::ZERO);
            split_rotor.fill(&mut buf);
            split.extend_from_slice(&buf);
        }
        for (k, (a, b)) in whole.iter().zip(&split).enumerate() {
            prop_assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "split output diverged at sample {k}"
            );
        }
    }
}
