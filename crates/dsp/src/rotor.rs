//! Trig-free lane-batched phasor synthesis.
//!
//! The sdr emission path needs `e^{jφ₀ + j2πfk/fs}` for millions of
//! consecutive `k` — one unit phasor per transmitted sample. Calling
//! `sin`/`cos` per sample caps the whole transmitter bank near 1.5 MS/s
//! (BENCH_runtime.json before this layer existed), two orders of
//! magnitude slower than every other pipeline stage. A complex
//! *rotator* replaces the per-sample trig with one complex multiply:
//!
//! ```text
//! p[k+1] = p[k] · e^{jΔ}        (4 mul + 2 add, no libm)
//! ```
//!
//! Two refinements make the recurrence both fast and trustworthy:
//!
//! 1. **Lane batching.** A single rotator is a serial dependency chain —
//!    each multiply waits on the previous one. [`PhasorRotor`] instead
//!    keeps [`LANES`] = 8 interleaved sub-rotators in struct-of-arrays
//!    form: sub-lane `j` produces samples `j, j+8, j+16, …` and advances
//!    by the stride rotator `e^{j·8Δ}`. The row loop over 8 independent
//!    multiplies has no loop-carried dependency, so the compiler
//!    auto-vectorizes it (the same trick the PR-4 envelope kernels use
//!    for the Monte-Carlo objective).
//!
//! 2. **Periodic exact resync.** Floating-point rotation drifts in both
//!    amplitude and phase at O(k·ε). Every [`PhasorRotor::resync`]
//!    samples the lanes are recomputed *exactly* from the closed-form
//!    phase `φ₀ + kΔ mod 2π`, so the worst-case error is the drift of a
//!    single window (≲ 10⁻¹³ at the default window), not of the whole
//!    stream. `tests/rotor_props.rs` pins the ≤ 1e-9 bound against the
//!    trig oracle across 10⁷ samples and randomized resync intervals.
//!
//! Resync points sit at fixed absolute sample indices, and the lane
//! state is a pure function of how many samples have been emitted —
//! never of how the stream was sliced into blocks. Streaming callers
//! can therefore split `fill` calls anywhere and stay bit-identical to
//! a single whole-buffer call (`fill_is_split_invariant` below).

use crate::complex::Complex64;
use std::f64::consts::TAU;

/// Number of interleaved sub-rotators (the SIMD-friendly lane width).
pub const LANES: usize = 8;

/// Default resync window, samples. A multiple of [`LANES`]; 1024 keeps
/// worst-case drift near 1e-13 while spending < 1% of samples on trig.
pub const DEFAULT_RESYNC: usize = 1024;

/// A phase-continuous unit-phasor generator: `out[k] = e^{j(φ₀ + kΔ)}`
/// with no trig in the steady-state path.
#[derive(Debug, Clone)]
pub struct PhasorRotor {
    /// Initial phase φ₀, radians.
    phase0: f64,
    /// Per-sample phase increment Δ = 2πf/fs, radians.
    inc: f64,
    /// Resync window length, samples (multiple of [`LANES`]).
    resync: usize,
    /// Sub-lane phasor real parts (SoA layout).
    lre: [f64; LANES],
    /// Sub-lane phasor imaginary parts.
    lim: [f64; LANES],
    /// Stride rotator `e^{j·LANES·Δ}`.
    srot_re: f64,
    srot_im: f64,
    /// Absolute index of the next output sample.
    pos: u64,
    /// Position within the current resync window.
    win_pos: usize,
}

impl PhasorRotor {
    /// A rotator for `freq_hz` at `sample_rate`, starting at phase
    /// `phase0` (radians), with the default resync window.
    ///
    /// # Panics
    /// Panics if `sample_rate` is not strictly positive.
    pub fn new(freq_hz: f64, sample_rate: f64, phase0: f64) -> Self {
        Self::with_resync(freq_hz, sample_rate, phase0, DEFAULT_RESYNC)
    }

    /// [`PhasorRotor::new`] with an explicit resync window. The window
    /// is rounded up to a multiple of [`LANES`] (and at least one row).
    pub fn with_resync(freq_hz: f64, sample_rate: f64, phase0: f64, resync: usize) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        let inc = TAU * freq_hz / sample_rate;
        let (s, c) = (LANES as f64 * inc).sin_cos();
        let resync = resync.max(1).div_ceil(LANES) * LANES;
        let mut rotor = PhasorRotor {
            phase0,
            inc,
            resync,
            lre: [0.0; LANES],
            lim: [0.0; LANES],
            srot_re: c,
            srot_im: s,
            pos: 0,
            win_pos: 0,
        };
        rotor.resync_lanes();
        rotor
    }

    /// Per-sample phase increment Δ, radians.
    #[inline]
    pub fn increment(&self) -> f64 {
        self.inc
    }

    /// Resync window length, samples.
    #[inline]
    pub fn resync(&self) -> usize {
        self.resync
    }

    /// Absolute index of the next sample [`PhasorRotor::fill`] will emit.
    #[inline]
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// The exact phase the trig oracle assigns to sample `k`:
    /// `(φ₀ + kΔ) mod 2π`. This is also the formula the resync path
    /// evaluates, so rotator error returns to zero at window starts.
    #[inline]
    pub fn ideal_phase(&self, k: u64) -> f64 {
        (self.phase0 + k as f64 * self.inc).rem_euclid(TAU)
    }

    /// Recomputes every lane exactly from the closed-form phase at the
    /// current position and restarts the window.
    fn resync_lanes(&mut self) {
        let base = self.ideal_phase(self.pos);
        for j in 0..LANES {
            let (s, c) = (base + j as f64 * self.inc).sin_cos();
            self.lre[j] = c;
            self.lim[j] = s;
        }
        self.win_pos = 0;
    }

    /// Emits sub-lane `j`'s current phasor and rotates that lane by the
    /// stride rotator (the scalar path for partial rows).
    #[inline]
    fn step_lane(&mut self, j: usize) -> Complex64 {
        let out = Complex64::new(self.lre[j], self.lim[j]);
        let re = self.lre[j] * self.srot_re - self.lim[j] * self.srot_im;
        let im = self.lre[j] * self.srot_im + self.lim[j] * self.srot_re;
        self.lre[j] = re;
        self.lim[j] = im;
        out
    }

    /// Produces the next sample and advances (scalar convenience; the
    /// block API [`PhasorRotor::fill`] is the hot path).
    #[inline]
    pub fn next_sample(&mut self) -> Complex64 {
        if self.win_pos == self.resync {
            self.resync_lanes();
        }
        let s = self.step_lane(self.win_pos % LANES);
        self.win_pos += 1;
        self.pos += 1;
        s
    }

    /// Fills `out` with the next `out.len()` consecutive unit phasors.
    ///
    /// The output is bit-identical for any split of the stream into
    /// `fill` calls: lane state depends only on the absolute sample
    /// index, and resyncs fire at fixed absolute positions.
    pub fn fill(&mut self, out: &mut [Complex64]) {
        let n = out.len();
        let mut i = 0;
        while i < n {
            if self.win_pos == self.resync {
                self.resync_lanes();
            }
            // Never cross a resync boundary inside the batched section.
            let seg_start = i;
            let end = i + (self.resync - self.win_pos).min(n - i);
            // Leading partial row (resuming mid-row after a block split).
            while i < end && !self.win_pos.is_multiple_of(LANES) {
                out[i] = self.step_lane(self.win_pos % LANES);
                self.win_pos += 1;
                i += 1;
            }
            // Full rows: 8 independent multiplies per row — the
            // auto-vectorized steady state.
            while end - i >= LANES {
                for j in 0..LANES {
                    out[i + j] = Complex64::new(self.lre[j], self.lim[j]);
                }
                for j in 0..LANES {
                    let re = self.lre[j] * self.srot_re - self.lim[j] * self.srot_im;
                    let im = self.lre[j] * self.srot_im + self.lim[j] * self.srot_re;
                    self.lre[j] = re;
                    self.lim[j] = im;
                }
                self.win_pos += LANES;
                i += LANES;
            }
            // Trailing partial row (block ends mid-row).
            while i < end {
                out[i] = self.step_lane(self.win_pos % LANES);
                self.win_pos += 1;
                i += 1;
            }
            self.pos += (i - seg_start) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(r: &PhasorRotor, k: u64) -> Complex64 {
        Complex64::cis(r.ideal_phase(k))
    }

    #[test]
    fn matches_oracle_within_window_drift() {
        let mut r = PhasorRotor::new(137.0, 1e5, 0.7);
        let probe = r.clone();
        let mut out = vec![Complex64::ZERO; 5000];
        r.fill(&mut out);
        for (k, s) in out.iter().enumerate() {
            let want = oracle(&probe, k as u64);
            assert!((*s - want).norm() < 1e-12, "sample {k}: {s:?} vs {want:?}");
        }
    }

    #[test]
    fn fill_is_split_invariant() {
        for block in [1usize, 3, 7, 8, 64, 1000] {
            let mut a = PhasorRotor::with_resync(49.0, 4096.0, 1.1, 96);
            let mut b = a.clone();
            let mut whole = vec![Complex64::ZERO; 3000];
            a.fill(&mut whole);
            let mut split = Vec::new();
            let mut buf = Vec::new();
            let mut left = 3000usize;
            while left > 0 {
                let take = block.min(left);
                buf.clear();
                buf.resize(take, Complex64::ZERO);
                b.fill(&mut buf);
                split.extend_from_slice(&buf);
                left -= take;
            }
            for (k, (x, y)) in whole.iter().zip(&split).enumerate() {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "block {block} sample {k}"
                );
            }
        }
    }

    #[test]
    fn next_sample_matches_fill() {
        let mut a = PhasorRotor::new(-20.0, 1e3, 0.0);
        let mut b = a.clone();
        let mut out = vec![Complex64::ZERO; 300];
        a.fill(&mut out);
        for (k, want) in out.iter().enumerate() {
            let got = b.next_sample();
            assert_eq!(got.re.to_bits(), want.re.to_bits(), "sample {k}");
            assert_eq!(got.im.to_bits(), want.im.to_bits(), "sample {k}");
        }
    }

    #[test]
    fn unit_magnitude_everywhere() {
        let mut r = PhasorRotor::new(7.0, 1e5, 0.3);
        let mut out = vec![Complex64::ZERO; 10_000];
        r.fill(&mut out);
        for s in &out {
            assert!((s.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn resync_window_rounds_to_lane_multiple() {
        let r = PhasorRotor::with_resync(1.0, 10.0, 0.0, 1);
        assert_eq!(r.resync(), LANES);
        let r = PhasorRotor::with_resync(1.0, 10.0, 0.0, 100);
        assert_eq!(r.resync(), 104);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn rejects_bad_sample_rate() {
        PhasorRotor::new(1.0, 0.0, 0.0);
    }
}
