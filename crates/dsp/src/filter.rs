//! FIR and IIR filters.
//!
//! Two filters matter in the IVN receive chains:
//!
//! * the **SAW bandpass** in front of the out-of-band reader (modelled as a
//!   sharp FIR bandpass at complex baseband), which rejects the CIB
//!   transmitters' jamming 35 MHz away, and
//! * **envelope smoothing** lowpass filters in the tag's detector and the
//!   reader's decoder.
//!
//! FIR design uses the classic windowed-sinc method; IIR offers RBJ biquad
//! sections for cheap smoothing.

use crate::complex::Complex64;
use crate::window::Window;
use std::collections::VecDeque;
use std::f64::consts::PI;

/// Normalized sinc, `sin(πx)/(πx)`.
fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        (PI * x).sin() / (PI * x)
    }
}

/// Designs a linear-phase lowpass FIR by the windowed-sinc method.
///
/// `cutoff_hz` is the -6 dB edge; `taps` must be odd so the filter has an
/// integer group delay of `(taps-1)/2` samples.
///
/// # Panics
/// Panics if `taps` is even or zero, or the cutoff is outside
/// `(0, sample_rate/2)`.
pub fn design_lowpass(cutoff_hz: f64, sample_rate: f64, taps: usize, window: Window) -> Vec<f64> {
    assert!(taps % 2 == 1 && taps > 0, "taps must be odd and nonzero");
    assert!(
        cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
        "cutoff must be in (0, Nyquist)"
    );
    let fc = cutoff_hz / sample_rate; // normalized (cycles/sample)
    let m = (taps - 1) as f64 / 2.0;
    let mut h: Vec<f64> = (0..taps)
        .map(|n| 2.0 * fc * sinc(2.0 * fc * (n as f64 - m)) * window.value(n, taps))
        .collect();
    // Normalize DC gain to exactly 1.
    let s: f64 = h.iter().sum();
    for v in &mut h {
        *v /= s;
    }
    h
}

/// Designs a linear-phase bandpass FIR centred between `low_hz` and
/// `high_hz` (both -6 dB edges) by spectral subtraction of two lowpasses.
///
/// # Panics
/// Panics on invalid edges or even `taps`.
pub fn design_bandpass(
    low_hz: f64,
    high_hz: f64,
    sample_rate: f64,
    taps: usize,
    window: Window,
) -> Vec<f64> {
    assert!(low_hz < high_hz, "low edge must be below high edge");
    let hp = design_lowpass(high_hz, sample_rate, taps, window);
    let lp = design_lowpass(low_hz, sample_rate, taps, window);
    hp.iter().zip(&lp).map(|(a, b)| a - b).collect()
}

/// Evaluates the complex frequency response of an FIR at `freq_hz`.
pub fn fir_response(taps: &[f64], freq_hz: f64, sample_rate: f64) -> Complex64 {
    let w = 2.0 * PI * freq_hz / sample_rate;
    taps.iter()
        .enumerate()
        .map(|(n, &h)| Complex64::cis(-w * n as f64) * h)
        .sum()
}

/// A streaming FIR filter over complex samples.
///
/// Maintains its own delay line so it can be fed sample-by-sample or in
/// blocks; output latency equals the filter's group delay.
#[derive(Debug, Clone)]
pub struct FirFilter {
    taps: Vec<f64>,
    delay: VecDeque<Complex64>,
}

impl FirFilter {
    /// Creates a filter from designed taps.
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        let len = taps.len();
        FirFilter {
            taps,
            delay: VecDeque::from(vec![Complex64::ZERO; len]),
        }
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Whether the filter has no taps (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Group delay in samples, `(taps-1)/2` for the symmetric designs here.
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Pushes one input sample and returns the corresponding output sample.
    pub fn process(&mut self, x: Complex64) -> Complex64 {
        self.delay.pop_back();
        self.delay.push_front(x);
        let mut acc = Complex64::ZERO;
        for (h, s) in self.taps.iter().zip(self.delay.iter()) {
            acc += *s * *h;
        }
        acc
    }

    /// Filters a block, producing an equal-length output.
    pub fn process_block(&mut self, input: &[Complex64]) -> Vec<Complex64> {
        input.iter().map(|&x| self.process(x)).collect()
    }

    /// Clears the delay line.
    pub fn reset(&mut self) {
        for s in &mut self.delay {
            *s = Complex64::ZERO;
        }
    }
}

/// A single-pole IIR smoother for real-valued envelopes:
/// `y[n] = a·x[n] + (1-a)·y[n-1]`.
///
/// This is the discrete model of the RC detector that follows the diode in
/// an envelope detector.
#[derive(Debug, Clone)]
pub struct SinglePole {
    alpha: f64,
    state: f64,
}

impl SinglePole {
    /// Creates a smoother with coefficient `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics when `alpha` is out of range.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        SinglePole { alpha, state: 0.0 }
    }

    /// Creates a smoother from a time constant τ (seconds) at a sample rate.
    pub fn from_time_constant(tau_s: f64, sample_rate: f64) -> Self {
        assert!(tau_s > 0.0 && sample_rate > 0.0);
        let alpha = 1.0 - (-1.0 / (tau_s * sample_rate)).exp();
        Self::new(alpha)
    }

    /// Current output state.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Processes one sample.
    pub fn process(&mut self, x: f64) -> f64 {
        self.state += self.alpha * (x - self.state);
        self.state
    }

    /// Processes a block in place.
    pub fn process_block(&mut self, data: &mut [f64]) {
        for d in data {
            *d = self.process(*d);
        }
    }

    /// Resets internal state to zero.
    pub fn reset(&mut self) {
        self.state = 0.0;
    }
}

/// Decimates a block by an integer factor, averaging each group (a crude
/// but alias-safe polyphase stand-in adequate for envelope-rate signals).
///
/// # Panics
/// Panics if `factor` is zero.
pub fn decimate(input: &[Complex64], factor: usize) -> Vec<Complex64> {
    assert!(factor > 0, "decimation factor must be nonzero");
    input
        .chunks(factor)
        .map(|c| c.iter().copied().sum::<Complex64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::Oscillator;
    use crate::units::amplitude_to_db;

    #[test]
    fn lowpass_dc_gain_is_unity() {
        let taps = design_lowpass(100.0, 1000.0, 63, Window::Hamming);
        let dc = fir_response(&taps, 0.0, 1000.0);
        assert!((dc.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowpass_attenuates_stopband() {
        let taps = design_lowpass(50.0, 1000.0, 101, Window::Blackman);
        let stop = fir_response(&taps, 200.0, 1000.0).norm();
        assert!(
            amplitude_to_db(stop) < -60.0,
            "stopband only {} dB",
            amplitude_to_db(stop)
        );
    }

    #[test]
    fn lowpass_halfpower_at_cutoff() {
        let taps = design_lowpass(100.0, 1000.0, 201, Window::Hamming);
        let edge = fir_response(&taps, 100.0, 1000.0).norm();
        // Windowed-sinc: -6 dB (amplitude 0.5) at the design cutoff.
        assert!((edge - 0.5).abs() < 0.02, "edge gain {edge}");
    }

    #[test]
    fn bandpass_passes_centre_rejects_out_of_band() {
        let taps = design_bandpass(80.0, 120.0, 1000.0, 201, Window::Blackman);
        let centre = fir_response(&taps, 100.0, 1000.0).norm();
        let low = fir_response(&taps, 10.0, 1000.0).norm();
        let high = fir_response(&taps, 350.0, 1000.0).norm();
        assert!(centre > 0.95, "passband gain {centre}");
        assert!(amplitude_to_db(low) < -60.0);
        assert!(amplitude_to_db(high) < -60.0);
    }

    #[test]
    fn streaming_filter_passes_inband_tone() {
        let taps = design_lowpass(100.0, 1000.0, 63, Window::Hamming);
        let mut f = FirFilter::new(taps);
        let mut osc = Oscillator::new(30.0, 1000.0);
        let input = osc.generate(512);
        let out = f.process_block(input.samples());
        // After the transient, amplitude should be ~1.
        let steady: f64 =
            out[200..].iter().map(|s| s.norm()).sum::<f64>() / (out.len() - 200) as f64;
        assert!((steady - 1.0).abs() < 0.01, "steady amplitude {steady}");
    }

    #[test]
    fn streaming_filter_rejects_stopband_tone() {
        let taps = design_lowpass(50.0, 1000.0, 101, Window::Blackman);
        let mut f = FirFilter::new(taps);
        let mut osc = Oscillator::new(300.0, 1000.0);
        let input = osc.generate(512);
        let out = f.process_block(input.samples());
        let steady: f64 = out[200..].iter().map(|s| s.norm()).sum::<f64>() / 312.0;
        assert!(steady < 1e-3, "stopband leak {steady}");
    }

    #[test]
    fn impulse_response_equals_taps() {
        let taps = vec![0.25, 0.5, 0.25];
        let mut f = FirFilter::new(taps.clone());
        let mut impulse = vec![Complex64::ZERO; 5];
        impulse[0] = Complex64::ONE;
        let out = f.process_block(&impulse);
        for (n, &h) in taps.iter().enumerate() {
            assert!((out[n].re - h).abs() < 1e-12);
        }
        assert!(out[3].norm() < 1e-12);
    }

    #[test]
    fn filter_reset_clears_state() {
        let mut f = FirFilter::new(vec![1.0, 1.0]);
        f.process(Complex64::ONE);
        f.reset();
        let y = f.process(Complex64::ZERO);
        assert!(y.norm() < 1e-12);
    }

    #[test]
    fn single_pole_steps_toward_input() {
        let mut sp = SinglePole::new(0.5);
        assert_eq!(sp.process(1.0), 0.5);
        assert_eq!(sp.process(1.0), 0.75);
        sp.reset();
        assert_eq!(sp.state(), 0.0);
    }

    #[test]
    fn single_pole_time_constant() {
        // After τ seconds the step response reaches 1 - 1/e.
        let fs = 1000.0;
        let tau = 0.05;
        let mut sp = SinglePole::from_time_constant(tau, fs);
        let n = (tau * fs) as usize;
        let mut y = 0.0;
        for _ in 0..n {
            y = sp.process(1.0);
        }
        assert!((y - (1.0 - 1.0 / std::f64::consts::E)).abs() < 0.01);
    }

    #[test]
    fn decimate_averages_groups() {
        let x: Vec<Complex64> = (0..6).map(|i| Complex64::from_real(i as f64)).collect();
        let y = decimate(&x, 2);
        assert_eq!(y.len(), 3);
        assert!((y[0].re - 0.5).abs() < 1e-12);
        assert!((y[2].re - 4.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "taps must be odd")]
    fn rejects_even_taps() {
        design_lowpass(10.0, 100.0, 4, Window::Hann);
    }
}
