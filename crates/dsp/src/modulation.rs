//! Amplitude modulation primitives.
//!
//! Reader-to-tag downlinks in EPC Gen2 are amplitude-shift keyed: the
//! reader momentarily attenuates its carrier to cut PIE symbol notches. The
//! tag replies by switching its reflection coefficient (backscatter), which
//! at the reader looks like on-off keying of a faint subcarrier. Both are
//! envelope-level operations built from the helpers in this module.

use crate::buffer::IqBuffer;
use crate::complex::Complex64;

/// Converts a bit/level sequence into a per-sample amplitude profile.
///
/// Each level in `levels` is held for `samples_per_level` samples. Levels
/// are linear amplitudes (1.0 = full carrier, 0.0 = fully cut).
pub fn levels_to_profile(levels: &[f64], samples_per_level: usize) -> Vec<f64> {
    assert!(samples_per_level > 0, "samples_per_level must be nonzero");
    let mut out = Vec::with_capacity(levels.len() * samples_per_level);
    for &l in levels {
        out.extend(std::iter::repeat(l).take(samples_per_level));
    }
    out
}

/// Applies an amplitude profile to a signal in place (ASK modulation).
///
/// If the profile is shorter than the signal the remainder is left at the
/// last profile value; an empty profile leaves the signal untouched.
pub fn apply_profile(signal: &mut [Complex64], profile: &[f64]) {
    if profile.is_empty() {
        return;
    }
    for (i, s) in signal.iter_mut().enumerate() {
        let a = profile
            .get(i)
            .copied()
            .unwrap_or(*profile.last().expect("non-empty"));
        *s *= a;
    }
}

/// On-off keying: generates a baseband waveform (constant carrier at DC)
/// keyed by `bits`, `samples_per_bit` samples each, with amplitude
/// `depth`-deep modulation: bit 1 → amplitude 1.0, bit 0 → `1.0 - depth`.
///
/// `depth = 1.0` is full OOK; Gen2 readers typically use 0.8–1.0 ("modulation
/// depth" in the paper's §3).
pub fn ook_waveform(
    bits: &[bool],
    samples_per_bit: usize,
    depth: f64,
    sample_rate: f64,
) -> IqBuffer {
    assert!((0.0..=1.0).contains(&depth), "depth must be in [0,1]");
    let levels: Vec<f64> = bits
        .iter()
        .map(|&b| if b { 1.0 } else { 1.0 - depth })
        .collect();
    let profile = levels_to_profile(&levels, samples_per_bit);
    let mut buf = IqBuffer::new(vec![Complex64::ONE; profile.len()], sample_rate);
    apply_profile(buf.samples_mut(), &profile);
    buf
}

/// Measures the modulation depth `(A_hi − A_lo)/A_hi` of an envelope by
/// comparing its upper and lower deciles.
///
/// Robust to noise compared to straight min/max. Returns 0 for signals
/// shorter than 10 samples.
pub fn measured_depth(envelope: &[f64]) -> f64 {
    if envelope.len() < 10 {
        return 0.0;
    }
    let mut sorted = envelope.to_vec();
    sorted.sort_by(f64::total_cmp);
    let lo = sorted[sorted.len() / 10];
    let hi = sorted[sorted.len() - 1 - sorted.len() / 10];
    if hi <= 0.0 {
        0.0
    } else {
        (hi - lo) / hi
    }
}

/// Hard-decision demodulation of an OOK envelope back into bits.
///
/// Slices each `samples_per_bit` window by comparing its mean against the
/// midpoint of the envelope's extremes. For clean waveforms this is exact
/// regardless of the bit mix; noisy links should pre-smooth or use
/// [`crate::envelope::slice_hysteresis`].
pub fn ook_demod(envelope: &[f64], samples_per_bit: usize) -> Vec<bool> {
    assert!(samples_per_bit > 0);
    if envelope.len() < samples_per_bit {
        return Vec::new();
    }
    let lo = envelope.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = envelope.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let threshold = (lo + hi) / 2.0;
    envelope
        .chunks_exact(samples_per_bit)
        .map(|w| w.iter().sum::<f64>() / w.len() as f64 > threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_expansion() {
        let p = levels_to_profile(&[1.0, 0.0], 3);
        assert_eq!(p, vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn apply_profile_holds_last_value() {
        let mut sig = vec![Complex64::ONE; 4];
        apply_profile(&mut sig, &[0.5, 0.25]);
        assert_eq!(sig[0].re, 0.5);
        assert_eq!(sig[1].re, 0.25);
        assert_eq!(sig[2].re, 0.25);
        assert_eq!(sig[3].re, 0.25);
    }

    #[test]
    fn apply_empty_profile_is_noop() {
        let mut sig = vec![Complex64::ONE; 2];
        apply_profile(&mut sig, &[]);
        assert_eq!(sig[0], Complex64::ONE);
    }

    #[test]
    fn ook_full_depth() {
        let buf = ook_waveform(&[true, false, true], 4, 1.0, 100.0);
        assert_eq!(buf.len(), 12);
        assert!((buf.samples()[0].norm() - 1.0).abs() < 1e-12);
        assert!(buf.samples()[5].norm() < 1e-12);
    }

    #[test]
    fn ook_partial_depth() {
        let buf = ook_waveform(&[false], 2, 0.3, 100.0);
        assert!((buf.samples()[0].norm() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn ook_roundtrip() {
        let bits = vec![true, false, true, true, false, false, true, false];
        let buf = ook_waveform(&bits, 8, 0.9, 1000.0);
        let env = buf.envelope();
        let decoded = ook_demod(&env, 8);
        assert_eq!(decoded, bits);
    }

    #[test]
    fn depth_measurement() {
        let bits: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let buf = ook_waveform(&bits, 10, 0.8, 1000.0);
        let d = measured_depth(&buf.envelope());
        assert!((d - 0.8).abs() < 0.05, "depth {d}");
    }

    #[test]
    fn depth_of_flat_signal_is_zero() {
        let env = vec![1.0; 100];
        assert!(measured_depth(&env) < 1e-12);
        assert_eq!(measured_depth(&[1.0; 5]), 0.0);
    }

    #[test]
    fn demod_short_input_is_empty() {
        assert!(ook_demod(&[1.0, 0.0], 4).is_empty());
    }
}
