//! Window functions for spectral analysis and FIR design.

use std::f64::consts::PI;

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// All-ones window (no tapering).
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window (three-term).
    Blackman,
}

impl Window {
    /// Evaluates the window at position `n` of an `len`-point window.
    ///
    /// Uses the symmetric convention: `w(0) == w(len-1)`.
    ///
    /// # Panics
    /// Panics if `n >= len`.
    pub fn value(self, n: usize, len: usize) -> f64 {
        assert!(n < len, "window index out of range");
        if len == 1 {
            return 1.0;
        }
        let x = n as f64 / (len - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos(),
        }
    }

    /// Generates the full window as a vector.
    pub fn generate(self, len: usize) -> Vec<f64> {
        (0..len).map(|n| self.value(n, len)).collect()
    }

    /// Applies the window in place to real data.
    ///
    /// # Panics
    /// Panics if `data.len()` is zero.
    pub fn apply(self, data: &mut [f64]) {
        let len = data.len();
        assert!(len > 0, "cannot window empty data");
        for (n, d) in data.iter_mut().enumerate() {
            *d *= self.value(n, len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_ones() {
        assert_eq!(Window::Rectangular.generate(5), vec![1.0; 5]);
    }

    #[test]
    fn hann_endpoints_zero_middle_one() {
        let w = Window::Hann.generate(9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = Window::Hamming.generate(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
        assert!((w[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blackman_nonnegative_and_peaked() {
        let w = Window::Blackman.generate(33);
        for &v in &w {
            assert!(v >= -1e-12);
        }
        assert!((w[16] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for win in [Window::Hann, Window::Hamming, Window::Blackman] {
            let w = win.generate(16);
            for i in 0..8 {
                assert!(
                    (w[i] - w[15 - i]).abs() < 1e-12,
                    "{win:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn single_point_window_is_one() {
        for win in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            assert_eq!(win.value(0, 1), 1.0);
        }
    }

    #[test]
    fn apply_scales_in_place() {
        let mut data = vec![2.0; 9];
        Window::Hann.apply(&mut data);
        assert!(data[0].abs() < 1e-12);
        assert!((data[4] - 2.0).abs() < 1e-12);
    }
}
