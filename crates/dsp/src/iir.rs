//! Biquad IIR sections (RBJ audio-EQ-cookbook designs).
//!
//! Cheap recursive filters for the receiver chains: DC blockers ahead of
//! the correlator, narrow notches on interfering tones, and resonators
//! that pull the backscatter subcarrier out of the noise.

use crate::complex::Complex64;
use std::f64::consts::TAU;

/// A direct-form-I biquad over complex samples:
/// `y[n] = (b0·x[n] + b1·x[n-1] + b2·x[n-2] − a1·y[n-1] − a2·y[n-2]) / a0`.
#[derive(Debug, Clone)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    x1: Complex64,
    x2: Complex64,
    y1: Complex64,
    y2: Complex64,
}

impl Biquad {
    /// Creates a biquad from normalized coefficients (a0 already divided
    /// out).
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Biquad {
            b0,
            b1,
            b2,
            a1,
            a2,
            x1: Complex64::ZERO,
            x2: Complex64::ZERO,
            y1: Complex64::ZERO,
            y2: Complex64::ZERO,
        }
    }

    /// RBJ low-pass: cutoff `f0` Hz, quality `q`, at `fs` S/s.
    ///
    /// # Panics
    /// Panics unless `0 < f0 < fs/2` and `q > 0`.
    pub fn lowpass(f0: f64, q: f64, fs: f64) -> Self {
        assert!(f0 > 0.0 && f0 < fs / 2.0 && q > 0.0, "invalid design");
        let w0 = TAU * f0 / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Self::from_coefficients(
            (1.0 - cw) / 2.0 / a0,
            (1.0 - cw) / a0,
            (1.0 - cw) / 2.0 / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// RBJ high-pass.
    ///
    /// # Panics
    /// Panics unless `0 < f0 < fs/2` and `q > 0`.
    pub fn highpass(f0: f64, q: f64, fs: f64) -> Self {
        assert!(f0 > 0.0 && f0 < fs / 2.0 && q > 0.0, "invalid design");
        let w0 = TAU * f0 / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Self::from_coefficients(
            (1.0 + cw) / 2.0 / a0,
            -(1.0 + cw) / a0,
            (1.0 + cw) / 2.0 / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// RBJ notch at `f0` Hz with quality `q` — kills a single interfering
    /// tone (e.g. the residual reader leak at DC offset).
    ///
    /// # Panics
    /// Panics unless `0 < f0 < fs/2` and `q > 0`.
    pub fn notch(f0: f64, q: f64, fs: f64) -> Self {
        assert!(f0 > 0.0 && f0 < fs / 2.0 && q > 0.0, "invalid design");
        let w0 = TAU * f0 / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Self::from_coefficients(
            1.0 / a0,
            -2.0 * cw / a0,
            1.0 / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// RBJ band-pass (constant 0 dB peak) — a resonator on the
    /// backscatter link frequency.
    ///
    /// # Panics
    /// Panics unless `0 < f0 < fs/2` and `q > 0`.
    pub fn bandpass(f0: f64, q: f64, fs: f64) -> Self {
        assert!(f0 > 0.0 && f0 < fs / 2.0 && q > 0.0, "invalid design");
        let w0 = TAU * f0 / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Self::from_coefficients(
            alpha / a0,
            0.0,
            -alpha / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// Processes one sample.
    pub fn process(&mut self, x: Complex64) -> Complex64 {
        let y = x * self.b0 + self.x1 * self.b1 + self.x2 * self.b2
            - self.y1 * self.a1
            - self.y2 * self.a2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Processes a block, returning the outputs.
    pub fn process_block(&mut self, input: &[Complex64]) -> Vec<Complex64> {
        input.iter().map(|&x| self.process(x)).collect()
    }

    /// Clears the delay state.
    pub fn reset(&mut self) {
        self.x1 = Complex64::ZERO;
        self.x2 = Complex64::ZERO;
        self.y1 = Complex64::ZERO;
        self.y2 = Complex64::ZERO;
    }

    /// Magnitude response at frequency `f` (Hz) for sample rate `fs`.
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        let z1 = Complex64::cis(-TAU * f / fs);
        let z2 = z1 * z1;
        let num = Complex64::from_real(self.b0) + z1 * self.b1 + z2 * self.b2;
        let den = Complex64::ONE + z1 * self.a1 + z2 * self.a2;
        (num / den).norm()
    }

    /// Whether the poles are inside the unit circle (stable filter).
    pub fn is_stable(&self) -> bool {
        // Poles of z² + a1·z + a2: stable iff |a2| < 1 and |a1| < 1 + a2.
        self.a2.abs() < 1.0 && self.a1.abs() < 1.0 + self.a2
    }
}

/// A DC blocker: `y[n] = x[n] − x[n-1] + ρ·y[n-1]` — first-order, removes
/// the reader's self-leak before correlation.
#[derive(Debug, Clone)]
pub struct DcBlocker {
    rho: f64,
    x1: Complex64,
    y1: Complex64,
}

impl DcBlocker {
    /// Creates a blocker; `rho` close to 1 gives a narrow notch at DC.
    ///
    /// # Panics
    /// Panics unless `0 < rho < 1`.
    pub fn new(rho: f64) -> Self {
        assert!(rho > 0.0 && rho < 1.0, "rho must be in (0,1)");
        DcBlocker {
            rho,
            x1: Complex64::ZERO,
            y1: Complex64::ZERO,
        }
    }

    /// Processes one sample.
    pub fn process(&mut self, x: Complex64) -> Complex64 {
        let y = x - self.x1 + self.y1 * self.rho;
        self.x1 = x;
        self.y1 = y;
        y
    }

    /// Processes a block.
    pub fn process_block(&mut self, input: &[Complex64]) -> Vec<Complex64> {
        input.iter().map(|&x| self.process(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::Oscillator;

    fn steady_amplitude(filter: &mut Biquad, freq: f64, fs: f64) -> f64 {
        let mut osc = Oscillator::new(freq, fs);
        let mut last: f64 = 0.0;
        for k in 0..4000 {
            let y = filter.process(osc.next_sample());
            if k > 3000 {
                last = last.max(y.norm());
            }
        }
        last
    }

    #[test]
    fn lowpass_passes_low_rejects_high() {
        let fs = 10_000.0;
        let mut f = Biquad::lowpass(500.0, std::f64::consts::FRAC_1_SQRT_2, fs);
        assert!(f.is_stable());
        let low = steady_amplitude(&mut f, 50.0, fs);
        f.reset();
        let high = steady_amplitude(&mut f, 4000.0, fs);
        assert!((low - 1.0).abs() < 0.02, "low {low}");
        assert!(high < 0.02, "high {high}");
    }

    #[test]
    fn highpass_mirrors_lowpass() {
        let fs = 10_000.0;
        let mut f = Biquad::highpass(500.0, std::f64::consts::FRAC_1_SQRT_2, fs);
        let low = steady_amplitude(&mut f, 20.0, fs);
        f.reset();
        let high = steady_amplitude(&mut f, 4000.0, fs);
        assert!(low < 0.02, "low {low}");
        assert!((high - 1.0).abs() < 0.05, "high {high}");
    }

    #[test]
    fn notch_kills_only_the_tone() {
        let fs = 10_000.0;
        let mut f = Biquad::notch(1000.0, 10.0, fs);
        let at_notch = steady_amplitude(&mut f, 1000.0, fs);
        f.reset();
        let nearby = steady_amplitude(&mut f, 1500.0, fs);
        assert!(at_notch < 0.05, "notch leak {at_notch}");
        assert!(nearby > 0.9, "collateral {nearby}");
    }

    #[test]
    fn bandpass_selects_subcarrier() {
        let fs = 400e3;
        let blf = 60e3;
        let mut f = Biquad::bandpass(blf, 5.0, fs);
        let inband = steady_amplitude(&mut f, blf, fs);
        f.reset();
        let out = steady_amplitude(&mut f, 5e3, fs);
        assert!(inband > 0.9, "inband {inband}");
        assert!(out < 0.1, "out-of-band {out}");
    }

    #[test]
    fn magnitude_response_matches_measurement() {
        let fs = 10_000.0;
        let f = Biquad::lowpass(500.0, std::f64::consts::FRAC_1_SQRT_2, fs);
        let analytic = f.magnitude_at(500.0, fs);
        // Butterworth Q: −3 dB at cutoff.
        assert!((analytic - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn designs_are_stable() {
        let fs = 48_000.0;
        for f0 in [10.0, 100.0, 1000.0, 20_000.0] {
            for q in [0.3, 0.707, 5.0, 30.0] {
                assert!(Biquad::lowpass(f0, q, fs).is_stable(), "lp {f0}/{q}");
                assert!(Biquad::notch(f0, q, fs).is_stable(), "notch {f0}/{q}");
                assert!(Biquad::bandpass(f0, q, fs).is_stable(), "bp {f0}/{q}");
            }
        }
    }

    #[test]
    fn dc_blocker_removes_offset_keeps_signal() {
        let fs = 10_000.0;
        let mut blocker = DcBlocker::new(0.995);
        let mut osc = Oscillator::new(1000.0, fs);
        let mut out_dc = Complex64::ZERO;
        let mut out_amp: f64 = 0.0;
        let n = 8000;
        for k in 0..n {
            let x = osc.next_sample() + Complex64::from_real(5.0);
            let y = blocker.process(x);
            if k > n / 2 {
                out_dc += y;
                out_amp = out_amp.max(y.norm());
            }
        }
        let mean = out_dc / (n / 2) as f64;
        assert!(mean.norm() < 0.05, "residual DC {}", mean.norm());
        assert!((out_amp - 1.0).abs() < 0.1, "signal amplitude {out_amp}");
    }

    #[test]
    #[should_panic(expected = "invalid design")]
    fn rejects_cutoff_above_nyquist() {
        Biquad::lowpass(6000.0, 1.0, 10_000.0);
    }
}
