//! Sample-rate conversion.
//!
//! The simulator runs different parts of the system at different rates —
//! protocol waveforms at ~1 MS/s, envelope-level harvester models far
//! slower — and occasionally needs to align them. Linear interpolation is
//! sufficient for the smooth envelope-domain signals exchanged here.

use crate::buffer::IqBuffer;
use crate::complex::Complex64;

/// Upsamples by an integer factor with zero-order hold (sample repetition).
///
/// # Panics
/// Panics if `factor` is zero.
pub fn upsample_hold(input: &[Complex64], factor: usize) -> Vec<Complex64> {
    assert!(factor > 0, "factor must be nonzero");
    let mut out = Vec::with_capacity(input.len() * factor);
    for &s in input {
        out.extend(std::iter::repeat(s).take(factor));
    }
    out
}

/// Downsamples by an integer factor, keeping every `factor`-th sample.
///
/// The caller is responsible for anti-alias filtering first (see
/// [`crate::filter::decimate`] for a filtered variant).
///
/// # Panics
/// Panics if `factor` is zero.
pub fn downsample(input: &[Complex64], factor: usize) -> Vec<Complex64> {
    assert!(factor > 0, "factor must be nonzero");
    input.iter().copied().step_by(factor).collect()
}

/// Resamples a buffer to a new rate by linear interpolation.
///
/// Output length is `ceil(len · new_rate / old_rate)`. The interpolation
/// clamps at the final sample (no extrapolation).
pub fn resample_linear(input: &IqBuffer, new_rate: f64) -> IqBuffer {
    assert!(new_rate > 0.0, "new rate must be positive");
    let old_rate = input.sample_rate();
    let samples = input.samples();
    if samples.is_empty() {
        return IqBuffer::zeros(0, new_rate);
    }
    let out_len = ((samples.len() as f64) * new_rate / old_rate).ceil() as usize;
    let ratio = old_rate / new_rate;
    let data = (0..out_len)
        .map(|n| {
            let x = n as f64 * ratio;
            let i = x.floor() as usize;
            if i + 1 >= samples.len() {
                samples[samples.len() - 1]
            } else {
                let frac = x - i as f64;
                samples[i] * (1.0 - frac) + samples[i + 1] * frac
            }
        })
        .collect();
    IqBuffer::new(data, new_rate)
}

/// Linear interpolation of a real-valued sequence at fractional index `x`
/// (clamped to the valid range).
///
/// # Panics
/// Panics on empty input.
pub fn interp_at(data: &[f64], x: f64) -> f64 {
    assert!(!data.is_empty(), "cannot interpolate empty data");
    if x <= 0.0 {
        return data[0];
    }
    let max = (data.len() - 1) as f64;
    if x >= max {
        return data[data.len() - 1];
    }
    let i = x.floor() as usize;
    let frac = x - i as f64;
    data[i] * (1.0 - frac) + data[i + 1] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex64 {
        Complex64::from_real(re)
    }

    #[test]
    fn hold_repeats_samples() {
        let out = upsample_hold(&[c(1.0), c(2.0)], 3);
        let re: Vec<f64> = out.iter().map(|s| s.re).collect();
        assert_eq!(re, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn downsample_strides() {
        let x: Vec<Complex64> = (0..10).map(|i| c(i as f64)).collect();
        let y = downsample(&x, 3);
        let re: Vec<f64> = y.iter().map(|s| s.re).collect();
        assert_eq!(re, vec![0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn up_then_down_identity() {
        let x: Vec<Complex64> = (0..7).map(|i| c(i as f64)).collect();
        let y = downsample(&upsample_hold(&x, 4), 4);
        assert_eq!(x, y);
    }

    #[test]
    fn linear_resample_preserves_ramp() {
        // A linear ramp must survive linear interpolation exactly.
        let input = IqBuffer::from_fn(10, 10.0, |t| c(t));
        let out = resample_linear(&input, 20.0);
        assert_eq!(out.sample_rate(), 20.0);
        for (n, s) in out.samples().iter().enumerate().take(18) {
            let expected = n as f64 / 20.0;
            assert!((s.re - expected).abs() < 1e-12, "sample {n}");
        }
    }

    #[test]
    fn linear_resample_downrate() {
        let input = IqBuffer::from_fn(100, 100.0, |t| c(t));
        let out = resample_linear(&input, 25.0);
        assert_eq!(out.len(), 25);
        assert!((out.samples()[10].re - 0.4).abs() < 1e-12);
    }

    #[test]
    fn resample_empty() {
        let input = IqBuffer::zeros(0, 10.0);
        let out = resample_linear(&input, 5.0);
        assert!(out.is_empty());
    }

    #[test]
    fn interp_clamps_at_ends() {
        let d = [1.0, 2.0, 4.0];
        assert_eq!(interp_at(&d, -1.0), 1.0);
        assert_eq!(interp_at(&d, 5.0), 4.0);
        assert_eq!(interp_at(&d, 0.5), 1.5);
        assert_eq!(interp_at(&d, 1.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn interp_rejects_empty() {
        interp_at(&[], 0.0);
    }
}
