//! Noise sources and SNR utilities.
//!
//! All stochastic behaviour in the workspace flows through caller-provided
//! RNGs so experiments are reproducible from a seed (DESIGN.md §5).

use crate::complex::Complex64;
use ivn_runtime::rng::Rng;
use std::f64::consts::TAU;

/// Complex additive white Gaussian noise with a configured average power.
///
/// Power is split evenly between I and Q, so each component has variance
/// `power/2`.
#[derive(Debug, Clone)]
pub struct AwgnSource {
    sigma: f64,
}

impl AwgnSource {
    /// Creates a source with total complex noise power `power` (linear).
    ///
    /// # Panics
    /// Panics if `power` is negative.
    pub fn new(power: f64) -> Self {
        assert!(power >= 0.0, "noise power must be non-negative");
        AwgnSource {
            sigma: (power / 2.0).sqrt(),
        }
    }

    /// Creates a source from a noise power in dBm.
    pub fn from_dbm(dbm: f64) -> Self {
        Self::new(crate::units::dbm_to_watts(dbm))
    }

    /// Configured total noise power.
    pub fn power(&self) -> f64 {
        2.0 * self.sigma * self.sigma
    }

    /// Draws one complex noise sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Complex64 {
        if self.sigma == 0.0 {
            return Complex64::ZERO;
        }
        // Box–Muller: two uniforms → two independent normals.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        Complex64::new(
            self.sigma * r * (TAU * u2).cos(),
            self.sigma * r * (TAU * u2).sin(),
        )
    }

    /// Adds noise to a block in place.
    pub fn corrupt<R: Rng + ?Sized>(&mut self, rng: &mut R, signal: &mut [Complex64]) {
        for s in signal {
            *s += self.sample(rng);
        }
    }
}

/// A Wiener-process phase-noise model: phase performs a random walk with
/// per-sample standard deviation `step_std` radians.
///
/// Models the residual phase jitter of a PLL locked to a shared reference
/// (the Octoclock in the paper's prototype).
#[derive(Debug, Clone)]
pub struct PhaseNoise {
    step_std: f64,
    phase: f64,
}

impl PhaseNoise {
    /// Creates a phase-noise process with the given per-sample drift.
    ///
    /// # Panics
    /// Panics if `step_std` is negative.
    pub fn new(step_std: f64) -> Self {
        assert!(step_std >= 0.0, "phase noise std must be non-negative");
        PhaseNoise {
            step_std,
            phase: 0.0,
        }
    }

    /// Current accumulated phase error (radians).
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Advances the walk and returns the rotation to apply, `e^{jφ}`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Complex64 {
        if self.step_std > 0.0 {
            // Box–Muller for one normal sample.
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let n = (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos();
            self.phase += self.step_std * n;
        }
        Complex64::cis(self.phase)
    }

    /// Applies the walk to a block in place.
    pub fn corrupt<R: Rng + ?Sized>(&mut self, rng: &mut R, signal: &mut [Complex64]) {
        for s in signal {
            *s *= self.sample(rng);
        }
    }
}

/// Measured SNR (dB) of `signal + noise` given the clean `signal`.
///
/// Returns `f64::INFINITY` when the residual is exactly zero.
pub fn measured_snr_db(clean: &[Complex64], noisy: &[Complex64]) -> f64 {
    assert_eq!(clean.len(), noisy.len(), "length mismatch");
    let sig: f64 = clean.iter().map(|s| s.norm_sqr()).sum();
    let err: f64 = clean
        .iter()
        .zip(noisy)
        .map(|(c, n)| (*n - *c).norm_sqr())
        .sum();
    if err == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / err).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::rng::StdRng;

    #[test]
    fn awgn_power_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut src = AwgnSource::new(2.0);
        let n = 200_000;
        let measured: f64 = (0..n).map(|_| src.sample(&mut rng).norm_sqr()).sum::<f64>() / n as f64;
        assert!((measured - 2.0).abs() < 0.05, "measured power {measured}");
        assert!((src.power() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn awgn_zero_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut src = AwgnSource::new(1.0);
        let n = 100_000;
        let mean: Complex64 = (0..n).map(|_| src.sample(&mut rng)).sum::<Complex64>() / n as f64;
        assert!(mean.norm() < 0.02, "mean {}", mean.norm());
    }

    #[test]
    fn awgn_zero_power_is_silent() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut src = AwgnSource::new(0.0);
        assert_eq!(src.sample(&mut rng), Complex64::ZERO);
    }

    #[test]
    fn awgn_deterministic_given_seed() {
        let mut a = AwgnSource::new(1.0);
        let mut b = AwgnSource::new(1.0);
        let mut ra = StdRng::seed_from_u64(42);
        let mut rb = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
        }
    }

    #[test]
    fn awgn_from_dbm() {
        let src = AwgnSource::from_dbm(0.0);
        assert!((src.power() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn phase_noise_unit_magnitude_random_walk() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut pn = PhaseNoise::new(0.01);
        let mut last = 0.0;
        for _ in 0..1000 {
            let s = pn.sample(&mut rng);
            assert!((s.norm() - 1.0).abs() < 1e-12);
            last = pn.phase();
        }
        // After 1000 steps of σ=0.01 the walk should have moved but stayed
        // within a few standard deviations of √1000·0.01 ≈ 0.32.
        assert!(last.abs() > 1e-4);
        assert!(last.abs() < 2.0);
    }

    #[test]
    fn phase_noise_zero_std_is_identity() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut pn = PhaseNoise::new(0.0);
        for _ in 0..10 {
            assert_eq!(pn.sample(&mut rng), Complex64::ONE);
        }
    }

    #[test]
    fn snr_measurement() {
        let clean = vec![Complex64::ONE; 1000];
        let mut rng = StdRng::seed_from_u64(7);
        let mut src = AwgnSource::new(0.01); // SNR should be ~20 dB
        let mut noisy = clean.clone();
        src.corrupt(&mut rng, &mut noisy);
        let snr = measured_snr_db(&clean, &noisy);
        assert!((snr - 20.0).abs() < 1.0, "snr {snr}");
        assert_eq!(measured_snr_db(&clean, &clean), f64::INFINITY);
    }
}
