//! Envelope detection and peak analysis.
//!
//! Battery-free tags decode reader commands by watching the *envelope* of
//! the incident RF (paper §3.6 "query amplitude flatness"), and the entire
//! CIB idea revolves around the time-varying envelope of a multi-tone sum.
//! This module supplies envelope extraction, smoothing, peak search, and
//! the flatness metric `(A_max − A_min)/A_max` from the paper's Eq. 7.

use crate::complex::Complex64;
use crate::filter::SinglePole;

/// Extracts the instantaneous magnitude envelope of a complex signal.
pub fn magnitude(signal: &[Complex64]) -> Vec<f64> {
    signal.iter().map(|s| s.norm()).collect()
}

/// Extracts the envelope and smooths it with a single-pole RC model of
/// time constant `tau_s`.
pub fn smoothed(signal: &[Complex64], sample_rate: f64, tau_s: f64) -> Vec<f64> {
    let mut sp = SinglePole::from_time_constant(tau_s, sample_rate);
    signal.iter().map(|s| sp.process(s.norm())).collect()
}

/// Global maximum of a real sequence with its index; `None` if empty.
pub fn peak(env: &[f64]) -> Option<(usize, f64)> {
    env.iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Three-point parabolic peak interpolation.
///
/// Given consecutive samples `y(-1)`, `y(0)`, `y(+1)` with `y(0)` the
/// discrete maximum, fits the unique parabola through them and returns
/// `(dx, y_vertex)` — the vertex offset in sample units (clamped to
/// `[-0.5, 0.5]`) and its height. Degenerate (flat or non-concave) input
/// returns `(0.0, y0)`.
///
/// This is the classic refinement step for grid peak searches: one
/// evaluation of the true function at `x0 + dx` recovers almost all the
/// accuracy of an iterative search at a fraction of the cost.
pub fn parabolic_peak(ym: f64, y0: f64, yp: f64) -> (f64, f64) {
    let denom = ym - 2.0 * y0 + yp;
    if !(denom < 0.0) {
        // Flat, non-concave, or NaN: the grid point is the best estimate.
        return (0.0, y0);
    }
    let dx = (0.5 * (ym - yp) / denom).clamp(-0.5, 0.5);
    (dx, y0 - 0.25 * (ym - yp) * dx)
}

/// Global minimum of a real sequence with its index; `None` if empty.
pub fn trough(env: &[f64]) -> Option<(usize, f64)> {
    env.iter()
        .copied()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

/// The paper's percentage-fluctuation metric (Eq. 7):
/// `(A_max − A_min) / A_max` over the given window.
///
/// Returns 0 for empty or all-zero input.
pub fn fluctuation(env: &[f64]) -> f64 {
    let Some((_, max)) = peak(env) else {
        return 0.0;
    };
    if max <= 0.0 {
        return 0.0;
    }
    let (_, min) = trough(env).expect("non-empty by construction");
    (max - min) / max
}

/// Detects local maxima above `threshold`, separated by at least
/// `min_distance` samples. Returns indices in ascending order.
///
/// Used by the experiment harness to find per-period CIB envelope peaks.
pub fn local_peaks(env: &[f64], threshold: f64, min_distance: usize) -> Vec<usize> {
    let mut peaks = Vec::new();
    let n = env.len();
    let mut i = 1;
    while i + 1 < n {
        if env[i] >= threshold && env[i] >= env[i - 1] && env[i] > env[i + 1] {
            if let Some(&last) = peaks.last() {
                if i - last < min_distance.max(1) {
                    // Keep the taller of the two competing peaks.
                    if env[i] > env[last] {
                        *peaks.last_mut().expect("non-empty") = i;
                    }
                    i += 1;
                    continue;
                }
            }
            peaks.push(i);
        }
        i += 1;
    }
    peaks
}

/// Fraction of samples whose envelope exceeds `threshold` — a discrete
/// stand-in for the diode conduction duty factor at envelope resolution.
pub fn fraction_above(env: &[f64], threshold: f64) -> f64 {
    if env.is_empty() {
        return 0.0;
    }
    env.iter().filter(|&&v| v > threshold).count() as f64 / env.len() as f64
}

/// Simple hysteresis comparator turning an envelope into bits: output goes
/// high when the envelope exceeds `high`, low when it drops below `low`.
///
/// This models the tag's ASK demodulator slicing the PIE waveform. The
/// initial state is `false` (low).
pub fn slice_hysteresis(env: &[f64], low: f64, high: f64) -> Vec<bool> {
    assert!(low <= high, "hysteresis thresholds inverted");
    let mut state = false;
    env.iter()
        .map(|&v| {
            if state && v < low {
                state = false;
            } else if !state && v > high {
                state = true;
            }
            state
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::MultiTone;

    #[test]
    fn magnitude_basic() {
        let sig = vec![Complex64::new(3.0, 4.0), Complex64::ZERO];
        assert_eq!(magnitude(&sig), vec![5.0, 0.0]);
    }

    #[test]
    fn peak_and_trough() {
        let env = [0.1, 0.9, 0.3, 0.05, 0.4];
        assert_eq!(peak(&env), Some((1, 0.9)));
        assert_eq!(trough(&env), Some((3, 0.05)));
        assert_eq!(peak(&[] as &[f64]), None);
    }

    #[test]
    fn parabolic_peak_recovers_vertex() {
        // Samples of y = 3 - 2(x - 0.2)² at x = -1, 0, 1.
        let f = |x: f64| 3.0 - 2.0 * (x - 0.2) * (x - 0.2);
        let (dx, y) = parabolic_peak(f(-1.0), f(0.0), f(1.0));
        assert!((dx - 0.2).abs() < 1e-12, "dx {dx}");
        assert!((y - 3.0).abs() < 1e-12, "y {y}");
        // Degenerate inputs fall back to the grid point.
        assert_eq!(parabolic_peak(1.0, 1.0, 1.0), (0.0, 1.0));
        assert_eq!(parabolic_peak(2.0, 1.0, 2.0), (0.0, 1.0));
        // The offset is clamped to the bracketing cell.
        let (dx, _) = parabolic_peak(0.999999, 1.0, 0.0);
        assert!(dx >= -0.5 && dx <= 0.5);
    }

    #[test]
    fn fluctuation_metric() {
        let env = [1.0, 0.5, 1.0];
        assert!((fluctuation(&env) - 0.5).abs() < 1e-12);
        assert_eq!(fluctuation(&[]), 0.0);
        assert_eq!(fluctuation(&[0.0, 0.0]), 0.0);
        // Perfectly flat envelope → zero fluctuation.
        assert_eq!(fluctuation(&[2.0, 2.0, 2.0]), 0.0);
    }

    #[test]
    fn multitone_envelope_fluctuates_single_tone_does_not() {
        let mt = MultiTone::from_freqs_phases(&[0.0, 7.0], &[0.0, 1.0]);
        let env: Vec<f64> = (0..1000).map(|k| mt.envelope(k as f64 / 1000.0)).collect();
        assert!(fluctuation(&env) > 0.5);

        let single = MultiTone::from_freqs_phases(&[5.0], &[0.3]);
        let env1: Vec<f64> = (0..1000)
            .map(|k| single.envelope(k as f64 / 1000.0))
            .collect();
        assert!(fluctuation(&env1) < 1e-9);
    }

    #[test]
    fn local_peaks_respects_distance_and_threshold() {
        //                 0    1    2    3    4    5    6    7    8
        let env = [0.0, 1.0, 0.0, 0.2, 0.0, 2.0, 0.0, 0.9, 0.0];
        let p = local_peaks(&env, 0.5, 1);
        assert_eq!(p, vec![1, 5, 7]);
        // Larger min-distance keeps the taller of close peaks.
        let p2 = local_peaks(&env, 0.5, 4);
        assert_eq!(p2, vec![1, 5]);
        // Threshold excludes the small bump.
        let p3 = local_peaks(&env, 1.5, 1);
        assert_eq!(p3, vec![5]);
    }

    #[test]
    fn fraction_above_counts() {
        let env = [0.0, 1.0, 2.0, 3.0];
        assert!((fraction_above(&env, 1.5) - 0.5).abs() < 1e-12);
        assert_eq!(fraction_above(&[], 1.0), 0.0);
    }

    #[test]
    fn hysteresis_slicer() {
        let env = [0.0, 0.2, 0.8, 0.6, 0.4, 0.1, 0.9];
        let bits = slice_hysteresis(&env, 0.3, 0.7);
        assert_eq!(bits, vec![false, false, true, true, true, false, true]);
    }

    #[test]
    fn smoothing_reduces_ripple() {
        let mt = MultiTone::from_freqs_phases(&[0.0, 50.0], &[0.0, 0.0]);
        let sig: Vec<Complex64> = (0..4000).map(|k| mt.sample(k as f64 / 4000.0)).collect();
        let raw = magnitude(&sig);
        let smooth = smoothed(&sig, 4000.0, 0.05);
        assert!(fluctuation(&smooth[2000..]) < fluctuation(&raw[2000..]));
    }
}
