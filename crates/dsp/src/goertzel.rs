//! Goertzel single-bin DFT.
//!
//! The reader knows exactly where to look for the backscatter subcarrier
//! (BLF = DR/TRcal), so evaluating one spectral bin with the Goertzel
//! recurrence is far cheaper than a full FFT — the standard trick in RFID
//! reader firmware.

use crate::complex::Complex64;
use std::f64::consts::TAU;

/// Evaluates the DFT of `signal` at the single frequency `freq_hz`
/// (sample rate `fs`), returning the complex bin value with the same
/// scaling as a direct DFT sum.
pub fn goertzel(signal: &[Complex64], freq_hz: f64, fs: f64) -> Complex64 {
    assert!(fs > 0.0, "sample rate must be positive");
    // Complex-input Goertzel: run the real recurrence on I and Q
    // separately.
    let w = TAU * freq_hz / fs;
    let coeff = 2.0 * w.cos();
    let (mut s1_re, mut s2_re, mut s1_im, mut s2_im) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for x in signal {
        let s0_re = x.re + coeff * s1_re - s2_re;
        let s0_im = x.im + coeff * s1_im - s2_im;
        s2_re = s1_re;
        s1_re = s0_re;
        s2_im = s1_im;
        s1_im = s0_im;
    }
    // Final phase-correction step:
    // X(f) = (s[N−1] − e^{−jw}·s[N−2]) · e^{−jw(N−1)}.
    let s1 = Complex64::new(s1_re, s1_im);
    let s2 = Complex64::new(s2_re, s2_im);
    let n = signal.len() as f64;
    (s1 - s2 * Complex64::cis(-w)) * Complex64::cis(-w * (n - 1.0))
}

/// Power at a single frequency, `|X(f)|²`.
pub fn goertzel_power(signal: &[Complex64], freq_hz: f64, fs: f64) -> f64 {
    goertzel(signal, freq_hz, fs).norm_sqr()
}

/// Detects whether a tone at `freq_hz` is present: compares the bin power
/// against the mean power of `probe_bins` nearby bins, returning the
/// ratio (≥ `threshold` ⇒ present, by convention of the caller).
pub fn tone_to_floor_ratio(
    signal: &[Complex64],
    freq_hz: f64,
    fs: f64,
    probe_spacing_hz: f64,
    probe_bins: usize,
) -> f64 {
    assert!(probe_bins > 0 && probe_spacing_hz > 0.0);
    let target = goertzel_power(signal, freq_hz, fs);
    let mut floor = 0.0;
    for k in 1..=probe_bins {
        floor += goertzel_power(signal, freq_hz + k as f64 * probe_spacing_hz, fs);
        floor += goertzel_power(signal, freq_hz - k as f64 * probe_spacing_hz, fs);
    }
    let floor = (floor / (2 * probe_bins) as f64).max(f64::MIN_POSITIVE);
    target / floor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft;
    use crate::noise::AwgnSource;
    use crate::osc::Oscillator;
    use ivn_runtime::rng::StdRng;

    #[test]
    fn matches_direct_dft() {
        let fs = 1000.0;
        let mut osc = Oscillator::new(123.0, fs);
        let sig = osc.generate(256);
        for f in [0.0, 50.0, 123.0, 400.0] {
            let g = goertzel(sig.samples(), f, fs);
            let direct: Complex64 = sig
                .samples()
                .iter()
                .enumerate()
                .map(|(n, &x)| x * Complex64::cis(-TAU * f / fs * n as f64))
                .sum();
            assert!((g - direct).norm() < 1e-6 * direct.norm().max(1.0), "f={f}");
        }
    }

    #[test]
    fn matches_fft_bin() {
        let fs = 1024.0;
        let mut osc = Oscillator::new(96.0, fs);
        let sig = osc.generate(1024);
        let mut spec = sig.samples().to_vec();
        fft(&mut spec);
        // Bin 96 of a 1024-point FFT at fs=1024 is exactly 96 Hz.
        let g = goertzel(sig.samples(), 96.0, fs);
        assert!((g - spec[96]).norm() < 1e-6 * spec[96].norm());
    }

    #[test]
    fn tone_detection_in_noise() {
        let fs = 400e3;
        let blf = 60e3;
        let mut rng = StdRng::seed_from_u64(1);
        let mut noise = AwgnSource::new(1.0);
        let mut osc = Oscillator::new(blf, fs);
        let n = 4000;
        let sig: Vec<Complex64> = (0..n)
            .map(|_| osc.next_sample() * 0.5 + noise.sample(&mut rng))
            .collect();
        let ratio = tone_to_floor_ratio(&sig, blf, fs, 1e3, 4);
        assert!(ratio > 20.0, "tone/floor {ratio}");
        // A frequency with no tone shows ratio near 1.
        let off = tone_to_floor_ratio(&sig, blf + 37e3, fs, 1e3, 4);
        assert!(off < 10.0, "empty-bin ratio {off}");
    }

    #[test]
    fn zero_signal_zero_power() {
        let sig = vec![Complex64::ZERO; 100];
        assert_eq!(goertzel_power(&sig, 10.0, 100.0), 0.0);
    }
}
