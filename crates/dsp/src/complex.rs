//! Double-precision complex numbers.
//!
//! IVN simulates narrowband RF at complex baseband, so almost every value in
//! the system is a phasor. We implement our own small complex type rather
//! than pulling in `num-complex`: the operation set we need is tiny and
//! having it here keeps the workspace dependency-light (see DESIGN.md §5).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// The type is `Copy` and all arithmetic is implemented by value, matching
/// the ergonomics of the primitive floats it wraps.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates (magnitude, phase in
    /// radians).
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Unit phasor `e^{jθ}`; the workhorse of every channel model.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Magnitude (Euclidean norm), `|z|`.
    ///
    /// Uses `hypot` for robustness against overflow/underflow.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, `|z|²`. Cheaper than [`Self::norm`] when only the
    /// power is needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse, `1/z`.
    ///
    /// Returns NaN components when `z == 0`, mirroring float division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let (r, theta) = self.to_polar();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Decomposes into `(magnitude, phase)`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.norm(), self.arg())
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + *z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn construction_and_accessors() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        let (r, theta) = z.to_polar();
        assert!((r - 2.0).abs() < 1e-12);
        assert!((theta - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..32 {
            let theta = k as f64 * PI / 16.0;
            assert!((Complex64::cis(theta).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(1.5, -2.5);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert!(close(z * z.inv(), Complex64::ONE));
        assert!(close(z / z, Complex64::ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn multiplication_matches_polar_form() {
        let a = Complex64::from_polar(2.0, 0.7);
        let b = Complex64::from_polar(3.0, -0.2);
        let p = a * b;
        assert!((p.norm() - 6.0).abs() < 1e-12);
        assert!((p.arg() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex64::new(0.3, 0.9);
        assert!(close(z.conj().conj(), z));
        let zc = z * z.conj();
        assert!((zc.im).abs() < 1e-15);
        assert!((zc.re - z.norm_sqr()).abs() < 1e-15);
    }

    #[test]
    fn exponential() {
        // e^{jπ/2} = i
        let z = Complex64::new(0.0, FRAC_PI_2).exp();
        assert!(close(z, Complex64::I));
        // e^{1} on real axis
        let r = Complex64::from_real(1.0).exp();
        assert!((r.re - std::f64::consts::E).abs() < 1e-12);
        assert!(r.im.abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex64::new(-3.0, 4.0);
        let s = z.sqrt();
        assert!(close(s * s, z));
        // principal branch: non-negative real part
        assert!(s.re >= 0.0);
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![Complex64::ONE; 8];
        let s: Complex64 = v.iter().sum();
        assert!(close(s, Complex64::new(8.0, 0.0)));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::ONE;
        z -= Complex64::I;
        z *= Complex64::new(0.0, 2.0);
        z /= Complex64::new(2.0, 0.0);
        assert!(close(z, Complex64::new(0.0, 2.0)));
        z *= 2.0;
        assert!(close(z, Complex64::new(0.0, 4.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }
}
