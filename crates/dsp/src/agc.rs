//! Automatic gain control.
//!
//! Receivers must scale wildly varying input levels (µV backscatter next
//! to near-field blockers) into the ADC's window. Two flavours:
//!
//! * [`block_gain`] — one gain for a whole capture (what a measurement
//!   receiver does between bursts);
//! * [`Agc`] — a running feedback loop with attack/decay, for streaming
//!   use.

use crate::complex::Complex64;

/// Computes the single gain that scales a block's RMS to `target_rms`.
///
/// Returns 1.0 for an empty or all-zero block.
pub fn block_gain(block: &[Complex64], target_rms: f64) -> f64 {
    assert!(target_rms > 0.0, "target must be positive");
    if block.is_empty() {
        return 1.0;
    }
    let rms = (block.iter().map(|s| s.norm_sqr()).sum::<f64>() / block.len() as f64).sqrt();
    if rms <= 0.0 {
        1.0
    } else {
        target_rms / rms
    }
}

/// A streaming AGC with asymmetric attack (fast when too loud) and decay
/// (slow when too quiet) — the usual shape that protects the ADC first.
#[derive(Debug, Clone)]
pub struct Agc {
    /// Target envelope amplitude at the output.
    pub target: f64,
    /// Gain-reduction rate per sample when above target (0–1, larger =
    /// faster).
    pub attack: f64,
    /// Gain-recovery rate per sample when below target.
    pub decay: f64,
    /// Gain limits.
    pub min_gain: f64,
    /// Maximum gain.
    pub max_gain: f64,
    gain: f64,
}

impl Agc {
    /// Creates an AGC with the given loop rates, starting at unit gain.
    ///
    /// # Panics
    /// Panics on non-positive target or out-of-range rates.
    pub fn new(target: f64, attack: f64, decay: f64, min_gain: f64, max_gain: f64) -> Self {
        assert!(target > 0.0, "target must be positive");
        assert!((0.0..=1.0).contains(&attack) && (0.0..=1.0).contains(&decay));
        assert!(min_gain > 0.0 && min_gain <= max_gain);
        Agc {
            target,
            attack,
            decay,
            min_gain,
            max_gain,
            gain: 1.0,
        }
    }

    /// A receiver-typical AGC: fast attack, slow decay, 120 dB range.
    pub fn receiver(target: f64) -> Self {
        Agc::new(target, 0.05, 0.0005, 1e-3, 1e3)
    }

    /// Current loop gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Processes one sample, updating the loop.
    pub fn process(&mut self, x: Complex64) -> Complex64 {
        let y = x * self.gain;
        let level = y.norm();
        if level > self.target {
            self.gain *= 1.0 - self.attack;
        } else {
            self.gain *= 1.0 + self.decay;
        }
        self.gain = self.gain.clamp(self.min_gain, self.max_gain);
        y
    }

    /// Processes a block.
    pub fn process_block(&mut self, input: &[Complex64]) -> Vec<Complex64> {
        input.iter().map(|&x| self.process(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_gain_normalizes_rms() {
        let block = vec![Complex64::new(4.0, 3.0); 10]; // rms 5
        let g = block_gain(&block, 0.5);
        assert!((g - 0.1).abs() < 1e-12);
        assert_eq!(block_gain(&[], 1.0), 1.0);
        assert_eq!(block_gain(&[Complex64::ZERO; 4], 1.0), 1.0);
    }

    #[test]
    fn agc_converges_to_target_level() {
        let mut agc = Agc::new(1.0, 0.02, 0.02, 1e-6, 1e6);
        let input = Complex64::from_real(0.001);
        let mut last = 0.0;
        for _ in 0..200_000 {
            last = agc.process(input).norm();
        }
        assert!((last - 1.0).abs() < 0.05, "settled at {last}");
    }

    #[test]
    fn attack_faster_than_decay() {
        let mut agc = Agc::receiver(0.25);
        // Blast it: gain must drop quickly.
        for _ in 0..500 {
            agc.process(Complex64::from_real(100.0));
        }
        let crushed = agc.gain();
        assert!(crushed < 0.01, "gain after blast {crushed}");
        // Silence: gain recovers slowly.
        for _ in 0..500 {
            agc.process(Complex64::from_real(1e-6));
        }
        assert!(agc.gain() < crushed * 2.0, "decay too fast");
    }

    #[test]
    fn gain_clamped() {
        let mut agc = Agc::new(1.0, 0.5, 0.5, 0.1, 10.0);
        for _ in 0..10_000 {
            agc.process(Complex64::from_real(1e9));
        }
        assert!(agc.gain() >= 0.1);
        for _ in 0..10_000 {
            agc.process(Complex64::ZERO);
        }
        assert!(agc.gain() <= 10.0);
    }
}
