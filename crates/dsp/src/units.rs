//! Unit conversions and strongly-typed physical quantities.
//!
//! RF work constantly mixes logarithmic (dB, dBm, dBi) and linear (watts,
//! volts, ratios) scales; the paper's evaluation is stated almost entirely
//! in dB-domain quantities ("2.3 to 6.9 dB/cm", "7 dBi antenna", "30 dBm
//! compression point"). Centralizing the conversions here keeps every other
//! module honest about which domain a number lives in.

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Free-space wave impedance η₀ in ohms (≈ 376.73 Ω).
pub const FREE_SPACE_IMPEDANCE: f64 = 376.730_313_668;

/// Vacuum permittivity ε₀ in F/m.
pub const VACUUM_PERMITTIVITY: f64 = 8.854_187_8128e-12;

/// Vacuum permeability μ₀ in H/m.
pub const VACUUM_PERMEABILITY: f64 = 1.256_637_062_12e-6;

/// Converts a power ratio to decibels. `linear_to_db(100.0) == 20.0`.
#[inline]
pub fn linear_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to a power ratio. `db_to_linear(20.0) == 100.0`.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts an amplitude (voltage/field) ratio to decibels (20·log₁₀).
#[inline]
pub fn amplitude_to_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Converts decibels to an amplitude ratio (inverse of 20·log₁₀).
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts watts to dBm.
#[inline]
pub fn watts_to_dbm(watts: f64) -> f64 {
    10.0 * (watts / 1e-3).log10()
}

/// Converts dBm to watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    1e-3 * 10f64.powf(dbm / 10.0)
}

/// Wavelength (m) of a plane wave of frequency `freq_hz` in vacuum/air.
#[inline]
pub fn wavelength(freq_hz: f64) -> f64 {
    SPEED_OF_LIGHT / freq_hz
}

/// A frequency in hertz.
///
/// Newtype so that carrier frequencies, offsets and sample rates cannot be
/// silently confused with other `f64` quantities in call signatures.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Hertz(pub f64);

impl Hertz {
    /// Constructs from kilohertz.
    #[inline]
    pub fn from_khz(khz: f64) -> Self {
        Hertz(khz * 1e3)
    }

    /// Constructs from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Constructs from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// Value in hertz.
    #[inline]
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Value in megahertz.
    #[inline]
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Free-space wavelength at this frequency, in metres.
    #[inline]
    pub fn wavelength(self) -> f64 {
        wavelength(self.0)
    }

    /// Angular frequency ω = 2πf in rad/s.
    #[inline]
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.0
    }
}

impl std::ops::Add<f64> for Hertz {
    type Output = Hertz;
    fn add(self, rhs: f64) -> Hertz {
        Hertz(self.0 + rhs)
    }
}

impl std::ops::Sub for Hertz {
    type Output = f64;
    fn sub(self, rhs: Hertz) -> f64 {
        self.0 - rhs.0
    }
}

impl std::fmt::Display for Hertz {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.0;
        if v.abs() >= 1e9 {
            write!(f, "{:.6} GHz", v / 1e9)
        } else if v.abs() >= 1e6 {
            write!(f, "{:.6} MHz", v / 1e6)
        } else if v.abs() >= 1e3 {
            write!(f, "{:.3} kHz", v / 1e3)
        } else {
            write!(f, "{v} Hz")
        }
    }
}

/// A power level expressed in dBm.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Dbm(pub f64);

impl Dbm {
    /// Converts to watts.
    #[inline]
    pub fn watts(self) -> f64 {
        dbm_to_watts(self.0)
    }

    /// Constructs from watts.
    #[inline]
    pub fn from_watts(w: f64) -> Self {
        Dbm(watts_to_dbm(w))
    }

    /// Adds a gain in dB.
    #[inline]
    pub fn gain(self, db: f64) -> Self {
        Dbm(self.0 + db)
    }
}

impl std::fmt::Display for Dbm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

/// Attenuation in dB per centimetre, used for tissue loss figures.
///
/// The paper quotes tissue losses in dB/cm (2.3–6.9 dB/cm at ~1 GHz); the
/// field attenuation constant α in 1/m follows as
/// `α = loss_db_per_cm · 100 / (20·log₁₀e)`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct DbPerCm(pub f64);

impl DbPerCm {
    /// The equivalent exponential field attenuation constant α in 1/m so
    /// that amplitude decays as `e^{-α d}`.
    #[inline]
    pub fn alpha_per_meter(self) -> f64 {
        // amplitude dB over 1 cm: 20 log10(e^{α·0.01}) = self.0
        self.0 * 100.0 / (20.0 * std::f64::consts::LOG10_E)
    }

    /// Constructs from a field attenuation constant α (1/m).
    #[inline]
    pub fn from_alpha(alpha_per_m: f64) -> Self {
        DbPerCm(alpha_per_m * 20.0 * std::f64::consts::LOG10_E / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 20.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-12);
        }
        assert!((db_to_linear(3.0) - 1.995).abs() < 0.01);
        assert_eq!(linear_to_db(100.0), 20.0);
    }

    #[test]
    fn amplitude_db_roundtrip() {
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-12);
        assert!((db_to_amplitude(6.0) - 1.9953).abs() < 1e-3);
    }

    #[test]
    fn dbm_watts_roundtrip() {
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_watts(0.0) - 1e-3).abs() < 1e-15);
        assert!((watts_to_dbm(2.0) - 33.0103).abs() < 1e-3);
        for dbm in [-90.0, -18.0, 0.0, 30.0, 36.0] {
            assert!((watts_to_dbm(dbm_to_watts(dbm)) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn wavelength_at_915mhz() {
        let lambda = Hertz::from_mhz(915.0).wavelength();
        assert!((lambda - 0.3276).abs() < 1e-3);
    }

    #[test]
    fn hertz_constructors_and_display() {
        assert_eq!(Hertz::from_khz(1.0).hz(), 1e3);
        assert_eq!(Hertz::from_mhz(915.0).hz(), 915e6);
        assert_eq!(Hertz::from_ghz(1.0).hz(), 1e9);
        assert_eq!(Hertz::from_mhz(915.0).to_string(), "915.000000 MHz");
        assert_eq!(Hertz(42.0).to_string(), "42 Hz");
    }

    #[test]
    fn hertz_arithmetic() {
        let f = Hertz::from_mhz(915.0) + 137.0;
        assert_eq!(f.hz(), 915e6 + 137.0);
        assert_eq!(f - Hertz::from_mhz(915.0), 137.0);
    }

    #[test]
    fn angular_frequency() {
        let w = Hertz(1.0).angular();
        assert!((w - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn dbm_type() {
        let p = Dbm(30.0);
        assert!((p.watts() - 1.0).abs() < 1e-12);
        assert_eq!(p.gain(7.0).0, 37.0);
        assert!((Dbm::from_watts(0.001).0).abs() < 1e-12);
        assert_eq!(p.to_string(), "30.00 dBm");
    }

    #[test]
    fn db_per_cm_conversion() {
        // 8.6859 dB/cm should be α = 100 (since 20·log10(e) ≈ 8.6859 dB per neper)
        let a = DbPerCm(8.685_889_638_065_036).alpha_per_meter();
        assert!((a - 100.0).abs() < 1e-9);
        // Roundtrip
        let d = DbPerCm::from_alpha(37.0);
        assert!((d.alpha_per_meter() - 37.0).abs() < 1e-9);
        // paper: 2.3 dB/cm ≈ α 26.5 /m; 6.9 dB/cm ≈ α 79.4 /m (matches 13..80 range)
        assert!((DbPerCm(2.3).alpha_per_meter() - 26.48).abs() < 0.1);
        assert!((DbPerCm(6.9).alpha_per_meter() - 79.44).abs() < 0.1);
    }

    #[test]
    fn amplitude_decay_matches_db_per_cm() {
        let loss = DbPerCm(5.0);
        let alpha = loss.alpha_per_meter();
        let amp_after_1cm = (-alpha * 0.01f64).exp();
        assert!((amplitude_to_db(1.0 / amp_after_1cm) - 5.0).abs() < 1e-9);
    }
}
